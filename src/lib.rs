//! # CorgiPile
//!
//! A Rust reproduction of *"In-Database Machine Learning with CorgiPile:
//! Stochastic Gradient Descent without Full Data Shuffle"* (SIGMOD 2022).
//!
//! This facade crate re-exports the workspace's component crates:
//!
//! * [`storage`] — block-addressable heap storage with HDD/SSD cost models;
//! * [`data`] — synthetic dataset generators mirroring the paper's workloads;
//! * [`shuffle`] — the data-shuffling strategies of §3 and §4 (No Shuffle,
//!   Shuffle Once, Epoch Shuffle, Sliding-Window, MRS, Block-Only,
//!   CorgiPile);
//! * [`ml`] — generalized linear models, MLPs, SGD and Adam;
//! * [`core`] — the CorgiPile dataset API, trainer, multi-worker mode, and
//!   the convergence-theory module;
//! * [`db`] — the in-database integration: Volcano operators, a SQL-ish
//!   `TRAIN BY` / `PREDICT BY` surface, and MADlib/Bismarck-style baselines;
//! * [`telemetry`] — dependency-free observability: counters, gauges,
//!   histograms, span guards over wall + simulated time, a bounded event
//!   log, and JSON/Prometheus exporters. Powers `EXPLAIN ANALYZE` and
//!   `SHOW STATS` in [`db`].
//!
//! ## Quickstart
//!
//! ```
//! use corgipile::core::{CorgiPileConfig, Trainer, TrainerConfig};
//! use corgipile::data::{DatasetSpec, Order};
//! use corgipile::ml::ModelKind;
//! use corgipile::shuffle::StrategyKind;
//! use corgipile::storage::SimDevice;
//!
//! // A small clustered binary dataset, stored as a heap table.
//! let spec = DatasetSpec::higgs_like(2_000).with_order(Order::ClusteredByLabel);
//! let table = spec.build_table(42).unwrap();
//!
//! // Train an SVM with CorgiPile over a simulated HDD.
//! let mut dev = SimDevice::hdd(64 << 20);
//! let cfg = TrainerConfig::new(ModelKind::Svm, 5)
//!     .with_strategy(StrategyKind::CorgiPile)
//!     .with_corgipile(CorgiPileConfig::default().with_buffer_fraction(0.2));
//! let report = Trainer::new(cfg).train(&table, &mut dev, 7).unwrap();
//! assert!(report.final_train_accuracy() > 0.6);
//! ```

pub use corgipile_core as core;
pub use corgipile_data as data;
pub use corgipile_db as db;
pub use corgipile_ml as ml;
pub use corgipile_shuffle as shuffle;
pub use corgipile_storage as storage;
pub use corgipile_telemetry as telemetry;
