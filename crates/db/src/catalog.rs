//! Catalog: tables and trained models.
//!
//! The paper stores the learned model "as an in-memory object (a C-style
//! struct) with an ID in the PostgreSQL kernel" (§6.1); [`StoredModel`] is
//! that object, addressable by name from `PREDICT BY` queries.
//!
//! The catalog is interior-synchronized (every method takes `&self`), so
//! one `Catalog` can be shared by all sessions of a
//! [`crate::database::Database`]: a model stored by one connection is
//! immediately visible to `PREDICT BY` on every other.

use crate::error::DbError;
use corgipile_ml::{build_model, Model, ModelKind};
use corgipile_storage::Table;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, RwLock};

fn read<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A trained model registered in the catalog.
#[derive(Debug, Clone)]
pub struct StoredModel {
    /// Model kind.
    pub kind: ModelKind,
    /// Input dimensionality.
    pub dim: usize,
    /// Flat parameters.
    pub params: Vec<f32>,
    /// Final training loss (bookkeeping for reports).
    pub train_loss: f64,
}

impl StoredModel {
    /// Rehydrate the model object.
    pub fn instantiate(&self) -> Box<dyn Model> {
        let mut m = build_model(&self.kind, self.dim, 0);
        m.params_mut().copy_from_slice(&self.params);
        m
    }

    /// Serialize to a compact binary blob (magic-tagged, versioned).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 4 * self.params.len());
        out.extend_from_slice(b"CORGIMD1");
        // Kind tag + kind-specific shape.
        match &self.kind {
            ModelKind::LogisticRegression => out.push(0),
            ModelKind::Svm => out.push(1),
            ModelKind::LinearRegression => out.push(2),
            ModelKind::Softmax { classes } => {
                out.push(3);
                out.extend_from_slice(&(*classes as u32).to_le_bytes());
            }
            ModelKind::Mlp { hidden, classes } => {
                out.push(4);
                out.extend_from_slice(&(*classes as u32).to_le_bytes());
                out.extend_from_slice(&(hidden.len() as u32).to_le_bytes());
                for h in hidden {
                    out.extend_from_slice(&(*h as u32).to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&(self.dim as u64).to_le_bytes());
        out.extend_from_slice(&self.train_loss.to_le_bytes());
        out.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for p in &self.params {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out
    }

    /// Deserialize a blob written by [`StoredModel::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<StoredModel, DbError> {
        let corrupt = |m: &str| DbError::BadParam(format!("model blob: {m}"));
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], DbError> {
            if *pos + n > bytes.len() {
                return Err(corrupt("truncated"));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 8)? != b"CORGIMD1" {
            return Err(corrupt("bad magic"));
        }
        let tag = take(&mut pos, 1)?[0];
        let read_u32 = |pos: &mut usize| -> Result<u32, DbError> {
            Ok(u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()))
        };
        let kind = match tag {
            0 => ModelKind::LogisticRegression,
            1 => ModelKind::Svm,
            2 => ModelKind::LinearRegression,
            3 => ModelKind::Softmax {
                classes: read_u32(&mut pos)? as usize,
            },
            4 => {
                let classes = read_u32(&mut pos)? as usize;
                let layers = read_u32(&mut pos)? as usize;
                if layers > 64 {
                    return Err(corrupt("implausible layer count"));
                }
                let mut hidden = Vec::with_capacity(layers);
                for _ in 0..layers {
                    hidden.push(read_u32(&mut pos)? as usize);
                }
                ModelKind::Mlp { hidden, classes }
            }
            other => return Err(corrupt(&format!("unknown kind tag {other}"))),
        };
        let dim = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
        let train_loss = f64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let nparams = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
        if nparams > 1 << 28 {
            return Err(corrupt("implausible parameter count"));
        }
        let mut params = Vec::with_capacity(nparams);
        for _ in 0..nparams {
            params.push(f32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()));
        }
        // Consistency: the parameter vector must fit the declared shape
        // (checked before instantiate(), which assumes a matching length).
        let expected = build_model(&kind, dim, 0).num_params();
        if expected != params.len() {
            return Err(corrupt("parameter count does not match model shape"));
        }
        Ok(StoredModel {
            kind,
            dim,
            params,
            train_loss,
        })
    }

    /// Write to a file.
    pub fn save(&self, path: &std::path::Path) -> Result<(), DbError> {
        std::fs::write(path, self.to_bytes())
            .map_err(|e| DbError::BadParam(format!("cannot write model: {e}")))
    }

    /// Read from a file.
    pub fn load(path: &std::path::Path) -> Result<StoredModel, DbError> {
        let bytes = std::fs::read(path)
            .map_err(|e| DbError::BadParam(format!("cannot read model: {e}")))?;
        Self::from_bytes(&bytes)
    }
}

/// A cached block-variance estimate (ĥ_D), valid for one registered
/// version of a table: re-registering the name invalidates it, and a
/// stale `table_id` never matches.
#[derive(Debug, Clone, Copy)]
pub struct CachedBlockVariance {
    /// The table id the estimate was computed for.
    pub table_id: u32,
    /// The normalized block-variance estimate ĥ_D in `[0, 1]`.
    pub hd: f64,
}

/// The database catalog. Interior-synchronized: shared by every session
/// of an engine through `&self`.
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    models: RwLock<HashMap<String, StoredModel>>,
    stats: RwLock<HashMap<String, CachedBlockVariance>>,
    next_table_id: AtomicU32,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table under its config name, returning the shared handle.
    /// Re-registering a name invalidates any cached statistics for it.
    pub fn register_table(&self, name: impl Into<String>, table: Table) -> Arc<Table> {
        let name = name.into();
        let handle = Arc::new(table);
        write(&self.stats).remove(&name);
        write(&self.tables).insert(name, handle.clone());
        handle
    }

    /// Look a table up.
    pub fn table(&self, name: &str) -> Result<Arc<Table>, DbError> {
        read(&self.tables)
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Registered table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = read(&self.tables).keys().cloned().collect();
        names.sort();
        names
    }

    /// A fresh table id for derived tables (shuffled copies), unique
    /// across all sessions.
    pub fn fresh_table_id(&self) -> u32 {
        0x4000_0000 + self.next_table_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The cached ĥ_D for `name`, if one was computed for exactly this
    /// `table_id` (the per-table-version validity check).
    pub fn cached_block_variance(&self, name: &str, table_id: u32) -> Option<f64> {
        read(&self.stats)
            .get(name)
            .filter(|c| c.table_id == table_id)
            .map(|c| c.hd)
    }

    /// Cache a freshly computed ĥ_D for this version of `name`.
    pub fn cache_block_variance(&self, name: impl Into<String>, table_id: u32, hd: f64) {
        write(&self.stats).insert(name.into(), CachedBlockVariance { table_id, hd });
    }

    /// Store a trained model under a name.
    pub fn store_model(&self, name: impl Into<String>, model: StoredModel) {
        write(&self.models).insert(name.into(), model);
    }

    /// Look a model up (an owned snapshot; the catalog entry may be
    /// replaced concurrently by another session re-training the name).
    pub fn model(&self, name: &str) -> Result<StoredModel, DbError> {
        read(&self.models)
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::UnknownModel(name.to_string()))
    }

    /// Registered model names.
    pub fn model_names(&self) -> Vec<String> {
        let mut names: Vec<String> = read(&self.models).keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::DatasetSpec;
    use corgipile_storage::FeatureVec;

    #[test]
    fn register_and_lookup_tables() {
        let c = Catalog::new();
        let t = DatasetSpec::higgs_like(50).build_table(1).unwrap();
        c.register_table("higgs", t);
        assert!(c.table("higgs").is_ok());
        assert!(matches!(c.table("nope"), Err(DbError::UnknownTable(_))));
        assert_eq!(c.table_names(), vec!["higgs"]);
    }

    #[test]
    fn store_and_rehydrate_model() {
        let c = Catalog::new();
        let stored = StoredModel {
            kind: ModelKind::LogisticRegression,
            dim: 2,
            params: vec![1.0, -2.0, 0.5],
            train_loss: 0.3,
        };
        c.store_model("m", stored);
        let m = c.model("m").unwrap().instantiate();
        assert_eq!(m.params(), &[1.0, -2.0, 0.5]);
        // Rehydrated model predicts with the stored weights.
        let x = FeatureVec::Dense(vec![1.0, 0.0]);
        assert_eq!(m.predict_label(&x), 1.0);
        assert!(matches!(c.model("missing"), Err(DbError::UnknownModel(_))));
        assert_eq!(c.model_names(), vec!["m"]);
    }

    #[test]
    fn model_blob_roundtrips_all_kinds() {
        let kinds = vec![
            (ModelKind::LogisticRegression, 4usize),
            (ModelKind::Svm, 4),
            (ModelKind::LinearRegression, 4),
            (ModelKind::Softmax { classes: 3 }, 4),
            (
                ModelKind::Mlp {
                    hidden: vec![5, 3],
                    classes: 2,
                },
                4,
            ),
        ];
        for (kind, dim) in kinds {
            let m = build_model(&kind, dim, 1);
            let stored = StoredModel {
                kind: kind.clone(),
                dim,
                params: m.params().to_vec(),
                train_loss: 0.42,
            };
            let back = StoredModel::from_bytes(&stored.to_bytes()).unwrap();
            assert_eq!(back.kind, kind);
            assert_eq!(back.dim, dim);
            assert_eq!(back.params, stored.params);
            assert_eq!(back.train_loss, 0.42);
        }
    }

    #[test]
    fn model_blob_rejects_garbage() {
        assert!(StoredModel::from_bytes(b"").is_err());
        assert!(StoredModel::from_bytes(b"WRONGMAG123").is_err());
        let good = StoredModel {
            kind: ModelKind::Svm,
            dim: 3,
            params: vec![0.0; 4],
            train_loss: 0.0,
        }
        .to_bytes();
        assert!(StoredModel::from_bytes(&good[..good.len() - 2]).is_err());
        // Shape mismatch: claim Svm(dim 3) but ship 2 params.
        let bad = StoredModel {
            kind: ModelKind::Svm,
            dim: 3,
            params: vec![0.0; 2],
            train_loss: 0.0,
        }
        .to_bytes();
        assert!(StoredModel::from_bytes(&bad).is_err());
    }

    #[test]
    fn model_file_roundtrip() {
        let path = std::env::temp_dir().join(format!("corgi_model_{}.bin", std::process::id()));
        let stored = StoredModel {
            kind: ModelKind::Softmax { classes: 4 },
            dim: 6,
            params: build_model(&ModelKind::Softmax { classes: 4 }, 6, 2)
                .params()
                .to_vec(),
            train_loss: 1.5,
        };
        stored.save(&path).unwrap();
        let back = StoredModel::load(&path).unwrap();
        assert_eq!(back.kind, stored.kind);
        assert_eq!(back.params, stored.params);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn block_variance_cache_is_invalidated_by_reregistration() {
        let c = Catalog::new();
        let t = DatasetSpec::higgs_like(50).build_table(1).unwrap();
        let tid = t.config().table_id;
        c.register_table("higgs", t);
        assert_eq!(c.cached_block_variance("higgs", tid), None);
        c.cache_block_variance("higgs", tid, 0.7);
        assert_eq!(c.cached_block_variance("higgs", tid), Some(0.7));
        // A different table id never matches the cached entry.
        assert_eq!(c.cached_block_variance("higgs", tid + 1), None);
        // Re-registering the name drops the entry.
        let t2 = DatasetSpec::higgs_like(60).build_table(1).unwrap();
        c.register_table("higgs", t2);
        assert_eq!(c.cached_block_variance("higgs", tid), None);
    }

    #[test]
    fn fresh_table_ids_are_unique() {
        let c = Catalog::new();
        let a = c.fresh_table_id();
        let b = c.fresh_table_id();
        assert_ne!(a, b);
    }

    #[test]
    fn fresh_table_ids_are_unique_across_threads() {
        let c = std::sync::Arc::new(Catalog::new());
        let mut ids: Vec<u32> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let c = c.clone();
                    s.spawn(move || (0..100).map(|_| c.fresh_table_id()).collect::<Vec<_>>())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400, "concurrent ids must never collide");
    }

    #[test]
    fn catalog_is_shared_across_threads() {
        let c = std::sync::Arc::new(Catalog::new());
        std::thread::scope(|s| {
            let writer = c.clone();
            s.spawn(move || {
                let t = DatasetSpec::higgs_like(50).build_table(7).unwrap();
                writer.register_table("shared", t);
                writer.store_model(
                    "m",
                    StoredModel {
                        kind: ModelKind::Svm,
                        dim: 2,
                        params: vec![0.0; 3],
                        train_loss: 0.0,
                    },
                );
            })
            .join()
            .unwrap();
        });
        assert!(c.table("shared").is_ok());
        assert!(c.model("m").is_ok());
    }
}
