//! Catalog: tables, trained models, and the per-table snapshot chain.
//!
//! The paper stores the learned model "as an in-memory object (a C-style
//! struct) with an ID in the PostgreSQL kernel" (§6.1); [`StoredModel`] is
//! that object, addressable by name from `PREDICT BY` queries.
//!
//! Tables are *versioned*: a name maps to a monotonically increasing chain
//! of immutable snapshots. `INSERT` appends rows through a WAL-backed
//! [`AppendableTable`] writer and publishes a new snapshot version (with a
//! fresh `table_id`, so block caches keyed by `(table_id, block)` never
//! alias across versions); scans pin whatever snapshot was current at
//! plan-build time and are therefore bit-reproducible under concurrent
//! writers. Re-registering a name (`RECLUSTER`, test setup) also bumps the
//! version. Both paths invalidate the cached ĥ_D, and appends replace it
//! with the writer's incremental per-block estimate.
//!
//! The catalog is interior-synchronized (every method takes `&self`), so
//! one `Catalog` can be shared by all sessions of a
//! [`crate::database::Database`]: a model stored by one connection is
//! immediately visible to `PREDICT BY` on every other.

use crate::error::DbError;
use corgipile_ml::{build_model, Model, ModelKind};
use corgipile_storage::{AppendableTable, FaultInjector, FaultPlan, Table, TableSnapshot, Tuple};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, RwLock};

fn read<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A trained model registered in the catalog.
#[derive(Debug, Clone)]
pub struct StoredModel {
    /// Model kind.
    pub kind: ModelKind,
    /// Input dimensionality.
    pub dim: usize,
    /// Flat parameters.
    pub params: Vec<f32>,
    /// Final training loss (bookkeeping for reports).
    pub train_loss: f64,
}

impl StoredModel {
    /// Rehydrate the model object.
    pub fn instantiate(&self) -> Box<dyn Model> {
        let mut m = build_model(&self.kind, self.dim, 0);
        m.params_mut().copy_from_slice(&self.params);
        m
    }

    /// Serialize to a compact binary blob (magic-tagged, versioned).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 4 * self.params.len());
        out.extend_from_slice(b"CORGIMD1");
        // Kind tag + kind-specific shape.
        match &self.kind {
            ModelKind::LogisticRegression => out.push(0),
            ModelKind::Svm => out.push(1),
            ModelKind::LinearRegression => out.push(2),
            ModelKind::Softmax { classes } => {
                out.push(3);
                out.extend_from_slice(&(*classes as u32).to_le_bytes());
            }
            ModelKind::Mlp { hidden, classes } => {
                out.push(4);
                out.extend_from_slice(&(*classes as u32).to_le_bytes());
                out.extend_from_slice(&(hidden.len() as u32).to_le_bytes());
                for h in hidden {
                    out.extend_from_slice(&(*h as u32).to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&(self.dim as u64).to_le_bytes());
        out.extend_from_slice(&self.train_loss.to_le_bytes());
        out.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for p in &self.params {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out
    }

    /// Deserialize a blob written by [`StoredModel::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<StoredModel, DbError> {
        let corrupt = |m: &str| DbError::BadParam(format!("model blob: {m}"));
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], DbError> {
            if *pos + n > bytes.len() {
                return Err(corrupt("truncated"));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 8)? != b"CORGIMD1" {
            return Err(corrupt("bad magic"));
        }
        let tag = take(&mut pos, 1)?[0];
        let read_u32 = |pos: &mut usize| -> Result<u32, DbError> {
            Ok(u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()))
        };
        let kind = match tag {
            0 => ModelKind::LogisticRegression,
            1 => ModelKind::Svm,
            2 => ModelKind::LinearRegression,
            3 => ModelKind::Softmax {
                classes: read_u32(&mut pos)? as usize,
            },
            4 => {
                let classes = read_u32(&mut pos)? as usize;
                let layers = read_u32(&mut pos)? as usize;
                if layers > 64 {
                    return Err(corrupt("implausible layer count"));
                }
                let mut hidden = Vec::with_capacity(layers);
                for _ in 0..layers {
                    hidden.push(read_u32(&mut pos)? as usize);
                }
                ModelKind::Mlp { hidden, classes }
            }
            other => return Err(corrupt(&format!("unknown kind tag {other}"))),
        };
        let dim = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
        let train_loss = f64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let nparams = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
        if nparams > 1 << 28 {
            return Err(corrupt("implausible parameter count"));
        }
        let mut params = Vec::with_capacity(nparams);
        for _ in 0..nparams {
            params.push(f32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()));
        }
        // Consistency: the parameter vector must fit the declared shape
        // (checked before instantiate(), which assumes a matching length).
        let expected = build_model(&kind, dim, 0).num_params();
        if expected != params.len() {
            return Err(corrupt("parameter count does not match model shape"));
        }
        Ok(StoredModel {
            kind,
            dim,
            params,
            train_loss,
        })
    }

    /// Write to a file.
    pub fn save(&self, path: &std::path::Path) -> Result<(), DbError> {
        std::fs::write(path, self.to_bytes())
            .map_err(|e| DbError::BadParam(format!("cannot write model: {e}")))
    }

    /// Read from a file.
    pub fn load(path: &std::path::Path) -> Result<StoredModel, DbError> {
        let bytes = std::fs::read(path)
            .map_err(|e| DbError::BadParam(format!("cannot read model: {e}")))?;
        Self::from_bytes(&bytes)
    }
}

/// A cached block-variance estimate (ĥ_D), valid for one registered
/// version of a table: re-registering the name invalidates it, and a
/// stale `table_id` never matches.
#[derive(Debug, Clone, Copy)]
pub struct CachedBlockVariance {
    /// The table id the estimate was computed for.
    pub table_id: u32,
    /// The normalized block-variance estimate ĥ_D in `[0, 1]`.
    pub hd: f64,
}

/// How many snapshot versions of a table the catalog retains. Pinned
/// [`TableSnapshot`]s stay alive regardless (they hold `Arc<Table>`); the
/// retained chain only powers [`Catalog::snapshot_at`] reach-back.
const RETAINED_VERSIONS: usize = 8;

/// One name's entry in the versioned table chain.
struct TableEntry {
    /// The current snapshot.
    snapshot: Arc<Table>,
    /// Monotonic version, starting at 1 on first registration.
    version: u64,
    /// Recent `(version, snapshot)` pairs, oldest first, current last.
    retained: Vec<(u64, Arc<Table>)>,
}

impl TableEntry {
    /// Install `snapshot` as the next version and return that version.
    fn publish(&mut self, snapshot: Arc<Table>) -> u64 {
        self.version += 1;
        self.snapshot = snapshot.clone();
        self.retained.push((self.version, snapshot));
        if self.retained.len() > RETAINED_VERSIONS {
            let excess = self.retained.len() - RETAINED_VERSIONS;
            self.retained.drain(..excess);
        }
        self.version
    }
}

/// What an `INSERT` (or WAL recovery) did to a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// The snapshot version the append published.
    pub version: u64,
    /// Rows appended by this statement.
    pub rows: u64,
    /// Rows replayed from the table WAL when this statement had to open
    /// the writer (0 once a writer is warm).
    pub recovered: u64,
    /// Total tuples in the published snapshot.
    pub total_tuples: u64,
}

/// The database catalog. Interior-synchronized: shared by every session
/// of an engine through `&self`.
///
/// Lock order (when several are held): `writers` → `tables` → `stats`.
#[derive(Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, TableEntry>>,
    writers: Mutex<HashMap<String, AppendableTable>>,
    models: RwLock<HashMap<String, StoredModel>>,
    stats: RwLock<HashMap<String, CachedBlockVariance>>,
    next_table_id: AtomicU32,
    table_wal_dir: RwLock<Option<PathBuf>>,
    append_faults: Mutex<Option<FaultInjector>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table under its config name, returning the shared handle.
    ///
    /// A first registration starts the name's chain at version 1;
    /// re-registering (as `RECLUSTER` does with the shuffled copy) bumps
    /// the version, invalidates any cached statistics, and discards any
    /// buffered append writer — the writer extended the *previous*
    /// physical table and must re-open against the new one.
    pub fn register_table(&self, name: impl Into<String>, table: Table) -> Arc<Table> {
        let name = name.into();
        let handle = Arc::new(table);
        lock(&self.writers).remove(&name);
        let mut tables = write(&self.tables);
        write(&self.stats).remove(&name);
        tables
            .entry(name)
            .or_insert_with(|| TableEntry {
                snapshot: handle.clone(),
                version: 0,
                retained: Vec::new(),
            })
            .publish(handle.clone());
        handle
    }

    /// Look a table up (the current snapshot's handle).
    pub fn table(&self, name: &str) -> Result<Arc<Table>, DbError> {
        read(&self.tables)
            .get(name)
            .map(|e| e.snapshot.clone())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// The current versioned snapshot of `name` — what a scan pins at
    /// plan-build time.
    pub fn snapshot(&self, name: &str) -> Result<TableSnapshot, DbError> {
        read(&self.tables)
            .get(name)
            .map(|e| TableSnapshot::new(e.version, e.snapshot.clone()))
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// The current version of `name`'s snapshot chain.
    pub fn table_version(&self, name: &str) -> Result<u64, DbError> {
        read(&self.tables)
            .get(name)
            .map(|e| e.version)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Reach back to a retained snapshot version (the last
    /// `RETAINED_VERSIONS` are kept). Lets a test or audit re-run a
    /// pinned-snapshot train cold and compare bit-for-bit.
    pub fn snapshot_at(&self, name: &str, version: u64) -> Result<TableSnapshot, DbError> {
        let tables = read(&self.tables);
        let e = tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))?;
        e.retained
            .iter()
            .find(|(v, _)| *v == version)
            .map(|(v, t)| TableSnapshot::new(*v, t.clone()))
            .ok_or_else(|| {
                DbError::BadParam(format!(
                    "table {name} does not retain snapshot v{version} (current is v{})",
                    e.version
                ))
            })
    }

    /// Registered table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = read(&self.tables).keys().cloned().collect();
        names.sort();
        names
    }

    /// One status line per table (sorted by name):
    /// `<name> v<version> blocks=<n> tuples=<n>` — the `SHOW TABLES` shape.
    pub fn table_status(&self) -> Vec<String> {
        let tables = read(&self.tables);
        let mut rows: Vec<String> = tables
            .iter()
            .map(|(name, e)| {
                format!(
                    "{name} v{} blocks={} tuples={}",
                    e.version,
                    e.snapshot.num_blocks(),
                    e.snapshot.num_tuples()
                )
            })
            .collect();
        rows.sort();
        rows
    }

    /// Direct table WALs at `<dir>/<name>.wal`. Without a directory the
    /// append path still works, but in memory only (no crash durability).
    pub fn set_table_wal_dir(&self, dir: impl Into<PathBuf>) {
        *write(&self.table_wal_dir) = Some(dir.into());
    }

    /// Arm fault injection for the table append path (crash points, torn
    /// writes, retryable failures at `table.*` and `wal.*` sites).
    pub fn set_append_faults(&self, plan: FaultPlan) {
        *lock(&self.append_faults) = Some(FaultInjector::new(plan));
    }

    /// Disarm [`Catalog::set_append_faults`].
    pub fn clear_append_faults(&self) {
        *lock(&self.append_faults) = None;
    }

    /// Append `rows` to `name` and publish a new snapshot version.
    ///
    /// The statement is journaled as one fsynced WAL frame before any
    /// in-memory state changes, so an acked append survives a crash; on
    /// error the writer is discarded (next append re-opens it from the WAL,
    /// exactly as a crashed backend would). Publishing bumps the version,
    /// assigns a fresh `table_id`, drops the stale cached ĥ_D and installs
    /// the writer's incremental per-block estimate in its place.
    pub fn append_rows(&self, name: &str, rows: Vec<Tuple>) -> Result<AppendOutcome, DbError> {
        let mut writers = lock(&self.writers);
        let recovered = self.ensure_writer(&mut writers, name)?;
        let writer = writers.get_mut(name).expect("writer just ensured");
        let n = rows.len() as u64;
        {
            let mut faults = lock(&self.append_faults);
            if let Err(e) = writer.append_rows(rows, faults.as_mut()) {
                writers.remove(name);
                return Err(e.into());
            }
        }
        let version = self.publish_if_changed(name, writer)?;
        Ok(AppendOutcome {
            version,
            rows: n,
            recovered,
            total_tuples: writer.num_tuples(),
        })
    }

    /// Replay any table WAL for `name` without appending anything: opens
    /// the writer (recovering acked-but-unpublished rows) and publishes a
    /// new snapshot version if recovery found rows the current snapshot
    /// lacks. Returns the number of rows the writer replayed. Idempotent.
    pub fn recover_table_wal(&self, name: &str) -> Result<u64, DbError> {
        let mut writers = lock(&self.writers);
        self.ensure_writer(&mut writers, name)?;
        let writer = writers.get(name).expect("writer just ensured");
        let recovered = writer.replayed_rows();
        self.publish_if_changed(name, writer)?;
        Ok(recovered)
    }

    /// Open the append writer for `name` if it is not already open,
    /// replaying its WAL (if one exists). Returns the rows replayed by a
    /// fresh open, 0 for an already-warm writer.
    fn ensure_writer(
        &self,
        writers: &mut HashMap<String, AppendableTable>,
        name: &str,
    ) -> Result<u64, DbError> {
        if writers.contains_key(name) {
            return Ok(0);
        }
        let base = self.table(name)?;
        let wal_path = read(&self.table_wal_dir)
            .as_ref()
            .map(|d| d.join(format!("{name}.wal")));
        let writer = match wal_path {
            Some(path) => {
                if let Some(dir) = path.parent() {
                    std::fs::create_dir_all(dir).map_err(|e| {
                        DbError::Storage(corgipile_storage::StorageError::Io {
                            op: "create table wal dir",
                            message: e.to_string(),
                        })
                    })?;
                }
                AppendableTable::open(&base, &path)?
            }
            None => AppendableTable::open_in_memory(&base),
        };
        let recovered = writer.replayed_rows();
        writers.insert(name.to_string(), writer);
        Ok(recovered)
    }

    /// Publish `writer`'s contents as the next snapshot version of `name`
    /// when it holds rows the current snapshot lacks; otherwise return the
    /// current version unchanged. Fresh `table_id` per publish so block
    /// caches keyed `(table_id, block)` never serve a stale version.
    fn publish_if_changed(&self, name: &str, writer: &AppendableTable) -> Result<u64, DbError> {
        let published = self.table(name)?.num_tuples();
        if writer.num_tuples() <= published {
            return self.table_version(name);
        }
        let new_id = self.fresh_table_id();
        let table = Arc::new(writer.snapshot_table(new_id));
        let hd = writer.hd_estimate();
        let mut tables = write(&self.tables);
        let e = tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))?;
        let version = e.publish(table);
        let mut stats = write(&self.stats);
        stats.remove(name);
        if let Some(hd) = hd {
            stats.insert(
                name.to_string(),
                CachedBlockVariance {
                    table_id: new_id,
                    hd,
                },
            );
        }
        Ok(version)
    }

    /// A fresh table id for derived tables (shuffled copies), unique
    /// across all sessions.
    pub fn fresh_table_id(&self) -> u32 {
        0x4000_0000 + self.next_table_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The cached ĥ_D for `name`, if one was computed for exactly this
    /// `table_id` (the per-table-version validity check).
    pub fn cached_block_variance(&self, name: &str, table_id: u32) -> Option<f64> {
        read(&self.stats)
            .get(name)
            .filter(|c| c.table_id == table_id)
            .map(|c| c.hd)
    }

    /// Cache a freshly computed ĥ_D for this version of `name`.
    pub fn cache_block_variance(&self, name: impl Into<String>, table_id: u32, hd: f64) {
        write(&self.stats).insert(name.into(), CachedBlockVariance { table_id, hd });
    }

    /// Store a trained model under a name.
    pub fn store_model(&self, name: impl Into<String>, model: StoredModel) {
        write(&self.models).insert(name.into(), model);
    }

    /// Look a model up (an owned snapshot; the catalog entry may be
    /// replaced concurrently by another session re-training the name).
    pub fn model(&self, name: &str) -> Result<StoredModel, DbError> {
        read(&self.models)
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::UnknownModel(name.to_string()))
    }

    /// Registered model names.
    pub fn model_names(&self) -> Vec<String> {
        let mut names: Vec<String> = read(&self.models).keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::DatasetSpec;
    use corgipile_storage::FeatureVec;

    #[test]
    fn register_and_lookup_tables() {
        let c = Catalog::new();
        let t = DatasetSpec::higgs_like(50).build_table(1).unwrap();
        c.register_table("higgs", t);
        assert!(c.table("higgs").is_ok());
        assert!(matches!(c.table("nope"), Err(DbError::UnknownTable(_))));
        assert_eq!(c.table_names(), vec!["higgs"]);
    }

    #[test]
    fn store_and_rehydrate_model() {
        let c = Catalog::new();
        let stored = StoredModel {
            kind: ModelKind::LogisticRegression,
            dim: 2,
            params: vec![1.0, -2.0, 0.5],
            train_loss: 0.3,
        };
        c.store_model("m", stored);
        let m = c.model("m").unwrap().instantiate();
        assert_eq!(m.params(), &[1.0, -2.0, 0.5]);
        // Rehydrated model predicts with the stored weights.
        let x = FeatureVec::Dense(vec![1.0, 0.0]);
        assert_eq!(m.predict_label(&x), 1.0);
        assert!(matches!(c.model("missing"), Err(DbError::UnknownModel(_))));
        assert_eq!(c.model_names(), vec!["m"]);
    }

    #[test]
    fn model_blob_roundtrips_all_kinds() {
        let kinds = vec![
            (ModelKind::LogisticRegression, 4usize),
            (ModelKind::Svm, 4),
            (ModelKind::LinearRegression, 4),
            (ModelKind::Softmax { classes: 3 }, 4),
            (
                ModelKind::Mlp {
                    hidden: vec![5, 3],
                    classes: 2,
                },
                4,
            ),
        ];
        for (kind, dim) in kinds {
            let m = build_model(&kind, dim, 1);
            let stored = StoredModel {
                kind: kind.clone(),
                dim,
                params: m.params().to_vec(),
                train_loss: 0.42,
            };
            let back = StoredModel::from_bytes(&stored.to_bytes()).unwrap();
            assert_eq!(back.kind, kind);
            assert_eq!(back.dim, dim);
            assert_eq!(back.params, stored.params);
            assert_eq!(back.train_loss, 0.42);
        }
    }

    #[test]
    fn model_blob_rejects_garbage() {
        assert!(StoredModel::from_bytes(b"").is_err());
        assert!(StoredModel::from_bytes(b"WRONGMAG123").is_err());
        let good = StoredModel {
            kind: ModelKind::Svm,
            dim: 3,
            params: vec![0.0; 4],
            train_loss: 0.0,
        }
        .to_bytes();
        assert!(StoredModel::from_bytes(&good[..good.len() - 2]).is_err());
        // Shape mismatch: claim Svm(dim 3) but ship 2 params.
        let bad = StoredModel {
            kind: ModelKind::Svm,
            dim: 3,
            params: vec![0.0; 2],
            train_loss: 0.0,
        }
        .to_bytes();
        assert!(StoredModel::from_bytes(&bad).is_err());
    }

    #[test]
    fn model_file_roundtrip() {
        let path = std::env::temp_dir().join(format!("corgi_model_{}.bin", std::process::id()));
        let stored = StoredModel {
            kind: ModelKind::Softmax { classes: 4 },
            dim: 6,
            params: build_model(&ModelKind::Softmax { classes: 4 }, 6, 2)
                .params()
                .to_vec(),
            train_loss: 1.5,
        };
        stored.save(&path).unwrap();
        let back = StoredModel::load(&path).unwrap();
        assert_eq!(back.kind, stored.kind);
        assert_eq!(back.params, stored.params);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn block_variance_cache_is_invalidated_by_reregistration() {
        let c = Catalog::new();
        let t = DatasetSpec::higgs_like(50).build_table(1).unwrap();
        let tid = t.config().table_id;
        c.register_table("higgs", t);
        assert_eq!(c.cached_block_variance("higgs", tid), None);
        c.cache_block_variance("higgs", tid, 0.7);
        assert_eq!(c.cached_block_variance("higgs", tid), Some(0.7));
        // A different table id never matches the cached entry.
        assert_eq!(c.cached_block_variance("higgs", tid + 1), None);
        // Re-registering the name drops the entry.
        let t2 = DatasetSpec::higgs_like(60).build_table(1).unwrap();
        c.register_table("higgs", t2);
        assert_eq!(c.cached_block_variance("higgs", tid), None);
    }

    fn probe_rows(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::dense(
                    0,
                    vec![i as f32, -(i as f32)],
                    if i % 2 == 0 { 1.0 } else { -1.0 },
                )
            })
            .collect()
    }

    #[test]
    fn append_rows_bumps_versions_and_pins_snapshots() {
        let c = Catalog::new();
        let t = DatasetSpec::higgs_like(50).build_table(1).unwrap();
        c.register_table("t", t);
        assert_eq!(c.table_version("t").unwrap(), 1);
        let pinned = c.snapshot("t").unwrap();
        let out = c.append_rows("t", probe_rows(3)).unwrap();
        assert_eq!(
            out,
            AppendOutcome {
                version: 2,
                rows: 3,
                recovered: 0,
                total_tuples: 53
            }
        );
        // The pinned snapshot is immutable: it still sees the old contents…
        assert_eq!(pinned.version(), 1);
        assert_eq!(pinned.table().num_tuples(), 50);
        // …while the latest snapshot sees the appended rows under a fresh
        // table id (block caches must never alias across versions).
        let latest = c.snapshot("t").unwrap();
        assert_eq!(latest.version(), 2);
        assert_eq!(latest.num_tuples(), 53);
        assert_ne!(
            latest.config().table_id,
            pinned.config().table_id,
            "published snapshot must get a fresh table id"
        );
        // snapshot_at reaches back through the retained chain.
        assert_eq!(c.snapshot_at("t", 1).unwrap().num_tuples(), 50);
        assert_eq!(c.snapshot_at("t", 2).unwrap().num_tuples(), 53);
        assert!(c.snapshot_at("t", 3).is_err());
        assert!(matches!(c.snapshot("nope"), Err(DbError::UnknownTable(_))));
    }

    #[test]
    fn append_invalidates_cached_hd_and_installs_writer_estimate() {
        let c = Catalog::new();
        let t = DatasetSpec::higgs_like(50).build_table(1).unwrap();
        let tid = t.config().table_id;
        c.register_table("t", t);
        c.cache_block_variance("t", tid, 0.7);
        assert_eq!(c.cached_block_variance("t", tid), Some(0.7));
        c.append_rows("t", probe_rows(4)).unwrap();
        // The sampled estimate for the old version no longer applies…
        assert_eq!(c.cached_block_variance("t", tid), None);
        // …and the writer's incremental estimate is cached for the new id.
        let new_id = c.snapshot("t").unwrap().config().table_id;
        let hd = c.cached_block_variance("t", new_id);
        assert!(hd.is_some(), "writer-fed ĥ_D should be cached on publish");
        assert!((0.0..=1.0).contains(&hd.unwrap()));
    }

    #[test]
    fn reregistration_bumps_version_and_drops_writer() {
        let c = Catalog::new();
        c.register_table("t", DatasetSpec::higgs_like(50).build_table(1).unwrap());
        c.append_rows("t", probe_rows(2)).unwrap();
        assert_eq!(c.table_version("t").unwrap(), 2);
        // RECLUSTER-style re-registration: new physical table, bumped
        // version, buffered writer discarded.
        c.register_table("t", DatasetSpec::higgs_like(60).build_table(1).unwrap());
        assert_eq!(c.table_version("t").unwrap(), 3);
        assert_eq!(c.snapshot("t").unwrap().num_tuples(), 60);
        let out = c.append_rows("t", probe_rows(1)).unwrap();
        assert_eq!(out.version, 4);
        assert_eq!(out.total_tuples, 61);
    }

    #[test]
    fn table_status_reports_version_blocks_tuples() {
        let c = Catalog::new();
        c.register_table("beta", DatasetSpec::higgs_like(50).build_table(1).unwrap());
        c.register_table("alpha", DatasetSpec::higgs_like(30).build_table(2).unwrap());
        c.append_rows("beta", probe_rows(2)).unwrap();
        let blocks_a = c.table("alpha").unwrap().num_blocks();
        let blocks_b = c.table("beta").unwrap().num_blocks();
        assert_eq!(
            c.table_status(),
            vec![
                format!("alpha v1 blocks={blocks_a} tuples=30"),
                format!("beta v2 blocks={blocks_b} tuples=52"),
            ]
        );
        // table_names stays bare — scripts that iterate names keep working.
        assert_eq!(c.table_names(), vec!["alpha", "beta"]);
    }

    #[test]
    fn wal_backed_appends_recover_after_restart() {
        let dir = std::env::temp_dir().join(format!(
            "corgi_catalog_wal_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let base = || DatasetSpec::higgs_like(50).build_table(1).unwrap();
        {
            let c = Catalog::new();
            c.set_table_wal_dir(&dir);
            c.register_table("t", base());
            c.append_rows("t", probe_rows(3)).unwrap();
        }
        // "Restart": a fresh catalog over the same WAL dir and base table.
        let c = Catalog::new();
        c.set_table_wal_dir(&dir);
        c.register_table("t", base());
        assert_eq!(c.recover_table_wal("t").unwrap(), 3);
        assert_eq!(c.snapshot("t").unwrap().num_tuples(), 53);
        assert_eq!(c.table_version("t").unwrap(), 2);
        // Idempotent: replaying again publishes nothing new.
        assert_eq!(c.recover_table_wal("t").unwrap(), 3);
        assert_eq!(c.table_version("t").unwrap(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_during_append_loses_only_the_statement() {
        use corgipile_storage::{sites, StorageError};
        let dir = std::env::temp_dir().join(format!(
            "corgi_catalog_crash_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let c = Catalog::new();
        c.set_table_wal_dir(&dir);
        c.register_table("t", DatasetSpec::higgs_like(50).build_table(1).unwrap());
        c.append_rows("t", probe_rows(2)).unwrap(); // acked
        c.set_append_faults(FaultPlan::new(7).with_crash_point(sites::TABLE_APPEND_ROWS, 1));
        let err = c.append_rows("t", probe_rows(4)).unwrap_err();
        assert!(matches!(
            err,
            DbError::Storage(StorageError::Crashed { .. })
        ));
        c.clear_append_faults();
        // The acked statement survives (it is already published, so the
        // re-opened writer skips its WAL rows); the crashed one is wholly
        // absent; new appends continue cleanly.
        let out = c.append_rows("t", probe_rows(1)).unwrap();
        assert_eq!(out.rows, 1);
        assert_eq!(out.recovered, 0);
        assert_eq!(out.total_tuples, 53);
        assert_eq!(out.version, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_table_ids_are_unique() {
        let c = Catalog::new();
        let a = c.fresh_table_id();
        let b = c.fresh_table_id();
        assert_ne!(a, b);
    }

    #[test]
    fn fresh_table_ids_are_unique_across_threads() {
        let c = std::sync::Arc::new(Catalog::new());
        let mut ids: Vec<u32> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let c = c.clone();
                    s.spawn(move || (0..100).map(|_| c.fresh_table_id()).collect::<Vec<_>>())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400, "concurrent ids must never collide");
    }

    #[test]
    fn catalog_is_shared_across_threads() {
        let c = std::sync::Arc::new(Catalog::new());
        std::thread::scope(|s| {
            let writer = c.clone();
            s.spawn(move || {
                let t = DatasetSpec::higgs_like(50).build_table(7).unwrap();
                writer.register_table("shared", t);
                writer.store_model(
                    "m",
                    StoredModel {
                        kind: ModelKind::Svm,
                        dim: 2,
                        params: vec![0.0; 3],
                        train_loss: 0.0,
                    },
                );
            })
            .join()
            .unwrap();
        });
        assert!(c.table("shared").is_ok());
        assert!(c.model("m").is_ok());
    }
}
