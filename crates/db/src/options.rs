//! Typed `WITH`-option registry.
//!
//! One declarative table ([`OPTIONS`]) lists every option the SQL surface
//! accepts — name, value type, rendered default, and which statements it
//! applies to (`TRAIN`, `PREDICT … ON`, `RECLUSTER`). Sessions validate
//! incoming parameter maps against the registry, so an unknown key fails
//! with the nearest valid name suggested, and `EXPLAIN` renders the
//! effective (post-default) option set from the same table — the parser,
//! the executor and the docs cannot drift apart.

use crate::error::DbError;
use crate::sql::ParamValue;
use std::collections::BTreeMap;

/// Value type of an option, used for documentation and EXPLAIN rendering.
/// Range/shape validation stays with the typed accessors on
/// [`QueryOptions`], which own the exact error strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptionType {
    /// Non-negative integer.
    Int,
    /// 0/1 switch.
    Flag,
    /// Floating point.
    Float,
    /// Quoted or bare text.
    Text,
}

/// Which statement a `WITH` clause belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Statement {
    /// `SELECT … TRAIN BY …`.
    Train,
    /// `PREDICT <model> ON <table>`.
    Predict,
    /// `RECLUSTER <table>`.
    Recluster,
}

impl Statement {
    fn applies(self, opt: &OptionSpec) -> bool {
        match self {
            Statement::Train => opt.train,
            Statement::Predict => opt.predict,
            Statement::Recluster => opt.recluster,
        }
    }
}

/// One registered option.
#[derive(Debug, Clone, Copy)]
pub struct OptionSpec {
    /// Key as written in the `WITH` clause.
    pub name: &'static str,
    /// Value type.
    pub ty: OptionType,
    /// Default as rendered in `EXPLAIN`; `None` means unset-by-default
    /// (the option only shows up when the query supplies it).
    pub default: Option<&'static str>,
    /// Accepted on `TRAIN`.
    pub train: bool,
    /// Accepted on `PREDICT … ON`.
    pub predict: bool,
    /// Accepted on `RECLUSTER`.
    pub recluster: bool,
}

const fn opt(
    name: &'static str,
    ty: OptionType,
    default: Option<&'static str>,
    train: bool,
    predict: bool,
    recluster: bool,
) -> OptionSpec {
    OptionSpec {
        name,
        ty,
        default,
        train,
        predict,
        recluster,
    }
}

/// The full registry, sorted by name so EXPLAIN output is deterministic.
pub const OPTIONS: &[OptionSpec] = &[
    opt(
        "batch_rows",
        OptionType::Int,
        Some("256"),
        false,
        true,
        false,
    ),
    opt("batch_size", OptionType::Int, Some("1"), true, false, false),
    opt("block_size", OptionType::Int, None, true, false, false),
    opt(
        "buffer_fraction",
        OptionType::Float,
        Some("0.10"),
        true,
        false,
        false,
    ),
    opt("checkpoint", OptionType::Text, None, true, false, false),
    opt("decay", OptionType::Float, Some("0.95"), true, false, false),
    opt(
        "double_buffer",
        OptionType::Flag,
        Some("1"),
        true,
        false,
        false,
    ),
    opt("durable", OptionType::Flag, Some("0"), true, false, false),
    opt("fuse", OptionType::Flag, Some("1"), true, true, false),
    opt(
        "halt_after_epoch",
        OptionType::Int,
        None,
        true,
        false,
        false,
    ),
    opt(
        "io_budget",
        OptionType::Float,
        Some("0.25"),
        true,
        false,
        true,
    ),
    opt("l2", OptionType::Float, Some("0"), true, false, false),
    opt(
        "learning_rate",
        OptionType::Float,
        Some("0.1"),
        true,
        false,
        false,
    ),
    opt(
        "max_epoch_num",
        OptionType::Int,
        Some("10"),
        true,
        false,
        false,
    ),
    opt(
        "max_retries",
        OptionType::Int,
        Some("4"),
        true,
        false,
        false,
    ),
    opt("model_name", OptionType::Text, None, true, false, false),
    opt(
        "on_fault",
        OptionType::Text,
        Some("fail"),
        true,
        false,
        false,
    ),
    opt("planner", OptionType::Flag, Some("1"), true, false, false),
    opt("pushdown", OptionType::Flag, Some("1"), true, false, false),
    // `TRAIN … CONTINUOUS` only: re-pin the latest snapshot every this
    // many epochs. Unset defaults to max_epoch_num (one pin per run).
    opt("refresh", OptionType::Int, None, true, false, false),
    opt(
        "report_metrics",
        OptionType::Flag,
        Some("0"),
        true,
        false,
        false,
    ),
    opt("resume", OptionType::Flag, Some("0"), true, false, false),
    opt("seed", OptionType::Int, Some("42"), true, false, true),
    opt(
        "shared_buffers",
        OptionType::Int,
        Some("0"),
        true,
        false,
        false,
    ),
    opt(
        "shared_scan",
        OptionType::Flag,
        Some("0"),
        false,
        true,
        false,
    ),
    opt("strategy", OptionType::Text, None, true, false, false),
];

/// Keys valid for a statement, in registry (alphabetical) order.
pub fn known_keys(stmt: Statement) -> Vec<&'static str> {
    OPTIONS
        .iter()
        .filter(|o| stmt.applies(o))
        .map(|o| o.name)
        .collect()
}

fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Build the error for an unknown key, suggesting the nearest valid key
/// when one is plausibly close (edit distance ≤ 3).
pub fn unknown_key(stmt: Statement, key: &str) -> DbError {
    let nearest = known_keys(stmt)
        .into_iter()
        .map(|k| (edit_distance(key, k), k))
        .min()
        .filter(|(d, _)| *d <= 3);
    DbError::BadParam(match nearest {
        Some((_, k)) => format!("unknown parameter {key} (did you mean {k}?)"),
        None => format!("unknown parameter {key}"),
    })
}

fn render(v: &ParamValue) -> String {
    match v {
        ParamValue::Number(n) => format!("{n}"),
        ParamValue::Text(s) => s.clone(),
        ParamValue::Bytes(b) => format!("{b}"),
    }
}

/// The `Options: …` line for EXPLAIN: every applicable option with its
/// effective value — explicit values win over defaults, unset-by-default
/// options are omitted unless the query supplies them.
pub fn effective_line(stmt: Statement, params: &BTreeMap<String, ParamValue>) -> String {
    let mut parts = Vec::new();
    for o in OPTIONS.iter().filter(|o| stmt.applies(o)) {
        let value = match params.get(o.name) {
            Some(v) => Some(render(v)),
            None => o.default.map(str::to_string),
        };
        if let Some(v) = value {
            parts.push(format!("{}={v}", o.name));
        }
    }
    format!("Options: {}", parts.join(" "))
}

/// A validated, typed view over a statement's `WITH` parameter map.
///
/// Construction rejects unknown keys; the accessors enforce value shapes
/// and own the user-facing error strings.
#[derive(Debug)]
pub struct QueryOptions<'a> {
    stmt: Statement,
    params: &'a BTreeMap<String, ParamValue>,
}

impl<'a> QueryOptions<'a> {
    /// Validate `params` against the registry for `stmt`.
    pub fn parse(
        stmt: Statement,
        params: &'a BTreeMap<String, ParamValue>,
    ) -> Result<Self, DbError> {
        for key in params.keys() {
            if !OPTIONS.iter().any(|o| stmt.applies(o) && o.name == key) {
                return Err(unknown_key(stmt, key));
            }
        }
        Ok(QueryOptions { stmt, params })
    }

    /// 0/1 switch.
    pub fn flag(&self, key: &str, default: bool) -> Result<bool, DbError> {
        match self.params.get(key) {
            None => Ok(default),
            Some(v) => match v.as_usize() {
                Some(0) => Ok(false),
                Some(1) => Ok(true),
                _ => Err(DbError::BadParam(format!("{key} must be 0 or 1"))),
            },
        }
    }

    /// Non-negative integer.
    pub fn nonneg_int(&self, key: &str, default: usize) -> Result<usize, DbError> {
        match self.params.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_usize()
                .ok_or_else(|| DbError::BadParam(format!("{key} must be a non-negative integer"))),
        }
    }

    /// Strictly positive integer.
    pub fn positive_int(&self, key: &str, default: usize) -> Result<usize, DbError> {
        match self.params.get(key) {
            None => Ok(default),
            Some(v) => match v.as_usize() {
                Some(n) if n > 0 => Ok(n),
                _ => Err(DbError::BadParam(format!(
                    "{key} must be a positive integer"
                ))),
            },
        }
    }

    /// Any numeric value.
    pub fn float(&self, key: &str, default: f64) -> Result<f64, DbError> {
        match self.params.get(key) {
            None => Ok(default),
            Some(v) => v
                .as_f64()
                .ok_or_else(|| DbError::BadParam(format!("{key} must be numeric"))),
        }
    }

    /// Numeric value in `(0, 1]` — buffer and I/O-budget fractions.
    pub fn fraction(&self, key: &str, default: f64) -> Result<f64, DbError> {
        let v = self.float(key, default)?;
        if v > 0.0 && v <= 1.0 {
            Ok(v)
        } else {
            Err(DbError::BadParam(format!("{key} must be in (0, 1]")))
        }
    }

    /// Text value, if present.
    pub fn text(&self, key: &str) -> Option<&'a str> {
        self.params.get(key).and_then(|v| v.as_text())
    }

    /// Whether the query set the key explicitly.
    pub fn is_set(&self, key: &str) -> bool {
        self.params.contains_key(key)
    }

    /// The EXPLAIN `Options:` line for this statement.
    pub fn line(&self) -> String {
        effective_line(self.stmt, self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(pairs: &[(&str, ParamValue)]) -> BTreeMap<String, ParamValue> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn registry_is_sorted_and_statement_scoped() {
        for pair in OPTIONS.windows(2) {
            assert!(pair[0].name < pair[1].name, "registry must stay sorted");
        }
        assert!(known_keys(Statement::Train).contains(&"planner"));
        assert!(known_keys(Statement::Predict).contains(&"batch_rows"));
        assert!(!known_keys(Statement::Predict).contains(&"planner"));
        assert_eq!(known_keys(Statement::Recluster), vec!["io_budget", "seed"]);
    }

    #[test]
    fn unknown_key_suggests_nearest() {
        let p = params(&[("buffer_fractoin", ParamValue::Number(0.2))]);
        let err = QueryOptions::parse(Statement::Train, &p).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("unknown parameter buffer_fractoin")
                && msg.contains("did you mean buffer_fraction?"),
            "got: {msg}"
        );
        // Far-away garbage gets no suggestion.
        let msg = unknown_key(Statement::Recluster, "zzzzqqqq").to_string();
        assert!(!msg.contains("did you mean"), "got: {msg}");
    }

    #[test]
    fn typed_accessors_enforce_shapes() {
        let p = params(&[
            ("fuse", ParamValue::Number(2.0)),
            ("seed", ParamValue::Number(7.0)),
            ("io_budget", ParamValue::Number(1.5)),
        ]);
        let opts = QueryOptions::parse(Statement::Train, &p).unwrap();
        assert_eq!(
            opts.flag("fuse", true).unwrap_err().to_string(),
            "bad parameter: fuse must be 0 or 1"
        );
        assert_eq!(opts.nonneg_int("seed", 42).unwrap(), 7);
        assert_eq!(
            opts.fraction("io_budget", 0.25).unwrap_err().to_string(),
            "bad parameter: io_budget must be in (0, 1]"
        );
        assert!(opts.is_set("seed") && !opts.is_set("decay"));
    }

    #[test]
    fn effective_line_merges_defaults_and_overrides() {
        let p = params(&[("batch_rows", ParamValue::Number(64.0))]);
        let line = effective_line(Statement::Predict, &p);
        assert_eq!(line, "Options: batch_rows=64 fuse=1 shared_scan=0");
    }
}
