//! Database errors.

use corgipile_storage::StorageError;
use std::fmt;

/// Errors from the SQL surface and executor.
///
/// Marked `#[non_exhaustive]`: downstream matches must include a wildcard
/// arm so new error variants can be added without a breaking release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DbError {
    /// Query text could not be parsed.
    Parse(String),
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Referenced model does not exist.
    UnknownModel(String),
    /// Unknown model kind in `TRAIN BY <kind>`.
    UnknownModelKind(String),
    /// Unknown strategy name.
    UnknownStrategy(String),
    /// Unknown or out-of-range column in a projection or predicate
    /// (detected at parse or logical-planning time, never at execution).
    UnknownColumn(String),
    /// Parameter error (bad name, type or value).
    BadParam(String),
    /// Checkpoint/resume failure (mismatched seed, shape, or optimizer).
    Checkpoint(String),
    /// Storage-layer failure.
    Storage(StorageError),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            DbError::UnknownModel(m) => write!(f, "unknown model: {m}"),
            DbError::UnknownModelKind(m) => write!(f, "unknown model kind: {m}"),
            DbError::UnknownStrategy(s) => write!(f, "unknown strategy: {s}"),
            DbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DbError::BadParam(m) => write!(f, "bad parameter: {m}"),
            DbError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            DbError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DbError::UnknownTable("foo".into())
            .to_string()
            .contains("foo"));
        assert!(DbError::Parse("x".into()).to_string().contains("parse"));
    }

    #[test]
    fn storage_errors_convert() {
        let e: DbError = StorageError::EmptyTable.into();
        assert!(matches!(e, DbError::Storage(_)));
    }
}
