//! Session: a connection to a [`Database`] that parses → plans → executes.
//!
//! A [`Session`] is a lightweight connection opened with
//! [`Database::connect`]: it borrows the engine's catalog and holds
//! per-connection handles onto the shared device and buffer pool, accepts
//! the SQL surface of §6, builds the corresponding physical plan, runs it,
//! and registers trained models:
//!
//! ```text
//! TRAIN BY … strategy='corgipile'  ⇒  SGD ← TupleShuffle ← BlockShuffle(random)
//! TRAIN BY … strategy='once'       ⇒  offline shuffle; SGD ← BlockShuffle(seq) over the copy
//! TRAIN BY … strategy='no'         ⇒  SGD ← BlockShuffle(seq)        (MADlib default)
//! TRAIN BY … strategy='block_only' ⇒  SGD ← BlockShuffle(random)
//! ```
//!
//! Sliding-Window and MRS are *not* offered in-DB — the paper could not
//! compare against them inside PostgreSQL either (Bismarck never released
//! MRS; §7.1.3) — they live in the library layer instead.
//!
//! Sessions are independent: each carries its own telemetry scope and its
//! own fault plan (see [`Session::inject_faults`]), so concurrent sessions
//! neither see each other's injected faults nor pollute each other's
//! `SHOW STATS`.

use crate::catalog::{Catalog, StoredModel};
use crate::database::Database;
use crate::error::DbError;
use crate::exec::{
    project_tuple, DbEpochRecord, ExecContext, FaultAction, OpStats, PredictOperator, SgdOperator,
};
use crate::options::{QueryOptions, Statement};
use crate::plan::{build_physical_with, BuildOptions, LogicalPlan, PredictPlanSpec, TrainPlanSpec};
use crate::serving::ServableModel;
use crate::sql::{parse, ParamValue, Predicate, Projection, Query, ShowTarget, StrategyKind};
use corgipile_ml::{accuracy, build_model, ModelKind, OptimizerKind, TrainOptions};
use corgipile_ml::{r_squared, ComputeCostModel, TrainCheckpoint};
use corgipile_shuffle::{block_variance_sampled, recluster_table, CostModel, StrategyParams};
use corgipile_storage::{
    BufferPool, DeviceHandle, FaultPlan, PoolHandle, RetryPolicy, SimDevice, Table, Telemetry,
    Tuple,
};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Arc;

/// Summary of a completed `TRAIN BY` query.
#[derive(Debug, Clone)]
pub struct DbTrainSummary {
    /// Name the model was stored under.
    pub model_name: String,
    /// Model kind trained.
    pub model_kind: ModelKind,
    /// Strategy used.
    pub strategy: String,
    /// Table snapshot version the training scan was pinned to (the last
    /// pin, for `TRAIN … CONTINUOUS`). Rerunning the same query against
    /// [`Catalog::snapshot_at`] of this version is bit-identical.
    pub snapshot_version: u64,
    /// One-off pre-shuffle cost, if any.
    pub setup_seconds: f64,
    /// Per-epoch records.
    pub epochs: Vec<DbEpochRecord>,
    /// Final accuracy (classifiers) or R² (regression) over the table.
    pub final_train_metric: f64,
    /// True if the run stopped early at `halt_after_epoch`.
    pub halted: bool,
    /// Per-operator actual execution statistics (root first), the data
    /// behind `EXPLAIN ANALYZE`.
    pub op_stats: Vec<OpStats>,
}

impl DbTrainSummary {
    /// Total simulated seconds including setup.
    pub fn total_seconds(&self) -> f64 {
        self.epochs
            .last()
            .map(|e| e.sim_seconds_end)
            .unwrap_or(self.setup_seconds)
    }

    /// All blocks skipped across epochs under `on_fault = 'skip'`
    /// (deduplicated, sorted).
    pub fn skipped_blocks(&self) -> Vec<usize> {
        let mut all: Vec<usize> = self
            .epochs
            .iter()
            .flat_map(|e| e.skipped_blocks.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

/// Options for [`Session::predict_batch`], the programmatic face of
/// `PREDICT <model> [VERSION n] ON <table> [WHERE …]`.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Explicit version pin; `None` serves the cache-active version.
    pub version: Option<u32>,
    /// Optional row predicate, lowered through the planner's pushdown so
    /// it is evaluated on the zero-copy block path before batching.
    pub filter: Option<Predicate>,
    /// Tuples per prediction batch.
    pub batch_rows: usize,
    /// Lower through the pipeline-fusion pass (`WITH fuse = 1`, the
    /// default). Off, the interpreted operator tree runs — the serving
    /// bit-identity oracle.
    pub fuse: bool,
    /// Route the sequential scan through the engine's shared buffer pool
    /// (`WITH shared_scan = 1`), so repeated PREDICT scans of the same
    /// table hit warm buffers instead of the device.
    pub shared_scan: bool,
}

impl Default for ServeOptions {
    /// Active version, no predicate, 256-tuple batches, fused lowering,
    /// private (unshared) scans.
    fn default() -> Self {
        ServeOptions {
            version: None,
            filter: None,
            batch_rows: 256,
            fuse: true,
            shared_scan: false,
        }
    }
}

/// Summary of one batched `PREDICT … ON …` run (the serving path).
#[derive(Debug, Clone)]
pub struct PredictSummary {
    /// Served model name.
    pub model_name: String,
    /// The version this run was pinned to — every prediction in
    /// `predictions` came from exactly this version, even if training
    /// published a newer one mid-scan.
    pub version: u32,
    /// Predicted labels in scan order (post-filter survivors only).
    pub predictions: Vec<f32>,
    /// Accuracy (classifiers) / R² (regression) against stored labels,
    /// `None` when nothing survived the filter.
    pub metric: Option<f64>,
    /// Tuples predicted.
    pub rows: u64,
    /// Prediction batches executed.
    pub batches: u64,
    /// Tuples dropped by the pushed-down predicate.
    pub rows_filtered: u64,
    /// True when the pin was served straight from the model cache (no
    /// store/catalog fallback instantiation).
    pub cache_hit: bool,
    /// Buffer-cache hit rate of the scan (hits / block reads, 0.0 when
    /// nothing was read). Rises above zero on repeat scans under
    /// `WITH shared_scan = 1`, when the shared pool serves warm blocks.
    pub scan_cache_hit_rate: f64,
    /// Simulated scan I/O seconds.
    pub io_seconds: f64,
    /// Simulated inference compute seconds.
    pub compute_seconds: f64,
    /// Wall-clock seconds per prediction batch (real latency; the
    /// simulated clock is `io_seconds + compute_seconds`).
    pub batch_wall_seconds: Vec<f64>,
    /// Per-operator actual statistics (EXPLAIN ANALYZE), root first.
    pub op_stats: Vec<OpStats>,
}

impl PredictSummary {
    /// Total simulated seconds for the run (scan I/O + inference compute).
    pub fn sim_seconds(&self) -> f64 {
        self.io_seconds + self.compute_seconds
    }

    /// Wall-clock per-batch latency quantile (`0.5` = p50, `0.99` = p99),
    /// by nearest-rank over the recorded batches; `None` before any batch.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        if self.batch_wall_seconds.is_empty() {
            return None;
        }
        let mut sorted = self.batch_wall_seconds.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(sorted[rank])
    }
}

/// Result of executing one query.
///
/// Marked `#[non_exhaustive]`: downstream matches must include a wildcard
/// arm so new result variants can be added without a breaking release.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum QueryResult {
    /// `TRAIN BY` outcome.
    Train(DbTrainSummary),
    /// `PREDICT BY` outcome.
    Predict {
        /// Predicted labels, in table order.
        predictions: Vec<f32>,
        /// Accuracy (classifiers) or R² (regression) against stored labels.
        metric: f64,
    },
    /// Batched `PREDICT … ON …` outcome (the serving path).
    Serve(PredictSummary),
    /// `EXPLAIN` output: one line per plan node, root first.
    Plan(Vec<String>),
    /// `SHOW TABLES` / `SHOW MODELS` output.
    Names(Vec<String>),
    /// `RECLUSTER` outcome: the bounded-I/O offline pass that backs the
    /// `corgi2` strategy, run as a standalone statement.
    Recluster {
        /// Table that was re-clustered (re-registered under its own name).
        table: String,
        /// Blocks rewritten by the bounded pass.
        blocks_rewritten: usize,
        /// Total blocks in the table.
        blocks_total: usize,
        /// Simulated I/O seconds the pass cost.
        io_seconds: f64,
        /// The declared budget in I/O seconds (`io_budget` × full shuffle).
        budget_io: f64,
        /// What a full offline shuffle would have cost, for comparison.
        full_shuffle_io: f64,
    },
    /// `INSERT INTO … VALUES …` outcome: the rows went through the
    /// table's buffered append writer (journaled as one fsynced WAL frame
    /// on durable engines) and a new snapshot version was published.
    Insert {
        /// Table appended into.
        table: String,
        /// Rows this statement appended.
        rows: u64,
        /// The snapshot version the append published.
        version: u64,
        /// Total tuples in the published snapshot.
        total_tuples: u64,
    },
}

/// A connection to a [`Database`].
///
/// Holds the engine behind an `Arc` plus this connection's device and pool
/// handles: queries executed here account their I/O, faults and telemetry
/// to this session, while the blocks they fault into `shared_buffers`
/// become cache hits for every other session.
pub struct Session {
    db: Arc<Database>,
    dev: DeviceHandle,
    pool: PoolHandle,
    compute: ComputeCostModel,
    telemetry: Telemetry,
    /// Registry stashed by `set_telemetry_enabled(false)`, restored on
    /// re-enable so accumulated metrics survive an opt-out round trip.
    stashed_telemetry: Option<Telemetry>,
    /// Invoked with the 1-based chunk index before every
    /// `TRAIN … CONTINUOUS` snapshot re-pin (see
    /// [`Session::set_refresh_hook`]).
    refresh_hook: Option<Box<dyn FnMut(usize) + Send>>,
}

impl Session {
    /// Open a connection over a shared engine (use [`Database::connect`]).
    /// Telemetry is on by default — the instruments are bound once at
    /// setup, so the per-tuple hot path stays allocation-free either way;
    /// use [`Session::set_telemetry_enabled`] to opt out entirely.
    pub(crate) fn over(db: Arc<Database>) -> Self {
        let telemetry = Telemetry::enabled();
        let mut dev = db.device().handle();
        dev.set_telemetry(telemetry.clone());
        let pool = db.pool().handle();
        let compute = db.compute();
        Session {
            db,
            dev,
            pool,
            compute,
            telemetry,
            stashed_telemetry: None,
            refresh_hook: None,
        }
    }

    /// Install a hook run right before every `TRAIN … CONTINUOUS`
    /// snapshot re-pin, with the 1-based index of the chunk about to
    /// start. A deterministic stand-in for a concurrent writer: the hook
    /// can append through [`Database::catalog`] (capture the `Arc`
    /// returned by [`Session::database`]) and the next chunk trains over
    /// the result — tests and benches use it to replay the exact same
    /// drift schedule across runs.
    pub fn set_refresh_hook(&mut self, hook: impl FnMut(usize) + Send + 'static) {
        self.refresh_hook = Some(Box::new(hook));
    }

    /// The engine this session is connected to.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The session's observability handle (for `Telemetry::json`,
    /// `Telemetry::prometheus`, or programmatic snapshots).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Enable or disable telemetry. Disabled handles make every emission a
    /// no-op; `SHOW STATS` then reports nothing. Disabling stashes the live
    /// registry and re-enabling restores it, so metrics accumulated before
    /// an opt-out survive the round trip.
    pub fn set_telemetry_enabled(&mut self, enabled: bool) {
        if enabled == self.telemetry.is_enabled() {
            return;
        }
        self.telemetry = if enabled {
            self.stashed_telemetry
                .take()
                .unwrap_or_else(Telemetry::enabled)
        } else {
            self.stashed_telemetry = Some(self.telemetry.clone());
            Telemetry::disabled()
        };
        self.dev.set_telemetry(self.telemetry.clone());
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Catalog {
        self.db.catalog()
    }

    /// This connection's device handle (for I/O statistics: the handle's
    /// stats cover exactly the I/O this session caused).
    pub fn device(&self) -> &DeviceHandle {
        &self.dev
    }

    /// Mutable access to this connection's device handle (e.g. to attach a
    /// fault plan). The handle keeps the session's telemetry bound to every
    /// access, so mutating through it cannot bypass the session scope.
    pub fn device_mut(&mut self) -> &mut DeviceHandle {
        &mut self.dev
    }

    /// Attach a [`FaultPlan`] to this connection: subsequent queries *on
    /// this session* see the injected faults on their block reads; other
    /// sessions on the same engine are unaffected.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.dev.set_fault_plan(plan);
    }

    /// Register a table in the shared catalog.
    pub fn register_table(&self, name: impl Into<String>, table: Table) {
        self.db.register_table(name, table);
    }

    /// Parse and execute one query.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        self.run(parse(sql)?)
    }

    fn run(&mut self, query: Query) -> Result<QueryResult, DbError> {
        match query {
            Query::Train {
                table,
                model,
                projection,
                filter,
                strategy,
                continuous,
                params,
            } => self.train(
                &table, &model, projection, filter, strategy, continuous, params,
            ),
            Query::Insert { table, rows } => self.insert(&table, rows),
            Query::Predict { table, model } => self.predict(&table, &model),
            Query::PredictServe {
                model,
                version,
                table,
                filter,
                params,
            } => {
                let defaults = ServeOptions::default();
                let q = QueryOptions::parse(Statement::Predict, &params)?;
                let opts = ServeOptions {
                    version,
                    filter,
                    batch_rows: q.positive_int("batch_rows", defaults.batch_rows)?,
                    fuse: q.flag("fuse", defaults.fuse)?,
                    shared_scan: q.flag("shared_scan", defaults.shared_scan)?,
                };
                Ok(QueryResult::Serve(
                    self.predict_batch(&table, &model, opts)?,
                ))
            }
            Query::Recluster { table, params } => self.recluster(&table, &params),
            Query::LoadModel {
                name,
                version,
                activate,
            } => self.load_model(&name, version, activate),
            Query::Explain(inner) => self.explain(*inner),
            Query::ExplainAnalyze(inner) => self.explain_analyze(*inner),
            Query::Show { what } => Ok(match what {
                ShowTarget::Tables => QueryResult::Names(self.catalog().table_status()),
                ShowTarget::Models => QueryResult::Names(self.render_models()),
                ShowTarget::Stats => QueryResult::Plan(self.render_stats()),
            }),
        }
    }

    /// `SHOW MODELS`: catalog names, annotated with durable version /
    /// epoch / source when the engine has a model store tracking them, and
    /// a `*` on the version the serving cache currently routes `PREDICT`
    /// traffic to. When the cache serves a *different* version than the
    /// store's latest, the line says so (`active=vN`). Models neither
    /// durably stored nor cached stay bare.
    fn render_models(&self) -> Vec<String> {
        let cache = self.db.model_cache();
        self.catalog()
            .model_names()
            .into_iter()
            .map(|n| {
                let active = cache.active_version(&n);
                match self.db.model_store().and_then(|s| s.latest(&n)) {
                    Some(r) => {
                        let star = if active == Some(r.version) { "*" } else { "" };
                        let mut line = format!(
                            "{n} v{}{star} epoch={} source={}",
                            r.version, r.epoch, r.source
                        );
                        if let Some(a) = active.filter(|a| *a != r.version) {
                            line.push_str(&format!(" active=v{a}"));
                        }
                        line
                    }
                    None => match active {
                        Some(a) => format!("{n} v{a}*"),
                        None => n,
                    },
                }
            })
            .collect()
    }

    /// `LOAD MODEL <name> [VERSION n] [AS ACTIVE]`: re-register a durable
    /// version of `name` into the catalog (e.g. after another session
    /// overwrote the in-memory object with a non-durable retrain) and stash
    /// it in the serving cache. Without `AS ACTIVE` the cache's routing is
    /// untouched — in-flight and future `PREDICT` traffic keeps its active
    /// version; `AS ACTIVE` promotes the loaded version (the explicit
    /// rollback / rollforward path).
    fn load_model(
        &mut self,
        name: &str,
        version: Option<u32>,
        activate: bool,
    ) -> Result<QueryResult, DbError> {
        let store = self.db.model_store().ok_or_else(|| {
            DbError::BadParam(
                "LOAD MODEL requires an engine opened with a model store \
                 (Database::with_model_store)"
                    .into(),
            )
        })?;
        let rec = match version {
            None => store
                .latest(name)
                .ok_or_else(|| DbError::UnknownModel(name.to_string()))?,
            Some(v) => store
                .version(name, v)
                .ok_or_else(|| DbError::UnknownModel(format!("{name} version {v}")))?,
        };
        self.catalog().store_model(name, rec.stored.clone());
        let cache = self.db.model_cache();
        cache.publish(
            ServableModel::new(name, rec.version, rec.stored.clone()),
            false,
        );
        if activate {
            cache.promote(name, rec.version);
        }
        let mark = if activate { " (active)" } else { "" };
        Ok(QueryResult::Names(vec![format!(
            "{name} v{} epoch={} source={}{mark}",
            rec.version, rec.epoch, rec.source
        )]))
    }

    /// `SHOW STATS`: one line per telemetry instrument, sorted by name.
    fn render_stats(&self) -> Vec<String> {
        let snap = self.telemetry.snapshot();
        let mut lines = Vec::new();
        for (name, v) in &snap.metrics.counters {
            lines.push(format!("counter {name} = {v}"));
        }
        for (name, v) in &snap.metrics.gauges {
            lines.push(format!("gauge {name} = {v:.6}"));
        }
        for (name, h) in &snap.metrics.histograms {
            lines.push(format!(
                "histogram {name}: count={} mean={:.6} min={:.6} max={:.6}",
                h.count,
                h.mean(),
                h.min,
                h.max
            ));
        }
        lines.push(format!(
            "events {} recorded, {} dropped",
            snap.events.len(),
            snap.dropped_events
        ));
        lines
    }

    /// `EXPLAIN ANALYZE`: actually execute the training query, then render
    /// per-operator actual statistics plus device I/O and training totals,
    /// PostgreSQL-style. Non-training queries fall back to plain `EXPLAIN`.
    fn explain_analyze(&mut self, query: Query) -> Result<QueryResult, DbError> {
        match query {
            q @ Query::Train { .. } => {
                let durable = match &q {
                    Query::Train { params, .. } => {
                        params
                            .get("durable")
                            .and_then(|v| v.as_usize())
                            .unwrap_or(0)
                            != 0
                    }
                    _ => false,
                };
                let wal_before = if durable {
                    self.db.model_store().map(|s| s.stats())
                } else {
                    None
                };
                let before = self.dev.stats().clone();
                let summary = match self.run(q)? {
                    QueryResult::Train(t) => t,
                    _ => unreachable!("Train queries return Train results"),
                };
                let after = self.dev.stats().clone();
                let mut lines: Vec<String> = summary
                    .op_stats
                    .iter()
                    .flat_map(|s| s.render_lines())
                    .collect();
                let reads = after.total_reads() - before.total_reads();
                let hits = after.cache_hits - before.cache_hits;
                lines.push(format!(
                    "I/O: reads={} cache_hit_rate={:.1}% device_bytes={} retries={} \
                     faults={} io={:.6}s",
                    reads,
                    if reads == 0 {
                        0.0
                    } else {
                        100.0 * hits as f64 / reads as f64
                    },
                    after.device_bytes - before.device_bytes,
                    after.retries - before.retries,
                    after.faults - before.faults,
                    after.io_seconds - before.io_seconds,
                ));
                lines.push(format!(
                    "Training: epochs={} total={:.6}s final_loss={:.6} strategy={}",
                    summary.epochs.len(),
                    summary.total_seconds(),
                    summary.epochs.last().map(|e| e.train_loss).unwrap_or(0.0),
                    summary.strategy,
                ));
                let skipped = summary.skipped_blocks();
                if !skipped.is_empty() {
                    lines.push(format!("Skipped blocks: {skipped:?}"));
                }
                if let (Some(before), Some(store)) = (wal_before, self.db.model_store()) {
                    let s = store.stats();
                    lines.push(format!(
                        "WAL: appends={} bytes={} fsyncs={} compactions={}",
                        s.appends - before.appends,
                        s.appended_bytes - before.appended_bytes,
                        s.fsyncs - before.fsyncs,
                        s.compactions - before.compactions,
                    ));
                }
                Ok(QueryResult::Plan(lines))
            }
            q @ Query::PredictServe { .. } => {
                let summary = match self.run(q)? {
                    QueryResult::Serve(s) => s,
                    _ => unreachable!("PredictServe queries return Serve results"),
                };
                let mut lines: Vec<String> = summary
                    .op_stats
                    .iter()
                    .flat_map(|s| s.render_lines())
                    .collect();
                lines.push(format!(
                    "Serving: model={} v{} rows={} batches={} cache={} \
                     scan_hit_rate={:.1}% io={:.6}s compute={:.6}s",
                    summary.model_name,
                    summary.version,
                    summary.rows,
                    summary.batches,
                    if summary.cache_hit { "hit" } else { "miss" },
                    100.0 * summary.scan_cache_hit_rate,
                    summary.io_seconds,
                    summary.compute_seconds,
                ));
                Ok(QueryResult::Plan(lines))
            }
            other => self.explain(other),
        }
    }

    /// Render the plan a query would execute, PostgreSQL EXPLAIN-style
    /// (root first), without executing it. The logical plan is built and
    /// validated exactly as `train` would — unknown columns or ill-typed
    /// predicates fail here with the same structured [`DbError`].
    fn explain(&mut self, query: Query) -> Result<QueryResult, DbError> {
        match query {
            Query::Train {
                table,
                model,
                projection,
                filter,
                strategy,
                continuous,
                params,
            } => {
                let snap = self.catalog().snapshot(&table)?;
                let t = snap.table();
                let kind = self.resolve_model_kind(&model, t)?;
                let opts = QueryOptions::parse(Statement::Train, &params)?;
                let epochs = opts.nonneg_int("max_epoch_num", 10)?;
                let refresh = opts.positive_int("refresh", epochs.max(1))?;
                if opts.is_set("refresh") && !continuous {
                    return Err(DbError::BadParam(
                        "refresh requires TRAIN … CONTINUOUS".into(),
                    ));
                }
                let buffer_fraction = opts.fraction("buffer_fraction", 0.10)?;
                let io_budget = opts.fraction("io_budget", StrategyParams::default().io_budget)?;
                let seed = opts.nonneg_int("seed", 42)? as u64;
                let pushdown = opts.flag("pushdown", true)?;
                let fuse = opts.flag("fuse", true)?;
                let planner = opts.flag("planner", true)?;
                let mut sparams = StrategyParams::default()
                    .with_buffer_fraction(buffer_fraction)
                    .with_seed(seed)
                    .with_io_budget(io_budget);
                // Resolve the strategy exactly as `train` would, and render
                // the planner's evidence when the choice was cost-based.
                let mut planner_line = None;
                let strategy = match strategy {
                    Some(kind) => kind,
                    None if !planner => StrategyKind::CorgiPile,
                    None => {
                        let hd = self.block_variance(&table, t, seed, true);
                        let profile = self.dev.profile();
                        let pick = CostModel::new(epochs).choose(t, &profile, &sparams, hd);
                        if !opts.is_set("buffer_fraction") {
                            sparams = sparams.with_buffer_fraction(pick.buffer_fraction);
                        }
                        planner_line = Some(format!(
                            "Planner: strategy={} h_d={:.3} buffer_fraction={:.2} \
                             predicted_epoch_io={:.6}s setup_io={:.6}s",
                            pick.kind.name(),
                            pick.hd,
                            pick.buffer_fraction,
                            pick.predicted_epoch_io,
                            pick.predicted_setup_io,
                        ));
                        pick.kind
                    }
                };
                let spec = TrainPlanSpec {
                    table,
                    model: kind.name().to_string(),
                    epochs,
                    strategy,
                    projection,
                    filter,
                    buffer_blocks: sparams.buffer_blocks(t),
                };
                let mut plan = LogicalPlan::build(&spec, t)?;
                if pushdown {
                    plan = plan.push_down();
                }
                let mut lines = if fuse {
                    plan.explain_lines_fused()
                } else {
                    plan.explain_lines()
                };
                lines.push(format!("Snapshot: version={}", snap.version()));
                if continuous {
                    lines.push(format!(
                        "Continuous: refresh={refresh} (re-pin latest snapshot every \
                         {refresh} epochs)"
                    ));
                }
                lines.push(opts.line());
                if let Some(line) = planner_line {
                    lines.push(line);
                }
                Ok(QueryResult::Plan(lines))
            }
            Query::Insert { table, rows } => {
                let version = self.catalog().table_version(&table)?;
                Ok(QueryResult::Plan(vec![format!(
                    "Insert on {table} (rows={}, current snapshot v{version})",
                    rows.len()
                )]))
            }
            Query::Predict { table, model } => {
                let t = self.catalog().table(&table)?;
                self.catalog().model(&model)?;
                Ok(QueryResult::Plan(vec![
                    format!("Predict (model={model})"),
                    format!("  -> SeqScan on {table} ({} tuples)", t.num_tuples()),
                ]))
            }
            Query::PredictServe {
                model,
                version,
                table,
                filter,
                params,
            } => {
                let t = self.catalog().table(&table)?;
                self.servable_exists(&model, version)?;
                let batch_rows = match params.get("batch_rows") {
                    None => ServeOptions::default().batch_rows,
                    Some(v) => v.as_usize().filter(|n| *n > 0).ok_or_else(|| {
                        DbError::BadParam("batch_rows must be a positive integer".into())
                    })?,
                };
                let spec = PredictPlanSpec {
                    table,
                    model,
                    version,
                    filter,
                    batch_rows,
                };
                let fuse = params.get("fuse").and_then(|v| v.as_usize()).unwrap_or(1) != 0;
                let plan = LogicalPlan::build_predict(&spec, &t)?.push_down();
                Ok(QueryResult::Plan(if fuse {
                    plan.explain_lines_fused()
                } else {
                    plan.explain_lines()
                }))
            }
            other => self.run(other),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn train(
        &mut self,
        table_name: &str,
        model_name_raw: &str,
        projection: Projection,
        filter: Option<Predicate>,
        strategy: Option<StrategyKind>,
        continuous: bool,
        params: BTreeMap<String, ParamValue>,
    ) -> Result<QueryResult, DbError> {
        if continuous {
            return self.train_continuous(
                table_name,
                model_name_raw,
                projection,
                filter,
                strategy,
                params,
            );
        }
        // Pin the snapshot before anything else: every block this query
        // reads comes from exactly this version, no matter what concurrent
        // INSERTs publish while it runs.
        let snapshot = self.catalog().snapshot(table_name)?;
        let snapshot_version = snapshot.version();
        let mut table = snapshot.into_table();

        // --- Parameters (validated against the typed option registry) ---
        let opts = QueryOptions::parse(Statement::Train, &params)?;
        if opts.is_set("refresh") {
            return Err(DbError::BadParam(
                "refresh requires TRAIN … CONTINUOUS".into(),
            ));
        }
        let learning_rate = opts.float("learning_rate", 0.1)? as f32;
        let decay = opts.float("decay", 0.95)? as f32;
        let epochs = opts.nonneg_int("max_epoch_num", 10)?;
        let buffer_fraction = opts.fraction("buffer_fraction", 0.10)?;
        let io_budget = opts.fraction("io_budget", StrategyParams::default().io_budget)?;
        let batch_size = opts.nonneg_int("batch_size", 1)?.max(1);
        let seed = opts.nonneg_int("seed", 42)? as u64;
        let double_buffer = opts.flag("double_buffer", true)?;
        let l2 = opts.float("l2", 0.0)? as f32;
        if l2 < 0.0 {
            return Err(DbError::BadParam("l2 must be non-negative".into()));
        }
        let shared_buffers = opts.nonneg_int("shared_buffers", 0)?;
        let report_metrics = opts.flag("report_metrics", false)?;
        let planner = opts.flag("planner", true)?;
        let max_retries = opts.nonneg_int("max_retries", 4)? as u32;
        let on_fault = match params.get("on_fault") {
            None => FaultAction::Fail,
            Some(v) => match v.as_text() {
                Some("fail") => FaultAction::Fail,
                Some("skip") => FaultAction::SkipBlock,
                _ => {
                    return Err(DbError::BadParam(
                        "on_fault must be 'fail' or 'skip'".into(),
                    ))
                }
            },
        };
        let checkpoint_path = match params.get("checkpoint") {
            None => None,
            Some(v) => Some(PathBuf::from(v.as_text().ok_or_else(|| {
                DbError::BadParam("checkpoint must be a path string".into())
            })?)),
        };
        let resume = opts.flag("resume", false)?;
        if resume && checkpoint_path.is_none() {
            return Err(DbError::BadParam(
                "resume = 1 requires checkpoint = '<path>'".into(),
            ));
        }
        let halt_after_epoch = match params.get("halt_after_epoch") {
            None => None,
            Some(v) => Some(v.as_usize().ok_or_else(|| {
                DbError::BadParam("halt_after_epoch must be a non-negative integer".into())
            })?),
        };
        let durable = opts.flag("durable", false)?;
        let pushdown = opts.flag("pushdown", true)?;
        let fuse = opts.flag("fuse", true)?;
        let rechunked = params.contains_key("block_size");
        if let Some(bs) = params.get("block_size") {
            let bytes = bs
                .as_usize()
                .ok_or_else(|| DbError::BadParam("block_size must be a byte size".into()))?;
            table = Arc::new(table.rechunk(bytes)?);
        }

        // --- Logical plan (validates columns against the catalog) -------
        let kind = self.resolve_model_kind(model_name_raw, &table)?;
        let mut sparams = StrategyParams::default()
            .with_buffer_fraction(buffer_fraction)
            .with_seed(seed)
            .with_io_budget(io_budget);

        // --- Cost-based strategy planning --------------------------------
        // A query that names a strategy gets exactly that strategy;
        // `planner = 0` pins the historical default (plain CorgiPile), the
        // A/B oracle for the chooser. Otherwise the cost model combines the
        // (cached) block-variance estimate ĥ_D with the device profile and
        // picks both the strategy and its buffer fraction — an explicit
        // `buffer_fraction` parameter stays authoritative.
        let strategy = match strategy {
            Some(kind) => kind,
            None if !planner => StrategyKind::CorgiPile,
            None => {
                let hd = self.block_variance(table_name, &table, seed, !rechunked);
                let profile = self.dev.profile();
                let pick = CostModel::new(epochs).choose(&table, &profile, &sparams, hd);
                if !opts.is_set("buffer_fraction") {
                    sparams = sparams.with_buffer_fraction(pick.buffer_fraction);
                }
                pick.kind
            }
        };
        let spec = TrainPlanSpec {
            table: table_name.to_string(),
            model: kind.name().to_string(),
            epochs,
            strategy,
            projection: projection.clone(),
            filter: filter.clone(),
            buffer_blocks: sparams.buffer_blocks(&table),
        };
        let mut plan = LogicalPlan::build(&spec, &table)?;
        if pushdown {
            plan = plan.push_down();
        }

        // --- Model ------------------------------------------------------
        let dim_all = table.get_tuple(0)?.features.dim();
        let projected = projection.feature_indices();
        let dim = projected.as_ref().map(|c| c.len()).unwrap_or(dim_all);
        let model = build_model(&kind, dim, seed);
        let optimizer = OptimizerKind::Sgd {
            lr0: learning_rate,
            decay,
        }
        .build();
        let options = TrainOptions {
            batch_size,
            clip_norm: 0.0,
            l2,
        };

        // --- Physical plan (single construction site: plan.rs) ----------
        let catalog = self.db.catalog();
        let physical = build_physical_with(
            &plan,
            &table,
            table_name,
            &sparams,
            seed,
            &mut self.dev,
            catalog,
            BuildOptions {
                fuse,
                shared_scan: false,
            },
        )?;
        let setup_seconds = physical.setup_seconds;

        let mut sgd = SgdOperator::new(
            physical.child,
            model,
            optimizer,
            options,
            self.compute,
            epochs,
            double_buffer,
        );
        sgd.setup_seconds = setup_seconds;
        sgd.fused = physical.fused;
        // Evaluation sees exactly what training saw: the filtered,
        // projected tuple set.
        let eval: Arc<Vec<Tuple>> = {
            let all = table.all_tuples();
            if filter.is_some() || projected.is_some() {
                Arc::new(
                    all.iter()
                        .filter(|t| filter.as_ref().is_none_or(|p| p.matches(t)))
                        .map(|t| match &projected {
                            Some(cols) => project_tuple(t, cols),
                            None => t.clone(),
                        })
                        .collect(),
                )
            } else {
                Arc::new(all)
            }
        };
        if report_metrics {
            sgd.eval_each_epoch = Some(eval.clone());
        }
        sgd.checkpoint_seed = seed;
        sgd.halt_after_epoch = halt_after_epoch;
        if resume {
            let path = checkpoint_path.as_ref().expect("validated above");
            sgd.resume_from = Some(TrainCheckpoint::load(path)?);
        }
        sgd.checkpoint_path = checkpoint_path;

        // --- Durable training (WAL-backed model store) -------------------
        let stored_name = params
            .get("model_name")
            .and_then(|v| v.as_text())
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("{table_name}_{}", kind.name()));
        let mut durable_store = None;
        let mut durable_version = None;
        if durable {
            let store = self.db.model_store().cloned().ok_or_else(|| {
                DbError::BadParam(
                    "durable = 1 requires an engine opened with a model store \
                     (Database::with_model_store)"
                        .into(),
                )
            })?;
            // Auto-resume: the latest durable version of this name continues
            // where it left off iff it matches this query (same seed, source
            // table and model shape) and is unfinished; anything else trains
            // a fresh version. An explicit `resume = 1` checkpoint file wins
            // over the store's record.
            let mut version = store.next_version(&stored_name);
            if !resume {
                if let Some(rec) = store.latest(&stored_name) {
                    let resumable = rec.checkpoint.seed == seed
                        && rec.source == table_name
                        && rec.stored.kind == kind
                        && rec.stored.dim == dim
                        && (rec.epoch as usize) < epochs;
                    if resumable {
                        sgd.resume_from = Some(rec.checkpoint.clone());
                        version = rec.version;
                    }
                }
            }
            durable_version = Some(version);
            let sink_store = store.clone();
            let sink_name = stored_name.clone();
            let sink_source = table_name.to_string();
            let sink_kind = kind.clone();
            sgd.checkpoint_sink = Some(Box::new(move |ck, epoch_loss| {
                sink_store.record_checkpoint(
                    &sink_name,
                    &sink_source,
                    version,
                    StoredModel {
                        kind: sink_kind.clone(),
                        dim,
                        params: ck.model_params.clone(),
                        train_loss: epoch_loss,
                    },
                    ck.clone(),
                )
            }));
            durable_store = Some(store);
        }
        let wal_before = durable_store.as_ref().map(|s| s.stats());
        // Pool choice: an explicit `shared_buffers` parameter keeps the old
        // per-query private pool; otherwise the engine's shared pool serves
        // the query whenever the engine has one configured.
        let mut private_pool = if shared_buffers > 0 {
            let mut p = PoolHandle::private(BufferPool::new(shared_buffers));
            p.set_telemetry(&self.telemetry);
            Some(p)
        } else {
            None
        };
        let mut ctx = ExecContext::new(&mut self.dev);
        ctx.pool = match private_pool.as_mut() {
            Some(p) => Some(p),
            None if self.pool.capacity() > 0 => Some(&mut self.pool),
            None => None,
        };
        ctx.retry = RetryPolicy::with_max_retries(max_retries);
        ctx.on_fault = on_fault;
        let result = sgd.execute(&mut ctx)?;

        // Durability cost is observable per session: the WAL work this
        // query caused, mirrored as `storage.wal.*` counters (the same
        // numbers EXPLAIN ANALYZE renders on its WAL line).
        if let (Some(store), Some(before)) = (&durable_store, wal_before) {
            let s = store.stats();
            self.telemetry
                .counter("storage.wal.appends")
                .add(s.appends - before.appends);
            self.telemetry
                .counter("storage.wal.appended_bytes")
                .add(s.appended_bytes - before.appended_bytes);
            self.telemetry
                .counter("storage.wal.fsyncs")
                .add(s.fsyncs - before.fsyncs);
            self.telemetry
                .counter("storage.wal.compactions")
                .add(s.compactions - before.compactions);
        }

        // Selectivity is observable even when telemetry consumers never
        // look at op stats: total rows the scan's fused predicate dropped.
        let filtered: u64 = result.op_stats.iter().map(|s| s.rows_filtered).sum();
        if filtered > 0 {
            self.telemetry
                .counter("db.scan.rows_filtered")
                .add(filtered);
        }

        // --- Evaluate & store --------------------------------------------
        let final_metric = if result.model.is_classifier() {
            accuracy(result.model.as_ref(), eval.iter())
        } else {
            r_squared(result.model.as_ref(), eval.iter())
        };
        let train_loss = result.epochs.last().map(|e| e.train_loss).unwrap_or(0.0);
        let stored = StoredModel {
            kind: kind.clone(),
            dim,
            params: result.model.params().to_vec(),
            train_loss,
        };
        self.catalog()
            .store_model(stored_name.clone(), stored.clone());
        // Hot-reload: every completed TRAIN publishes its result to the
        // serving cache as the new active version. In-flight PREDICT
        // batches finish on the version they pinned; the next pin serves
        // this one. Durable runs reuse their WAL version number so the
        // cache, store and SHOW MODELS agree.
        let cache = self.db.model_cache();
        let version = durable_version.unwrap_or_else(|| cache.next_version(&stored_name));
        cache.publish(ServableModel::new(&stored_name, version, stored), true);
        Ok(QueryResult::Train(DbTrainSummary {
            model_name: stored_name,
            model_kind: kind,
            strategy: strategy.name().to_string(),
            snapshot_version,
            setup_seconds,
            epochs: result.epochs,
            final_train_metric: final_metric,
            halted: result.halted,
            op_stats: result.op_stats,
        }))
    }

    /// `INSERT INTO <table> VALUES (…), …`: append through the catalog's
    /// buffered writer. Each row is `feature…, label`; sequence ids are
    /// assigned by the writer. On durable engines the whole statement is
    /// journaled as one fsynced table-WAL frame before it is acknowledged,
    /// and the publish invalidates the planner's cached ĥ_D exactly like
    /// `RECLUSTER` does.
    fn insert(&mut self, table_name: &str, rows: Vec<Vec<f64>>) -> Result<QueryResult, DbError> {
        let table = self.catalog().table(table_name)?;
        let dim = table.get_tuple(0)?.features.dim();
        let tuples: Vec<Tuple> = rows
            .into_iter()
            .map(|r| {
                let (label, features) = r.split_last().expect("the parser requires >= 2 values");
                if features.len() != dim {
                    return Err(DbError::BadParam(format!(
                        "INSERT row has {} features, table {table_name} stores {dim}",
                        features.len()
                    )));
                }
                Ok(Tuple::dense(
                    0, // overwritten: the append writer assigns sequence ids
                    features.iter().map(|v| *v as f32).collect(),
                    *label as f32,
                ))
            })
            .collect::<Result<_, DbError>>()?;
        let out = self.catalog().append_rows(table_name, tuples)?;
        self.telemetry.counter("db.insert.rows").add(out.rows);
        if out.recovered > 0 {
            self.telemetry
                .counter("db.insert.recovered_rows")
                .add(out.recovered);
        }
        Ok(QueryResult::Insert {
            table: table_name.to_string(),
            rows: out.rows,
            version: out.version,
            total_tuples: out.total_tuples,
        })
    }

    /// `TRAIN … CONTINUOUS`: chunked training over the snapshot chain.
    ///
    /// The run splits its `max_epoch_num` epochs into chunks of `refresh`
    /// epochs. Each chunk pins the *latest* snapshot at its start,
    /// rebuilds the physical plan over it, and resumes the model from the
    /// previous chunk's checkpoint — the same epoch-replay resume the
    /// durable store uses — so every individual scan is bit-reproducible
    /// on its pinned version while appended data is picked up at epoch
    /// granularity. Over a table that never changes, the chunked run is
    /// bit-identical to the equivalent plain `TRAIN`.
    ///
    /// The strategy (and the planner's buffer fraction) is resolved once,
    /// on the first pinned snapshot, and held for the whole run: a
    /// drifting table must not flip the access path mid-model.
    fn train_continuous(
        &mut self,
        table_name: &str,
        model_name_raw: &str,
        projection: Projection,
        filter: Option<Predicate>,
        strategy: Option<StrategyKind>,
        params: BTreeMap<String, ParamValue>,
    ) -> Result<QueryResult, DbError> {
        let opts = QueryOptions::parse(Statement::Train, &params)?;
        // Checkpoint/resume knobs steer the single-shot path's restart
        // story; CONTINUOUS owns the checkpoint chain itself.
        for knob in [
            "durable",
            "resume",
            "checkpoint",
            "halt_after_epoch",
            "block_size",
        ] {
            if params.contains_key(knob) {
                return Err(DbError::BadParam(format!(
                    "{knob} is not supported with TRAIN … CONTINUOUS"
                )));
            }
        }
        let learning_rate = opts.float("learning_rate", 0.1)? as f32;
        let decay = opts.float("decay", 0.95)? as f32;
        let epochs = opts.nonneg_int("max_epoch_num", 10)?;
        let refresh = opts.positive_int("refresh", epochs.max(1))?;
        let buffer_fraction = opts.fraction("buffer_fraction", 0.10)?;
        let io_budget = opts.fraction("io_budget", StrategyParams::default().io_budget)?;
        let batch_size = opts.nonneg_int("batch_size", 1)?.max(1);
        let seed = opts.nonneg_int("seed", 42)? as u64;
        let double_buffer = opts.flag("double_buffer", true)?;
        let l2 = opts.float("l2", 0.0)? as f32;
        if l2 < 0.0 {
            return Err(DbError::BadParam("l2 must be non-negative".into()));
        }
        let shared_buffers = opts.nonneg_int("shared_buffers", 0)?;
        let report_metrics = opts.flag("report_metrics", false)?;
        let planner = opts.flag("planner", true)?;
        let max_retries = opts.nonneg_int("max_retries", 4)? as u32;
        let on_fault = match params.get("on_fault") {
            None => FaultAction::Fail,
            Some(v) => match v.as_text() {
                Some("fail") => FaultAction::Fail,
                Some("skip") => FaultAction::SkipBlock,
                _ => {
                    return Err(DbError::BadParam(
                        "on_fault must be 'fail' or 'skip'".into(),
                    ))
                }
            },
        };
        let pushdown = opts.flag("pushdown", true)?;
        let fuse = opts.flag("fuse", true)?;

        // --- First pin: model shape and strategy resolve here ------------
        let mut snapshot = self.catalog().snapshot(table_name)?;
        let kind = self.resolve_model_kind(model_name_raw, &snapshot)?;
        let mut sparams = StrategyParams::default()
            .with_buffer_fraction(buffer_fraction)
            .with_seed(seed)
            .with_io_budget(io_budget);
        let strategy = match strategy {
            Some(kind) => kind,
            None if !planner => StrategyKind::CorgiPile,
            None => {
                let hd = self.block_variance(table_name, &snapshot, seed, true);
                let profile = self.dev.profile();
                let pick = CostModel::new(epochs).choose(&snapshot, &profile, &sparams, hd);
                if !opts.is_set("buffer_fraction") {
                    sparams = sparams.with_buffer_fraction(pick.buffer_fraction);
                }
                pick.kind
            }
        };
        let dim_all = snapshot.get_tuple(0)?.features.dim();
        let projected = projection.feature_indices();
        let dim = projected.as_ref().map(|c| c.len()).unwrap_or(dim_all);
        let eval_view = |table: &Arc<Table>| -> Arc<Vec<Tuple>> {
            let all = table.all_tuples();
            if filter.is_some() || projected.is_some() {
                Arc::new(
                    all.iter()
                        .filter(|t| filter.as_ref().is_none_or(|p| p.matches(t)))
                        .map(|t| match &projected {
                            Some(cols) => project_tuple(t, cols),
                            None => t.clone(),
                        })
                        .collect(),
                )
            } else {
                Arc::new(all)
            }
        };

        // --- Chunk loop ---------------------------------------------------
        let mut all_epochs: Vec<DbEpochRecord> = Vec::new();
        let mut setup_total = 0.0f64;
        let mut filtered_total = 0u64;
        let mut checkpoint: Option<TrainCheckpoint> = None;
        // All four are assigned on every iteration before the loop can
        // break, so they need no placeholder values.
        let mut trained;
        let mut last_op_stats;
        let mut final_table: Arc<Table>;
        let mut snapshot_version;
        let mut chunk = 0usize;
        let mut start = 0usize;
        loop {
            if chunk > 0 {
                // Epoch boundary reached: let a registered harness inject
                // its deterministic drift, then pick up the latest
                // published snapshot for the next chunk of epochs.
                if let Some(hook) = self.refresh_hook.as_mut() {
                    hook(chunk);
                }
                snapshot = self.catalog().snapshot(table_name)?;
            }
            let table: Arc<Table> = snapshot.table().clone();
            let end = (start + refresh).min(epochs);
            let spec = TrainPlanSpec {
                table: table_name.to_string(),
                model: kind.name().to_string(),
                epochs,
                strategy,
                projection: projection.clone(),
                filter: filter.clone(),
                buffer_blocks: sparams.buffer_blocks(&table),
            };
            let mut plan = LogicalPlan::build(&spec, &table)?;
            if pushdown {
                plan = plan.push_down();
            }
            let catalog = self.db.catalog();
            let physical = build_physical_with(
                &plan,
                &table,
                table_name,
                &sparams,
                seed,
                &mut self.dev,
                catalog,
                BuildOptions {
                    fuse,
                    shared_scan: false,
                },
            )?;
            setup_total += physical.setup_seconds;
            let model = build_model(&kind, dim, seed);
            let optimizer = OptimizerKind::Sgd {
                lr0: learning_rate,
                decay,
            }
            .build();
            let options = TrainOptions {
                batch_size,
                clip_norm: 0.0,
                l2,
            };
            let mut sgd = SgdOperator::new(
                physical.child,
                model,
                optimizer,
                options,
                self.compute,
                epochs,
                double_buffer,
            );
            sgd.setup_seconds = physical.setup_seconds;
            sgd.fused = physical.fused;
            sgd.checkpoint_seed = seed;
            sgd.resume_from = checkpoint.take();
            if end < epochs {
                sgd.halt_after_epoch = Some(end.saturating_sub(1));
            }
            if report_metrics {
                sgd.eval_each_epoch = Some(eval_view(&table));
            }
            // The chunk's final checkpoint seeds the next chunk's resume.
            let slot: Rc<RefCell<Option<TrainCheckpoint>>> = Rc::new(RefCell::new(None));
            let sink = Rc::clone(&slot);
            sgd.checkpoint_sink = Some(Box::new(move |ck, _| {
                *sink.borrow_mut() = Some(ck.clone());
                Ok(())
            }));
            let mut private_pool = if shared_buffers > 0 {
                let mut p = PoolHandle::private(BufferPool::new(shared_buffers));
                p.set_telemetry(&self.telemetry);
                Some(p)
            } else {
                None
            };
            let mut ctx = ExecContext::new(&mut self.dev);
            ctx.pool = match private_pool.as_mut() {
                Some(p) => Some(p),
                None if self.pool.capacity() > 0 => Some(&mut self.pool),
                None => None,
            };
            ctx.retry = RetryPolicy::with_max_retries(max_retries);
            ctx.on_fault = on_fault;
            let mut result = sgd.execute(&mut ctx)?;
            checkpoint = slot.borrow_mut().take();
            filtered_total += result.op_stats.iter().map(|s| s.rows_filtered).sum::<u64>();
            all_epochs.append(&mut result.epochs);
            last_op_stats = result.op_stats;
            trained = result.model;
            final_table = table;
            snapshot_version = snapshot.version();
            if end >= epochs {
                break;
            }
            start = end;
            chunk += 1;
        }
        self.telemetry
            .counter("db.train.continuous_chunks")
            .add((chunk + 1) as u64);
        if filtered_total > 0 {
            self.telemetry
                .counter("db.scan.rows_filtered")
                .add(filtered_total);
        }

        // --- Evaluate & store (against the last pinned snapshot) ----------
        let eval = eval_view(&final_table);
        let final_metric = if trained.is_classifier() {
            accuracy(trained.as_ref(), eval.iter())
        } else {
            r_squared(trained.as_ref(), eval.iter())
        };
        let train_loss = all_epochs.last().map(|e| e.train_loss).unwrap_or(0.0);
        let stored_name = params
            .get("model_name")
            .and_then(|v| v.as_text())
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("{table_name}_{}", kind.name()));
        let stored = StoredModel {
            kind: kind.clone(),
            dim,
            params: trained.params().to_vec(),
            train_loss,
        };
        self.catalog()
            .store_model(stored_name.clone(), stored.clone());
        let cache = self.db.model_cache();
        let version = cache.next_version(&stored_name);
        cache.publish(ServableModel::new(&stored_name, version, stored), true);
        Ok(QueryResult::Train(DbTrainSummary {
            model_name: stored_name,
            model_kind: kind,
            strategy: strategy.name().to_string(),
            snapshot_version,
            setup_seconds: setup_total,
            epochs: all_epochs,
            final_train_metric: final_metric,
            halted: false,
            op_stats: last_op_stats,
        }))
    }

    /// The planner's ĥ_D estimate for a table: catalog cache when valid
    /// for this exact table version, else a bounded block sample.
    ///
    /// Sampling runs on a scratch device so planning charges no I/O to the
    /// session's stats and never trips a session fault plan; the bounded
    /// sample cost is reported inside the estimate itself (EXPLAIN). The
    /// result is cached per (name, table_id) unless the query rechunked
    /// the table — a rechunked copy shares the id but not the block
    /// partition, so its ĥ_D must not overwrite the registered table's.
    fn block_variance(&self, table_name: &str, table: &Table, seed: u64, cacheable: bool) -> f64 {
        let table_id = table.config().table_id;
        if cacheable {
            if let Some(hd) = self.catalog().cached_block_variance(table_name, table_id) {
                return hd;
            }
        }
        let mut scratch = SimDevice::ssd(0);
        let hd = block_variance_sampled(table, 0.25, seed, &mut scratch).hd;
        if cacheable {
            self.catalog()
                .cache_block_variance(table_name, table_id, hd);
        }
        hd
    }

    /// `RECLUSTER <table> [WITH io_budget = f, seed = n]`: the bounded-I/O
    /// offline pass of Corgi² run as a standalone statement. The result
    /// replaces the table under its own name (later queries — and the
    /// planner's cached ĥ_D — see the re-clustered layout), and the
    /// outcome reports the I/O actually spent against the declared budget.
    fn recluster(
        &mut self,
        table_name: &str,
        params: &BTreeMap<String, ParamValue>,
    ) -> Result<QueryResult, DbError> {
        let opts = QueryOptions::parse(Statement::Recluster, params)?;
        let io_budget = opts.fraction("io_budget", StrategyParams::default().io_budget)?;
        let seed = opts.nonneg_int("seed", 42)? as u64;
        let table = self.catalog().table(table_name)?;
        let copy_id = self.catalog().fresh_table_id();
        let out = self
            .dev
            .with(|d| recluster_table(&table, table_name, copy_id, io_budget, seed, d))?;
        self.telemetry
            .counter("db.recluster.blocks_rewritten")
            .add(out.blocks_rewritten as u64);
        // Re-registering under the same name invalidates the cached ĥ_D.
        self.register_table(table_name, out.table);
        Ok(QueryResult::Recluster {
            table: table_name.to_string(),
            blocks_rewritten: out.blocks_rewritten,
            blocks_total: out.blocks_total,
            io_seconds: out.io_seconds,
            budget_io: out.budget_io,
            full_shuffle_io: out.full_shuffle_io,
        })
    }

    fn resolve_model_kind(&self, name: &str, table: &Table) -> Result<ModelKind, DbError> {
        let classes = || -> usize {
            let max = table
                .all_tuples()
                .iter()
                .map(|t| t.label as i64)
                .max()
                .unwrap_or(1);
            (max + 1).max(2) as usize
        };
        match name {
            "svm" => Ok(ModelKind::Svm),
            "lr" | "logit" | "logistic" => Ok(ModelKind::LogisticRegression),
            "linreg" | "linear_regression" => Ok(ModelKind::LinearRegression),
            "softmax" => Ok(ModelKind::Softmax { classes: classes() }),
            "mlp" => Ok(ModelKind::Mlp {
                hidden: vec![32],
                classes: classes(),
            }),
            other => Err(DbError::UnknownModelKind(other.to_string())),
        }
    }

    fn predict(&mut self, table_name: &str, model_name: &str) -> Result<QueryResult, DbError> {
        let table = self.catalog().table(table_name)?;
        let model = self.catalog().model(model_name)?.instantiate();
        // Inference scans the table sequentially.
        let tuples = self.dev.with(|d| table.scan_all(d))?;
        let predictions: Vec<f32> = tuples
            .iter()
            .map(|t| model.predict_label(&t.features))
            .collect();
        let metric = if model.is_classifier() {
            accuracy(model.as_ref(), &tuples)
        } else {
            r_squared(model.as_ref(), &tuples)
        };
        Ok(QueryResult::Predict {
            predictions,
            metric,
        })
    }

    /// Batched inference — the engine behind
    /// `PREDICT <model> [VERSION n] ON <table> [WHERE …]`.
    ///
    /// Pins an immutable [`ServableModel`] from the engine's model cache
    /// *before* the first block is read, lowers the scan through the
    /// planner (an optional predicate is pushed into the scan and
    /// evaluated zero-copy, before any tuple is batched), and runs
    /// [`PredictOperator`] over `batch_rows`-sized batches. A concurrent
    /// `TRAIN` publishing a newer version mid-scan never changes this
    /// run's predictions — the pin holds until the run returns.
    ///
    /// Cache-miss fallbacks: an explicit `VERSION n` not in the cache is
    /// loaded from the durable store's version history (stashed in the
    /// cache without activating it); an unknown active pin falls back to
    /// the catalog object and becomes the active version.
    pub fn predict_batch(
        &mut self,
        table_name: &str,
        model_name: &str,
        opts: ServeOptions,
    ) -> Result<PredictSummary, DbError> {
        let table = self.catalog().table(table_name)?;
        let (servable, cache_hit) = self.resolve_servable(model_name, opts.version)?;
        let dim = table.get_tuple(0)?.features.dim();
        if servable.dim() != dim {
            return Err(DbError::BadParam(format!(
                "model {model_name} v{} expects {} features, table {table_name} has {dim}",
                servable.version(),
                servable.dim(),
            )));
        }
        let spec = PredictPlanSpec {
            table: table_name.to_string(),
            model: model_name.to_string(),
            version: opts.version,
            filter: opts.filter.clone(),
            batch_rows: opts.batch_rows,
        };
        let plan = LogicalPlan::build_predict(&spec, &table)?.push_down();
        let sparams = StrategyParams::default();
        let physical = build_physical_with(
            &plan,
            &table,
            table_name,
            &sparams,
            0,
            &mut self.dev,
            self.db.catalog(),
            BuildOptions {
                fuse: opts.fuse,
                shared_scan: opts.shared_scan,
            },
        )?;
        let version = servable.version();
        let mut op = PredictOperator::new(physical.child, servable, self.compute, opts.batch_rows);
        op.fused = physical.fused;
        let mut ctx = ExecContext::new(&mut self.dev);
        if self.pool.capacity() > 0 {
            ctx.pool = Some(&mut self.pool);
        }
        let r = op.execute(&mut ctx)?;

        self.telemetry.counter("serving.predictions").add(r.rows);
        self.telemetry.counter("serving.batches").add(r.batches);
        self.telemetry
            .counter(if cache_hit {
                "serving.cache.hits"
            } else {
                "serving.cache.misses"
            })
            .add(1);
        self.telemetry
            .gauge("serving.cache.generation")
            .set(self.db.model_cache().generation() as f64);
        let hist = self.telemetry.histogram("serving.batch.wall_seconds");
        for w in &r.batch_wall_seconds {
            hist.record(*w);
        }
        if r.rows_filtered > 0 {
            self.telemetry
                .counter("db.scan.rows_filtered")
                .add(r.rows_filtered);
        }

        let scan_reads: u64 = r.op_stats.iter().map(|s| s.blocks_read).sum();
        let scan_hits: u64 = r.op_stats.iter().map(|s| s.cache_hits).sum();
        Ok(PredictSummary {
            model_name: model_name.to_string(),
            version,
            predictions: r.predictions,
            metric: r.metric,
            rows: r.rows,
            batches: r.batches,
            rows_filtered: r.rows_filtered,
            cache_hit,
            scan_cache_hit_rate: if scan_reads == 0 {
                0.0
            } else {
                scan_hits as f64 / scan_reads as f64
            },
            io_seconds: r.io_seconds,
            compute_seconds: r.compute_seconds,
            batch_wall_seconds: r.batch_wall_seconds,
            op_stats: r.op_stats,
        })
    }

    /// Resolve a serving pin: cache first, then the durable store's
    /// version history (explicit pins) or the catalog object (active
    /// pins). Returns the pinned model and whether the cache had it.
    fn resolve_servable(
        &mut self,
        name: &str,
        version: Option<u32>,
    ) -> Result<(Arc<ServableModel>, bool), DbError> {
        let cache = self.db.model_cache();
        match version {
            Some(v) => {
                if let Some(pin) = cache.pin_version(name, v) {
                    return Ok((pin, true));
                }
                let rec = self
                    .db
                    .model_store()
                    .and_then(|s| s.version(name, v))
                    .ok_or_else(|| DbError::UnknownModel(format!("{name} version {v}")))?;
                // Stash without activating: an explicit pin must not
                // steal traffic from the active version.
                Ok((
                    cache.publish(ServableModel::new(name, v, rec.stored), false),
                    false,
                ))
            }
            None => {
                if let Some(pin) = cache.pin(name) {
                    return Ok((pin, true));
                }
                // Models registered before the serving layer saw them
                // (e.g. straight catalog writes) become the active
                // version on first use.
                let stored = self.catalog().model(name)?;
                let v = cache.next_version(name);
                Ok((
                    cache.publish(ServableModel::new(name, v, stored), true),
                    false,
                ))
            }
        }
    }

    /// Planning-time check that a serving pin would resolve, without
    /// executing anything or touching the cache (used by `EXPLAIN`).
    fn servable_exists(&self, name: &str, version: Option<u32>) -> Result<(), DbError> {
        let cache = self.db.model_cache();
        let known = match version {
            Some(v) => {
                cache.versions(name).contains(&v)
                    || self
                        .db
                        .model_store()
                        .is_some_and(|s| s.version(name, v).is_some())
            }
            None => cache.active_version(name).is_some() || self.catalog().model(name).is_ok(),
        };
        if known {
            Ok(())
        } else {
            Err(DbError::UnknownModel(match version {
                Some(v) => format!("{name} version {v}"),
                None => name.to_string(),
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};
    use corgipile_storage::SimDevice;

    fn higgs_table(n: usize) -> Table {
        DatasetSpec::higgs_like(n)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(8192)
            .build_table(1)
            .unwrap()
    }

    fn session_with_higgs(n: usize) -> Session {
        let db = Database::new(SimDevice::hdd_scaled(1000.0, 0));
        db.register_table("higgs", higgs_table(n));
        db.connect()
    }

    #[test]
    fn train_and_predict_roundtrip() {
        let mut s = session_with_higgs(3000);
        let r = s
            .execute(
                "SELECT * FROM higgs TRAIN BY svm WITH learning_rate = 0.05, \
                 max_epoch_num = 3, model_name = m1",
            )
            .unwrap();
        let summary = match r {
            QueryResult::Train(t) => t,
            _ => panic!("expected train result"),
        };
        assert_eq!(summary.model_name, "m1");
        assert_eq!(summary.epochs.len(), 3);
        assert!(summary.final_train_metric > 0.5);
        assert_eq!(summary.strategy, "corgipile");

        let r = s.execute("SELECT * FROM higgs PREDICT BY m1").unwrap();
        match r {
            QueryResult::Predict {
                predictions,
                metric,
            } => {
                assert_eq!(predictions.len(), 3000);
                assert!(metric > 0.5);
            }
            _ => panic!("expected predictions"),
        }
    }

    #[test]
    fn default_model_name_derives_from_table() {
        let mut s = session_with_higgs(500);
        s.execute("SELECT * FROM higgs TRAIN BY lr WITH max_epoch_num = 1")
            .unwrap();
        assert!(s.catalog().model("higgs_lr").is_ok());
    }

    #[test]
    fn strategies_order_accuracy_as_in_the_paper() {
        let mut s = session_with_higgs(6000);
        let mut run = |strategy: &str| -> f64 {
            let r = s
                .execute(&format!(
                    "SELECT * FROM higgs TRAIN BY svm WITH learning_rate = 0.02, \
                     max_epoch_num = 4, strategy = '{strategy}', model_name = m_{strategy}"
                ))
                .unwrap();
            match r {
                QueryResult::Train(t) => t.final_train_metric,
                _ => unreachable!(),
            }
        };
        let corgi = run("corgipile");
        let once = run("once");
        let no = run("no");
        assert!(
            (corgi - once).abs() < 0.05,
            "corgipile {corgi} vs once {once}"
        );
        assert!(corgi > no + 0.03, "corgipile {corgi} vs no-shuffle {no}");
    }

    #[test]
    fn once_strategy_charges_setup() {
        let mut s = session_with_higgs(2000);
        let r = s
            .execute("SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1, strategy = 'once'")
            .unwrap();
        match r {
            QueryResult::Train(t) => {
                assert!(t.setup_seconds > 0.0);
                assert!(t.total_seconds() > t.setup_seconds);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn block_size_param_rechunks() {
        let mut s = session_with_higgs(2000);
        // A 64 KB block size must work end to end.
        let r =
            s.execute("SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1, block_size = 64KB");
        assert!(r.is_ok());
    }

    #[test]
    fn errors_are_reported() {
        let mut s = session_with_higgs(100);
        assert!(matches!(
            s.execute("SELECT * FROM nope TRAIN BY svm"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(matches!(
            s.execute("SELECT * FROM higgs TRAIN BY nonsense"),
            Err(DbError::UnknownModelKind(_))
        ));
        assert!(matches!(
            s.execute("SELECT * FROM higgs TRAIN BY svm WITH strategy = 'mrs'"),
            Err(DbError::UnknownStrategy(_))
        ));
        assert!(matches!(
            s.execute("SELECT * FROM higgs TRAIN BY svm WITH bogus_param = 1"),
            Err(DbError::BadParam(_))
        ));
        assert!(matches!(
            s.execute("SELECT * FROM higgs PREDICT BY ghost"),
            Err(DbError::UnknownModel(_))
        ));
        assert!(matches!(
            s.execute("SELECT * FROM higgs TRAIN BY svm WITH buffer_fraction = 0"),
            Err(DbError::BadParam(_))
        ));
    }

    #[test]
    fn softmax_on_multiclass_table() {
        let table = DatasetSpec::cifar_like(800)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(8192)
            .build_table(2)
            .unwrap();
        let db = Database::new(SimDevice::ssd_scaled(1000.0, 0));
        db.register_table("cifar", table);
        let mut s = db.connect();
        let r = s
            .execute(
                "SELECT * FROM cifar TRAIN BY softmax WITH learning_rate = 0.05, \
                 max_epoch_num = 3, model_name = sm",
            )
            .unwrap();
        match r {
            QueryResult::Train(t) => {
                assert!(matches!(t.model_kind, ModelKind::Softmax { classes: 10 }));
                assert!(
                    t.final_train_metric > 0.5,
                    "softmax acc {}",
                    t.final_train_metric
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn explain_and_show_queries() {
        let mut s = session_with_higgs(300);
        // Default lowering is fused: one pipeline node, no operator tree.
        match s
            .execute("EXPLAIN SELECT * FROM higgs TRAIN BY svm WITH strategy = 'corgipile'")
            .unwrap()
        {
            QueryResult::Plan(lines) => {
                assert!(lines[0].starts_with("SGD"));
                assert!(lines
                    .iter()
                    .any(|l| l.contains("Fused Pipeline (scan→shuffle→sgd)")));
                assert!(lines.iter().any(|l| l.contains("Scan: random order over")));
                assert!(!lines.iter().any(|l| l.contains("-> TupleShuffle")));
            }
            _ => panic!("expected a plan"),
        }
        // `fuse = 0` restores the interpreted operator tree.
        match s
            .execute(
                "EXPLAIN SELECT * FROM higgs TRAIN BY svm WITH \
                 strategy = 'corgipile', fuse = 0",
            )
            .unwrap()
        {
            QueryResult::Plan(lines) => {
                assert!(lines[0].starts_with("SGD"));
                assert!(lines.iter().any(|l| l.contains("TupleShuffle")));
                assert!(lines.iter().any(|l| l.contains("BlockShuffle (random")));
                assert!(!lines.iter().any(|l| l.contains("Fused Pipeline")));
            }
            _ => panic!("expected a plan"),
        }
        match s.execute("SHOW TABLES").unwrap() {
            QueryResult::Names(names) => {
                assert_eq!(names.len(), 1);
                let blocks = s.catalog().table("higgs").unwrap().num_blocks();
                assert_eq!(
                    names[0],
                    format!("higgs v1 blocks={blocks} tuples=300"),
                    "SHOW TABLES reports version, block count and tuple count"
                );
            }
            _ => panic!("expected names"),
        }
        // EXPLAIN does not execute: no model stored.
        match s.execute("SHOW MODELS").unwrap() {
            QueryResult::Names(names) => assert!(names.is_empty()),
            _ => panic!("expected names"),
        }
        assert!(s
            .execute("EXPLAIN SELECT * FROM higgs TRAIN BY svm WITH strategy = 'bogus'")
            .is_err());
    }

    #[test]
    fn where_predicate_trains_on_the_matching_subset() {
        let mut s = session_with_higgs(2000);
        let t = train_summary(
            s.execute(
                "SELECT * FROM higgs WHERE id < 500 TRAIN BY svm WITH \
                 max_epoch_num = 2, model_name = m",
            )
            .unwrap(),
        );
        // The SGD node sees only the 500 survivors, each epoch.
        assert_eq!(t.op_stats[0].rows, 1000);
        let dropped: u64 = t.op_stats.iter().map(|s| s.rows_filtered).sum();
        assert_eq!(dropped, 2 * 1500);
        assert!(s.catalog().model("m").is_ok());
    }

    #[test]
    fn projection_shrinks_the_model_dimension() {
        let mut s = session_with_higgs(1000);
        let t = train_summary(
            s.execute(
                "SELECT f0, f3, f5 FROM higgs TRAIN BY svm WITH \
                 max_epoch_num = 1, model_name = m",
            )
            .unwrap(),
        );
        assert!(t.final_train_metric > 0.0);
        let m = s.catalog().model("m").unwrap();
        assert_eq!(m.dim, 3);
    }

    #[test]
    fn explain_shows_pushed_predicate_on_the_scan_node() {
        let mut s = session_with_higgs(1000);
        // Fused rendering (the default) carries the same annotations on
        // the pipeline node.
        let lines = match s
            .execute("EXPLAIN SELECT f0, f1 FROM higgs WHERE f0 > 0.5 AND label = 1 TRAIN BY svm")
            .unwrap()
        {
            QueryResult::Plan(lines) => lines,
            _ => panic!("expected a plan"),
        };
        assert!(
            lines
                .iter()
                .any(|l| l.contains("Fused Pipeline (scan→filter→project→shuffle→sgd)")),
            "{lines:?}"
        );
        assert!(lines.iter().any(|l| l
            .trim_start()
            .starts_with("Filter: (f0 > 0.5 AND label = 1)")));
        // The interpreted tree keeps the predicate on the scan node.
        let lines = match s
            .execute(
                "EXPLAIN SELECT f0, f1 FROM higgs WHERE f0 > 0.5 AND label = 1 \
                 TRAIN BY svm WITH fuse = 0",
            )
            .unwrap()
        {
            QueryResult::Plan(lines) => lines,
            _ => panic!("expected a plan"),
        };
        let scan = lines
            .iter()
            .position(|l| l.contains("BlockShuffle (random"))
            .expect("scan node");
        assert!(
            lines[scan + 1]
                .trim_start()
                .starts_with("Output: f0, f1, label"),
            "projection on scan node: {lines:?}"
        );
        assert!(
            lines[scan + 2]
                .trim_start()
                .starts_with("Filter: (f0 > 0.5 AND label = 1)"),
            "predicate on scan node: {lines:?}"
        );
        assert!(
            !lines.iter().any(|l| l.contains("-> Filter")),
            "no separate Filter node above TupleShuffle: {lines:?}"
        );
        // With pushdown disabled the filter/project stay above the shuffle.
        let lines = match s
            .execute(
                "EXPLAIN SELECT * FROM higgs WHERE f0 > 0.5 TRAIN BY svm WITH \
                 pushdown = 0, fuse = 0",
            )
            .unwrap()
        {
            QueryResult::Plan(lines) => lines,
            _ => panic!("expected a plan"),
        };
        assert!(lines.iter().any(|l| l.contains("-> Filter (f0 > 0.5)")));
    }

    #[test]
    fn explain_rejects_unknown_columns_at_planning_time() {
        let mut s = session_with_higgs(300);
        // f40 is out of range for the 28-feature table: structured error,
        // raised by EXPLAIN without executing anything.
        assert!(matches!(
            s.execute("EXPLAIN SELECT * FROM higgs WHERE f40 > 0 TRAIN BY svm"),
            Err(DbError::UnknownColumn(_))
        ));
        assert!(matches!(
            s.execute("EXPLAIN SELECT f99 FROM higgs TRAIN BY svm"),
            Err(DbError::UnknownColumn(_))
        ));
        assert!(matches!(
            s.execute("SELECT id FROM higgs TRAIN BY svm"),
            Err(DbError::UnknownColumn(_))
        ));
        match s.execute("SHOW MODELS").unwrap() {
            QueryResult::Names(names) => assert!(names.is_empty()),
            _ => panic!("expected names"),
        }
    }

    #[test]
    fn explain_analyze_reports_rows_removed_by_filter() {
        let mut s = session_with_higgs(2000);
        let lines = match s
            .execute(
                "EXPLAIN ANALYZE SELECT * FROM higgs WHERE id < 1000 TRAIN BY svm \
                 WITH max_epoch_num = 2",
            )
            .unwrap()
        {
            QueryResult::Plan(lines) => lines,
            _ => panic!("expected plan lines"),
        };
        assert!(
            lines
                .iter()
                .any(|l| l.trim_start() == "Rows Removed by Filter: 2000"),
            "rows removed: {lines:?}"
        );
        assert!(lines
            .iter()
            .any(|l| l.trim_start().starts_with("Filter: (id < 1000)")));
    }

    #[test]
    fn pushdown_buffers_fewer_tuples_with_bit_identical_models() {
        let mut s = session_with_higgs(4000);
        let mut run = |pushdown: usize| -> DbTrainSummary {
            train_summary(
                s.execute(&format!(
                    "SELECT * FROM higgs WHERE id < 400 TRAIN BY svm WITH \
                     max_epoch_num = 2, pushdown = {pushdown}, model_name = m_p{pushdown}"
                ))
                .unwrap(),
            )
        };
        let pushed = run(1);
        let post = run(0);
        assert_eq!(
            s.catalog().model("m_p1").unwrap().params,
            s.catalog().model("m_p0").unwrap().params,
            "pushdown must not change the visit order"
        );
        // At 10% selectivity the post-filter plan buffers the whole table
        // every epoch, the pushdown plan only the survivors: 10x fewer.
        // Fused plans fold the shuffle's stats into the pipeline node, so
        // sum across nodes instead of naming the TupleShuffle operator.
        let buffered = |t: &DbTrainSummary| {
            t.op_stats
                .iter()
                .map(|o| o.buffered_tuples)
                .sum::<u64>()
                .max(1)
        };
        assert!(
            buffered(&post) >= 5 * buffered(&pushed),
            "pushdown {} vs post-filter {}",
            buffered(&pushed),
            buffered(&post)
        );
    }

    #[test]
    fn tuple_only_strategy_in_db() {
        let mut s = session_with_higgs(3000);
        let r = s
            .execute(
                "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 3,                  strategy = 'tuple_only', model_name = m_to",
            )
            .unwrap();
        match r {
            QueryResult::Train(t) => {
                // Sequential I/O like No Shuffle, partial mixing only.
                assert_eq!(t.strategy, "tuple_only");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn report_metrics_emits_per_epoch_accuracy() {
        let mut s = session_with_higgs(1500);
        match s
            .execute(
                "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 2,                  report_metrics = 1",
            )
            .unwrap()
        {
            QueryResult::Train(t) => {
                assert!(t.epochs.iter().all(|e| e.train_metric.is_some()));
            }
            _ => unreachable!(),
        }
        // Off by default.
        match s
            .execute("SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1")
            .unwrap()
        {
            QueryResult::Train(t) => assert!(t.epochs[0].train_metric.is_none()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn shared_buffers_accelerate_later_epochs() {
        // With a pool large enough for the table, epochs after the first
        // are compute-bound (no device reads).
        let table = DatasetSpec::higgs_like(3000)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(8192)
            .build_table(4)
            .unwrap();
        let run = |shared: &str| {
            let db = Database::new(SimDevice::hdd_scaled(1000.0, 0));
            db.register_table("higgs", table.clone());
            let mut s = db.connect();
            match s
                .execute(&format!(
                    "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 3{shared}"
                ))
                .unwrap()
            {
                QueryResult::Train(t) => t.epochs[1..].iter().map(|e| e.io_seconds).sum::<f64>(),
                _ => unreachable!(),
            }
        };
        let without = run("");
        let with = run(", shared_buffers = 64MB");
        assert!(
            with < without / 5.0,
            "pooled warm epochs {with} should be far cheaper than unpooled {without}"
        );
    }

    #[test]
    fn engine_pool_serves_queries_without_the_param() {
        // An engine-level shared_buffers pool kicks in when the query does
        // not request a private pool.
        let warm_epochs = |db: &std::sync::Arc<Database>| -> f64 {
            db.register_table("higgs", higgs_table(2000));
            let mut s = db.connect();
            match s
                .execute("SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 3")
                .unwrap()
            {
                QueryResult::Train(t) => t.epochs[1..].iter().map(|e| e.io_seconds).sum(),
                _ => unreachable!(),
            }
        };
        let unpooled = warm_epochs(&Database::new(SimDevice::hdd_scaled(1000.0, 0)));
        let pooled_db = Database::with_shared_buffers(SimDevice::hdd_scaled(1000.0, 0), 64 << 20);
        let pooled = warm_epochs(&pooled_db);
        assert!(
            pooled < unpooled / 5.0,
            "engine-pooled warm epochs {pooled} should be far cheaper than unpooled {unpooled}"
        );
        let stats = pooled_db.pool_stats();
        assert!(stats.hits > 0 && stats.misses > 0);
    }

    #[test]
    fn minibatch_training_in_db() {
        let mut s = session_with_higgs(2000);
        let r =
            s.execute("SELECT * FROM higgs TRAIN BY lr WITH max_epoch_num = 2, batch_size = 128");
        assert!(r.is_ok());
    }

    fn train_summary(r: QueryResult) -> DbTrainSummary {
        match r {
            QueryResult::Train(t) => t,
            _ => panic!("expected a train result"),
        }
    }

    #[test]
    fn injected_transients_do_not_change_the_trained_model() {
        let sql = "SELECT * FROM higgs TRAIN BY svm WITH learning_rate = 0.05, \
                   max_epoch_num = 3, model_name = m";
        let mut clean = session_with_higgs(2000);
        clean.execute(sql).unwrap();
        let clean_params = clean.catalog().model("m").unwrap().params.clone();

        let mut faulty = session_with_higgs(2000);
        let tid = faulty.catalog().table("higgs").unwrap().config().table_id;
        faulty.inject_faults(
            corgipile_storage::FaultPlan::new(77)
                .with_transient(tid, 0, 2)
                .with_random_transient(0.05, 2),
        );
        let t = train_summary(faulty.execute(sql).unwrap());
        assert!(
            t.skipped_blocks().is_empty(),
            "retries must recover every block"
        );
        let faulty_params = faulty.catalog().model("m").unwrap().params.clone();
        assert_eq!(
            clean_params, faulty_params,
            "transients must not alter training"
        );
        // The faults did cost simulated time, though.
        assert!(
            faulty.device().stats().io_seconds > clean.device().stats().io_seconds,
            "retries and backoff must show up on the clock"
        );
    }

    #[test]
    fn fuse_oracle_is_bit_identical_and_charges_less_compute() {
        // The fused pipeline vs the interpreted tree, crossed with the
        // double-buffer knob: all four runs must train the same bits,
        // while fused runs charge strictly less simulated compute (the
        // per-tuple dispatch overhead is paid once per batch).
        let mut s = session_with_higgs(3000);
        let mut run = |fuse: usize, dbuf: usize| -> DbTrainSummary {
            train_summary(
                s.execute(&format!(
                    "SELECT * FROM higgs WHERE f0 > 0.2 TRAIN BY svm WITH \
                     learning_rate = 0.05, max_epoch_num = 2, fuse = {fuse}, \
                     double_buffer = {dbuf}, model_name = m_f{fuse}d{dbuf}"
                ))
                .unwrap(),
            )
        };
        let f_serial = run(1, 0);
        let f_piped = run(1, 1);
        let i_serial = run(0, 0);
        let i_piped = run(0, 1);
        let params = |name: &str| s.catalog().model(name).unwrap().params.clone();
        let want = params("m_f1d0");
        for name in ["m_f1d1", "m_f0d0", "m_f0d1"] {
            assert_eq!(want, params(name), "{name} diverged");
        }
        for (f, i) in [(&f_serial, &i_serial), (&f_piped, &i_piped)] {
            let fc: f64 = f.epochs.iter().map(|e| e.compute_seconds).sum();
            let ic: f64 = i.epochs.iter().map(|e| e.compute_seconds).sum();
            assert!(fc < ic, "fused compute {fc} must undercut interpreted {ic}");
            assert_eq!(
                f.epochs.last().unwrap().train_loss.to_bits(),
                i.epochs.last().unwrap().train_loss.to_bits(),
                "training loss must stay bit-identical"
            );
            let ff: u64 = f.op_stats.iter().map(|o| o.rows_filtered).sum();
            let ii: u64 = i.op_stats.iter().map(|o| o.rows_filtered).sum();
            assert_eq!(ff, ii, "rows_filtered must agree");
        }
    }

    #[test]
    fn fuse_oracle_holds_under_injected_faults_and_skip() {
        let sql = |fuse: usize| {
            format!(
                "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 2, \
                 max_retries = 1, on_fault = 'skip', fuse = {fuse}, \
                 model_name = m_f{fuse}"
            )
        };
        // Fresh session (and device) per run: injected fault decisions
        // depend on device read position, so both runs must start cold to
        // see the identical fault schedule.
        let run = |fuse: usize| -> (DbTrainSummary, Vec<f32>) {
            let mut s = session_with_higgs(2000);
            let tid = s.catalog().table("higgs").unwrap().config().table_id;
            s.inject_faults(
                corgipile_storage::FaultPlan::new(9)
                    .with_permanent(tid, 2)
                    .with_random_transient(0.05, 2),
            );
            let t = train_summary(s.execute(&sql(fuse)).unwrap());
            let params = s
                .catalog()
                .model(&format!("m_f{fuse}"))
                .unwrap()
                .params
                .clone();
            (t, params)
        };
        let (fused, fused_params) = run(1);
        let (interp, interp_params) = run(0);
        assert!(fused.skipped_blocks().contains(&2));
        assert_eq!(fused.skipped_blocks(), interp.skipped_blocks());
        assert_eq!(
            fused_params, interp_params,
            "degraded fused run must match the degraded interpreted run"
        );
    }

    #[test]
    fn fused_train_emits_batch_telemetry() {
        let mut s = session_with_higgs(1000);
        s.execute("SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1")
            .unwrap();
        let lines = match s.execute("SHOW STATS").unwrap() {
            QueryResult::Plan(lines) => lines,
            _ => panic!("expected stats lines"),
        };
        let count = |name: &str| -> u64 {
            lines
                .iter()
                .find_map(|l| {
                    l.strip_prefix(&format!("counter {name} = "))
                        .and_then(|v| v.parse().ok())
                })
                .unwrap_or(0)
        };
        assert!(count("db.exec.batches") > 0, "{lines:?}");
        assert_eq!(count("db.exec.fused_tuples"), 1000, "{lines:?}");
    }

    #[test]
    fn fault_plans_do_not_leak_between_sessions() {
        let db = Database::new(SimDevice::hdd_scaled(1000.0, 0));
        db.register_table("higgs", higgs_table(1000));
        let mut faulty = db.connect();
        let mut clean = db.connect();
        let tid = db.catalog().table("higgs").unwrap().config().table_id;
        faulty.inject_faults(corgipile_storage::FaultPlan::new(1).with_permanent(tid, 0));
        let sql = "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1, max_retries = 1";
        assert!(
            faulty.execute(sql).is_err(),
            "the faulty session's plan must strike"
        );
        clean.execute(sql).unwrap();
        assert_eq!(
            clean.device().stats().faults,
            0,
            "no cross-session fault bleed"
        );
    }

    #[test]
    fn dead_block_with_skip_completes_degraded() {
        let mut s = session_with_higgs(2000);
        let tid = s.catalog().table("higgs").unwrap().config().table_id;
        s.inject_faults(corgipile_storage::FaultPlan::new(1).with_permanent(tid, 2));
        let t = train_summary(
            s.execute(
                "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 2, \
                 max_retries = 1, on_fault = 'skip', model_name = m",
            )
            .unwrap(),
        );
        assert_eq!(t.skipped_blocks(), vec![2]);
        assert!(t.epochs.iter().all(|e| e.skipped_blocks == vec![2]));
        assert!(t.final_train_metric > 0.0);
        assert!(
            s.catalog().model("m").is_ok(),
            "degraded run still stores a model"
        );
    }

    #[test]
    fn dead_block_without_skip_fails_the_query() {
        let mut s = session_with_higgs(2000);
        let tid = s.catalog().table("higgs").unwrap().config().table_id;
        s.inject_faults(corgipile_storage::FaultPlan::new(1).with_permanent(tid, 2));
        let err = s
            .execute("SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 2, max_retries = 1")
            .unwrap_err();
        assert!(matches!(err, DbError::Storage(_)), "got {err}");
    }

    #[test]
    fn sql_checkpoint_resume_reproduces_the_model() {
        let path =
            std::env::temp_dir().join(format!("corgi_sql_resume_{}.ckpt", std::process::id()));
        let ck = path.to_string_lossy().to_string();
        let base = "SELECT * FROM higgs TRAIN BY svm WITH learning_rate = 0.05, \
                    max_epoch_num = 4, model_name = m";

        let mut straight = session_with_higgs(2000);
        straight.execute(base).unwrap();
        let want = straight.catalog().model("m").unwrap().params.clone();

        // Crash after epoch 1, then resume in a brand-new session.
        let mut crashed = session_with_higgs(2000);
        let t = train_summary(
            crashed
                .execute(&format!(
                    "{base}, checkpoint = '{ck}', halt_after_epoch = 1"
                ))
                .unwrap(),
        );
        assert!(t.halted);
        assert_eq!(t.epochs.len(), 2);

        let mut resumed = session_with_higgs(2000);
        let t = train_summary(
            resumed
                .execute(&format!("{base}, checkpoint = '{ck}', resume = 1"))
                .unwrap(),
        );
        assert!(!t.halted);
        assert_eq!(t.epochs.len(), 2, "only epochs 2 and 3 run after resume");
        let got = resumed.catalog().model("m").unwrap().params.clone();
        assert_eq!(
            got, want,
            "resumed SQL run must reproduce the model bit-for-bit"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn explain_analyze_executes_and_reports_actuals() {
        let mut s = session_with_higgs(2000);
        let lines = match s
            .execute(
                "EXPLAIN ANALYZE SELECT * FROM higgs TRAIN BY svm WITH \
                 max_epoch_num = 2, model_name = m",
            )
            .unwrap()
        {
            QueryResult::Plan(lines) => lines,
            _ => panic!("expected plan lines"),
        };
        assert!(
            lines[0].starts_with("SGD (actual rows=4000 loops=2"),
            "root line: {}",
            lines[0]
        );
        // The fused run folds the whole chain into one node carrying the
        // per-batch actuals plus the chain's I/O and fill statistics.
        assert!(
            lines.iter().any(|l| l
                .contains("-> Fused Pipeline (scan→shuffle→sgd) (actual rows=4000")
                && l.contains("fills=")
                && l.contains("cache_hit_rate=")
                && l.contains("batches=")),
            "fused node: {lines:?}"
        );
        assert!(lines.iter().any(|l| l.starts_with("I/O: reads=")));
        assert!(lines.iter().any(|l| l.starts_with("Training: epochs=2")));
        // Unlike EXPLAIN, ANALYZE actually executes: the model is stored.
        assert!(s.catalog().model("m").is_ok());
        // The interpreted tree (fuse = 0) still renders per operator.
        let lines = match s
            .execute(
                "EXPLAIN ANALYZE SELECT * FROM higgs TRAIN BY svm WITH \
                 max_epoch_num = 2, model_name = m0, fuse = 0",
            )
            .unwrap()
        {
            QueryResult::Plan(lines) => lines,
            _ => panic!("expected plan lines"),
        };
        assert!(lines
            .iter()
            .any(|l| l.contains("-> TupleShuffle (actual rows=4000") && l.contains("fills=")));
        assert!(lines
            .iter()
            .any(|l| l.contains("-> BlockShuffle (actual rows=4000")
                && l.contains("cache_hit_rate=")
                && l.contains("retries=0")));
    }

    #[test]
    fn double_buffer_knob_is_bit_identical_and_faster() {
        let mut s = session_with_higgs(3000);
        let mut run = |knob: usize| -> DbTrainSummary {
            let r = s
                .execute(&format!(
                    "SELECT * FROM higgs TRAIN BY lr WITH learning_rate = 0.05, \
                     max_epoch_num = 3, double_buffer = {knob}, model_name = m_db{knob}"
                ))
                .unwrap();
            match r {
                QueryResult::Train(t) => t,
                _ => panic!("expected train result"),
            }
        };
        let serial = run(0);
        let pipelined = run(1);
        // The pipelined plan must visit tuples in the identical order: the
        // stored models agree bit for bit.
        assert_eq!(
            s.catalog().model("m_db0").unwrap().params,
            s.catalog().model("m_db1").unwrap().params,
        );
        // ... while its simulated epochs overlap loading with compute.
        for (sr, pr) in serial.epochs.iter().zip(&pipelined.epochs) {
            assert!((sr.io_seconds - pr.io_seconds).abs() < 1e-12);
            assert!(pr.epoch_seconds < sr.epoch_seconds);
        }
    }

    #[test]
    fn explain_analyze_reports_overlap_for_double_buffered_plans() {
        let mut s = session_with_higgs(2000);
        let root = |s: &mut Session, sql: &str| -> String {
            match s.execute(sql).unwrap() {
                QueryResult::Plan(lines) => lines[0].clone(),
                _ => panic!("expected plan lines"),
            }
        };
        let on = root(
            &mut s,
            "EXPLAIN ANALYZE SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 2",
        );
        assert!(
            on.contains("overlap="),
            "pipelined root must report overlap: {on}"
        );
        let off = root(
            &mut s,
            "EXPLAIN ANALYZE SELECT * FROM higgs TRAIN BY svm WITH \
             max_epoch_num = 2, double_buffer = 0",
        );
        assert!(!off.contains("overlap="), "serial root must not: {off}");
    }

    #[test]
    fn show_stats_surfaces_telemetry_and_opt_out_silences_it() {
        let mut s = session_with_higgs(1000);
        s.execute("SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1")
            .unwrap();
        let lines = match s.execute("SHOW STATS").unwrap() {
            QueryResult::Plan(lines) => lines,
            _ => panic!("expected stats lines"),
        };
        assert!(lines
            .iter()
            .any(|l| l.starts_with("counter storage.device.device_bytes = ")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("counter db.sgd.gradient_steps = 1000")));
        assert!(lines
            .iter()
            .any(|l| l.contains("histogram db.tuple_shuffle.fill.sim_seconds")));
        // Opting out empties subsequent reports (emissions become no-ops).
        s.set_telemetry_enabled(false);
        s.execute("SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1")
            .unwrap();
        match s.execute("SHOW STATS").unwrap() {
            QueryResult::Plan(lines) => {
                assert_eq!(lines, vec!["events 0 recorded, 0 dropped"])
            }
            _ => panic!("expected stats lines"),
        }
    }

    #[test]
    fn telemetry_reenable_keeps_accumulated_metrics() {
        let mut s = session_with_higgs(1000);
        s.execute("SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1")
            .unwrap();
        let steps_before = s.telemetry().counter("db.sgd.gradient_steps").get();
        assert_eq!(steps_before, 1000);
        // Disable, then re-enable: the registry stashed on disable comes
        // back, with every previously accumulated metric intact.
        s.set_telemetry_enabled(false);
        s.set_telemetry_enabled(true);
        assert_eq!(
            s.telemetry().counter("db.sgd.gradient_steps").get(),
            steps_before
        );
        // Redundant toggles are no-ops and must not discard anything.
        s.set_telemetry_enabled(true);
        assert_eq!(
            s.telemetry().counter("db.sgd.gradient_steps").get(),
            steps_before
        );
        // New work keeps accumulating into the restored registry.
        s.execute("SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1")
            .unwrap();
        assert_eq!(
            s.telemetry().counter("db.sgd.gradient_steps").get(),
            2 * steps_before
        );
    }

    #[test]
    fn device_mut_cannot_bypass_the_session_telemetry() {
        let mut s = session_with_higgs(500);
        // Direct access through device_mut() goes through the handle, so
        // the session telemetry still sees the mirrored device counters.
        let before = s.device().stats().io_seconds;
        s.device_mut().charge_seconds(1.5);
        assert!(s.device().stats().io_seconds >= before + 1.5);
        let gauge = s.telemetry().snapshot();
        assert!(
            gauge
                .metrics
                .counters
                .iter()
                .any(|(n, _)| n.starts_with("storage.device."))
                || !gauge.metrics.gauges.is_empty(),
            "handle access must mirror into the session registry"
        );
    }

    #[test]
    fn skipped_blocks_are_deduped_and_sorted_across_epochs() {
        let epoch = |i: usize, skipped: Vec<usize>| DbEpochRecord {
            epoch: i,
            io_seconds: 0.0,
            compute_seconds: 0.0,
            epoch_seconds: 0.0,
            sim_seconds_end: 0.0,
            train_loss: 0.0,
            train_metric: None,
            tuples: 0,
            skipped_blocks: skipped,
        };
        let summary = DbTrainSummary {
            model_name: "m".into(),
            model_kind: ModelKind::Svm,
            strategy: "corgipile".into(),
            snapshot_version: 1,
            setup_seconds: 0.0,
            epochs: vec![epoch(0, vec![7, 3]), epoch(1, vec![3, 5, 7])],
            final_train_metric: 0.0,
            halted: false,
            op_stats: Vec::new(),
        };
        assert_eq!(summary.skipped_blocks(), vec![3, 5, 7]);
    }

    #[test]
    fn fault_and_checkpoint_params_are_validated() {
        let mut s = session_with_higgs(200);
        assert!(matches!(
            s.execute("SELECT * FROM higgs TRAIN BY svm WITH on_fault = 'explode'"),
            Err(DbError::BadParam(_))
        ));
        assert!(matches!(
            s.execute("SELECT * FROM higgs TRAIN BY svm WITH resume = 1"),
            Err(DbError::BadParam(_))
        ));
        assert!(matches!(
            s.execute("SELECT * FROM higgs TRAIN BY svm WITH checkpoint = 3"),
            Err(DbError::BadParam(_))
        ));
        // Resume from a missing checkpoint file is a storage error.
        assert!(matches!(
            s.execute(
                "SELECT * FROM higgs TRAIN BY svm WITH resume = 1, \
                 checkpoint = '/nonexistent/dir/x.ckpt'"
            ),
            Err(DbError::Storage(_))
        ));
    }

    fn store_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("corgi_db_store_{}_{}", tag, std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn durable_session(n: usize, dir: &std::path::Path) -> Session {
        let db = Database::with_model_store(SimDevice::hdd_scaled(1000.0, 0), 0, dir).unwrap();
        db.register_table("higgs", higgs_table(n));
        db.connect()
    }

    #[test]
    fn durable_param_is_validated() {
        let mut s = session_with_higgs(200);
        assert!(matches!(
            s.execute("SELECT * FROM higgs TRAIN BY svm WITH durable = 2"),
            Err(DbError::BadParam(_))
        ));
        // durable = 1 without a model store is a clear error, not a panic.
        match s.execute("SELECT * FROM higgs TRAIN BY svm WITH durable = 1, max_epoch_num = 1") {
            Err(DbError::BadParam(msg)) => assert!(msg.contains("model store"), "{msg}"),
            other => panic!("expected BadParam, got {other:?}"),
        }
        // durable = 0 on a plain engine is a no-op, not an error.
        s.execute("SELECT * FROM higgs TRAIN BY svm WITH durable = 0, max_epoch_num = 1")
            .unwrap();
    }

    #[test]
    fn durable_training_recovers_and_resumes_bit_identical() {
        let base = "SELECT * FROM higgs TRAIN BY svm WITH learning_rate = 0.05, \
                    max_epoch_num = 4, model_name = m, durable = 1";

        // Reference: an uninterrupted durable run.
        let ref_dir = store_dir("ref");
        let mut straight = durable_session(2000, &ref_dir);
        straight.execute(base).unwrap();
        let want = straight.catalog().model("m").unwrap().params.clone();

        // Interrupted: halt after epoch 1 (2 epochs durable), then reopen
        // the engine over the same store directory — recovery replays the
        // WAL — and re-issue the *same* SQL: the run auto-resumes from the
        // durable checkpoint, no checkpoint/resume knobs involved.
        let dir = store_dir("resume");
        {
            let mut s = durable_session(2000, &dir);
            let t = train_summary(s.execute(&format!("{base}, halt_after_epoch = 1")).unwrap());
            assert!(t.halted);
            assert_eq!(t.epochs.len(), 2);
        }
        let mut s = durable_session(2000, &dir);
        // Recovery registered the partial model in the catalog…
        assert!(s.catalog().model("m").is_ok());
        // …and SHOW MODELS reports its durable lineage.
        match s.execute("SHOW MODELS").unwrap() {
            QueryResult::Names(names) => {
                assert_eq!(names, vec!["m v1* epoch=2 source=higgs".to_string()])
            }
            other => panic!("unexpected {other:?}"),
        }
        let t = train_summary(s.execute(base).unwrap());
        assert!(!t.halted);
        assert_eq!(t.epochs.len(), 2, "only epochs 2 and 3 run after resume");
        let got = s.catalog().model("m").unwrap().params.clone();
        assert_eq!(got, want, "durable resume must be bit-identical");
        // The finished version no longer resumes: re-running trains v2.
        let t = train_summary(s.execute(base).unwrap());
        assert_eq!(t.epochs.len(), 4);
        let store = s.database().model_store().unwrap().clone();
        let rec = store.latest("m").unwrap();
        assert_eq!((rec.version, rec.epoch), (2, 4));
        std::fs::remove_dir_all(&ref_dir).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_runs_emit_wal_telemetry_and_explain_analyze_line() {
        let dir = store_dir("telemetry");
        let mut s = durable_session(500, &dir);
        let lines = match s
            .execute(
                "EXPLAIN ANALYZE SELECT * FROM higgs TRAIN BY svm WITH \
                 max_epoch_num = 2, model_name = m, durable = 1",
            )
            .unwrap()
        {
            QueryResult::Plan(lines) => lines,
            other => panic!("unexpected {other:?}"),
        };
        let wal = lines
            .iter()
            .find(|l| l.starts_with("WAL: "))
            .expect("durable EXPLAIN ANALYZE must render a WAL line");
        assert!(wal.contains("appends=2"), "one append per epoch: {wal}");
        assert!(wal.contains("fsyncs="), "{wal}");
        let snap = s.telemetry().snapshot();
        let counter = |n: &str| {
            snap.metrics
                .counters
                .iter()
                .find(|(k, _)| k == n)
                .map(|(_, v)| *v)
        };
        assert_eq!(counter("storage.wal.appends"), Some(2));
        assert!(counter("storage.wal.appended_bytes").unwrap() > 0);
        // Non-durable runs render no WAL line and emit no WAL counters.
        let lines = match s
            .execute(
                "EXPLAIN ANALYZE SELECT * FROM higgs TRAIN BY svm WITH \
                 max_epoch_num = 1, model_name = m2",
            )
            .unwrap()
        {
            QueryResult::Plan(lines) => lines,
            other => panic!("unexpected {other:?}"),
        };
        assert!(!lines.iter().any(|l| l.starts_with("WAL: ")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_model_restores_the_durable_version() {
        let dir = store_dir("load");
        let mut s = durable_session(500, &dir);
        s.execute(
            "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 2, \
             model_name = m, durable = 1",
        )
        .unwrap();
        let want = s.catalog().model("m").unwrap().params.clone();
        // A non-durable retrain overwrites the in-memory object…
        s.execute(
            "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1, \
             learning_rate = 0.9, model_name = m",
        )
        .unwrap();
        assert_ne!(s.catalog().model("m").unwrap().params, want);
        // …and LOAD MODEL brings the durable version back.
        match s.execute("LOAD MODEL m").unwrap() {
            QueryResult::Names(names) => {
                assert_eq!(names, vec!["m v1 epoch=2 source=higgs".to_string()])
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.catalog().model("m").unwrap().params, want);
        assert!(matches!(
            s.execute("LOAD MODEL ghost"),
            Err(DbError::UnknownModel(_))
        ));
        // On a storeless engine LOAD MODEL is a clear error.
        let mut plain = session_with_higgs(100);
        assert!(matches!(
            plain.execute("LOAD MODEL m"),
            Err(DbError::BadParam(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predict_serve_is_bit_identical_to_the_per_tuple_path() {
        let mut s = session_with_higgs(2000);
        s.execute(
            "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 2, \
             model_name = m",
        )
        .unwrap();
        let per_tuple = match s.execute("SELECT * FROM higgs PREDICT BY m").unwrap() {
            QueryResult::Predict {
                predictions,
                metric,
            } => (predictions, metric),
            other => panic!("unexpected {other:?}"),
        };
        // Odd batch size: the tail batch is smaller than the rest.
        let served = match s
            .execute("PREDICT m ON higgs WITH batch_rows = 97")
            .unwrap()
        {
            QueryResult::Serve(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(served.predictions, per_tuple.0);
        assert_eq!(served.metric, Some(per_tuple.1));
        assert_eq!(served.rows, 2000);
        assert_eq!(served.batches, 2000_u64.div_ceil(97));
        assert_eq!(served.batch_wall_seconds.len() as u64, served.batches);
        assert!(served.cache_hit, "TRAIN publishes into the serving cache");
        assert!(served.io_seconds > 0.0 && served.compute_seconds > 0.0);
        assert!(served.latency_quantile(0.5).unwrap() <= served.latency_quantile(0.99).unwrap());
        // Serving telemetry accumulated on the session (the per-tuple
        // path emits none).
        assert_eq!(s.telemetry().counter("serving.predictions").get(), 2000);
        assert_eq!(s.telemetry().counter("serving.cache.hits").get(), 1);
    }

    #[test]
    fn predict_fuse_oracle_and_shared_scan_hit_rate() {
        // Shared-pool engine: repeated PREDICT scans under shared_scan = 1
        // serve warm blocks from the pool; fused and interpreted serving
        // paths stay bit-identical throughout.
        let db = Database::with_shared_buffers(SimDevice::hdd_scaled(1000.0, 0), 64 << 20);
        db.register_table("higgs", higgs_table(2000));
        let mut s = db.connect();
        s.execute("SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1, model_name = m")
            .unwrap();
        let serve = |s: &mut Session, q: &str| match s.execute(q).unwrap() {
            QueryResult::Serve(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        let fused = serve(
            &mut s,
            "PREDICT m ON higgs WHERE id < 700 WITH batch_rows = 128, fuse = 1",
        );
        let interp = serve(
            &mut s,
            "PREDICT m ON higgs WHERE id < 700 WITH batch_rows = 128, fuse = 0",
        );
        assert_eq!(fused.predictions, interp.predictions);
        assert_eq!(fused.metric, interp.metric);
        assert_eq!(fused.rows_filtered, interp.rows_filtered);
        assert_eq!(fused.batches, interp.batches);
        assert!(
            fused.compute_seconds < interp.compute_seconds,
            "fused serving must charge less compute: {} vs {}",
            fused.compute_seconds,
            interp.compute_seconds
        );
        // shared_scan: the second pass over the same table hits the pool.
        let first = serve(&mut s, "PREDICT m ON higgs WITH shared_scan = 1");
        let second = serve(&mut s, "PREDICT m ON higgs WITH shared_scan = 1");
        assert_eq!(first.predictions, second.predictions);
        assert!(
            second.scan_cache_hit_rate > 0.9,
            "second shared scan must be pool-warm, got {}",
            second.scan_cache_hit_rate
        );
        // Hit rate surfaces on the EXPLAIN ANALYZE serving line.
        match s
            .execute("EXPLAIN ANALYZE PREDICT m ON higgs WITH shared_scan = 1")
            .unwrap()
        {
            QueryResult::Plan(lines) => {
                let serving = lines
                    .iter()
                    .find(|l| l.starts_with("Serving:"))
                    .expect("serving line");
                assert!(serving.contains("scan_hit_rate="), "{serving}");
                assert!(!serving.contains("scan_hit_rate=0.0%"), "{serving}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // A private-pool engine leaves shared_scan inert but valid.
        let mut p = session_with_higgs(500);
        p.execute("SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1, model_name = m")
            .unwrap();
        let r = serve(&mut p, "PREDICT m ON higgs WITH shared_scan = 1");
        assert_eq!(r.rows, 500);
    }

    #[test]
    fn predict_serve_filter_pushes_down_and_validates() {
        let mut s = session_with_higgs(2000);
        s.execute("SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1, model_name = m")
            .unwrap();
        let served = match s
            .execute("PREDICT m ON higgs WHERE id < 500 WITH batch_rows = 128")
            .unwrap()
        {
            QueryResult::Serve(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(served.rows, 500);
        assert_eq!(served.predictions.len(), 500);
        assert_eq!(served.rows_filtered, 1500);
        // EXPLAIN renders the pushed-down serving plan without executing.
        match s
            .execute("EXPLAIN PREDICT m ON higgs WHERE id < 500")
            .unwrap()
        {
            QueryResult::Plan(lines) => {
                assert!(
                    lines[0].starts_with("Predict (model=m, version=active, batch_rows=256)"),
                    "{lines:?}"
                );
                assert!(
                    lines
                        .iter()
                        .any(|l| l.contains("Fused Pipeline (scan→filter→predict)")),
                    "{lines:?}"
                );
                assert!(lines.iter().any(|l| l.contains("Scan: sequential over")));
                assert!(
                    lines.iter().any(|l| l.trim_start().starts_with("Filter:")),
                    "filter fused into the scan: {lines:?}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // EXPLAIN ANALYZE executes and appends the serving summary line.
        match s
            .execute("EXPLAIN ANALYZE PREDICT m ON higgs WITH batch_rows = 512")
            .unwrap()
        {
            QueryResult::Plan(lines) => {
                assert!(
                    lines[0].starts_with("Predict (actual rows=2000"),
                    "{lines:?}"
                );
                assert!(
                    lines.iter().any(|l| l.starts_with("Serving: model=m v1")),
                    "{lines:?}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown model / column are planning errors.
        assert!(matches!(
            s.execute("PREDICT ghost ON higgs"),
            Err(DbError::UnknownModel(_))
        ));
        assert!(matches!(
            s.execute("EXPLAIN PREDICT ghost ON higgs"),
            Err(DbError::UnknownModel(_))
        ));
        assert!(matches!(
            s.execute("PREDICT m ON higgs WHERE f99 > 0"),
            Err(DbError::UnknownColumn(_))
        ));
        assert!(matches!(
            s.execute("PREDICT m ON higgs WITH batch_rows = 0"),
            Err(DbError::BadParam(_))
        ));
        assert!(matches!(
            s.execute("PREDICT m ON higgs WITH bogus = 1"),
            Err(DbError::BadParam(_))
        ));
    }

    #[test]
    fn predict_serve_version_pin_survives_hot_reload() {
        let dir = store_dir("serve_pin");
        let mut s = durable_session(1000, &dir);
        let train = |lr: &str| {
            format!(
                "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 2, \
                 learning_rate = {lr}, model_name = m, durable = 1"
            )
        };
        s.execute(&train("0.05")).unwrap();
        let v1 = match s.execute("PREDICT m ON higgs").unwrap() {
            QueryResult::Serve(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(v1.version, 1);
        // Retrain: v2 becomes active, but VERSION 1 stays servable and
        // bit-identical to what v1 served before the reload.
        s.execute(&train("0.9")).unwrap();
        let active = match s.execute("PREDICT m ON higgs").unwrap() {
            QueryResult::Serve(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(active.version, 2);
        let pinned = match s.execute("PREDICT m VERSION 1 ON higgs").unwrap() {
            QueryResult::Serve(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(pinned.version, 1);
        assert_eq!(pinned.predictions, v1.predictions);
        // An explicit pin does not steal traffic from the active version.
        assert_eq!(s.database().model_cache().active_version("m"), Some(2));
        // Unknown version is a structured error.
        assert!(matches!(
            s.execute("PREDICT m VERSION 9 ON higgs"),
            Err(DbError::UnknownModel(_))
        ));
        // LOAD MODEL … AS ACTIVE is the explicit rollback path.
        match s.execute("LOAD MODEL m VERSION 1 AS ACTIVE").unwrap() {
            QueryResult::Names(names) => {
                assert_eq!(
                    names,
                    vec!["m v1 epoch=2 source=higgs (active)".to_string()]
                )
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.database().model_cache().active_version("m"), Some(1));
        let rolled_back = match s.execute("PREDICT m ON higgs").unwrap() {
            QueryResult::Serve(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(rolled_back.version, 1);
        assert_eq!(rolled_back.predictions, v1.predictions);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn show_models_marks_the_cache_active_version() {
        // Storeless engine: non-durable training still publishes to the
        // cache, so SHOW MODELS marks the served version.
        let mut s = session_with_higgs(300);
        s.execute("SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1, model_name = m")
            .unwrap();
        match s.execute("SHOW MODELS").unwrap() {
            QueryResult::Names(names) => assert_eq!(names, vec!["m v1*".to_string()]),
            other => panic!("unexpected {other:?}"),
        }
        // Durable engine: the store's latest and the cache's active can
        // diverge (non-durable retrain bumps only the cache).
        let dir = store_dir("show_models");
        let mut s = durable_session(300, &dir);
        s.execute(
            "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 2, \
             model_name = m, durable = 1",
        )
        .unwrap();
        match s.execute("SHOW MODELS").unwrap() {
            QueryResult::Names(names) => {
                assert_eq!(names, vec!["m v1* epoch=2 source=higgs".to_string()])
            }
            other => panic!("unexpected {other:?}"),
        }
        s.execute("SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1, model_name = m")
            .unwrap();
        match s.execute("SHOW MODELS").unwrap() {
            QueryResult::Names(names) => {
                assert_eq!(
                    names,
                    vec!["m v1 epoch=2 source=higgs active=v2".to_string()]
                )
            }
            other => panic!("unexpected {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn predict_batch_rejects_a_dimension_mismatch() {
        let mut s = session_with_higgs(300);
        // Train on a 3-column projection, then serve against the full
        // 28-feature table: a clear error, not garbage predictions.
        s.execute(
            "SELECT f0, f1, f2 FROM higgs TRAIN BY svm WITH max_epoch_num = 1, \
             model_name = narrow",
        )
        .unwrap();
        match s.execute("PREDICT narrow ON higgs") {
            Err(DbError::BadParam(msg)) => assert!(msg.contains("features"), "{msg}"),
            other => panic!("expected BadParam, got {other:?}"),
        }
    }

    // --- Cost-based planner, RECLUSTER, and the typed option registry ---

    fn run_train(s: &mut Session, sql: &str) -> DbTrainSummary {
        train_summary(s.execute(sql).unwrap())
    }

    #[test]
    fn planner_prefers_corgi2_on_clustered_data_over_many_epochs() {
        // Adversarially clustered data + enough epochs to amortize the
        // bounded RECLUSTER pass: the chooser must move off plain
        // CorgiPile onto the Corgi²-style strategy.
        let mut s = session_with_higgs(2000);
        let t = run_train(
            &mut s,
            "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 20, model_name = m",
        );
        assert_eq!(t.strategy, "corgi2", "clustered + 20 epochs");
        assert!(t.setup_seconds > 0.0, "bounded recluster must be charged");
    }

    #[test]
    fn planner_prefers_plain_corgipile_on_preshuffled_data() {
        let table = DatasetSpec::higgs_like(2000)
            .with_order(Order::Shuffled)
            .with_block_bytes(8192)
            .build_table(1)
            .unwrap();
        let db = Database::new(SimDevice::hdd_scaled(1000.0, 0));
        db.register_table("higgs", table);
        let mut s = db.connect();
        let t = run_train(
            &mut s,
            "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 20, model_name = m",
        );
        assert_eq!(t.strategy, "corgipile", "pre-shuffled data needs no setup");
        assert_eq!(t.setup_seconds, 0.0);
    }

    #[test]
    fn planner_zero_pins_the_historical_default() {
        // `planner = 0` is the A/B oracle: same query as the corgi2 test
        // above, but the chooser is off and plain CorgiPile runs.
        let mut s = session_with_higgs(2000);
        let t = run_train(
            &mut s,
            "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 20, planner = 0, \
             model_name = m",
        );
        assert_eq!(t.strategy, "corgipile");
    }

    #[test]
    fn explain_renders_options_and_planner_evidence() {
        let mut s = session_with_higgs(2000);
        let lines = match s
            .execute("EXPLAIN SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 20")
            .unwrap()
        {
            QueryResult::Plan(lines) => lines,
            other => panic!("expected Plan, got {other:?}"),
        };
        let options = lines
            .iter()
            .find(|l| l.starts_with("Options: "))
            .expect("effective options line");
        assert!(options.contains("max_epoch_num=20"), "{options}");
        assert!(options.contains("planner=1"), "{options}");
        let planner = lines
            .iter()
            .find(|l| l.starts_with("Planner: "))
            .expect("planner evidence line");
        assert!(planner.contains("strategy=corgi2"), "{planner}");
        assert!(planner.contains("h_d="), "{planner}");
        assert!(planner.contains("predicted_epoch_io="), "{planner}");

        // An explicit strategy skips the chooser — no Planner line.
        let lines = match s
            .execute(
                "EXPLAIN SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 20, \
                 strategy = 'block_only'",
            )
            .unwrap()
        {
            QueryResult::Plan(lines) => lines,
            other => panic!("expected Plan, got {other:?}"),
        };
        assert!(lines.iter().any(|l| l.starts_with("Options: ")));
        assert!(!lines.iter().any(|l| l.starts_with("Planner: ")));
    }

    #[test]
    fn explain_renders_the_new_strategies() {
        let mut s = session_with_higgs(1000);
        for (strategy, needle) in [
            ("corgi2", "reclustered copy"),
            ("block_reversal", "rotated/reversed near-sequential"),
        ] {
            let lines = match s
                .execute(&format!(
                    "EXPLAIN SELECT * FROM higgs TRAIN BY svm WITH strategy = '{strategy}'"
                ))
                .unwrap()
            {
                QueryResult::Plan(lines) => lines,
                other => panic!("expected Plan, got {other:?}"),
            };
            assert!(
                lines.iter().any(|l| l.contains(needle)),
                "{strategy}: {lines:?}"
            );
        }
    }

    #[test]
    fn unknown_parameter_suggests_the_nearest_key() {
        let mut s = session_with_higgs(100);
        match s.execute("SELECT * FROM higgs TRAIN BY svm WITH buffer_fractoin = 0.2") {
            Err(DbError::BadParam(msg)) => {
                assert!(msg.contains("unknown parameter buffer_fractoin"), "{msg}");
                assert!(msg.contains("did you mean buffer_fraction?"), "{msg}");
            }
            other => panic!("expected BadParam, got {other:?}"),
        }
        // Statement-scoped: planner is a TRAIN option, not a PREDICT one.
        s.execute("SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1, model_name = m")
            .unwrap();
        match s.execute("PREDICT m ON higgs WITH planner = 1") {
            Err(DbError::BadParam(msg)) => {
                assert!(msg.contains("unknown parameter planner"), "{msg}")
            }
            other => panic!("expected BadParam, got {other:?}"),
        }
    }

    #[test]
    fn recluster_statement_stays_within_budget_and_replaces_the_table() {
        let mut s = session_with_higgs(3000);
        let (io, budget, full) = match s
            .execute("RECLUSTER higgs WITH io_budget = 0.3, seed = 7")
            .unwrap()
        {
            QueryResult::Recluster {
                table,
                blocks_rewritten,
                blocks_total,
                io_seconds,
                budget_io,
                full_shuffle_io,
            } => {
                assert_eq!(table, "higgs");
                assert!(blocks_rewritten > 0, "budget admits at least one group");
                assert!(blocks_rewritten <= blocks_total);
                (io_seconds, budget_io, full_shuffle_io)
            }
            other => panic!("expected Recluster, got {other:?}"),
        };
        assert!(io > 0.0);
        assert!(io <= budget * 1.000001, "io {io} vs budget {budget}");
        assert!((budget - 0.3 * full).abs() < 1e-12);
        // The re-clustered table replaced the original under its own name
        // and remains fully queryable.
        let t = run_train(
            &mut s,
            "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 2, model_name = m",
        );
        assert!(t.final_train_metric > 0.5);
    }

    #[test]
    fn recluster_validates_its_options() {
        let mut s = session_with_higgs(200);
        match s.execute("RECLUSTER higgs WITH io_budget = 1.5") {
            Err(DbError::BadParam(msg)) => {
                assert_eq!(msg, "io_budget must be in (0, 1]")
            }
            other => panic!("expected BadParam, got {other:?}"),
        }
        match s.execute("RECLUSTER higgs WITH fuse = 1") {
            Err(DbError::BadParam(msg)) => {
                assert!(msg.contains("unknown parameter fuse"), "{msg}")
            }
            other => panic!("expected BadParam, got {other:?}"),
        }
        assert!(matches!(
            s.execute("RECLUSTER nope"),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn new_strategies_are_bit_reproducible_across_executor_configs() {
        // For a fixed seed, corgi2 and block_reversal must produce
        // bit-identical models across every fuse × double_buffer ×
        // pushdown combination — the same oracle the original strategies
        // are held to.
        for strategy in ["corgi2", "block_reversal"] {
            let mut reference: Option<Vec<f32>> = None;
            for fuse in [0, 1] {
                for double_buffer in [0, 1] {
                    for pushdown in [0, 1] {
                        let mut s = session_with_higgs(1000);
                        let sql = format!(
                            "SELECT * FROM higgs TRAIN BY svm WITH strategy = '{strategy}', \
                             max_epoch_num = 3, seed = 7, fuse = {fuse}, \
                             double_buffer = {double_buffer}, pushdown = {pushdown}, \
                             model_name = m"
                        );
                        run_train(&mut s, &sql);
                        let params = s.catalog().model("m").unwrap().params.clone();
                        match &reference {
                            None => reference = Some(params),
                            Some(r) => assert_eq!(
                                r, &params,
                                "{strategy} fuse={fuse} db={double_buffer} pd={pushdown}"
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn block_variance_is_cached_until_the_table_changes() {
        let mut s = session_with_higgs(1000);
        s.execute("EXPLAIN SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 20")
            .unwrap();
        let table = s.catalog().table("higgs").unwrap();
        let tid = table.config().table_id;
        let hd = s
            .catalog()
            .cached_block_variance("higgs", tid)
            .expect("planner caches its estimate");
        assert!((0.0..=1.0).contains(&hd));
        // RECLUSTER re-registers the table: the stale estimate must go.
        s.execute("RECLUSTER higgs WITH io_budget = 0.5").unwrap();
        assert_eq!(s.catalog().cached_block_variance("higgs", tid), None);
    }

    // --- Appendable tables: INSERT and TRAIN … CONTINUOUS ---

    /// One 29-value SQL row (28 features + label) for the higgs table.
    fn sql_row(seed: usize) -> String {
        let mut vals: Vec<String> = (0..28).map(|i| format!("{}.5", (seed + i) % 7)).collect();
        vals.push("1".into());
        format!("({})", vals.join(", "))
    }

    #[test]
    fn insert_appends_rows_and_bumps_the_snapshot_version() {
        let mut s = session_with_higgs(300);
        assert_eq!(s.catalog().table_version("higgs").unwrap(), 1);
        match s
            .execute(&format!(
                "INSERT INTO higgs VALUES {}, {}",
                sql_row(0),
                sql_row(1)
            ))
            .unwrap()
        {
            QueryResult::Insert {
                table,
                rows,
                version,
                total_tuples,
            } => {
                assert_eq!(table, "higgs");
                assert_eq!(rows, 2);
                assert_eq!(version, 2);
                assert_eq!(total_tuples, 302);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.catalog().table("higgs").unwrap().num_tuples(), 302);
        // SHOW TABLES reflects the bump.
        match s.execute("SHOW TABLES").unwrap() {
            QueryResult::Names(names) => {
                assert!(names[0].starts_with("higgs v2 "), "{names:?}");
                assert!(names[0].ends_with("tuples=302"), "{names:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // A mismatched row width is a clear error before anything lands.
        match s.execute("INSERT INTO higgs VALUES (1, 2, 3)") {
            Err(DbError::BadParam(msg)) => assert!(msg.contains("features"), "{msg}"),
            other => panic!("expected BadParam, got {other:?}"),
        }
        assert!(matches!(
            s.execute(&format!("INSERT INTO ghost VALUES {}", sql_row(0))),
            Err(DbError::UnknownTable(_))
        ));
        // EXPLAIN INSERT renders the statement without executing it.
        match s
            .execute(&format!("EXPLAIN INSERT INTO higgs VALUES {}", sql_row(2)))
            .unwrap()
        {
            QueryResult::Plan(lines) => assert_eq!(
                lines,
                vec!["Insert on higgs (rows=1, current snapshot v2)".to_string()]
            ),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(s.catalog().table_version("higgs").unwrap(), 2);
        assert_eq!(s.telemetry().counter("db.insert.rows").get(), 2);
    }

    #[test]
    fn insert_invalidates_the_cached_block_variance() {
        let mut s = session_with_higgs(1000);
        s.execute("EXPLAIN SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 20")
            .unwrap();
        let tid = s.catalog().table("higgs").unwrap().config().table_id;
        assert!(s.catalog().cached_block_variance("higgs", tid).is_some());
        s.execute(&format!("INSERT INTO higgs VALUES {}", sql_row(0)))
            .unwrap();
        // The publish assigned a fresh table_id and dropped the stale ĥ_D.
        assert_eq!(s.catalog().cached_block_variance("higgs", tid), None);
        let new_tid = s.catalog().table("higgs").unwrap().config().table_id;
        assert_ne!(new_tid, tid);
    }

    #[test]
    fn train_continuous_on_a_static_table_matches_plain_train() {
        let plain = "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 4, \
                     seed = 7, model_name = m";
        let mut a = session_with_higgs(1000);
        a.execute(plain).unwrap();
        let want = a.catalog().model("m").unwrap().params.clone();
        // One chunk (refresh defaults to max_epoch_num) …
        let mut b = session_with_higgs(1000);
        let t = train_summary(
            b.execute(
                "SELECT * FROM higgs TRAIN BY svm CONTINUOUS WITH max_epoch_num = 4, \
                 seed = 7, model_name = m",
            )
            .unwrap(),
        );
        assert_eq!(t.snapshot_version, 1);
        assert_eq!(t.epochs.len(), 4);
        assert!(!t.halted);
        assert_eq!(b.catalog().model("m").unwrap().params, want);
        // … and epoch-granular chunks (each resuming the last checkpoint)
        // still match the uninterrupted plain run bit-for-bit.
        let mut c = session_with_higgs(1000);
        let t = train_summary(
            c.execute(
                "SELECT * FROM higgs TRAIN BY svm CONTINUOUS WITH max_epoch_num = 4, \
                 refresh = 1, seed = 7, model_name = m",
            )
            .unwrap(),
        );
        assert_eq!(t.epochs.len(), 4);
        assert_eq!(c.catalog().model("m").unwrap().params, want);
        assert_eq!(c.telemetry().counter("db.train.continuous_chunks").get(), 4);
    }

    #[test]
    fn train_continuous_repins_snapshots_and_reruns_bit_identically() {
        let run = || {
            let db = Database::new(SimDevice::hdd_scaled(1000.0, 0));
            db.register_table("higgs", higgs_table(1000));
            let mut s = db.connect();
            let writer = db.clone();
            s.set_refresh_hook(move |chunk| {
                // Deterministic drift: 40 rows per epoch boundary, shaped
                // by the chunk index, appended through the catalog exactly
                // as a concurrent INSERT would be.
                let rows: Vec<Tuple> = (0..40)
                    .map(|i| {
                        let x = (chunk * 40 + i) as f32 * 0.01;
                        Tuple::dense(0, vec![x; 28], (i % 2) as f32)
                    })
                    .collect();
                writer.catalog().append_rows("higgs", rows).unwrap();
            });
            let t = train_summary(
                s.execute(
                    "SELECT * FROM higgs TRAIN BY svm CONTINUOUS WITH max_epoch_num = 6, \
                     refresh = 2, seed = 7, model_name = m",
                )
                .unwrap(),
            );
            (t, s.catalog().model("m").unwrap().params.clone())
        };
        let (t1, params1) = run();
        let (t2, params2) = run();
        assert_eq!(
            params1, params2,
            "the same drift schedule must train a bit-identical model"
        );
        assert_eq!(t1.epochs.len(), 6);
        // Two re-pins over the appended data: versions 1 → 2 → 3.
        assert_eq!(t1.snapshot_version, 3);
        assert_eq!(t2.snapshot_version, 3);
    }

    #[test]
    fn continuous_validates_its_options() {
        let mut s = session_with_higgs(200);
        // refresh without CONTINUOUS is meaningless.
        match s.execute("SELECT * FROM higgs TRAIN BY svm WITH refresh = 2") {
            Err(DbError::BadParam(msg)) => assert!(msg.contains("CONTINUOUS"), "{msg}"),
            other => panic!("expected BadParam, got {other:?}"),
        }
        // EXPLAIN applies the same validation without executing.
        assert!(matches!(
            s.execute("EXPLAIN SELECT * FROM higgs TRAIN BY svm WITH refresh = 2"),
            Err(DbError::BadParam(_))
        ));
        // Checkpoint/restart knobs belong to the single-shot path.
        for knob in [
            "durable = 1",
            "resume = 1",
            "halt_after_epoch = 1",
            "block_size = 8192",
        ] {
            match s.execute(&format!(
                "SELECT * FROM higgs TRAIN BY svm CONTINUOUS WITH {knob}"
            )) {
                Err(DbError::BadParam(msg)) => {
                    assert!(msg.contains("CONTINUOUS"), "{knob}: {msg}")
                }
                other => panic!("{knob}: expected BadParam, got {other:?}"),
            }
        }
        assert!(matches!(
            s.execute("SELECT * FROM higgs TRAIN BY svm CONTINUOUS WITH refresh = 0"),
            Err(DbError::BadParam(_))
        ));
    }

    #[test]
    fn explain_renders_the_pinned_snapshot_and_continuous_lines() {
        let mut s = session_with_higgs(300);
        let lines = match s
            .execute(
                "EXPLAIN SELECT * FROM higgs TRAIN BY svm CONTINUOUS WITH \
                 max_epoch_num = 6, refresh = 2",
            )
            .unwrap()
        {
            QueryResult::Plan(lines) => lines,
            other => panic!("unexpected {other:?}"),
        };
        assert!(
            lines.iter().any(|l| l == "Snapshot: version=1"),
            "{lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.starts_with("Continuous: refresh=2")),
            "{lines:?}"
        );
        // An INSERT bumps the version the next EXPLAIN pins; plain TRAIN
        // renders the snapshot but no Continuous line.
        s.execute(&format!("INSERT INTO higgs VALUES {}", sql_row(3)))
            .unwrap();
        let lines = match s
            .execute("EXPLAIN SELECT * FROM higgs TRAIN BY svm")
            .unwrap()
        {
            QueryResult::Plan(lines) => lines,
            other => panic!("unexpected {other:?}"),
        };
        assert!(
            lines.iter().any(|l| l == "Snapshot: version=2"),
            "{lines:?}"
        );
        assert!(
            !lines.iter().any(|l| l.starts_with("Continuous:")),
            "{lines:?}"
        );
    }
}
