//! Query planning: logical plans, pushdown rewrites, and physical
//! operator construction.
//!
//! This is the single plan-construction site of the engine. A parsed
//! `TRAIN BY` query becomes a [`LogicalPlan`] tree
//!
//! ```text
//! Sgd ← Project? ← Filter? ← TupleShuffle? ← Scan
//! ```
//!
//! validated against the catalog (feature indices in predicates and
//! projections must exist; `id` is not selectable as a training input),
//! then rewritten by [`LogicalPlan::push_down`], which moves `Filter` and
//! `Project` *below* the tuple-shuffle buffer and fuses them into the
//! block scan. Pushdown matters for convergence-per-byte: the buffer
//! holds a fixed block budget, so filtering before buffering raises the
//! effective buffer fraction of the post-filter dataset that CorgiPile's
//! convergence analysis depends on — and the projection shrinks every
//! buffered tuple besides.
//!
//! Pushdown is an *equivalence*: the tuple shuffle counts its window in
//! source blocks (not tuples) and orders survivors by a deterministic
//! per-tuple key, so the tuple visit sequence — and therefore the trained
//! model, bit for bit — is identical whether a tuple is dropped before
//! the buffer or after it. [`Session::train`](crate::Session) exposes the
//! un-rewritten plan under `WITH pushdown = 0` for exactly that A/B.
//!
//! After (optional) pushdown, lowering runs a *pipeline-fusion* pass:
//! [`build_physical_with`] recognizes the full
//! `Sgd|Predict ← Project? ← Filter? ← TupleShuffle? ← Scan` chain and
//! collapses it into a single [`FusedPipelineOp`] whose inner loop moves
//! whole [`TupleBatch`](corgipile_storage::TupleBatch)es with the
//! predicate, projection, and source shape specialized once at build
//! time — no per-tuple virtual calls. Fusion never changes semantics:
//! the interpreted operator tree stays available under `WITH fuse = 0`
//! as the bit-identity oracle, and both paths replay the same tuple
//! sequence. Only the *compute accounting* differs (the fused path
//! charges its per-tuple dispatch overhead once per batch), which is the
//! vectorization speedup the `vectorize` experiment measures.

use crate::catalog::Catalog;
use crate::error::DbError;
use crate::exec::{
    BlockShuffleOp, FilterOp, FusedPipelineOp, FusedSource, PhysicalOperator, PostStage, ProjectOp,
    ScanMode, TupleShuffleOp,
};
use crate::sql::{ColumnRef, Predicate, Projection, StrategyKind};
use corgipile_data::rng::shuffle_in_place;
use corgipile_shuffle::{recluster_table, StrategyParams};
use corgipile_storage::{DeviceHandle, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Block visit order of the fused scan at the bottom of every plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanOrder {
    /// Stored block order (No Shuffle / Tuple-Only).
    Sequential,
    /// Random block permutation per epoch (CorgiPile / Block-Only).
    RandomBlocks,
    /// Sequential over an offline-shuffled copy (`strategy = 'once'`,
    /// the MADlib `ORDER BY RANDOM()` baseline; pays a one-off setup).
    SequentialShuffledCopy,
    /// Random blocks over a bounded-I/O partially re-clustered copy
    /// (Corgi²; pays `io_budget × full-shuffle` as a one-off setup).
    ReclusteredCopy,
    /// Epoch-indexed rotation/reversal order at near-sequential cost
    /// (Block-Reversal).
    BlockReversal,
}

/// Planner input distilled from a parsed `TRAIN BY` query.
#[derive(Debug, Clone)]
pub struct TrainPlanSpec {
    /// Source table name (for plan rendering).
    pub table: String,
    /// Resolved model kind name (for plan rendering).
    pub model: String,
    /// Number of epochs (`max_epoch_num`).
    pub epochs: usize,
    /// Shuffle strategy.
    pub strategy: StrategyKind,
    /// Projection list.
    pub projection: Projection,
    /// Optional `WHERE` predicate.
    pub filter: Option<Predicate>,
    /// Tuple-shuffle buffer capacity in source blocks.
    pub buffer_blocks: usize,
}

/// Planner input distilled from a parsed `PREDICT … ON …` query (the
/// serving subsystem's batched inference path).
#[derive(Debug, Clone)]
pub struct PredictPlanSpec {
    /// Source table name (for plan rendering).
    pub table: String,
    /// Served model name (for plan rendering).
    pub model: String,
    /// Explicit version pin, `None` for the active version.
    pub version: Option<u32>,
    /// Optional `WHERE` predicate.
    pub filter: Option<Predicate>,
    /// Tuples per prediction batch.
    pub batch_rows: usize,
}

/// A logical operator tree, root first.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// The serving root: one sequential pass of batched inference.
    Predict {
        /// Served model name.
        model: String,
        /// Explicit version pin, `None` for the active version.
        version: Option<u32>,
        /// Tuples per prediction batch.
        batch_rows: usize,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// The training root: re-scans its input once per epoch.
    Sgd {
        /// Model kind name.
        model: String,
        /// Epoch count.
        epochs: usize,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Keep only the named feature columns (the label always rides along).
    Project {
        /// Feature indices to keep, in declared order.
        columns: Vec<usize>,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Drop tuples failing the predicate.
    Filter {
        /// The predicate.
        predicate: Predicate,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Buffered tuple shuffle over block windows.
    TupleShuffle {
        /// Buffer capacity in source blocks.
        buffer_blocks: usize,
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// The block scan, with optionally fused predicate/projection.
    Scan {
        /// Table name.
        table: String,
        /// Block visit order.
        order: ScanOrder,
        /// Number of blocks in the table.
        blocks: usize,
        /// Number of tuples in the table.
        tuples: u64,
        /// Predicate fused into the scan (evaluated before buffering).
        predicate: Option<Predicate>,
        /// Projection fused into the scan (applied after the predicate).
        projection: Option<Vec<usize>>,
    },
}

impl LogicalPlan {
    /// Build the canonical (pre-rewrite) logical plan for a training
    /// query, validating every column reference against the table's
    /// feature count. Errors here are planning-time [`DbError`]s — an
    /// out-of-range `f<N>` never survives to execution.
    pub fn build(spec: &TrainPlanSpec, table: &Table) -> Result<LogicalPlan, DbError> {
        let dim = table.get_tuple(0)?.features.dim();
        validate_columns(spec, dim)?;
        let order = match spec.strategy {
            StrategyKind::CorgiPile | StrategyKind::BlockOnly => ScanOrder::RandomBlocks,
            StrategyKind::TupleOnly | StrategyKind::NoShuffle => ScanOrder::Sequential,
            StrategyKind::ShuffleOnce => ScanOrder::SequentialShuffledCopy,
            StrategyKind::Corgi2 => ScanOrder::ReclusteredCopy,
            StrategyKind::BlockReversal => ScanOrder::BlockReversal,
            other => return Err(DbError::UnknownStrategy(other.name().to_string())),
        };
        let mut node = LogicalPlan::Scan {
            table: spec.table.clone(),
            order,
            blocks: table.num_blocks(),
            tuples: table.num_tuples(),
            predicate: None,
            projection: None,
        };
        if spec.strategy.is_tuple_buffered() {
            node = LogicalPlan::TupleShuffle {
                buffer_blocks: spec.buffer_blocks,
                input: Box::new(node),
            };
        }
        if let Some(p) = &spec.filter {
            node = LogicalPlan::Filter {
                predicate: p.clone(),
                input: Box::new(node),
            };
        }
        if let Some(cols) = spec.projection.feature_indices() {
            node = LogicalPlan::Project {
                columns: cols,
                input: Box::new(node),
            };
        }
        Ok(LogicalPlan::Sgd {
            model: spec.model.clone(),
            epochs: spec.epochs,
            input: Box::new(node),
        })
    }

    /// Build the canonical logical plan for a serving query:
    /// `Predict ← Filter? ← Scan(sequential)`. Pushdown then fuses the
    /// filter into the scan exactly as for training — inference scans
    /// use the same rewrite, so a predicate is evaluated on the zero-copy
    /// block path before any tuple is batched.
    pub fn build_predict(spec: &PredictPlanSpec, table: &Table) -> Result<LogicalPlan, DbError> {
        let dim = table.get_tuple(0)?.features.dim();
        validate_filter(spec.filter.as_ref(), dim)?;
        if spec.batch_rows == 0 {
            return Err(DbError::BadParam("batch_rows must be >= 1".into()));
        }
        let mut node = LogicalPlan::Scan {
            table: spec.table.clone(),
            order: ScanOrder::Sequential,
            blocks: table.num_blocks(),
            tuples: table.num_tuples(),
            predicate: None,
            projection: None,
        };
        if let Some(p) = &spec.filter {
            node = LogicalPlan::Filter {
                predicate: p.clone(),
                input: Box::new(node),
            };
        }
        Ok(LogicalPlan::Predict {
            model: spec.model.clone(),
            version: spec.version,
            batch_rows: spec.batch_rows,
            input: Box::new(node),
        })
    }

    /// Rewrite rules: push `Filter` and `Project` below `TupleShuffle`
    /// and fuse them into the scan. The scan evaluates its predicate
    /// *before* its projection, so fusing both preserves semantics even
    /// though the predicate references pre-projection feature indices.
    pub fn push_down(self) -> LogicalPlan {
        match self {
            LogicalPlan::Predict {
                model,
                version,
                batch_rows,
                input,
            } => LogicalPlan::Predict {
                model,
                version,
                batch_rows,
                input: Box::new(input.push_down()),
            },
            LogicalPlan::Sgd {
                model,
                epochs,
                input,
            } => LogicalPlan::Sgd {
                model,
                epochs,
                input: Box::new(input.push_down()),
            },
            LogicalPlan::Filter { predicate, input } => match input.push_down() {
                LogicalPlan::TupleShuffle {
                    buffer_blocks,
                    input,
                } => LogicalPlan::TupleShuffle {
                    buffer_blocks,
                    input: Box::new(LogicalPlan::Filter { predicate, input }.push_down()),
                },
                LogicalPlan::Scan {
                    table,
                    order,
                    blocks,
                    tuples,
                    predicate: None,
                    projection,
                } => LogicalPlan::Scan {
                    table,
                    order,
                    blocks,
                    tuples,
                    predicate: Some(predicate),
                    projection,
                },
                other => LogicalPlan::Filter {
                    predicate,
                    input: Box::new(other),
                },
            },
            LogicalPlan::Project { columns, input } => match input.push_down() {
                LogicalPlan::TupleShuffle {
                    buffer_blocks,
                    input,
                } => LogicalPlan::TupleShuffle {
                    buffer_blocks,
                    input: Box::new(LogicalPlan::Project { columns, input }.push_down()),
                },
                LogicalPlan::Scan {
                    table,
                    order,
                    blocks,
                    tuples,
                    predicate,
                    projection: None,
                } => LogicalPlan::Scan {
                    table,
                    order,
                    blocks,
                    tuples,
                    predicate,
                    projection: Some(columns),
                },
                other => LogicalPlan::Project {
                    columns,
                    input: Box::new(other),
                },
            },
            LogicalPlan::TupleShuffle {
                buffer_blocks,
                input,
            } => LogicalPlan::TupleShuffle {
                buffer_blocks,
                input: Box::new(input.push_down()),
            },
            scan @ LogicalPlan::Scan { .. } => scan,
        }
    }

    /// Render the plan as the vectorized executor will run it: the root
    /// kernel, then one `Fused Pipeline (…)` node standing in for the
    /// whole collapsed chain, annotated with the scan order, buffer, and
    /// any predicate/projection. Falls back to [`Self::explain_lines`]
    /// when the shape is not fusable (the current planner always is).
    pub fn explain_lines_fused(&self) -> Vec<String> {
        let Some(chain) = fuse_chain(self) else {
            return self.explain_lines();
        };
        let mut lines = Vec::new();
        match self {
            LogicalPlan::Sgd { model, epochs, .. } => lines.push(format!(
                "SGD (model={model}, epochs={epochs}, re-scan per epoch)"
            )),
            LogicalPlan::Predict {
                model,
                version,
                batch_rows,
                ..
            } => {
                let pin = match version {
                    Some(v) => format!("version={v}"),
                    None => "version=active".to_string(),
                };
                lines.push(format!(
                    "Predict (model={model}, {pin}, batch_rows={batch_rows})"
                ));
            }
            _ => unreachable!("fuse_chain roots are Sgd/Predict"),
        }
        lines.push(format!("  -> Fused Pipeline ({})", chain.label()));
        let pad = "       ";
        let LogicalPlan::Scan {
            table,
            order,
            blocks,
            tuples,
            predicate,
            projection,
        } = chain.scan
        else {
            unreachable!("fuse_chain scan is Scan")
        };
        let desc = match order {
            ScanOrder::Sequential => format!("sequential over {blocks} blocks"),
            ScanOrder::RandomBlocks => format!("random order over {blocks} blocks"),
            ScanOrder::SequentialShuffledCopy => {
                format!("sequential over {blocks} blocks of the shuffled copy")
            }
            ScanOrder::ReclusteredCopy => {
                format!("random order over {blocks} blocks of the reclustered copy")
            }
            ScanOrder::BlockReversal => {
                format!("rotated/reversed near-sequential over {blocks} blocks")
            }
        };
        lines.push(format!("{pad}Scan: {desc}"));
        if let Some(bb) = chain.shuffle_blocks {
            lines.push(format!(
                "{pad}Buffer: {bb} source blocks (double-buffered tuple shuffle)"
            ));
        }
        if let Some(cols) = projection.as_ref().or(chain.post_project) {
            lines.push(format!("{pad}Output: {}", feature_list(cols)));
        }
        if let Some(p) = predicate.as_ref().or(chain.post_filter) {
            lines.push(format!("{pad}Filter: ({p})"));
        }
        if *order == ScanOrder::SequentialShuffledCopy {
            lines.push(format!(
                "{pad}(setup: offline full shuffle, ORDER BY RANDOM(), 2x storage)"
            ));
        }
        if *order == ScanOrder::ReclusteredCopy {
            lines.push(format!(
                "{pad}(setup: bounded RECLUSTER, io_budget x full shuffle)"
            ));
        }
        lines.push(format!("  Scan target: {table} ({tuples} tuples)"));
        lines
    }

    /// Render the plan, PostgreSQL `EXPLAIN`-style (root first). The
    /// scan's fused predicate/projection appear as `Filter:` / `Output:`
    /// sub-lines on the scan node itself.
    pub fn explain_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        let mut target = None;
        self.render_into(0, &mut lines, &mut target);
        if let Some((table, tuples)) = target {
            lines.push(format!("  Scan target: {table} ({tuples} tuples)"));
        }
        lines
    }

    fn render_into(
        &self,
        depth: usize,
        lines: &mut Vec<String>,
        target: &mut Option<(String, u64)>,
    ) {
        let head = if depth == 0 {
            String::new()
        } else {
            format!("{}-> ", " ".repeat(2 + 6 * (depth - 1)))
        };
        let pad = " ".repeat(2 * depth + if depth > 0 { 5 } else { 2 });
        match self {
            LogicalPlan::Predict {
                model,
                version,
                batch_rows,
                input,
            } => {
                let pin = match version {
                    Some(v) => format!("version={v}"),
                    None => "version=active".to_string(),
                };
                lines.push(format!(
                    "{head}Predict (model={model}, {pin}, batch_rows={batch_rows})"
                ));
                input.render_into(depth + 1, lines, target);
            }
            LogicalPlan::Sgd {
                model,
                epochs,
                input,
            } => {
                lines.push(format!(
                    "{head}SGD (model={model}, epochs={epochs}, re-scan per epoch)"
                ));
                input.render_into(depth + 1, lines, target);
            }
            LogicalPlan::Project { columns, input } => {
                lines.push(format!("{head}Project ({})", feature_list(columns)));
                input.render_into(depth + 1, lines, target);
            }
            LogicalPlan::Filter { predicate, input } => {
                lines.push(format!("{head}Filter ({predicate})"));
                input.render_into(depth + 1, lines, target);
            }
            LogicalPlan::TupleShuffle {
                buffer_blocks,
                input,
            } => {
                lines.push(format!(
                    "{head}TupleShuffle (double-buffered, buffer={buffer_blocks} blocks)"
                ));
                input.render_into(depth + 1, lines, target);
            }
            LogicalPlan::Scan {
                table,
                order,
                blocks,
                tuples,
                predicate,
                projection,
            } => {
                let desc = match order {
                    ScanOrder::Sequential => format!("sequential over {blocks} blocks"),
                    ScanOrder::RandomBlocks => format!("random order over {blocks} blocks"),
                    ScanOrder::SequentialShuffledCopy => {
                        format!("sequential over {blocks} blocks of the shuffled copy")
                    }
                    ScanOrder::ReclusteredCopy => {
                        format!("random order over {blocks} blocks of the reclustered copy")
                    }
                    ScanOrder::BlockReversal => {
                        format!("rotated/reversed near-sequential over {blocks} blocks")
                    }
                };
                lines.push(format!("{head}BlockShuffle ({desc})"));
                if let Some(cols) = projection {
                    lines.push(format!("{pad}Output: {}", feature_list(cols)));
                }
                if let Some(p) = predicate {
                    lines.push(format!("{pad}Filter: ({p})"));
                }
                if *order == ScanOrder::SequentialShuffledCopy {
                    lines.push(format!(
                        "{pad}(setup: offline full shuffle, ORDER BY RANDOM(), 2x storage)"
                    ));
                }
                if *order == ScanOrder::ReclusteredCopy {
                    lines.push(format!(
                        "{pad}(setup: bounded RECLUSTER, io_budget x full shuffle)"
                    ));
                }
                *target = Some((table.clone(), *tuples));
            }
        }
    }
}

/// The decomposed fusable chain `Sgd|Predict ← Project? ← Filter? ←
/// TupleShuffle? ← Scan`, borrowed from a lowered logical plan. Produced
/// by [`fuse_chain`]; consumed by the fusion pass in
/// [`build_physical_with`] and by fused `EXPLAIN` rendering.
struct FuseChain<'a> {
    /// `"sgd"` or `"predict"` — the root kernel, last stage of the label.
    kernel: &'static str,
    /// Post-buffer predicate (`pushdown = 0` plans only).
    post_filter: Option<&'a Predicate>,
    /// Post-buffer projection (`pushdown = 0` plans only).
    post_project: Option<&'a Vec<usize>>,
    /// Tuple-shuffle buffer capacity in source blocks, if the strategy
    /// buffers at all.
    shuffle_blocks: Option<usize>,
    /// The `LogicalPlan::Scan` leaf.
    scan: &'a LogicalPlan,
}

impl FuseChain<'_> {
    /// Stage list in execution order, e.g. `scan→filter→sgd` for a
    /// pushed-down block-only TRAIN or `scan→shuffle→filter→predict`
    /// for an unpushed filtered PREDICT over a buffered strategy.
    fn label(&self) -> String {
        let LogicalPlan::Scan {
            predicate,
            projection,
            ..
        } = self.scan
        else {
            unreachable!("fuse_chain scan is Scan")
        };
        let mut stages = vec!["scan"];
        if predicate.is_some() {
            stages.push("filter");
        }
        if projection.is_some() {
            stages.push("project");
        }
        if self.shuffle_blocks.is_some() {
            stages.push("shuffle");
        }
        if self.post_filter.is_some() {
            stages.push("filter");
        }
        if self.post_project.is_some() {
            stages.push("project");
        }
        stages.push(self.kernel);
        stages.join("→")
    }
}

/// Decompose a lowered plan into the fusable chain, or `None` for shapes
/// the fusion pass doesn't cover. The current planner only ever emits
/// fusable shapes (with or without pushdown), so the `None` arm is a
/// totality guard for future plan nodes, not a live path.
fn fuse_chain(plan: &LogicalPlan) -> Option<FuseChain<'_>> {
    let (kernel, mut node) = match plan {
        LogicalPlan::Sgd { input, .. } => ("sgd", input.as_ref()),
        LogicalPlan::Predict { input, .. } => ("predict", input.as_ref()),
        _ => return None,
    };
    let mut post_project = None;
    if let LogicalPlan::Project { columns, input } = node {
        post_project = Some(columns);
        node = input.as_ref();
    }
    let mut post_filter = None;
    if let LogicalPlan::Filter { predicate, input } = node {
        post_filter = Some(predicate);
        node = input.as_ref();
    }
    let mut shuffle_blocks = None;
    if let LogicalPlan::TupleShuffle {
        buffer_blocks,
        input,
    } = node
    {
        shuffle_blocks = Some(*buffer_blocks);
        node = input.as_ref();
    }
    match node {
        scan @ LogicalPlan::Scan { .. } => Some(FuseChain {
            kernel,
            post_filter,
            post_project,
            shuffle_blocks,
            scan,
        }),
        _ => None,
    }
}

/// `"f0, f3, label"`-style rendering of a projected feature list.
pub(crate) fn feature_list(columns: &[usize]) -> String {
    let mut s = String::new();
    for c in columns {
        s.push_str(&format!("f{c}, "));
    }
    s.push_str("label");
    s
}

fn check_feature(i: usize, dim: usize) -> Result<(), DbError> {
    if i >= dim {
        Err(DbError::UnknownColumn(format!(
            "f{i} (table has features f0..f{})",
            dim - 1
        )))
    } else {
        Ok(())
    }
}

/// Validate every feature index a predicate references against the
/// table's dimensionality (shared by the train and predict planners).
fn validate_filter(filter: Option<&Predicate>, dim: usize) -> Result<(), DbError> {
    if let Some(p) = filter {
        let mut cols = Vec::new();
        p.for_each_column(&mut |c| cols.push(c));
        for c in cols {
            if let ColumnRef::Feature(i) = c {
                check_feature(i, dim)?;
            }
        }
    }
    Ok(())
}

fn validate_columns(spec: &TrainPlanSpec, dim: usize) -> Result<(), DbError> {
    let check_feature = |i: usize| check_feature(i, dim);
    validate_filter(spec.filter.as_ref(), dim)?;
    if let Projection::Columns(cols) = &spec.projection {
        let mut seen = Vec::new();
        for c in cols {
            match c {
                ColumnRef::Id => {
                    return Err(DbError::UnknownColumn(
                        "id (not selectable as a training input)".into(),
                    ))
                }
                ColumnRef::Label => {}
                ColumnRef::Feature(i) => check_feature(*i)?,
            }
            if seen.contains(c) {
                return Err(DbError::Parse(format!(
                    "duplicate column {c} in projection"
                )));
            }
            seen.push(*c);
        }
        if !cols.iter().any(|c| matches!(c, ColumnRef::Feature(_))) {
            return Err(DbError::Parse(
                "projection must include at least one feature column".into(),
            ));
        }
    }
    Ok(())
}

/// A built physical plan: the operator tree below the SGD root, plus the
/// one-off setup cost charged while building it (`strategy = 'once'`
/// pays its offline shuffle here).
pub struct PhysicalPlan {
    /// Input operator for [`crate::exec::SgdOperator`].
    pub child: Box<dyn PhysicalOperator>,
    /// Simulated seconds spent on one-off setup (offline shuffle).
    pub setup_seconds: f64,
    /// Whether lowering collapsed the chain into a [`FusedPipelineOp`]
    /// (the root operator should then run in batched-accounting mode).
    pub fused: bool,
}

/// Lowering knobs threaded from `WITH` parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildOptions {
    /// Collapse the fusable chain into a single [`FusedPipelineOp`]
    /// (`WITH fuse = 1`, the session default). Off, lowering emits the
    /// interpreted operator tree — the bit-identity oracle.
    pub fuse: bool,
    /// Route sequential scans through the shared buffer pool when the
    /// context carries one (`WITH shared_scan = 1`, serving only).
    pub shared_scan: bool,
}

/// Lower a logical plan to the interpreted operator tree (no fusion, no
/// shared scan). Kept as the plain entry point for operator-level tests
/// and oracles; `Session` routes through [`build_physical_with`].
pub fn build_physical(
    plan: &LogicalPlan,
    table: &Arc<Table>,
    table_name: &str,
    params: &StrategyParams,
    seed: u64,
    dev: &mut DeviceHandle,
    catalog: &Catalog,
) -> Result<PhysicalPlan, DbError> {
    build_physical_with(
        plan,
        table,
        table_name,
        params,
        seed,
        dev,
        catalog,
        BuildOptions::default(),
    )
}

/// Lower a logical plan to physical operators. This is the only place in
/// the engine that constructs scan/shuffle/filter/project operators for
/// queries — `Session::train`, `Session::predict_batch`, and
/// `EXPLAIN ANALYZE` all route here.
///
/// With `opts.fuse` set, the pass recognizes the full
/// `Sgd|Predict ← Project? ← Filter? ← TupleShuffle? ← Scan` chain and
/// emits one [`FusedPipelineOp`]: the scan (with any pushed-down
/// predicate/projection) and the optional tuple shuffle become a
/// statically-dispatched [`FusedSource`], and any post-buffer
/// filter/project becomes a [`PostStage`] chosen once here rather than
/// re-decided per tuple.
#[allow(clippy::too_many_arguments)]
pub fn build_physical_with(
    plan: &LogicalPlan,
    table: &Arc<Table>,
    table_name: &str,
    params: &StrategyParams,
    seed: u64,
    dev: &mut DeviceHandle,
    catalog: &Catalog,
    opts: BuildOptions,
) -> Result<PhysicalPlan, DbError> {
    let mut setup_seconds = 0.0;
    if opts.fuse {
        if let Some(chain) = fuse_chain(plan) {
            let label = chain.label();
            let scan_op = build_scan_op(
                chain.scan,
                table,
                table_name,
                params,
                seed,
                dev,
                catalog,
                opts.shared_scan,
                &mut setup_seconds,
            )?;
            let source = match chain.shuffle_blocks {
                Some(bb) => {
                    FusedSource::Tuple(TupleShuffleOp::new(Box::new(scan_op), bb, params.clone()))
                }
                None => FusedSource::Block(scan_op),
            };
            let post = match (chain.post_filter, chain.post_project) {
                (None, None) => PostStage::None,
                (Some(p), None) => PostStage::Filter(p.clone()),
                (None, Some(c)) => PostStage::Project(c.clone()),
                (Some(p), Some(c)) => PostStage::FilterProject(p.clone(), c.clone()),
            };
            return Ok(PhysicalPlan {
                child: Box::new(FusedPipelineOp::new(source, post, label)),
                setup_seconds,
                fused: true,
            });
        }
    }
    let child = build_node(
        plan,
        table,
        table_name,
        params,
        seed,
        dev,
        catalog,
        opts,
        &mut setup_seconds,
    )?;
    Ok(PhysicalPlan {
        child,
        setup_seconds,
        fused: false,
    })
}

#[allow(clippy::too_many_arguments)]
fn build_node(
    node: &LogicalPlan,
    table: &Arc<Table>,
    table_name: &str,
    params: &StrategyParams,
    seed: u64,
    dev: &mut DeviceHandle,
    catalog: &Catalog,
    opts: BuildOptions,
    setup_seconds: &mut f64,
) -> Result<Box<dyn PhysicalOperator>, DbError> {
    match node {
        LogicalPlan::Predict { input, .. } | LogicalPlan::Sgd { input, .. } => build_node(
            input,
            table,
            table_name,
            params,
            seed,
            dev,
            catalog,
            opts,
            setup_seconds,
        ),
        LogicalPlan::Project { columns, input } => {
            let child = build_node(
                input,
                table,
                table_name,
                params,
                seed,
                dev,
                catalog,
                opts,
                setup_seconds,
            )?;
            Ok(Box::new(ProjectOp::new(child, columns.clone())))
        }
        LogicalPlan::Filter { predicate, input } => {
            let child = build_node(
                input,
                table,
                table_name,
                params,
                seed,
                dev,
                catalog,
                opts,
                setup_seconds,
            )?;
            Ok(Box::new(FilterOp::new(child, predicate.clone())))
        }
        LogicalPlan::TupleShuffle {
            buffer_blocks,
            input,
        } => {
            let child = build_node(
                input,
                table,
                table_name,
                params,
                seed,
                dev,
                catalog,
                opts,
                setup_seconds,
            )?;
            Ok(Box::new(TupleShuffleOp::new(
                child,
                *buffer_blocks,
                params.clone(),
            )))
        }
        scan @ LogicalPlan::Scan { .. } => {
            let op = build_scan_op(
                scan,
                table,
                table_name,
                params,
                seed,
                dev,
                catalog,
                opts.shared_scan,
                setup_seconds,
            )?;
            Ok(Box::new(op))
        }
    }
}

/// Build the leaf [`BlockShuffleOp`] for a `LogicalPlan::Scan` node —
/// shared by the interpreted lowering (which boxes it) and the fusion
/// pass (which embeds it unboxed in a [`FusedSource`], so the fused
/// inner loop reaches it by static dispatch).
#[allow(clippy::too_many_arguments)]
fn build_scan_op(
    scan: &LogicalPlan,
    table: &Arc<Table>,
    table_name: &str,
    params: &StrategyParams,
    seed: u64,
    dev: &mut DeviceHandle,
    catalog: &Catalog,
    shared_scan: bool,
    setup_seconds: &mut f64,
) -> Result<BlockShuffleOp, DbError> {
    let LogicalPlan::Scan {
        order,
        predicate,
        projection,
        ..
    } = scan
    else {
        unreachable!("build_scan_op takes a Scan node")
    };
    let (src, mode) = match order {
        ScanOrder::Sequential => (table.clone(), ScanMode::Sequential),
        ScanOrder::RandomBlocks => (table.clone(), ScanMode::RandomBlocks),
        ScanOrder::BlockReversal => (table.clone(), ScanMode::Reversal),
        ScanOrder::SequentialShuffledCopy => {
            // Offline shuffle first (ORDER BY RANDOM(); 2× storage).
            let io_before = dev.stats().io_seconds;
            let mut order: Vec<u64> = (0..table.num_tuples()).collect();
            shuffle_in_place(&mut StdRng::seed_from_u64(seed), &mut order);
            let copy_name = format!("{table_name}_shuffled");
            let copy_id = catalog.fresh_table_id();
            let copy = dev.with(|d| table.materialize_reordered(&order, copy_name, copy_id, d))?;
            *setup_seconds += dev.stats().io_seconds - io_before;
            (Arc::new(copy), ScanMode::Sequential)
        }
        ScanOrder::ReclusteredCopy => {
            // Corgi²: bounded-I/O partial offline re-cluster, then the
            // regular CorgiPile online pipeline over the copy.
            let io_before = dev.stats().io_seconds;
            let copy_name = format!("{table_name}_reclustered");
            let copy_id = catalog.fresh_table_id();
            let out = dev
                .with(|d| recluster_table(table, copy_name, copy_id, params.io_budget, seed, d))?;
            *setup_seconds += dev.stats().io_seconds - io_before;
            (Arc::new(out.table), ScanMode::RandomBlocks)
        }
    };
    let mut op = BlockShuffleOp::new(src, mode, seed).with_shared_scan(shared_scan);
    if let Some(p) = predicate {
        op = op.with_predicate(p.clone());
    }
    if let Some(cols) = projection {
        op = op.with_projection(cols.clone());
    }
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::CmpOp;
    use corgipile_data::{DatasetSpec, Order};

    fn spec(strategy: StrategyKind) -> TrainPlanSpec {
        TrainPlanSpec {
            table: "t".into(),
            model: "svm".into(),
            epochs: 3,
            strategy,
            projection: Projection::All,
            filter: None,
            buffer_blocks: 2,
        }
    }

    fn table() -> Table {
        DatasetSpec::higgs_like(500)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(8192)
            .build_table(1)
            .unwrap()
    }

    fn pred() -> Predicate {
        Predicate::Cmp {
            col: ColumnRef::Feature(0),
            op: CmpOp::Gt,
            value: 0.0,
        }
    }

    #[test]
    fn pushdown_fuses_filter_and_project_into_the_scan() {
        let mut s = spec(StrategyKind::CorgiPile);
        s.filter = Some(pred());
        s.projection = Projection::Columns(vec![ColumnRef::Feature(1), ColumnRef::Feature(3)]);
        let plan = LogicalPlan::build(&s, &table()).unwrap().push_down();
        // Shape: Sgd -> TupleShuffle -> Scan{pred, proj}.
        let LogicalPlan::Sgd { input, .. } = plan else {
            panic!("root must be Sgd")
        };
        let LogicalPlan::TupleShuffle { input, .. } = *input else {
            panic!("filter/project must sit below the tuple shuffle")
        };
        let LogicalPlan::Scan {
            predicate,
            projection,
            ..
        } = *input
        else {
            panic!("filter/project must fuse into the scan")
        };
        assert_eq!(predicate, Some(pred()));
        assert_eq!(projection, Some(vec![1, 3]));
    }

    #[test]
    fn without_pushdown_filter_stays_above_the_shuffle() {
        let mut s = spec(StrategyKind::CorgiPile);
        s.filter = Some(pred());
        let plan = LogicalPlan::build(&s, &table()).unwrap();
        let LogicalPlan::Sgd { input, .. } = plan else {
            panic!()
        };
        assert!(matches!(*input, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn explain_shows_predicate_on_the_scan_node() {
        let mut s = spec(StrategyKind::CorgiPile);
        s.filter = Some(pred());
        let lines = LogicalPlan::build(&s, &table())
            .unwrap()
            .push_down()
            .explain_lines();
        assert!(lines[0].starts_with("SGD (model=svm, epochs=3"));
        assert!(lines.iter().any(|l| l.contains("TupleShuffle")));
        let scan = lines
            .iter()
            .position(|l| l.contains("BlockShuffle (random"))
            .expect("scan node");
        assert!(
            lines[scan + 1].trim_start().starts_with("Filter: (f0 > 0)"),
            "predicate must annotate the scan node: {lines:?}"
        );
        assert!(!lines.iter().any(|l| l.contains("-> Filter")));
    }

    #[test]
    fn once_plan_renders_setup_line_and_sequential_copy_scan() {
        let lines = LogicalPlan::build(&spec(StrategyKind::ShuffleOnce), &table())
            .unwrap()
            .push_down()
            .explain_lines();
        assert!(lines.iter().any(|l| l.contains("of the shuffled copy")));
        assert!(lines.iter().any(|l| l.contains("offline full shuffle")));
    }

    #[test]
    fn predict_plan_pushes_filter_into_a_sequential_scan() {
        let s = PredictPlanSpec {
            table: "t".into(),
            model: "m".into(),
            version: Some(2),
            filter: Some(pred()),
            batch_rows: 256,
        };
        let plan = LogicalPlan::build_predict(&s, &table())
            .unwrap()
            .push_down();
        let LogicalPlan::Predict {
            version,
            batch_rows,
            input,
            ..
        } = plan
        else {
            panic!("root must be Predict")
        };
        assert_eq!((version, batch_rows), (Some(2), 256));
        let LogicalPlan::Scan {
            order, predicate, ..
        } = *input
        else {
            panic!("filter must fuse into the scan")
        };
        assert_eq!(order, ScanOrder::Sequential);
        assert_eq!(predicate, Some(pred()));
    }

    #[test]
    fn predict_plan_renders_and_validates() {
        let s = PredictPlanSpec {
            table: "t".into(),
            model: "m".into(),
            version: None,
            filter: None,
            batch_rows: 64,
        };
        let lines = LogicalPlan::build_predict(&s, &table())
            .unwrap()
            .push_down()
            .explain_lines();
        assert!(
            lines[0].starts_with("Predict (model=m, version=active, batch_rows=64)"),
            "{lines:?}"
        );
        assert!(lines.iter().any(|l| l.contains("BlockShuffle (sequential")));

        let mut bad = s.clone();
        bad.batch_rows = 0;
        assert!(matches!(
            LogicalPlan::build_predict(&bad, &table()),
            Err(DbError::BadParam(_))
        ));
        let mut bad = s;
        bad.filter = Some(Predicate::Cmp {
            col: ColumnRef::Feature(99),
            op: CmpOp::Gt,
            value: 0.0,
        });
        assert!(matches!(
            LogicalPlan::build_predict(&bad, &table()),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn fuse_chain_labels_follow_execution_order() {
        let t = table();
        // Pushed-down CorgiPile TRAIN with filter + projection.
        let mut s = spec(StrategyKind::CorgiPile);
        s.filter = Some(pred());
        s.projection = Projection::Columns(vec![ColumnRef::Feature(1)]);
        let plan = LogicalPlan::build(&s, &t).unwrap().push_down();
        assert_eq!(
            fuse_chain(&plan).unwrap().label(),
            "scan→filter→project→shuffle→sgd"
        );
        // Same query without pushdown: filter/project stay post-buffer.
        let plan = LogicalPlan::build(&s, &t).unwrap();
        assert_eq!(
            fuse_chain(&plan).unwrap().label(),
            "scan→shuffle→filter→project→sgd"
        );
        // Block-only (no tuple shuffle) with a pushed filter: the exact
        // chain the issue's acceptance criterion names.
        let mut s = spec(StrategyKind::BlockOnly);
        s.filter = Some(pred());
        let plan = LogicalPlan::build(&s, &t).unwrap().push_down();
        assert_eq!(fuse_chain(&plan).unwrap().label(), "scan→filter→sgd");
        // Serving chain.
        let ps = PredictPlanSpec {
            table: "t".into(),
            model: "m".into(),
            version: None,
            filter: Some(pred()),
            batch_rows: 64,
        };
        let plan = LogicalPlan::build_predict(&ps, &t).unwrap().push_down();
        assert_eq!(fuse_chain(&plan).unwrap().label(), "scan→filter→predict");
    }

    #[test]
    fn fused_explain_renders_one_pipeline_node() {
        let mut s = spec(StrategyKind::BlockOnly);
        s.filter = Some(pred());
        let lines = LogicalPlan::build(&s, &table())
            .unwrap()
            .push_down()
            .explain_lines_fused();
        assert!(lines[0].starts_with("SGD (model=svm"), "{lines:?}");
        assert_eq!(lines[1], "  -> Fused Pipeline (scan→filter→sgd)");
        assert!(
            lines.iter().any(|l| l.trim() == "Filter: (f0 > 0)"),
            "{lines:?}"
        );
        assert!(
            lines.last().unwrap().starts_with("  Scan target: t ("),
            "{lines:?}"
        );
        // No interpreted operator nodes survive fusion.
        assert!(!lines.iter().any(|l| l.contains("-> BlockShuffle")));
        assert!(!lines.iter().any(|l| l.contains("-> Filter")));
    }

    #[test]
    fn fused_lowering_builds_one_pipeline_operator() {
        use corgipile_storage::{CacheConfig, DeviceProfile, SimDevice};
        let t = Arc::new(table());
        let catalog = Catalog::new();
        let shared = corgipile_storage::SharedDevice::new(SimDevice::new(
            DeviceProfile::ssd(),
            CacheConfig::disabled(),
        ));
        let mut dev = shared.handle();
        let mut s = spec(StrategyKind::CorgiPile);
        s.filter = Some(pred());
        let plan = LogicalPlan::build(&s, &t).unwrap().push_down();
        let params = StrategyParams {
            seed: 1,
            ..Default::default()
        };
        let fused = build_physical_with(
            &plan,
            &t,
            "t",
            &params,
            1,
            &mut dev,
            &catalog,
            BuildOptions {
                fuse: true,
                shared_scan: false,
            },
        )
        .unwrap();
        assert!(fused.fused);
        assert_eq!(fused.child.name(), "Fused Pipeline");
        let interp = build_physical(&plan, &t, "t", &params, 1, &mut dev, &catalog).unwrap();
        assert!(!interp.fused);
        assert_eq!(interp.child.name(), "TupleShuffle");
    }

    #[test]
    fn out_of_range_feature_is_a_planning_error() {
        let mut s = spec(StrategyKind::CorgiPile);
        s.filter = Some(Predicate::Cmp {
            col: ColumnRef::Feature(99),
            op: CmpOp::Gt,
            value: 0.0,
        });
        assert!(matches!(
            LogicalPlan::build(&s, &table()),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn id_and_duplicates_are_rejected_in_projections() {
        let t = table();
        let mut s = spec(StrategyKind::CorgiPile);
        s.projection = Projection::Columns(vec![ColumnRef::Id]);
        assert!(matches!(
            LogicalPlan::build(&s, &t),
            Err(DbError::UnknownColumn(_))
        ));
        s.projection = Projection::Columns(vec![ColumnRef::Feature(1), ColumnRef::Feature(1)]);
        assert!(matches!(LogicalPlan::build(&s, &t), Err(DbError::Parse(_))));
        s.projection = Projection::Columns(vec![ColumnRef::Label]);
        assert!(matches!(LogicalPlan::build(&s, &t), Err(DbError::Parse(_))));
    }

    #[test]
    fn corgi2_and_block_reversal_map_to_their_scan_orders() {
        let t = table();
        // Corgi²: tuple-buffered shuffle over the reclustered copy.
        let plan = LogicalPlan::build(&spec(StrategyKind::Corgi2), &t).unwrap();
        let LogicalPlan::Sgd { input, .. } = &plan else {
            panic!("Sgd root expected");
        };
        let LogicalPlan::TupleShuffle { input, .. } = input.as_ref() else {
            panic!("corgi2 keeps the tuple-level shuffle");
        };
        let LogicalPlan::Scan { order, .. } = input.as_ref() else {
            panic!("Scan leaf expected");
        };
        assert_eq!(*order, ScanOrder::ReclusteredCopy);

        // Block reversal: block-granular, no tuple buffer.
        let plan = LogicalPlan::build(&spec(StrategyKind::BlockReversal), &t).unwrap();
        let LogicalPlan::Sgd { input, .. } = &plan else {
            panic!("Sgd root expected");
        };
        let LogicalPlan::Scan { order, .. } = input.as_ref() else {
            panic!("block_reversal scans directly under Sgd");
        };
        assert_eq!(*order, ScanOrder::BlockReversal);

        // Library-only strategies stay rejected at plan time.
        assert!(matches!(
            LogicalPlan::build(&spec(StrategyKind::Mrs), &t),
            Err(DbError::UnknownStrategy(_))
        ));
    }
}
