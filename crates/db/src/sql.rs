//! The SQL surface (§6): `TRAIN BY` and `PREDICT BY` queries.
//!
//! ```sql
//! SELECT * FROM forest TRAIN BY svm WITH learning_rate = 0.1,
//!        max_epoch_num = 20, block_size = 10MB, buffer_fraction = 0.1,
//!        strategy = 'corgipile', model_name = 'forest_svm';
//! SELECT * FROM forest PREDICT BY forest_svm;
//! ```
//!
//! The grammar is a tiny hand-rolled recursive-descent parser: keywords are
//! case-insensitive, parameters are `name = value` pairs where values are
//! numbers, quoted strings, bare identifiers, or byte sizes (`10MB`,
//! `512KB`).

use crate::error::DbError;
use std::collections::BTreeMap;

/// A parsed parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Numeric literal.
    Number(f64),
    /// String or bare identifier.
    Text(String),
    /// Byte size (e.g. `10MB` → 10 485 760).
    Bytes(u64),
}

impl ParamValue {
    /// Interpret as f64 where sensible.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Number(n) => Some(*n),
            ParamValue::Bytes(b) => Some(*b as f64),
            ParamValue::Text(_) => None,
        }
    }

    /// Interpret as usize where sensible.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_f64().and_then(|f| {
            if f >= 0.0 && f.fract() == 0.0 {
                Some(f as usize)
            } else {
                None
            }
        })
    }

    /// Interpret as text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            ParamValue::Text(s) => Some(s),
            _ => None,
        }
    }
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `SELECT * FROM <table> TRAIN BY <model> [WITH k = v, …]`.
    Train {
        /// Source table.
        table: String,
        /// Model kind name (`svm`, `lr`, `linreg`, `softmax`, `mlp`).
        model: String,
        /// `WITH` parameters.
        params: BTreeMap<String, ParamValue>,
    },
    /// `SELECT * FROM <table> PREDICT BY <model_name>`.
    Predict {
        /// Source table.
        table: String,
        /// Stored model name.
        model: String,
    },
    /// `EXPLAIN <train query>`: show the physical plan without running it.
    Explain(Box<Query>),
    /// `EXPLAIN ANALYZE <query>`: run the query and annotate the plan with
    /// actual per-operator statistics (rows, simulated I/O seconds, cache
    /// hit rate, retries).
    ExplainAnalyze(Box<Query>),
    /// `SHOW TABLES` / `SHOW MODELS` / `SHOW STATS`.
    Show {
        /// What to list.
        what: ShowTarget,
    },
}

/// The object of a `SHOW` query.
///
/// Replaces the old stringly-typed `Show { what: String }`: unknown targets
/// are rejected at parse time, so the executor matches exhaustively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShowTarget {
    /// `SHOW TABLES`: registered tables with block/tuple counts.
    Tables,
    /// `SHOW MODELS`: stored models with dimensions and kind.
    Models,
    /// `SHOW STATS`: session telemetry counters.
    Stats,
}

impl ShowTarget {
    fn from_ident(ident: &str) -> Result<Self, DbError> {
        match ident.to_ascii_lowercase().as_str() {
            "tables" => Ok(ShowTarget::Tables),
            "models" => Ok(ShowTarget::Models),
            "stats" => Ok(ShowTarget::Stats),
            other => Err(DbError::Parse(format!("SHOW {other} not supported"))),
        }
    }
}

struct Tokens<'a> {
    toks: Vec<&'a str>,
    pos: usize,
}

fn tokenize(input: &str) -> Vec<&str> {
    let mut toks = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if c == ',' || c == '=' || c == '*' || c == ';' || c == '(' || c == ')' {
            toks.push(&input[i..i + 1]);
            i += 1;
        } else if c == '\'' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] as char != '\'' {
                j += 1;
            }
            toks.push(&input[start..j]);
            // Mark it as a string by pushing the quotes separately? Instead
            // we rely on position: quoted strings become plain tokens.
            i = j + 1;
        } else {
            let start = i;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if c.is_whitespace() || matches!(c, ',' | '=' | '*' | ';' | '(' | ')' | '\'') {
                    break;
                }
                i += 1;
            }
            toks.push(&input[start..i]);
        }
    }
    toks
}

impl<'a> Tokens<'a> {
    fn peek(&self) -> Option<&'a str> {
        self.toks.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<&'a str> {
        let t = self.peek();
        self.pos += 1;
        t
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        match self.bump() {
            Some(t) if t.eq_ignore_ascii_case(kw) => Ok(()),
            Some(t) => Err(DbError::Parse(format!("expected {kw}, found {t:?}"))),
            None => Err(DbError::Parse(format!("expected {kw}, found end of input"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, DbError> {
        match self.bump() {
            Some(t) if !t.is_empty() && t.chars().all(|c| c.is_alphanumeric() || c == '_') => {
                Ok(t.to_string())
            }
            Some(t) => Err(DbError::Parse(format!("expected {what}, found {t:?}"))),
            None => Err(DbError::Parse(format!(
                "expected {what}, found end of input"
            ))),
        }
    }
}

fn parse_value(tok: &str) -> ParamValue {
    if let Ok(n) = tok.parse::<f64>() {
        return ParamValue::Number(n);
    }
    // Byte sizes: <number><KB|MB|GB>.
    let upper = tok.to_ascii_uppercase();
    for (suffix, mult) in [
        ("KB", 1u64 << 10),
        ("MB", 1 << 20),
        ("GB", 1 << 30),
        ("B", 1),
    ] {
        if let Some(num) = upper.strip_suffix(suffix) {
            if let Ok(n) = num.parse::<f64>() {
                return ParamValue::Bytes((n * mult as f64) as u64);
            }
        }
    }
    ParamValue::Text(tok.to_string())
}

/// Parse one query.
pub fn parse(input: &str) -> Result<Query, DbError> {
    let mut t = Tokens {
        toks: tokenize(input),
        pos: 0,
    };
    parse_tokens(&mut t)
}

/// Parse one query from the remaining token stream. `EXPLAIN [ANALYZE]`
/// recurses over the tokens that follow the keyword rather than re-finding
/// a substring in the raw input.
fn parse_tokens(t: &mut Tokens) -> Result<Query, DbError> {
    match t.peek() {
        Some(w) if w.eq_ignore_ascii_case("EXPLAIN") => {
            t.bump();
            if matches!(t.peek(), Some(w) if w.eq_ignore_ascii_case("ANALYZE")) {
                t.bump();
                return Ok(Query::ExplainAnalyze(Box::new(parse_tokens(t)?)));
            }
            return Ok(Query::Explain(Box::new(parse_tokens(t)?)));
        }
        Some(w) if w.eq_ignore_ascii_case("SHOW") => {
            t.bump();
            let what = ShowTarget::from_ident(&t.ident("TABLES, MODELS or STATS")?)?;
            return Ok(Query::Show { what });
        }
        _ => {}
    }
    t.expect_kw("SELECT")?;
    t.expect_kw("*")?;
    t.expect_kw("FROM")?;
    let table = t.ident("table name")?;
    let verb = t
        .bump()
        .ok_or_else(|| DbError::Parse("expected TRAIN or PREDICT".into()))?;
    if verb.eq_ignore_ascii_case("TRAIN") {
        t.expect_kw("BY")?;
        let model = t.ident("model kind")?.to_ascii_lowercase();
        let mut params = BTreeMap::new();
        match t.peek() {
            Some(w) if w.eq_ignore_ascii_case("WITH") => {
                t.bump();
                loop {
                    let key = t.ident("parameter name")?.to_ascii_lowercase();
                    t.expect_kw("=")?;
                    let val = t
                        .bump()
                        .ok_or_else(|| DbError::Parse(format!("missing value for {key}")))?;
                    params.insert(key, parse_value(val));
                    match t.peek() {
                        Some(",") => {
                            t.bump();
                        }
                        Some(";") | None => break,
                        Some(other) => {
                            return Err(DbError::Parse(format!(
                                "expected ',' or end of query, found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some(";") | None => {}
            Some(other) => return Err(DbError::Parse(format!("expected WITH, found {other:?}"))),
        }
        Ok(Query::Train {
            table,
            model,
            params,
        })
    } else if verb.eq_ignore_ascii_case("PREDICT") {
        t.expect_kw("BY")?;
        let model = t.ident("model name")?;
        Ok(Query::Predict { table, model })
    } else {
        Err(DbError::Parse(format!(
            "expected TRAIN or PREDICT, found {verb:?}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_train() {
        let q = parse("SELECT * FROM forest TRAIN BY svm").unwrap();
        assert_eq!(
            q,
            Query::Train {
                table: "forest".into(),
                model: "svm".into(),
                params: BTreeMap::new()
            }
        );
    }

    #[test]
    fn parses_full_train_with_params() {
        let q = parse(
            "SELECT * FROM t TRAIN BY lr WITH learning_rate = 0.1, \
             max_epoch_num = 20, block_size = 10MB, strategy = 'corgipile', \
             buffer_fraction = 0.1, model_name = m1;",
        )
        .unwrap();
        match q {
            Query::Train {
                table,
                model,
                params,
            } => {
                assert_eq!(table, "t");
                assert_eq!(model, "lr");
                assert_eq!(params["learning_rate"], ParamValue::Number(0.1));
                assert_eq!(params["max_epoch_num"].as_usize(), Some(20));
                assert_eq!(params["block_size"], ParamValue::Bytes(10 << 20));
                assert_eq!(params["strategy"].as_text(), Some("corgipile"));
                assert_eq!(params["model_name"].as_text(), Some("m1"));
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn parses_predict() {
        let q = parse("SELECT * FROM t PREDICT BY my_model").unwrap();
        assert_eq!(
            q,
            Query::Predict {
                table: "t".into(),
                model: "my_model".into()
            }
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("select * from t train by svm").is_ok());
        assert!(parse("SeLeCt * FrOm t PrEdIcT bY m").is_ok());
    }

    #[test]
    fn byte_sizes_parse() {
        assert_eq!(parse_value("512KB"), ParamValue::Bytes(512 << 10));
        assert_eq!(parse_value("2GB"), ParamValue::Bytes(2 << 30));
        assert_eq!(parse_value("10mb"), ParamValue::Bytes(10 << 20));
        assert_eq!(parse_value("128B"), ParamValue::Bytes(128));
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "",
            "SELECT * FROM",
            "SELECT * FROM t",
            "SELECT * FROM t TRAIN svm",
            "SELECT * FROM t LEARN BY svm",
            "SELECT * FROM t TRAIN BY svm WITH",
            "SELECT * FROM t TRAIN BY svm WITH lr 0.1",
            "INSERT INTO t VALUES (1)",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn param_value_coercions() {
        assert_eq!(ParamValue::Number(2.0).as_usize(), Some(2));
        assert_eq!(ParamValue::Number(2.5).as_usize(), None);
        assert_eq!(ParamValue::Number(-1.0).as_usize(), None);
        assert_eq!(ParamValue::Text("x".into()).as_f64(), None);
        assert_eq!(ParamValue::Bytes(8).as_usize(), Some(8));
    }

    #[test]
    fn parses_explain_and_show() {
        let q = parse("EXPLAIN SELECT * FROM t TRAIN BY svm").unwrap();
        assert!(matches!(q, Query::Explain(inner) if matches!(*inner, Query::Train { .. })));
        assert_eq!(
            parse("SHOW TABLES").unwrap(),
            Query::Show {
                what: ShowTarget::Tables
            }
        );
        assert_eq!(
            parse("show models").unwrap(),
            Query::Show {
                what: ShowTarget::Models
            }
        );
        assert!(parse("EXPLAIN").is_err());
    }

    #[test]
    fn parses_explain_analyze_and_show_stats() {
        let q = parse("EXPLAIN ANALYZE SELECT * FROM t TRAIN BY svm WITH strategy = 'corgipile'")
            .unwrap();
        match q {
            Query::ExplainAnalyze(inner) => match *inner {
                Query::Train {
                    ref table,
                    ref model,
                    ref params,
                } => {
                    assert_eq!(table, "t");
                    assert_eq!(model, "svm");
                    assert_eq!(params["strategy"].as_text(), Some("corgipile"));
                }
                ref other => panic!("expected Train inside, got {other:?}"),
            },
            other => panic!("expected ExplainAnalyze, got {other:?}"),
        }
        let p = parse("explain analyze SELECT * FROM t PREDICT BY m").unwrap();
        assert!(
            matches!(p, Query::ExplainAnalyze(inner) if matches!(*inner, Query::Predict { .. }))
        );
        assert_eq!(
            parse("SHOW STATS").unwrap(),
            Query::Show {
                what: ShowTarget::Stats
            }
        );
        assert!(parse("EXPLAIN ANALYZE").is_err());
    }

    #[test]
    fn unknown_show_targets_are_parse_errors() {
        for bad in ["SHOW SECRETS", "SHOW TABLE", "SHOW statz", "SHOW"] {
            match parse(bad) {
                Err(DbError::Parse(msg)) => {
                    assert!(
                        msg.contains("not supported") || msg.contains("end of input"),
                        "{bad:?}: unexpected message {msg:?}"
                    );
                }
                other => panic!("{bad:?}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn explain_recurses_over_tokens_not_substrings() {
        // Nested EXPLAIN parses by recursion over the remaining tokens.
        let q = parse("EXPLAIN EXPLAIN SELECT * FROM t TRAIN BY svm").unwrap();
        match q {
            Query::Explain(inner) => {
                assert!(matches!(*inner, Query::Explain(ref inner2)
                    if matches!(**inner2, Query::Train { .. })));
            }
            other => panic!("expected nested Explain, got {other:?}"),
        }
        // Identifiers containing the keyword must not confuse the parser.
        let q = parse("EXPLAIN SELECT * FROM explained TRAIN BY svm").unwrap();
        assert!(matches!(q, Query::Explain(inner)
            if matches!(*inner, Query::Train { ref table, .. } if table == "explained")));
    }

    #[test]
    fn trailing_semicolon_and_quotes() {
        let q = parse("SELECT * FROM t TRAIN BY svm WITH strategy = 'once';").unwrap();
        match q {
            Query::Train { params, .. } => {
                assert_eq!(params["strategy"].as_text(), Some("once"));
            }
            _ => panic!(),
        }
    }
}
