//! The SQL surface (§6): `TRAIN BY` and `PREDICT BY` queries.
//!
//! ```sql
//! SELECT * FROM forest TRAIN BY svm WITH learning_rate = 0.1,
//!        max_epoch_num = 20, block_size = 10MB, buffer_fraction = 0.1,
//!        strategy = 'corgipile', model_name = 'forest_svm';
//! SELECT f0, f3, label FROM forest WHERE f2 > 0.5 AND label = 1 TRAIN BY svm;
//! SELECT * FROM forest PREDICT BY forest_svm;
//! PREDICT forest_svm ON forest WHERE f2 > 0.5 WITH batch_rows = 512;
//! PREDICT forest_svm VERSION 2 ON forest;
//! LOAD MODEL forest_svm VERSION 1 AS ACTIVE;
//! ```
//!
//! The grammar is a tiny hand-rolled recursive-descent parser: keywords are
//! case-insensitive, parameters are `name = value` pairs where values are
//! numbers, quoted strings, bare identifiers, or byte sizes (`10MB`,
//! `512KB`). The `WHERE` clause is a typed predicate AST over the columns
//! `id`, `label`, and `f<N>` (feature index `N`), with `AND` binding tighter
//! than `OR` and parentheses for grouping.

use crate::error::DbError;
pub use corgipile_shuffle::StrategyKind;
use corgipile_storage::Tuple;
use std::collections::BTreeMap;
use std::fmt;

/// A parsed parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Numeric literal.
    Number(f64),
    /// String or bare identifier.
    Text(String),
    /// Byte size (e.g. `10MB` → 10 485 760).
    Bytes(u64),
}

impl ParamValue {
    /// Interpret as f64 where sensible.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Number(n) => Some(*n),
            ParamValue::Bytes(b) => Some(*b as f64),
            ParamValue::Text(_) => None,
        }
    }

    /// Interpret as usize where sensible.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_f64().and_then(|f| {
            if f >= 0.0 && f.fract() == 0.0 {
                Some(f as usize)
            } else {
                None
            }
        })
    }

    /// Interpret as text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            ParamValue::Text(s) => Some(s),
            _ => None,
        }
    }
}

/// A column reference in a projection list or predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ColumnRef {
    /// The tuple id (stable storage identifier; useful for exact-selectivity
    /// predicates like `id < 4000`).
    Id,
    /// The training label.
    Label,
    /// Feature at index `N`, written `f<N>`.
    Feature(usize),
}

impl ColumnRef {
    /// Parse a column name. Unknown names are structured
    /// [`DbError::UnknownColumn`] errors, not generic parse errors.
    pub fn parse(name: &str) -> Result<Self, DbError> {
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "id" => Ok(ColumnRef::Id),
            "label" => Ok(ColumnRef::Label),
            s => {
                if let Some(idx) = s.strip_prefix('f') {
                    if !idx.is_empty() && idx.bytes().all(|b| b.is_ascii_digit()) {
                        if let Ok(i) = idx.parse::<usize>() {
                            return Ok(ColumnRef::Feature(i));
                        }
                    }
                }
                Err(DbError::UnknownColumn(format!(
                    "{name} (expected id, label, or f<N>)"
                )))
            }
        }
    }

    /// Numeric value of this column for a tuple.
    pub fn value_of(self, t: &Tuple) -> f64 {
        match self {
            ColumnRef::Id => t.id as f64,
            ColumnRef::Label => f64::from(t.label),
            ColumnRef::Feature(i) => f64::from(t.features.get(i)),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnRef::Id => write!(f, "id"),
            ColumnRef::Label => write!(f, "label"),
            ColumnRef::Feature(i) => write!(f, "f{i}"),
        }
    }
}

/// Comparison operator in a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
}

impl CmpOp {
    fn parse(tok: &str) -> Option<Self> {
        match tok {
            "<" => Some(CmpOp::Lt),
            "<=" => Some(CmpOp::Le),
            ">" => Some(CmpOp::Gt),
            ">=" => Some(CmpOp::Ge),
            "=" => Some(CmpOp::Eq),
            "!=" | "<>" => Some(CmpOp::Ne),
            _ => None,
        }
    }

    fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
        };
        write!(f, "{s}")
    }
}

/// A typed `WHERE` predicate: comparisons on `id` / `label` / `f<N>`
/// combined with `AND` (binds tighter) and `OR`, plus parentheses.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `<column> <op> <number>`.
    Cmp {
        /// Left-hand column.
        col: ColumnRef,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand numeric literal.
        value: f64,
    },
    /// Conjunction (binds tighter than `Or`).
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Evaluate the predicate against one tuple.
    pub fn matches(&self, t: &Tuple) -> bool {
        match self {
            Predicate::Cmp { col, op, value } => op.eval(col.value_of(t), *value),
            Predicate::And(a, b) => a.matches(t) && b.matches(t),
            Predicate::Or(a, b) => a.matches(t) || b.matches(t),
        }
    }

    /// Visit every column referenced by the predicate (for validation
    /// against the catalog's feature count at planning time).
    pub fn for_each_column(&self, f: &mut impl FnMut(ColumnRef)) {
        match self {
            Predicate::Cmp { col, .. } => f(*col),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.for_each_column(f);
                b.for_each_column(f);
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `AND` children that are `OR` nodes need parentheses to round-trip;
        // everything else renders flat.
        fn side(p: &Predicate, under_and: bool, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            if under_and && matches!(p, Predicate::Or(..)) {
                write!(f, "({p})")
            } else {
                write!(f, "{p}")
            }
        }
        match self {
            Predicate::Cmp { col, op, value } => write!(f, "{col} {op} {value}"),
            Predicate::And(a, b) => {
                side(a, true, f)?;
                write!(f, " AND ")?;
                side(b, true, f)
            }
            Predicate::Or(a, b) => {
                side(a, false, f)?;
                write!(f, " OR ")?;
                side(b, false, f)
            }
        }
    }
}

/// The `SELECT` projection list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Projection {
    /// `SELECT *`: every feature plus the label.
    #[default]
    All,
    /// Explicit column list (feature columns, optionally `label`; the label
    /// is always retained for training regardless).
    Columns(Vec<ColumnRef>),
}

impl Projection {
    /// True for `SELECT *`.
    pub fn is_all(&self) -> bool {
        matches!(self, Projection::All)
    }

    /// The projected feature indices in declared order, or `None` for `*`.
    pub fn feature_indices(&self) -> Option<Vec<usize>> {
        match self {
            Projection::All => None,
            Projection::Columns(cols) => Some(
                cols.iter()
                    .filter_map(|c| match c {
                        ColumnRef::Feature(i) => Some(*i),
                        _ => None,
                    })
                    .collect(),
            ),
        }
    }
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Projection::All => write!(f, "*"),
            Projection::Columns(cols) => {
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
        }
    }
}

/// Parse a `WITH strategy = '<name>'` value into the shared
/// [`StrategyKind`] (the shuffle crate's enum is the single source of
/// truth; this crate re-exports it). Unknown names — and kinds that exist
/// for bench parity but are not plannable in the DB (MRS, sliding-window,
/// epoch shuffle) — are rejected with [`DbError::UnknownStrategy`] at
/// parse time, so the planner matches exhaustively over plannable kinds.
pub fn parse_strategy_name(name: &str) -> Result<StrategyKind, DbError> {
    let lower = name.to_ascii_lowercase();
    match StrategyKind::from_name(&lower) {
        Some(kind) if kind.available_in_db() => Ok(kind),
        _ => Err(DbError::UnknownStrategy(lower)),
    }
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `SELECT <cols|*> FROM <table> [WHERE <pred>] TRAIN BY <model>
    /// [CONTINUOUS] [WITH k = v, …]`.
    Train {
        /// Source table.
        table: String,
        /// Model kind name (`svm`, `lr`, `linreg`, `softmax`, `mlp`).
        model: String,
        /// Projection list (`*` or explicit columns).
        projection: Projection,
        /// Optional `WHERE` predicate.
        filter: Option<Predicate>,
        /// Shuffle strategy from the `strategy` parameter. `None` means the
        /// query left the choice to the cost-based planner.
        strategy: Option<StrategyKind>,
        /// `TRAIN BY <model> CONTINUOUS`: re-pin the latest table snapshot
        /// every `refresh` epochs so concurrently `INSERT`ed rows join the
        /// stream at epoch boundaries (without it, training pins one
        /// snapshot for its whole run).
        continuous: bool,
        /// Remaining `WITH` parameters.
        params: BTreeMap<String, ParamValue>,
    },
    /// `INSERT INTO <table> VALUES (f0, …, label) [, (…)]*`: append rows
    /// to a table's WAL-backed writer and publish a new snapshot version.
    /// Each row lists the dense feature values followed by the label; the
    /// tuple id is assigned by the writer (next sequence position).
    Insert {
        /// Destination table.
        table: String,
        /// Rows as parsed: `[features…, label]` per row.
        rows: Vec<Vec<f64>>,
    },
    /// `RECLUSTER <table> [WITH io_budget = f, seed = n]`: Corgi²-style
    /// bounded-I/O offline partial re-clustering. Rewrites the most
    /// variance-reducing block prefix of a full shuffle, spending at most
    /// `io_budget` × (full-shuffle I/O), and registers the re-clustered
    /// table under `<table>_reclustered`.
    Recluster {
        /// Table to re-cluster.
        table: String,
        /// `WITH` parameters (`io_budget`, `seed`).
        params: BTreeMap<String, ParamValue>,
    },
    /// `SELECT * FROM <table> PREDICT BY <model_name>`.
    Predict {
        /// Source table.
        table: String,
        /// Stored model name.
        model: String,
    },
    /// `PREDICT <model> [VERSION n] ON <table> [WHERE pred] [WITH k = v, …]`:
    /// the serving subsystem's batched inference query. The batch pins one
    /// immutable cached model version for its whole run; without `VERSION`
    /// it pins whatever version is active at dispatch.
    PredictServe {
        /// Served model name.
        model: String,
        /// Explicit version pin (`VERSION n`); `None` pins the active one.
        version: Option<u32>,
        /// Source table.
        table: String,
        /// Optional `WHERE` predicate, pushed down into the scan.
        filter: Option<Predicate>,
        /// `WITH` parameters (`batch_rows`, …).
        params: BTreeMap<String, ParamValue>,
    },
    /// `EXPLAIN <train query>`: show the physical plan without running it.
    Explain(Box<Query>),
    /// `EXPLAIN ANALYZE <query>`: run the query and annotate the plan with
    /// actual per-operator statistics (rows, simulated I/O seconds, cache
    /// hit rate, retries).
    ExplainAnalyze(Box<Query>),
    /// `SHOW TABLES` / `SHOW MODELS` / `SHOW STATS`.
    Show {
        /// What to list.
        what: ShowTarget,
    },
    /// `LOAD MODEL <name> [VERSION n] [AS ACTIVE]`: re-register a durable
    /// model store version of `name` into the in-memory catalog (the latest
    /// without `VERSION`), and with `AS ACTIVE` promote it to the version
    /// the serving cache pins for new `PREDICT` batches.
    LoadModel {
        /// Model name in the store.
        name: String,
        /// Explicit store version; `None` loads the latest.
        version: Option<u32>,
        /// Promote the loaded version to serving-active (`AS ACTIVE`).
        activate: bool,
    },
}

/// The object of a `SHOW` query.
///
/// Replaces the old stringly-typed `Show { what: String }`: unknown targets
/// are rejected at parse time, so the executor matches exhaustively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShowTarget {
    /// `SHOW TABLES`: registered tables with block/tuple counts.
    Tables,
    /// `SHOW MODELS`: stored models with dimensions and kind.
    Models,
    /// `SHOW STATS`: session telemetry counters.
    Stats,
}

impl ShowTarget {
    fn from_ident(ident: &str) -> Result<Self, DbError> {
        match ident.to_ascii_lowercase().as_str() {
            "tables" => Ok(ShowTarget::Tables),
            "models" => Ok(ShowTarget::Models),
            "stats" => Ok(ShowTarget::Stats),
            other => Err(DbError::Parse(format!("SHOW {other} not supported"))),
        }
    }
}

struct Tokens<'a> {
    toks: Vec<&'a str>,
    pos: usize,
}

fn tokenize(input: &str) -> Vec<&str> {
    let mut toks = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if c == ',' || c == '=' || c == '*' || c == ';' || c == '(' || c == ')' {
            toks.push(&input[i..i + 1]);
            i += 1;
        } else if c == '<' || c == '>' || c == '!' {
            // Comparison operators, including the two-character forms
            // `<=`, `>=`, `!=`, `<>`.
            let next = bytes.get(i + 1).map(|&b| b as char);
            let len = match (c, next) {
                (_, Some('=')) | ('<', Some('>')) => 2,
                _ => 1,
            };
            toks.push(&input[i..i + len]);
            i += len;
        } else if c == '\'' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] as char != '\'' {
                j += 1;
            }
            toks.push(&input[start..j]);
            // Mark it as a string by pushing the quotes separately? Instead
            // we rely on position: quoted strings become plain tokens.
            i = j + 1;
        } else {
            let start = i;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if c.is_whitespace()
                    || matches!(
                        c,
                        ',' | '=' | '*' | ';' | '(' | ')' | '\'' | '<' | '>' | '!'
                    )
                {
                    break;
                }
                i += 1;
            }
            toks.push(&input[start..i]);
        }
    }
    toks
}

impl<'a> Tokens<'a> {
    fn peek(&self) -> Option<&'a str> {
        self.toks.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<&'a str> {
        let t = self.peek();
        self.pos += 1;
        t
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        match self.bump() {
            Some(t) if t.eq_ignore_ascii_case(kw) => Ok(()),
            Some(t) => Err(DbError::Parse(format!("expected {kw}, found {t:?}"))),
            None => Err(DbError::Parse(format!("expected {kw}, found end of input"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, DbError> {
        match self.bump() {
            Some(t) if !t.is_empty() && t.chars().all(|c| c.is_alphanumeric() || c == '_') => {
                Ok(t.to_string())
            }
            Some(t) => Err(DbError::Parse(format!("expected {what}, found {t:?}"))),
            None => Err(DbError::Parse(format!(
                "expected {what}, found end of input"
            ))),
        }
    }
}

fn parse_value(tok: &str) -> ParamValue {
    if let Ok(n) = tok.parse::<f64>() {
        return ParamValue::Number(n);
    }
    // Byte sizes: <number><KB|MB|GB>.
    let upper = tok.to_ascii_uppercase();
    for (suffix, mult) in [
        ("KB", 1u64 << 10),
        ("MB", 1 << 20),
        ("GB", 1 << 30),
        ("B", 1),
    ] {
        if let Some(num) = upper.strip_suffix(suffix) {
            if let Ok(n) = num.parse::<f64>() {
                return ParamValue::Bytes((n * mult as f64) as u64);
            }
        }
    }
    ParamValue::Text(tok.to_string())
}

/// Parse one query.
pub fn parse(input: &str) -> Result<Query, DbError> {
    let mut t = Tokens {
        toks: tokenize(input),
        pos: 0,
    };
    parse_tokens(&mut t)
}

// Predicate grammar (lowest to highest precedence):
//   pred    := and (OR and)*
//   and     := primary (AND primary)*
//   primary := '(' pred ')' | column cmp number
fn parse_predicate(t: &mut Tokens) -> Result<Predicate, DbError> {
    let mut left = parse_and(t)?;
    while matches!(t.peek(), Some(w) if w.eq_ignore_ascii_case("OR")) {
        t.bump();
        let right = parse_and(t)?;
        left = Predicate::Or(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_and(t: &mut Tokens) -> Result<Predicate, DbError> {
    let mut left = parse_cmp_or_group(t)?;
    while matches!(t.peek(), Some(w) if w.eq_ignore_ascii_case("AND")) {
        t.bump();
        let right = parse_cmp_or_group(t)?;
        left = Predicate::And(Box::new(left), Box::new(right));
    }
    Ok(left)
}

fn parse_cmp_or_group(t: &mut Tokens) -> Result<Predicate, DbError> {
    if t.peek() == Some("(") {
        t.bump();
        let inner = parse_predicate(t)?;
        match t.bump() {
            Some(")") => return Ok(inner),
            Some(other) => {
                return Err(DbError::Parse(format!("expected ')', found {other:?}")));
            }
            None => return Err(DbError::Parse("expected ')', found end of input".into())),
        }
    }
    let col = ColumnRef::parse(&t.ident("predicate column")?)?;
    let op = match t.bump() {
        Some(tok) => CmpOp::parse(tok).ok_or_else(|| {
            DbError::Parse(format!(
                "expected comparison operator (< <= > >= = != <>), found {tok:?}"
            ))
        })?,
        None => {
            return Err(DbError::Parse(
                "expected comparison operator, found end of input".into(),
            ));
        }
    };
    match t.bump() {
        Some(tok) => match tok.parse::<f64>() {
            Ok(value) if value.is_finite() => Ok(Predicate::Cmp { col, op, value }),
            _ => Err(DbError::Parse(format!(
                "predicate {col} {op} {tok}: right-hand side must be a finite numeric literal"
            ))),
        },
        None => Err(DbError::Parse(
            "expected numeric literal, found end of input".into(),
        )),
    }
}

/// Optional `VERSION <n>` clause (`PREDICT`, `LOAD MODEL`).
fn parse_version(t: &mut Tokens) -> Result<Option<u32>, DbError> {
    if !matches!(t.peek(), Some(w) if w.eq_ignore_ascii_case("VERSION")) {
        return Ok(None);
    }
    t.bump();
    match t.bump() {
        Some(tok) => match tok.parse::<u32>() {
            Ok(v) if v >= 1 => Ok(Some(v)),
            _ => Err(DbError::Parse(format!(
                "VERSION expects a positive integer, found {tok:?}"
            ))),
        },
        None => Err(DbError::Parse(
            "expected version number, found end of input".into(),
        )),
    }
}

/// Optional `WITH k = v, …` tail without keyword special-casing (the
/// `TRAIN BY` loop handles `strategy` itself).
fn parse_with_params(t: &mut Tokens) -> Result<BTreeMap<String, ParamValue>, DbError> {
    let mut params = BTreeMap::new();
    match t.peek() {
        Some(w) if w.eq_ignore_ascii_case("WITH") => {
            t.bump();
            loop {
                let key = t.ident("parameter name")?.to_ascii_lowercase();
                t.expect_kw("=")?;
                let val = t
                    .bump()
                    .ok_or_else(|| DbError::Parse(format!("missing value for {key}")))?;
                params.insert(key, parse_value(val));
                match t.peek() {
                    Some(",") => {
                        t.bump();
                    }
                    Some(";") | None => break,
                    Some(other) => {
                        return Err(DbError::Parse(format!(
                            "expected ',' or end of query, found {other:?}"
                        )))
                    }
                }
            }
        }
        Some(";") | None => {}
        Some(other) => return Err(DbError::Parse(format!("expected WITH, found {other:?}"))),
    }
    Ok(params)
}

fn parse_projection(t: &mut Tokens) -> Result<Projection, DbError> {
    if t.peek() == Some("*") {
        t.bump();
        return Ok(Projection::All);
    }
    let mut cols = vec![ColumnRef::parse(&t.ident("projection column")?)?];
    while t.peek() == Some(",") {
        t.bump();
        cols.push(ColumnRef::parse(&t.ident("projection column")?)?);
    }
    Ok(Projection::Columns(cols))
}

/// Parse one query from the remaining token stream. `EXPLAIN [ANALYZE]`
/// recurses over the tokens that follow the keyword rather than re-finding
/// a substring in the raw input.
fn parse_tokens(t: &mut Tokens) -> Result<Query, DbError> {
    match t.peek() {
        Some(w) if w.eq_ignore_ascii_case("EXPLAIN") => {
            t.bump();
            if matches!(t.peek(), Some(w) if w.eq_ignore_ascii_case("ANALYZE")) {
                t.bump();
                return Ok(Query::ExplainAnalyze(Box::new(parse_tokens(t)?)));
            }
            return Ok(Query::Explain(Box::new(parse_tokens(t)?)));
        }
        Some(w) if w.eq_ignore_ascii_case("SHOW") => {
            t.bump();
            let what = ShowTarget::from_ident(&t.ident("TABLES, MODELS or STATS")?)?;
            return Ok(Query::Show { what });
        }
        Some(w) if w.eq_ignore_ascii_case("LOAD") => {
            t.bump();
            t.expect_kw("MODEL")?;
            let name = t.ident("model name")?;
            let version = parse_version(t)?;
            let activate = match t.peek() {
                Some(w) if w.eq_ignore_ascii_case("AS") => {
                    t.bump();
                    t.expect_kw("ACTIVE")?;
                    true
                }
                _ => false,
            };
            return Ok(Query::LoadModel {
                name,
                version,
                activate,
            });
        }
        Some(w) if w.eq_ignore_ascii_case("INSERT") => {
            t.bump();
            t.expect_kw("INTO")?;
            let table = t.ident("table name")?;
            t.expect_kw("VALUES")?;
            let mut rows = Vec::new();
            loop {
                t.expect_kw("(")?;
                let mut vals = Vec::new();
                loop {
                    let tok = t.bump().ok_or_else(|| {
                        DbError::Parse("expected numeric literal, found end of input".into())
                    })?;
                    let v = tok
                        .parse::<f64>()
                        .ok()
                        .filter(|v| v.is_finite())
                        .ok_or_else(|| {
                            DbError::Parse(format!(
                                "INSERT values must be finite numeric literals, found {tok:?}"
                            ))
                        })?;
                    vals.push(v);
                    match t.bump() {
                        Some(",") => {}
                        Some(")") => break,
                        Some(other) => {
                            return Err(DbError::Parse(format!(
                                "expected ',' or ')', found {other:?}"
                            )))
                        }
                        None => {
                            return Err(DbError::Parse("expected ')', found end of input".into()))
                        }
                    }
                }
                if vals.len() < 2 {
                    return Err(DbError::Parse(
                        "INSERT rows need at least one feature value and a label".into(),
                    ));
                }
                rows.push(vals);
                match t.peek() {
                    Some(",") => {
                        t.bump();
                    }
                    Some(";") | None => break,
                    Some(other) => {
                        return Err(DbError::Parse(format!(
                            "expected ',' or end of query, found {other:?}"
                        )))
                    }
                }
            }
            return Ok(Query::Insert { table, rows });
        }
        Some(w) if w.eq_ignore_ascii_case("RECLUSTER") => {
            t.bump();
            let table = t.ident("table name")?;
            let params = parse_with_params(t)?;
            return Ok(Query::Recluster { table, params });
        }
        Some(w) if w.eq_ignore_ascii_case("PREDICT") => {
            // The serving query: `PREDICT <model> [VERSION n] ON <table>
            // [WHERE pred] [WITH k = v, …]`.
            t.bump();
            let model = t.ident("model name")?;
            let version = parse_version(t)?;
            t.expect_kw("ON")?;
            let table = t.ident("table name")?;
            let filter = match t.peek() {
                Some(w) if w.eq_ignore_ascii_case("WHERE") => {
                    t.bump();
                    Some(parse_predicate(t)?)
                }
                _ => None,
            };
            let params = parse_with_params(t)?;
            return Ok(Query::PredictServe {
                model,
                version,
                table,
                filter,
                params,
            });
        }
        _ => {}
    }
    t.expect_kw("SELECT")?;
    let projection = parse_projection(t)?;
    t.expect_kw("FROM")?;
    let table = t.ident("table name")?;
    let filter = match t.peek() {
        Some(w) if w.eq_ignore_ascii_case("WHERE") => {
            t.bump();
            Some(parse_predicate(t)?)
        }
        _ => None,
    };
    let verb = t
        .bump()
        .ok_or_else(|| DbError::Parse("expected TRAIN or PREDICT".into()))?;
    if verb.eq_ignore_ascii_case("TRAIN") {
        t.expect_kw("BY")?;
        let model = t.ident("model kind")?.to_ascii_lowercase();
        let continuous = match t.peek() {
            Some(w) if w.eq_ignore_ascii_case("CONTINUOUS") => {
                t.bump();
                true
            }
            _ => false,
        };
        let mut params = BTreeMap::new();
        let mut strategy = None;
        match t.peek() {
            Some(w) if w.eq_ignore_ascii_case("WITH") => {
                t.bump();
                loop {
                    let key = t.ident("parameter name")?.to_ascii_lowercase();
                    t.expect_kw("=")?;
                    let val = t
                        .bump()
                        .ok_or_else(|| DbError::Parse(format!("missing value for {key}")))?;
                    if key == "strategy" {
                        // Typed at parse time: unknown names never reach the
                        // planner.
                        let name = match parse_value(val) {
                            ParamValue::Text(s) => s,
                            other => {
                                return Err(DbError::BadParam(format!(
                                    "strategy must be a name, got {other:?}"
                                )))
                            }
                        };
                        strategy = Some(parse_strategy_name(&name)?);
                    } else {
                        params.insert(key, parse_value(val));
                    }
                    match t.peek() {
                        Some(",") => {
                            t.bump();
                        }
                        Some(";") | None => break,
                        Some(other) => {
                            return Err(DbError::Parse(format!(
                                "expected ',' or end of query, found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some(";") | None => {}
            Some(other) => return Err(DbError::Parse(format!("expected WITH, found {other:?}"))),
        }
        Ok(Query::Train {
            table,
            model,
            projection,
            filter,
            strategy,
            continuous,
            params,
        })
    } else if verb.eq_ignore_ascii_case("PREDICT") {
        if !projection.is_all() {
            return Err(DbError::Parse(
                "PREDICT BY requires SELECT * (projections apply to TRAIN only)".into(),
            ));
        }
        if filter.is_some() {
            return Err(DbError::Parse(
                "PREDICT BY does not support WHERE (filters apply to TRAIN only)".into(),
            ));
        }
        t.expect_kw("BY")?;
        let model = t.ident("model name")?;
        Ok(Query::Predict { table, model })
    } else {
        Err(DbError::Parse(format!(
            "expected TRAIN or PREDICT, found {verb:?}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_parts(
        input: &str,
    ) -> (
        String,
        String,
        Projection,
        Option<Predicate>,
        Option<StrategyKind>,
    ) {
        match parse(input).unwrap() {
            Query::Train {
                table,
                model,
                projection,
                filter,
                strategy,
                ..
            } => (table, model, projection, filter, strategy),
            other => panic!("expected Train, got {other:?}"),
        }
    }

    #[test]
    fn parses_minimal_train() {
        let q = parse("SELECT * FROM forest TRAIN BY svm").unwrap();
        assert_eq!(
            q,
            Query::Train {
                table: "forest".into(),
                model: "svm".into(),
                projection: Projection::All,
                filter: None,
                strategy: None,
                continuous: false,
                params: BTreeMap::new()
            }
        );
    }

    #[test]
    fn parses_train_continuous() {
        match parse(
            "SELECT * FROM stream TRAIN BY svm CONTINUOUS WITH refresh = 2, max_epoch_num = 6;",
        )
        .unwrap()
        {
            Query::Train {
                table,
                continuous,
                params,
                ..
            } => {
                assert_eq!(table, "stream");
                assert!(continuous);
                assert_eq!(params["refresh"].as_usize(), Some(2));
            }
            other => panic!("expected Train, got {other:?}"),
        }
        // Lowercase, and without WITH.
        assert!(matches!(
            parse("select * from t train by lr continuous").unwrap(),
            Query::Train {
                continuous: true,
                ..
            }
        ));
        // CONTINUOUS comes after the model kind, nowhere else.
        assert!(parse("SELECT * FROM t TRAIN CONTINUOUS BY svm").is_err());
    }

    #[test]
    fn parses_insert() {
        assert_eq!(
            parse("INSERT INTO t VALUES (0.5, -1.25, 1)").unwrap(),
            Query::Insert {
                table: "t".into(),
                rows: vec![vec![0.5, -1.25, 1.0]]
            }
        );
        // Multi-row COPY-style append, trailing semicolon, lowercase.
        assert_eq!(
            parse("insert into s values (1, 2, 1), (3, 4, -1);").unwrap(),
            Query::Insert {
                table: "s".into(),
                rows: vec![vec![1.0, 2.0, 1.0], vec![3.0, 4.0, -1.0]]
            }
        );
    }

    #[test]
    fn insert_rejects_malformed_rows() {
        for bad in [
            "INSERT",
            "INSERT INTO",
            "INSERT INTO t",
            "INSERT INTO t VALUES",
            "INSERT INTO t VALUES ()",
            "INSERT INTO t VALUES (1)", // a row is features *and* a label
            "INSERT INTO t VALUES (1, x)",
            "INSERT INTO t VALUES (1, 2",
            "INSERT INTO t VALUES (1, 2) extra",
            "INSERT t VALUES (1, 2)",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_full_train_with_params() {
        let q = parse(
            "SELECT * FROM t TRAIN BY lr WITH learning_rate = 0.1, \
             max_epoch_num = 20, block_size = 10MB, strategy = 'corgipile', \
             buffer_fraction = 0.1, model_name = m1;",
        )
        .unwrap();
        match q {
            Query::Train {
                table,
                model,
                strategy,
                params,
                ..
            } => {
                assert_eq!(table, "t");
                assert_eq!(model, "lr");
                assert_eq!(params["learning_rate"], ParamValue::Number(0.1));
                assert_eq!(params["max_epoch_num"].as_usize(), Some(20));
                assert_eq!(params["block_size"], ParamValue::Bytes(10 << 20));
                assert_eq!(strategy, Some(StrategyKind::CorgiPile));
                assert!(!params.contains_key("strategy"), "strategy is typed now");
                assert_eq!(params["model_name"].as_text(), Some("m1"));
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn parses_predict() {
        let q = parse("SELECT * FROM t PREDICT BY my_model").unwrap();
        assert_eq!(
            q,
            Query::Predict {
                table: "t".into(),
                model: "my_model".into()
            }
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("select * from t train by svm").is_ok());
        assert!(parse("SeLeCt * FrOm t PrEdIcT bY m").is_ok());
    }

    #[test]
    fn byte_sizes_parse() {
        assert_eq!(parse_value("512KB"), ParamValue::Bytes(512 << 10));
        assert_eq!(parse_value("2GB"), ParamValue::Bytes(2 << 30));
        assert_eq!(parse_value("10mb"), ParamValue::Bytes(10 << 20));
        assert_eq!(parse_value("128B"), ParamValue::Bytes(128));
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "",
            "SELECT * FROM",
            "SELECT * FROM t",
            "SELECT * FROM t TRAIN svm",
            "SELECT * FROM t LEARN BY svm",
            "SELECT * FROM t TRAIN BY svm WITH",
            "SELECT * FROM t TRAIN BY svm WITH lr 0.1",
            "INSERT INTO t VALUES (1)",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn param_value_coercions() {
        assert_eq!(ParamValue::Number(2.0).as_usize(), Some(2));
        assert_eq!(ParamValue::Number(2.5).as_usize(), None);
        assert_eq!(ParamValue::Number(-1.0).as_usize(), None);
        assert_eq!(ParamValue::Text("x".into()).as_f64(), None);
        assert_eq!(ParamValue::Bytes(8).as_usize(), Some(8));
    }

    #[test]
    fn parses_explain_and_show() {
        let q = parse("EXPLAIN SELECT * FROM t TRAIN BY svm").unwrap();
        assert!(matches!(q, Query::Explain(inner) if matches!(*inner, Query::Train { .. })));
        assert_eq!(
            parse("SHOW TABLES").unwrap(),
            Query::Show {
                what: ShowTarget::Tables
            }
        );
        assert_eq!(
            parse("show models").unwrap(),
            Query::Show {
                what: ShowTarget::Models
            }
        );
        assert!(parse("EXPLAIN").is_err());
    }

    #[test]
    fn parses_explain_analyze_and_show_stats() {
        let q = parse("EXPLAIN ANALYZE SELECT * FROM t TRAIN BY svm WITH strategy = 'corgipile'")
            .unwrap();
        match q {
            Query::ExplainAnalyze(inner) => match *inner {
                Query::Train {
                    ref table,
                    ref model,
                    strategy,
                    ..
                } => {
                    assert_eq!(table, "t");
                    assert_eq!(model, "svm");
                    assert_eq!(strategy, Some(StrategyKind::CorgiPile));
                }
                ref other => panic!("expected Train inside, got {other:?}"),
            },
            other => panic!("expected ExplainAnalyze, got {other:?}"),
        }
        let p = parse("explain analyze SELECT * FROM t PREDICT BY m").unwrap();
        assert!(
            matches!(p, Query::ExplainAnalyze(inner) if matches!(*inner, Query::Predict { .. }))
        );
        assert_eq!(
            parse("SHOW STATS").unwrap(),
            Query::Show {
                what: ShowTarget::Stats
            }
        );
        assert!(parse("EXPLAIN ANALYZE").is_err());
    }

    #[test]
    fn parses_load_model() {
        assert_eq!(
            parse("LOAD MODEL m1").unwrap(),
            Query::LoadModel {
                name: "m1".into(),
                version: None,
                activate: false
            }
        );
        assert_eq!(
            parse("load model forest_svm").unwrap(),
            Query::LoadModel {
                name: "forest_svm".into(),
                version: None,
                activate: false
            }
        );
        assert!(parse("LOAD MODEL").is_err(), "name is required");
        assert!(parse("LOAD m1").is_err(), "MODEL keyword is required");
    }

    #[test]
    fn parses_load_model_version_and_activation() {
        assert_eq!(
            parse("LOAD MODEL m VERSION 3").unwrap(),
            Query::LoadModel {
                name: "m".into(),
                version: Some(3),
                activate: false
            }
        );
        assert_eq!(
            parse("load model m version 2 as active;").unwrap(),
            Query::LoadModel {
                name: "m".into(),
                version: Some(2),
                activate: true
            }
        );
        assert_eq!(
            parse("LOAD MODEL m AS ACTIVE").unwrap(),
            Query::LoadModel {
                name: "m".into(),
                version: None,
                activate: true
            }
        );
        for bad in [
            "LOAD MODEL m VERSION",
            "LOAD MODEL m VERSION 0",
            "LOAD MODEL m VERSION two",
            "LOAD MODEL m AS",
            "LOAD MODEL m AS PASSIVE",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_predict_serve() {
        assert_eq!(
            parse("PREDICT m ON t").unwrap(),
            Query::PredictServe {
                model: "m".into(),
                version: None,
                table: "t".into(),
                filter: None,
                params: BTreeMap::new()
            }
        );
        match parse("predict fsvm version 2 on forest where f1 > 0.5 with batch_rows = 512;")
            .unwrap()
        {
            Query::PredictServe {
                model,
                version,
                table,
                filter,
                params,
            } => {
                assert_eq!(model, "fsvm");
                assert_eq!(version, Some(2));
                assert_eq!(table, "forest");
                assert_eq!(
                    filter,
                    Some(Predicate::Cmp {
                        col: ColumnRef::Feature(1),
                        op: CmpOp::Gt,
                        value: 0.5
                    })
                );
                assert_eq!(params["batch_rows"].as_usize(), Some(512));
            }
            other => panic!("expected PredictServe, got {other:?}"),
        }
        let q = parse("EXPLAIN PREDICT m ON t WHERE label = 1").unwrap();
        assert!(matches!(q, Query::Explain(inner)
            if matches!(*inner, Query::PredictServe { .. })));
        for bad in [
            "PREDICT ON t",
            "PREDICT m t",
            "PREDICT m ON",
            "PREDICT m VERSION x ON t",
            "PREDICT m ON t WITH",
            "PREDICT m ON t WHERE qty > 1",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unknown_show_targets_are_parse_errors() {
        for bad in ["SHOW SECRETS", "SHOW TABLE", "SHOW statz", "SHOW"] {
            match parse(bad) {
                Err(DbError::Parse(msg)) => {
                    assert!(
                        msg.contains("not supported") || msg.contains("end of input"),
                        "{bad:?}: unexpected message {msg:?}"
                    );
                }
                other => panic!("{bad:?}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn explain_recurses_over_tokens_not_substrings() {
        // Nested EXPLAIN parses by recursion over the remaining tokens.
        let q = parse("EXPLAIN EXPLAIN SELECT * FROM t TRAIN BY svm").unwrap();
        match q {
            Query::Explain(inner) => {
                assert!(matches!(*inner, Query::Explain(ref inner2)
                    if matches!(**inner2, Query::Train { .. })));
            }
            other => panic!("expected nested Explain, got {other:?}"),
        }
        // Identifiers containing the keyword must not confuse the parser.
        let q = parse("EXPLAIN SELECT * FROM explained TRAIN BY svm").unwrap();
        assert!(matches!(q, Query::Explain(inner)
            if matches!(*inner, Query::Train { ref table, .. } if table == "explained")));
    }

    #[test]
    fn trailing_semicolon_and_quotes() {
        let q = parse("SELECT * FROM t TRAIN BY svm WITH strategy = 'once';").unwrap();
        match q {
            Query::Train { strategy, .. } => {
                assert_eq!(strategy, Some(StrategyKind::ShuffleOnce));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn unknown_strategy_is_rejected_at_parse_time() {
        // Unknown names and bench-only (non-plannable) kinds alike: MRS and
        // sliding-window exist in the shared enum but are not DB-plannable.
        for bad in ["mrs", "sliding_window", "CORGI", ""] {
            match parse(&format!(
                "SELECT * FROM t TRAIN BY svm WITH strategy = '{bad}'"
            )) {
                Err(DbError::UnknownStrategy(s)) => assert_eq!(s, bad.to_ascii_lowercase()),
                other => panic!("strategy {bad:?}: expected UnknownStrategy, got {other:?}"),
            }
        }
        // Non-text strategy values are parameter errors, not strategies.
        assert!(matches!(
            parse("SELECT * FROM t TRAIN BY svm WITH strategy = 3"),
            Err(DbError::BadParam(_))
        ));
    }

    #[test]
    fn strategy_names_round_trip() {
        for kind in StrategyKind::all() {
            if kind.available_in_db() {
                assert_eq!(parse_strategy_name(kind.name()).unwrap(), kind);
            } else {
                assert!(matches!(
                    parse_strategy_name(kind.name()),
                    Err(DbError::UnknownStrategy(_))
                ));
            }
        }
        // Historical SQL short spellings stay accepted.
        assert_eq!(parse_strategy_name("no").unwrap(), StrategyKind::NoShuffle);
        assert_eq!(
            parse_strategy_name("ONCE").unwrap(),
            StrategyKind::ShuffleOnce
        );
        assert!(StrategyKind::CorgiPile.is_tuple_buffered());
        assert!(StrategyKind::TupleOnly.is_tuple_buffered());
        assert!(StrategyKind::Corgi2.is_tuple_buffered());
        assert!(!StrategyKind::NoShuffle.is_tuple_buffered());
    }

    #[test]
    fn parses_recluster() {
        assert_eq!(
            parse("RECLUSTER forest").unwrap(),
            Query::Recluster {
                table: "forest".into(),
                params: BTreeMap::new()
            }
        );
        match parse("recluster forest with io_budget = 0.3, seed = 7;").unwrap() {
            Query::Recluster { table, params } => {
                assert_eq!(table, "forest");
                assert_eq!(params["io_budget"], ParamValue::Number(0.3));
                assert_eq!(params["seed"].as_usize(), Some(7));
            }
            other => panic!("expected Recluster, got {other:?}"),
        }
        assert!(parse("RECLUSTER").is_err(), "table name is required");
        assert!(parse("RECLUSTER t EXTRA").is_err());
    }

    #[test]
    fn parses_where_predicates_with_all_operators() {
        let (_, _, _, filter, _) = train_parts("SELECT * FROM t WHERE f3 >= 0.5 TRAIN BY svm");
        assert_eq!(
            filter,
            Some(Predicate::Cmp {
                col: ColumnRef::Feature(3),
                op: CmpOp::Ge,
                value: 0.5
            })
        );
        for (text, op) in [
            ("<", CmpOp::Lt),
            ("<=", CmpOp::Le),
            (">", CmpOp::Gt),
            (">=", CmpOp::Ge),
            ("=", CmpOp::Eq),
            ("!=", CmpOp::Ne),
            ("<>", CmpOp::Ne),
        ] {
            let (_, _, _, filter, _) = train_parts(&format!(
                "SELECT * FROM t WHERE label {text} 1 TRAIN BY svm"
            ));
            match filter {
                Some(Predicate::Cmp {
                    col: ColumnRef::Label,
                    op: got,
                    value,
                }) => {
                    assert_eq!(got, op, "{text}");
                    assert_eq!(value, 1.0);
                }
                other => panic!("{text}: {other:?}"),
            }
        }
        // Operators bind without whitespace too.
        let (_, _, _, filter, _) = train_parts("SELECT * FROM t WHERE f0<=-1.5 TRAIN BY svm");
        assert_eq!(
            filter,
            Some(Predicate::Cmp {
                col: ColumnRef::Feature(0),
                op: CmpOp::Le,
                value: -1.5
            })
        );
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let (_, _, _, filter, _) =
            train_parts("SELECT * FROM t WHERE f1 > 0 AND f2 > 0 OR label = 1 TRAIN BY svm");
        // (f1 > 0 AND f2 > 0) OR label = 1
        match filter.unwrap() {
            Predicate::Or(lhs, rhs) => {
                assert!(matches!(*lhs, Predicate::And(..)), "lhs: {lhs:?}");
                assert!(
                    matches!(
                        *rhs,
                        Predicate::Cmp {
                            col: ColumnRef::Label,
                            ..
                        }
                    ),
                    "rhs: {rhs:?}"
                );
            }
            other => panic!("expected OR at root, got {other:?}"),
        }
        // OR then AND: the AND still groups its own operands.
        let (_, _, _, filter, _) =
            train_parts("SELECT * FROM t WHERE label = 1 OR f1 > 0 AND f2 > 0 TRAIN BY svm");
        match filter.unwrap() {
            Predicate::Or(lhs, rhs) => {
                assert!(matches!(*lhs, Predicate::Cmp { .. }));
                assert!(matches!(*rhs, Predicate::And(..)));
            }
            other => panic!("expected OR at root, got {other:?}"),
        }
    }

    #[test]
    fn parentheses_override_precedence() {
        let (_, _, _, filter, _) =
            train_parts("SELECT * FROM t WHERE f1 > 0 AND (f2 > 0 OR label = 1) TRAIN BY svm");
        match filter.unwrap() {
            Predicate::And(lhs, rhs) => {
                assert!(matches!(*lhs, Predicate::Cmp { .. }));
                assert!(matches!(*rhs, Predicate::Or(..)), "rhs: {rhs:?}");
            }
            other => panic!("expected AND at root, got {other:?}"),
        }
    }

    #[test]
    fn predicate_display_round_trips_precedence() {
        let (_, _, _, filter, _) =
            train_parts("SELECT * FROM t WHERE f1 > 0 AND (f2 > 0 OR label = 1) TRAIN BY svm");
        let rendered = filter.clone().unwrap().to_string();
        assert_eq!(rendered, "f1 > 0 AND (f2 > 0 OR label = 1)");
        let (_, _, _, reparsed, _) =
            train_parts(&format!("SELECT * FROM t WHERE {rendered} TRAIN BY svm"));
        assert_eq!(reparsed, filter);
    }

    #[test]
    fn predicate_matches_tuples() {
        let t = Tuple::dense(7, vec![0.5, -2.0, 3.0], 1.0);
        let (_, _, _, filter, _) =
            train_parts("SELECT * FROM x WHERE f0 >= 0.5 AND f1 < 0 AND label = 1 TRAIN BY svm");
        assert!(filter.as_ref().unwrap().matches(&t));
        let (_, _, _, filter, _) =
            train_parts("SELECT * FROM x WHERE id < 7 OR f2 > 2.5 TRAIN BY svm");
        assert!(filter.as_ref().unwrap().matches(&t));
        let (_, _, _, filter, _) =
            train_parts("SELECT * FROM x WHERE id < 7 AND f2 > 2.5 TRAIN BY svm");
        assert!(!filter.as_ref().unwrap().matches(&t));
    }

    #[test]
    fn parses_projection_lists() {
        let (_, _, projection, _, _) = train_parts("SELECT f0, f3, label FROM t TRAIN BY svm");
        assert_eq!(
            projection,
            Projection::Columns(vec![
                ColumnRef::Feature(0),
                ColumnRef::Feature(3),
                ColumnRef::Label
            ])
        );
        assert_eq!(projection.feature_indices(), Some(vec![0, 3]));
        assert_eq!(projection.to_string(), "f0, f3, label");
        assert_eq!(Projection::All.feature_indices(), None);
    }

    #[test]
    fn unknown_columns_are_structured_errors() {
        for bad in [
            "SELECT qty FROM t TRAIN BY svm",
            "SELECT * FROM t WHERE qty > 1 TRAIN BY svm",
            "SELECT f FROM t TRAIN BY svm",
            "SELECT fx1 FROM t TRAIN BY svm",
        ] {
            assert!(
                matches!(parse(bad), Err(DbError::UnknownColumn(_))),
                "{bad:?} should be UnknownColumn, got {:?}",
                parse(bad)
            );
        }
    }

    #[test]
    fn malformed_predicates_are_parse_errors() {
        for bad in [
            "SELECT * FROM t WHERE TRAIN BY svm",
            "SELECT * FROM t WHERE f1 TRAIN BY svm",
            "SELECT * FROM t WHERE f1 > TRAIN BY svm",
            "SELECT * FROM t WHERE f1 > abc TRAIN BY svm",
            "SELECT * FROM t WHERE (f1 > 1 TRAIN BY svm",
            "SELECT * FROM t WHERE f1 > 1 AND TRAIN BY svm",
        ] {
            match parse(bad) {
                Err(DbError::Parse(_)) | Err(DbError::UnknownColumn(_)) => {}
                other => panic!("{bad:?}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn predict_rejects_projection_and_where() {
        assert!(matches!(
            parse("SELECT f0 FROM t PREDICT BY m"),
            Err(DbError::Parse(_))
        ));
        assert!(matches!(
            parse("SELECT * FROM t WHERE f0 > 1 PREDICT BY m"),
            Err(DbError::Parse(_))
        ));
    }
}
