//! MADlib- and Bismarck-style baseline systems (§7.1.3, §7.3).
//!
//! Neither system's engine can be linked here, so each is emulated as a
//! trainer configuration that reproduces its two defining characteristics
//! (see DESIGN.md §2):
//!
//! * **shuffle strategy** — both rely on No Shuffle or an offline Shuffle
//!   Once (`ORDER BY RANDOM()` with 2× storage);
//! * **per-tuple compute profile** — Bismarck's UDA path is lean; MADlib
//!   "performs more computation on some auxiliary statistical metrics and
//!   has a less efficient implementation" (§7.3.1), and its LR computes a
//!   `stderr` metric whose per-tuple cost grows ~quadratically with the
//!   feature count — the reason MADlib LR "cannot finish even a single
//!   epoch within 4 hours" on epsilon/yfcc.

use corgipile_core::{CorgiPileConfig, TrainerConfig};
use corgipile_ml::{ComputeCostModel, ModelKind};
use corgipile_shuffle::StrategyKind;

/// The in-DB ML systems compared in Figures 1, 11 and 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InDbSystem {
    /// Our system: CorgiPile operators inside the engine.
    CorgiPile,
    /// CorgiPile without the tuple-level shuffle (ablation).
    BlockOnly,
    /// MADlib with a pre-shuffled copy.
    MadlibShuffleOnce,
    /// MADlib over the stored order.
    MadlibNoShuffle,
    /// Bismarck with a pre-shuffled copy.
    BismarckShuffleOnce,
    /// Bismarck over the stored order.
    BismarckNoShuffle,
}

impl InDbSystem {
    /// All systems, CorgiPile first.
    pub fn all() -> [InDbSystem; 6] {
        [
            InDbSystem::CorgiPile,
            InDbSystem::BlockOnly,
            InDbSystem::MadlibShuffleOnce,
            InDbSystem::MadlibNoShuffle,
            InDbSystem::BismarckShuffleOnce,
            InDbSystem::BismarckNoShuffle,
        ]
    }

    /// Display name used in reports.
    pub fn display(&self) -> &'static str {
        match self {
            InDbSystem::CorgiPile => "CorgiPile",
            InDbSystem::BlockOnly => "Block-Only Shuffle",
            InDbSystem::MadlibShuffleOnce => "MADlib (Shuffle Once)",
            InDbSystem::MadlibNoShuffle => "MADlib (No Shuffle)",
            InDbSystem::BismarckShuffleOnce => "Bismarck (Shuffle Once)",
            InDbSystem::BismarckNoShuffle => "Bismarck (No Shuffle)",
        }
    }

    /// The shuffle strategy the system uses.
    pub fn strategy(&self) -> StrategyKind {
        match self {
            InDbSystem::CorgiPile => StrategyKind::CorgiPile,
            InDbSystem::BlockOnly => StrategyKind::BlockOnly,
            InDbSystem::MadlibShuffleOnce | InDbSystem::BismarckShuffleOnce => {
                StrategyKind::ShuffleOnce
            }
            InDbSystem::MadlibNoShuffle | InDbSystem::BismarckNoShuffle => StrategyKind::NoShuffle,
        }
    }

    /// The per-tuple compute profile for a given model/dimensionality.
    pub fn compute_model(&self, model: &ModelKind, dim: usize) -> ComputeCostModel {
        let base = ComputeCostModel::in_db_core();
        match self {
            InDbSystem::CorgiPile | InDbSystem::BlockOnly => base,
            InDbSystem::BismarckShuffleOnce | InDbSystem::BismarckNoShuffle => {
                // Lean UDA, slightly heavier than a native operator.
                ComputeCostModel {
                    per_tuple_overhead: 1.5e-7,
                    ..base
                }
            }
            InDbSystem::MadlibShuffleOnce | InDbSystem::MadlibNoShuffle => {
                // Auxiliary statistics per tuple; LR additionally pays the
                // quadratic stderr computation.
                let stderr = if matches!(model, ModelKind::LogisticRegression) {
                    (dim as f64) * (dim as f64) / base.flops_per_second
                } else {
                    0.0
                };
                ComputeCostModel {
                    per_tuple_overhead: 4e-7 + stderr,
                    ..base
                }
            }
        }
    }

    /// Whether the paper could run this system on the workload at all
    /// (MADlib LR on wide dense data never finishes, §7.3.1).
    pub fn feasible(&self, model: &ModelKind, dim: usize, sparse: bool) -> bool {
        match self {
            InDbSystem::MadlibShuffleOnce | InDbSystem::MadlibNoShuffle => {
                // MADlib does not support sparse LR/SVM training (§7.3.1),
                // and its LR stalls on wide dense data.
                if sparse {
                    return false;
                }
                !(matches!(model, ModelKind::LogisticRegression) && dim >= 2000)
            }
            _ => true,
        }
    }
}

/// Build the trainer configuration emulating `system` on the given
/// model/dataset geometry.
pub fn system_trainer_config(
    system: InDbSystem,
    model: ModelKind,
    dim: usize,
    epochs: usize,
    corgipile: CorgiPileConfig,
) -> TrainerConfig {
    let compute = system.compute_model(&model, dim);
    TrainerConfig::new(model, epochs)
        .with_strategy(system.strategy())
        .with_corgipile(corgipile)
        .with_compute(compute)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_core::Trainer;
    use corgipile_data::{DatasetSpec, Order};
    use corgipile_storage::SimDevice;

    #[test]
    fn strategies_map_correctly() {
        assert_eq!(InDbSystem::CorgiPile.strategy(), StrategyKind::CorgiPile);
        assert_eq!(
            InDbSystem::MadlibShuffleOnce.strategy(),
            StrategyKind::ShuffleOnce
        );
        assert_eq!(
            InDbSystem::BismarckNoShuffle.strategy(),
            StrategyKind::NoShuffle
        );
        assert_eq!(InDbSystem::all().len(), 6);
    }

    #[test]
    fn madlib_lr_pays_quadratic_stderr() {
        let narrow = InDbSystem::MadlibNoShuffle
            .compute_model(&ModelKind::LogisticRegression, 28)
            .per_tuple_overhead;
        let wide = InDbSystem::MadlibNoShuffle
            .compute_model(&ModelKind::LogisticRegression, 2000)
            .per_tuple_overhead;
        assert!(wide > 100.0 * narrow, "stderr cost must explode with dim");
        let svm = InDbSystem::MadlibNoShuffle
            .compute_model(&ModelKind::Svm, 2000)
            .per_tuple_overhead;
        assert!(svm < wide / 100.0, "MADlib SVM has no stderr problem");
    }

    #[test]
    fn feasibility_matches_paper() {
        assert!(!InDbSystem::MadlibShuffleOnce.feasible(
            &ModelKind::LogisticRegression,
            2000,
            false
        ));
        assert!(InDbSystem::MadlibShuffleOnce.feasible(&ModelKind::Svm, 2000, false));
        assert!(!InDbSystem::MadlibShuffleOnce.feasible(&ModelKind::Svm, 28, true));
        assert!(InDbSystem::BismarckShuffleOnce.feasible(
            &ModelKind::LogisticRegression,
            4096,
            false
        ));
        assert!(InDbSystem::CorgiPile.feasible(&ModelKind::LogisticRegression, 4096, true));
    }

    #[test]
    fn corgipile_system_converges_faster_than_baselines_end_to_end() {
        // Figure 11 in miniature: time to finish `epochs` epochs.
        let table = DatasetSpec::higgs_like(6000)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(8192)
            .build_table(11)
            .unwrap();
        let run = |sys: InDbSystem| {
            let cfg = system_trainer_config(sys, ModelKind::Svm, 28, 3, CorgiPileConfig::default());
            let mut dev = SimDevice::hdd_scaled(1000.0, 0);
            Trainer::new(cfg)
                .train(&table, &mut dev, 5)
                .unwrap()
                .total_sim_seconds()
        };
        let corgi = run(InDbSystem::CorgiPile);
        let madlib = run(InDbSystem::MadlibShuffleOnce);
        let bismarck = run(InDbSystem::BismarckShuffleOnce);
        assert!(
            corgi < bismarck,
            "CorgiPile {corgi} vs Bismarck-SO {bismarck}"
        );
        assert!(bismarck < madlib, "Bismarck {bismarck} vs MADlib {madlib}");
        // The paper reports 1.6–12.8× speedups; at this scale expect > 1.5×.
        assert!(
            bismarck / corgi > 1.5,
            "speedup over Bismarck-SO: {}",
            bismarck / corgi
        );
    }
}
