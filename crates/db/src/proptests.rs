//! Property-based tests for the Volcano executor: coverage and re-scan
//! invariants over randomized table shapes and plan parameters.

#![cfg(test)]

use crate::database::Database;
use crate::exec::{BlockShuffleOp, ExecContext, PhysicalOperator, ScanMode, TupleShuffleOp};
use crate::session::QueryResult;
use corgipile_shuffle::StrategyParams;
use corgipile_storage::{DeviceHandle, SimDevice, Table, TableConfig, Tuple};
use proptest::prelude::*;
use std::sync::Arc;

fn table(n: u64, width: usize, block_pages: usize) -> Arc<Table> {
    let cfg = TableConfig::new("prop", 1).with_block_bytes(block_pages * 8192);
    Arc::new(
        Table::from_tuples(
            cfg,
            (0..n).map(|id| {
                Tuple::dense(
                    id,
                    vec![id as f32; width],
                    if id % 2 == 0 { 1.0 } else { -1.0 },
                )
            }),
        )
        .unwrap(),
    )
}

fn drain_ids(op: &mut dyn PhysicalOperator, ctx: &mut ExecContext) -> Vec<u64> {
    let mut out = Vec::new();
    while let Some(t) = op.next(ctx).unwrap() {
        out.push(t.id);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any BlockShuffle plan emits every tuple exactly once per pass, for
    /// any table shape and scan mode, across re-scans.
    #[test]
    fn prop_block_shuffle_covers_table_across_rescans(
        n in 1u64..400,
        width in 1usize..8,
        block_pages in 1usize..4,
        random in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let t = table(n, width, block_pages);
        let mode = if random { ScanMode::RandomBlocks } else { ScanMode::Sequential };
        let mut dev = DeviceHandle::private(SimDevice::in_memory());
        let mut ctx = ExecContext::new(&mut dev);
        let mut op = BlockShuffleOp::new(t, mode, seed);
        op.init(&mut ctx);
        for _pass in 0..3 {
            let mut ids = drain_ids(&mut op, &mut ctx);
            ids.sort_unstable();
            prop_assert_eq!(ids, (0..n).collect::<Vec<_>>());
            op.rescan(&mut ctx);
        }
    }

    /// TupleShuffle preserves coverage for any buffer capacity (counted
    /// in source blocks), and its fill accounting tiles the stream.
    #[test]
    fn prop_tuple_shuffle_coverage_and_fills(
        n in 1u64..400,
        capacity_blocks in 1usize..8,
        seed in any::<u64>(),
    ) {
        let t = table(n, 4, 1);
        let blocks = t.num_blocks();
        let mut dev = DeviceHandle::private(SimDevice::in_memory());
        let mut ctx = ExecContext::new(&mut dev);
        let child = Box::new(BlockShuffleOp::new(t, ScanMode::RandomBlocks, seed));
        let mut op = TupleShuffleOp::new(
            child,
            capacity_blocks,
            StrategyParams::default().with_seed(seed | 1),
        );
        op.init(&mut ctx);
        let mut ids = drain_ids(&mut op, &mut ctx);
        prop_assert_eq!(ids.len() as u64, n);
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..n).collect::<Vec<_>>());
        // One fill entry per ceil(blocks / capacity) block windows.
        let expected_fills = blocks.div_ceil(capacity_blocks);
        prop_assert_eq!(ctx.fill_io.len(), expected_fills);
    }

    /// Re-scan of a full CorgiPile plan replays full coverage with a fresh
    /// order (random block mode, capacity < n).
    #[test]
    fn prop_full_plan_rescan_fresh_order(
        n in 50u64..300,
        seed in any::<u64>(),
    ) {
        let t = table(n, 4, 1);
        let mut dev = DeviceHandle::private(SimDevice::in_memory());
        let mut ctx = ExecContext::new(&mut dev);
        let child = Box::new(BlockShuffleOp::new(t, ScanMode::RandomBlocks, seed));
        let mut op = TupleShuffleOp::new(
            child,
            (n as usize / 4).max(2),
            StrategyParams::default().with_seed(seed ^ 0xF00),
        );
        op.init(&mut ctx);
        let first = drain_ids(&mut op, &mut ctx);
        ctx.fill_io.clear();
        op.rescan(&mut ctx);
        let second = drain_ids(&mut op, &mut ctx);
        prop_assert_eq!(first.len(), second.len());
        let mut a = first.clone();
        let mut b = second.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // With ≥ 50 tuples the chance of an identical replay is negligible
        // unless the block order degenerated (1 block) — skip that case.
        if n as usize > 2 * 8192 / 40 {
            prop_assert_ne!(first, second);
        }
    }

    /// Pushing a random WHERE predicate below the tuple-shuffle buffer is
    /// an equivalence: for any seed, the pushdown plan and the post-buffer
    /// `FilterOp` plan visit the surviving tuples in the same order, so
    /// the trained models are bit-identical and the SGD node sees the
    /// same `rows_out` — while the pushdown plan buffers fewer tuples.
    #[test]
    fn prop_pushdown_filter_is_bit_identical_to_post_buffer(
        n in 100u64..500,
        seed in 0u64..1_000_000,
        cutoff in 0.05f64..0.95,
        op_idx in 0usize..4,
        disjunct in any::<bool>(),
    ) {
        let ops = ["<", "<=", ">", ">="];
        let thr = (n as f64 * cutoff).round();
        let mut pred = format!("f0 {} {thr}", ops[op_idx]);
        if disjunct {
            pred = format!("{pred} OR label = 1");
        }
        let run = |pushdown: usize| {
            let db = Database::new(SimDevice::in_memory());
            db.register_table("t", (*table(n, 4, 1)).clone());
            let mut s = db.connect();
            let r = s
                .execute(&format!(
                    "SELECT * FROM t WHERE {pred} TRAIN BY svm WITH \
                     max_epoch_num = 2, seed = {seed}, buffer_fraction = 0.5, \
                     pushdown = {pushdown}, model_name = m"
                ))
                .unwrap();
            let summary = match r {
                QueryResult::Train(t) => t,
                _ => unreachable!("TRAIN returns a train summary"),
            };
            let params = s.catalog().model("m").unwrap().params.clone();
            (params, summary.op_stats[0].rows)
        };
        let (pushed_params, pushed_rows) = run(1);
        let (post_params, post_rows) = run(0);
        prop_assert_eq!(pushed_params, post_params);
        prop_assert_eq!(pushed_rows, post_rows);
    }

    /// The fused pipeline is an exact oracle match of the interpreted
    /// operator tree: for any seed, selectivity, strategy, and pushdown
    /// setting, `fuse = 1` and `fuse = 0` train bit-identical models, drop
    /// the same number of rows, report bit-identical training loss and
    /// final metric — while the fused run's simulated compute never
    /// exceeds the interpreted run's (batched overhead accounting).
    #[test]
    fn prop_fused_is_bit_identical_to_interpreted(
        n in 100u64..400,
        seed in 0u64..1_000_000,
        cutoff in 0.05f64..0.95,
        strat_idx in 0usize..5,
        pushdown in any::<bool>(),
        filtered in any::<bool>(),
    ) {
        let strategies = ["corgipile", "block_only", "no", "once", "tuple_only"];
        let strategy = strategies[strat_idx];
        let thr = (n as f64 * cutoff).round();
        let wher = if filtered {
            format!("WHERE f0 < {thr} OR label = 1 ")
        } else {
            String::new()
        };
        let run = |fuse: usize| {
            let db = Database::new(SimDevice::in_memory());
            db.register_table("t", (*table(n, 4, 1)).clone());
            let mut s = db.connect();
            let r = s
                .execute(&format!(
                    "SELECT * FROM t {wher}TRAIN BY svm WITH \
                     max_epoch_num = 2, seed = {seed}, buffer_fraction = 0.5, \
                     strategy = '{strategy}', pushdown = {}, fuse = {fuse}, \
                     report_metrics = 1, model_name = m",
                    pushdown as usize,
                ))
                .unwrap();
            let summary = match r {
                QueryResult::Train(t) => t,
                _ => unreachable!("TRAIN returns a train summary"),
            };
            let params = s.catalog().model("m").unwrap().params.clone();
            let filtered: u64 = summary.op_stats.iter().map(|o| o.rows_filtered).sum();
            let losses: Vec<u64> = summary
                .epochs
                .iter()
                .map(|e| e.train_loss.to_bits())
                .collect();
            let compute: f64 = summary
                .epochs
                .iter()
                .map(|e| e.compute_seconds)
                .sum();
            (params, filtered, losses, summary.final_train_metric.to_bits(), compute)
        };
        let (f_params, f_filtered, f_losses, f_metric, f_compute) = run(1);
        let (i_params, i_filtered, i_losses, i_metric, i_compute) = run(0);
        prop_assert_eq!(f_params, i_params);
        prop_assert_eq!(f_filtered, i_filtered);
        prop_assert_eq!(f_losses, i_losses);
        prop_assert_eq!(f_metric, i_metric);
        prop_assert!(
            f_compute <= i_compute,
            "fused compute {} must not exceed interpreted {}",
            f_compute,
            i_compute
        );
    }
}
