//! WAL-backed durable model store.
//!
//! The paper keeps trained models "as an in-memory object … in the
//! PostgreSQL kernel" (§6.1), which dies with the process. This module
//! gives the engine the durability story a real database has: every
//! epoch-granular [`TrainCheckpoint`] produced by a `WITH durable = 1`
//! training query is appended to an append-only, CRC-framed `CORGIWL1`
//! write-ahead log ([`corgipile_storage::Wal`]) and fsynced before the
//! epoch is acknowledged. When the log grows past a threshold it is
//! *compacted*: the latest version of every model is written to a
//! `CORGIMS1` snapshot file (atomically, with a parent-directory fsync)
//! and the log is truncated back to its magic.
//!
//! Recovery is replay: [`ModelStore::open_with`] loads the snapshot, then
//! replays the WAL's valid prefix on top of it — later `(version, epoch)`
//! pairs win, so replay is idempotent and a crash *between* the snapshot
//! and the log truncation (the `model_store.post_snapshot` site) merely
//! re-applies records the snapshot already holds. Because a trained model
//! depends only on the tuple stream order and the RNG seeds, resuming
//! from the recovered checkpoint replays the remaining epochs to a final
//! model **bit-identical** to an uninterrupted run — no checkpoint knobs,
//! no partial-epoch loss beyond the epoch in flight.
//!
//! Fault injection: the store threads an optional
//! [`FaultInjector`] through every write ([`Wal::append`] visits the
//! three `wal.*` sites, the snapshot visits `atomic_write.mid_rename`,
//! and compaction visits `model_store.post_snapshot`), so the crash
//! matrix in `tests/crash_recovery.rs` can kill the engine at any named
//! write site and assert recovery. After a [`StorageError::Crashed`]
//! bubbles out, the store models a dead process: drop it and reopen.

use crate::catalog::StoredModel;
use crate::error::DbError;
use corgipile_ml::TrainCheckpoint;
use corgipile_storage::{
    atomic_write_bytes_faulted, decode_container, encode_container, put_bytes, sites,
    FaultInjector, FaultPlan, FieldReader, RetryPolicy, StorageError, Wal, WriteOutcome,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// WAL record type: a full versioned model record (name, source table,
/// version, epoch, model blob, checkpoint blob).
pub const RT_MODEL: u8 = 1;

/// Snapshot file magic.
const SNAPSHOT_MAGIC: &[u8; 8] = b"CORGIMS1";
/// WAL file name inside the store directory.
const WAL_FILE: &str = "models.wal";
/// Snapshot file name inside the store directory.
const SNAPSHOT_FILE: &str = "models.snap";

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One versioned, durable model record.
///
/// `epoch` counts *completed* epochs (it equals the checkpoint's
/// `epoch_next`), so a record with `epoch == max_epoch_num` is a finished
/// training run and anything smaller is resumable.
#[derive(Debug, Clone)]
pub struct ModelRecord {
    /// Model name (the `PREDICT BY` / catalog key).
    pub name: String,
    /// Source table the model was trained on.
    pub source: String,
    /// Version number, 1-based; retraining a finished name bumps it.
    pub version: u32,
    /// Completed epochs under this version.
    pub epoch: u32,
    /// The model parameters at this epoch (catalog form).
    pub stored: StoredModel,
    /// The resumable training state at this epoch.
    pub checkpoint: TrainCheckpoint,
}

/// Tuning knobs for [`ModelStore::open_with`].
#[derive(Debug, Clone)]
pub struct ModelStoreOptions {
    /// Compact (snapshot + truncate) once the log exceeds this many bytes.
    pub compact_threshold_bytes: u64,
    /// Retry policy for WAL appends (shared shape with block reads).
    pub retry: RetryPolicy,
    /// Optional write-fault plan, driving the crash-point matrix.
    pub faults: Option<FaultPlan>,
}

impl Default for ModelStoreOptions {
    /// 256 KiB compaction threshold, default retries, no faults.
    fn default() -> Self {
        ModelStoreOptions {
            compact_threshold_bytes: 256 * 1024,
            retry: RetryPolicy::default(),
            faults: None,
        }
    }
}

/// A snapshot of the store's durability counters (cumulative since open).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModelStoreStats {
    /// Records appended (and fsynced) since open.
    pub appends: u64,
    /// Frame bytes appended since open.
    pub appended_bytes: u64,
    /// Fsyncs issued by the WAL since open.
    pub fsyncs: u64,
    /// Current valid log length in bytes (magic included).
    pub wal_len_bytes: u64,
    /// Compactions (snapshot + truncate) performed since open.
    pub compactions: u64,
    /// WAL records replayed during recovery at open.
    pub recovered_records: u64,
    /// Torn-tail bytes truncated during recovery at open.
    pub torn_tail_bytes: u64,
    /// Models loaded from the snapshot file at open.
    pub snapshot_models: u64,
}

struct StoreInner {
    wal: Wal,
    injector: Option<FaultInjector>,
    /// Per-name version history: every durable version is retained (the
    /// serving layer pins old versions while traffic drains), keyed by
    /// version number so `PREDICT … VERSION n` can load any of them.
    history: BTreeMap<String, BTreeMap<u32, ModelRecord>>,
    appends: u64,
    compactions: u64,
    recovered_records: u64,
    torn_tail_bytes: u64,
    snapshot_models: u64,
}

/// The durable model store: one WAL + one snapshot per directory,
/// interior-synchronized so it can hang off the shared
/// [`crate::Database`] engine.
pub struct ModelStore {
    dir: PathBuf,
    compact_threshold: u64,
    retry: RetryPolicy,
    inner: Mutex<StoreInner>,
}

impl std::fmt::Debug for ModelStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelStore")
            .field("dir", &self.dir)
            .field("compact_threshold", &self.compact_threshold)
            .finish_non_exhaustive()
    }
}

impl ModelStore {
    /// Open (or create) the store at `dir` with default options,
    /// recovering snapshot + WAL.
    pub fn open(dir: &Path) -> Result<ModelStore, DbError> {
        ModelStore::open_with(dir, ModelStoreOptions::default())
    }

    /// Open (or create) the store at `dir`.
    ///
    /// Recovery: load the snapshot (if any), then replay the WAL's valid
    /// prefix over it — the highest `(version, epoch)` per name wins, so
    /// replay is idempotent against records the snapshot already holds.
    pub fn open_with(dir: &Path, opts: ModelStoreOptions) -> Result<ModelStore, DbError> {
        std::fs::create_dir_all(dir).map_err(|e| {
            DbError::Storage(StorageError::Io {
                op: "create model store dir",
                message: format!("{}: {e}", dir.display()),
            })
        })?;
        let mut history: BTreeMap<String, BTreeMap<u32, ModelRecord>> = BTreeMap::new();
        let snap_path = dir.join(SNAPSHOT_FILE);
        let mut snapshot_models = 0u64;
        match std::fs::read(&snap_path) {
            Ok(bytes) => {
                for payload in decode_snapshot(&bytes)? {
                    apply(&mut history, decode_record(&payload)?);
                    snapshot_models += 1;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                return Err(DbError::Storage(StorageError::Io {
                    op: "read model snapshot",
                    message: e.to_string(),
                }))
            }
        }
        let (wal, records) = Wal::open(&dir.join(WAL_FILE))?;
        let recovered_records = records.len() as u64;
        let torn_tail_bytes = wal.torn_tail_bytes();
        for r in &records {
            if r.rtype == RT_MODEL {
                apply(&mut history, decode_record(&r.payload)?);
            }
        }
        Ok(ModelStore {
            dir: dir.to_path_buf(),
            compact_threshold: opts.compact_threshold_bytes,
            retry: opts.retry,
            inner: Mutex::new(StoreInner {
                wal,
                injector: opts.faults.map(FaultInjector::new),
                history,
                appends: 0,
                compactions: 0,
                recovered_records,
                torn_tail_bytes,
                snapshot_models,
            }),
        })
    }

    /// Append one versioned model record and fsync it; compacts when the
    /// log passes the threshold.
    ///
    /// A returned [`StorageError::Crashed`] (via [`DbError::Storage`])
    /// models the process dying at an injected crash point: the on-disk
    /// state is exactly what a real kill would leave, and the store must
    /// be dropped and reopened — recovery is [`ModelStore::open_with`].
    pub fn record_checkpoint(
        &self,
        name: &str,
        source: &str,
        version: u32,
        stored: StoredModel,
        checkpoint: TrainCheckpoint,
    ) -> Result<(), DbError> {
        let rec = ModelRecord {
            name: name.to_string(),
            source: source.to_string(),
            version,
            epoch: checkpoint.epoch_next as u32,
            stored,
            checkpoint,
        };
        let payload = encode_record(&rec);
        let mut inner = lock(&self.inner);
        let StoreInner { wal, injector, .. } = &mut *inner;
        wal.append_retry(RT_MODEL, &payload, injector.as_mut(), &self.retry)?;
        inner.appends += 1;
        apply(&mut inner.history, rec);
        if inner.wal.len_bytes() > self.compact_threshold {
            self.compact_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Force a compaction now (snapshot the latest versions, truncate the
    /// log). Used by tests and by shutdown paths that want a short log.
    pub fn compact(&self) -> Result<(), DbError> {
        let mut inner = lock(&self.inner);
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut StoreInner) -> Result<(), DbError> {
        let bytes = encode_snapshot(inner.history.values().flat_map(|v| v.values()));
        atomic_write_bytes_faulted(
            &self.dir.join(SNAPSHOT_FILE),
            &bytes,
            inner.injector.as_mut(),
        )?;
        if let Some(i) = inner.injector.as_mut() {
            // The named gap between "snapshot durable" and "log truncated":
            // a crash here leaves the records in both places, which replay
            // handles idempotently.
            match i.on_write(sites::MODEL_STORE_POST_SNAPSHOT) {
                WriteOutcome::Ok => {}
                WriteOutcome::Fail(e) => return Err(e.into()),
                WriteOutcome::Torn { .. } | WriteOutcome::Crash => {
                    return Err(StorageError::Crashed {
                        site: sites::MODEL_STORE_POST_SNAPSHOT.into(),
                    }
                    .into())
                }
            }
        }
        inner.wal.reset()?;
        inner.compactions += 1;
        Ok(())
    }

    /// Latest durable record for `name` (highest version), if any.
    pub fn latest(&self, name: &str) -> Option<ModelRecord> {
        lock(&self.inner)
            .history
            .get(name)
            .and_then(|v| v.values().next_back())
            .cloned()
    }

    /// A specific durable version of `name`, if retained.
    pub fn version(&self, name: &str, version: u32) -> Option<ModelRecord> {
        lock(&self.inner)
            .history
            .get(name)
            .and_then(|v| v.get(&version))
            .cloned()
    }

    /// Every retained version number of `name`, ascending.
    pub fn versions(&self, name: &str) -> Vec<u32> {
        lock(&self.inner)
            .history
            .get(name)
            .map(|v| v.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Latest durable record of every model, sorted by name.
    pub fn models(&self) -> Vec<ModelRecord> {
        lock(&self.inner)
            .history
            .values()
            .filter_map(|v| v.values().next_back())
            .cloned()
            .collect()
    }

    /// The version a *fresh* training run of `name` should write:
    /// `latest + 1`, or 1 for an unseen name.
    pub fn next_version(&self, name: &str) -> u32 {
        lock(&self.inner)
            .history
            .get(name)
            .and_then(|v| v.keys().next_back())
            .map(|v| v + 1)
            .unwrap_or(1)
    }

    /// Durability counters (cumulative since open).
    pub fn stats(&self) -> ModelStoreStats {
        let inner = lock(&self.inner);
        ModelStoreStats {
            appends: inner.appends,
            appended_bytes: inner.wal.appended_bytes(),
            fsyncs: inner.wal.fsync_count(),
            wal_len_bytes: inner.wal.len_bytes(),
            compactions: inner.compactions,
            recovered_records: inner.recovered_records,
            torn_tail_bytes: inner.torn_tail_bytes,
            snapshot_models: inner.snapshot_models,
        }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Fold a record into the version history. Every version is retained;
/// within one version the higher epoch wins, ties going to the later
/// arrival (replay order is append order, so the last writer's bytes win
/// exactly as they did in the log).
fn apply(history: &mut BTreeMap<String, BTreeMap<u32, ModelRecord>>, rec: ModelRecord) {
    let versions = history.entry(rec.name.clone()).or_default();
    match versions.get(&rec.version) {
        Some(old) if old.epoch > rec.epoch => {}
        _ => {
            versions.insert(rec.version, rec);
        }
    }
}

fn encode_record(rec: &ModelRecord) -> Vec<u8> {
    let mut out = Vec::new();
    put_bytes(&mut out, rec.name.as_bytes());
    put_bytes(&mut out, rec.source.as_bytes());
    out.extend_from_slice(&rec.version.to_le_bytes());
    out.extend_from_slice(&rec.epoch.to_le_bytes());
    put_bytes(&mut out, &rec.stored.to_bytes());
    put_bytes(&mut out, &rec.checkpoint.to_bytes());
    out
}

fn decode_record(payload: &[u8]) -> Result<ModelRecord, DbError> {
    let mut r = FieldReader::new(payload, "model record");
    let name = r.string()?;
    let source = r.string()?;
    let version = r.u32()?;
    let epoch = r.u32()?;
    let stored = StoredModel::from_bytes(r.bytes()?)?;
    let checkpoint = TrainCheckpoint::from_bytes(r.bytes()?)?;
    r.finish()?;
    Ok(ModelRecord {
        name,
        source,
        version,
        epoch,
        stored,
        checkpoint,
    })
}

fn encode_snapshot<'a>(records: impl Iterator<Item = &'a ModelRecord>) -> Vec<u8> {
    let payloads: Vec<Vec<u8>> = records.map(encode_record).collect();
    encode_container(SNAPSHOT_MAGIC, &payloads)
}

fn decode_snapshot(bytes: &[u8]) -> Result<Vec<Vec<u8>>, DbError> {
    Ok(decode_container(SNAPSHOT_MAGIC, bytes, "model snapshot")?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_ml::ModelKind;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("corgi_store_{}_{}", tag, std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn record(name: &str, version: u32, epoch: usize, bias: f32) -> (StoredModel, TrainCheckpoint) {
        let stored = StoredModel {
            kind: ModelKind::Svm,
            dim: 2,
            params: vec![bias, 0.5, -0.5],
            train_loss: 0.1 * epoch as f64,
        };
        let ck = TrainCheckpoint {
            epoch_next: epoch,
            seed: 42,
            sim_clock: epoch as f64,
            model_params: stored.params.clone(),
            optimizer_state: vec![version as u8],
        };
        let _ = name;
        (stored, ck)
    }

    #[test]
    fn records_survive_reopen() {
        let dir = tmpdir("reopen");
        {
            let store = ModelStore::open(&dir).unwrap();
            for epoch in 1..=3 {
                let (m, ck) = record("m", 1, epoch, 1.0);
                store.record_checkpoint("m", "t", 1, m, ck).unwrap();
            }
            let (m, ck) = record("other", 1, 1, 2.0);
            store.record_checkpoint("other", "u", 1, m, ck).unwrap();
        }
        let store = ModelStore::open(&dir).unwrap();
        let rec = store.latest("m").unwrap();
        assert_eq!((rec.version, rec.epoch), (1, 3));
        assert_eq!(rec.source, "t");
        assert_eq!(rec.checkpoint.epoch_next, 3);
        assert_eq!(store.models().len(), 2);
        assert_eq!(store.stats().recovered_records, 4);
        assert_eq!(store.next_version("m"), 2);
        assert_eq!(store.next_version("new"), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_snapshots_and_truncates() {
        let dir = tmpdir("compact");
        let opts = ModelStoreOptions {
            compact_threshold_bytes: 64, // force a compaction on every append
            ..Default::default()
        };
        {
            let store = ModelStore::open_with(&dir, opts.clone()).unwrap();
            for epoch in 1..=5 {
                let (m, ck) = record("m", 1, epoch, 1.0);
                store.record_checkpoint("m", "t", 1, m, ck).unwrap();
            }
            let s = store.stats();
            assert!(s.compactions >= 4, "threshold of 64B must compact eagerly");
            assert!(dir.join(SNAPSHOT_FILE).exists());
            assert_eq!(
                s.wal_len_bytes, 8,
                "log truncated back to its magic after the last compaction"
            );
        }
        let store = ModelStore::open_with(&dir, opts).unwrap();
        let s = store.stats();
        assert_eq!(s.snapshot_models, 1);
        assert_eq!(s.recovered_records, 0, "records live in the snapshot now");
        assert_eq!(store.latest("m").unwrap().epoch, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_during_append_loses_only_the_record_in_flight() {
        let dir = tmpdir("crash_append");
        let opts = ModelStoreOptions {
            faults: Some(
                FaultPlan::new(7).with_crash_point(sites::WAL_AFTER_APPEND_BEFORE_FSYNC, 2),
            ),
            ..Default::default()
        };
        {
            let store = ModelStore::open_with(&dir, opts).unwrap();
            let (m, ck) = record("m", 1, 1, 1.0);
            store.record_checkpoint("m", "t", 1, m, ck).unwrap();
            let (m, ck) = record("m", 1, 2, 1.5);
            let err = store.record_checkpoint("m", "t", 1, m, ck).unwrap_err();
            assert!(
                matches!(err, DbError::Storage(StorageError::Crashed { .. })),
                "expected a simulated crash, got {err:?}"
            );
        }
        let store = ModelStore::open(&dir).unwrap();
        assert_eq!(
            store.latest("m").unwrap().epoch,
            1,
            "the unsynced epoch-2 record died with the page cache"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_between_snapshot_and_truncate_replays_idempotently() {
        let dir = tmpdir("crash_post_snapshot");
        let opts = ModelStoreOptions {
            compact_threshold_bytes: 64,
            faults: Some(FaultPlan::new(7).with_crash_point(sites::MODEL_STORE_POST_SNAPSHOT, 1)),
            ..Default::default()
        };
        {
            let store = ModelStore::open_with(&dir, opts).unwrap();
            let (m, ck) = record("m", 1, 1, 1.0);
            let err = store.record_checkpoint("m", "t", 1, m, ck).unwrap_err();
            assert!(matches!(
                err,
                DbError::Storage(StorageError::Crashed { .. })
            ));
        }
        // Snapshot written, log NOT truncated: the record exists twice.
        let store = ModelStore::open(&dir).unwrap();
        let s = store.stats();
        assert_eq!(s.snapshot_models, 1);
        assert_eq!(s.recovered_records, 1);
        assert_eq!(
            store.models().len(),
            1,
            "replay deduplicates by (version, epoch)"
        );
        assert_eq!(store.latest("m").unwrap().epoch, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_counted_and_discarded() {
        let dir = tmpdir("torn_tail");
        {
            let store = ModelStore::open(&dir).unwrap();
            let (m, ck) = record("m", 1, 1, 1.0);
            store.record_checkpoint("m", "t", 1, m, ck).unwrap();
        }
        // Tear the log by hand: append garbage past the valid prefix.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_FILE))
            .unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        drop(f);
        let store = ModelStore::open(&dir).unwrap();
        let s = store.stats();
        assert_eq!(s.torn_tail_bytes, 3);
        assert_eq!(s.recovered_records, 1);
        assert_eq!(store.latest("m").unwrap().epoch, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_corruption_is_detected() {
        let dir = tmpdir("snap_corrupt");
        {
            let store = ModelStore::open(&dir).unwrap();
            let (m, ck) = record("m", 1, 1, 1.0);
            store.record_checkpoint("m", "t", 1, m, ck).unwrap();
            store.compact().unwrap();
        }
        let snap = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();
        assert!(
            ModelStore::open(&dir).is_err(),
            "a flipped snapshot byte must fail the CRC"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_history_is_retained_across_compaction_and_reopen() {
        let dir = tmpdir("history");
        {
            let store = ModelStore::open(&dir).unwrap();
            for (version, epoch) in [(1, 1), (1, 2), (2, 1), (2, 3), (3, 1)] {
                let (m, ck) = record("m", version, epoch, version as f32);
                store.record_checkpoint("m", "t", version, m, ck).unwrap();
            }
            store.compact().unwrap();
        }
        let store = ModelStore::open(&dir).unwrap();
        assert_eq!(store.versions("m"), vec![1, 2, 3]);
        // Each version keeps its own highest epoch through the snapshot.
        assert_eq!(store.version("m", 1).unwrap().epoch, 2);
        assert_eq!(store.version("m", 2).unwrap().epoch, 3);
        assert_eq!(store.version("m", 3).unwrap().epoch, 1);
        assert!(store.version("m", 9).is_none());
        assert!(store.versions("ghost").is_empty());
        // `models()` still reports one latest record per name.
        assert_eq!(store.models().len(), 1);
        assert_eq!(store.latest("m").unwrap().version, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newer_version_wins_replay() {
        let dir = tmpdir("version_wins");
        {
            let store = ModelStore::open(&dir).unwrap();
            for (version, epoch) in [(1, 1), (1, 2), (2, 1)] {
                let (m, ck) = record("m", version, epoch, version as f32);
                store.record_checkpoint("m", "t", version, m, ck).unwrap();
            }
        }
        let store = ModelStore::open(&dir).unwrap();
        let rec = store.latest("m").unwrap();
        assert_eq!(
            (rec.version, rec.epoch),
            (2, 1),
            "version ranks above epoch in recency"
        );
        assert_eq!(store.next_version("m"), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
