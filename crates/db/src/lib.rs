//! # corgipile-db
//!
//! The in-database CorgiPile integration (§6), rebuilt as a miniature
//! PostgreSQL-style engine:
//!
//! * [`exec`] — Volcano-style physical operators with
//!   `init`/`next`/`rescan`/`close`: `BlockShuffle` (random block reads),
//!   `TupleShuffle` (buffered tuple shuffle with the §6.3 double-buffering
//!   accounting), and the `SGD` operator that drives epochs through
//!   PostgreSQL's re-scan mechanism.
//! * [`sql`] — the SQL surface:
//!   `SELECT * FROM t TRAIN BY svm WITH learning_rate = 0.1, max_epoch_num
//!   = 20, block_size = 10MB` and `SELECT * FROM t PREDICT BY model`.
//! * [`catalog`] — tables and trained models.
//! * [`model_store`] — the WAL-backed durable model store: epoch-granular
//!   checkpoints under `WITH durable = 1`, compaction snapshots, and
//!   replay-based recovery to bit-identical models after a crash.
//! * [`serving`] — the read-mostly inference subsystem: a versioned
//!   [`ModelCache`] of immutable `Arc<ServableModel>` entries with
//!   epoch/version pinning and mid-traffic hot-reload, behind
//!   `PREDICT <model> [VERSION n] ON <table>` and
//!   [`Session::predict_batch`].
//! * [`database`] — the shared engine object: one device, one
//!   `shared_buffers` pool, one catalog behind interior-synchronized
//!   handles; `Arc<Database>` + [`Database::connect`] opens concurrent
//!   sessions.
//! * [`session`] — a connection: parses, plans, executes, and stores
//!   results.
//! * [`baselines`] — MADlib- and Bismarck-style UDA trainer emulations
//!   (Shuffle-Once / No-Shuffle variants with their measured compute
//!   characteristics), the comparison systems of Figures 1, 11 and 13.

pub mod baselines;
pub mod catalog;
pub mod database;
pub mod error;
pub mod exec;
pub mod model_store;
pub mod options;
pub mod plan;
mod proptests;
pub mod serving;
pub mod session;
pub mod sql;

pub use baselines::{system_trainer_config, InDbSystem};
pub use catalog::{AppendOutcome, Catalog, StoredModel};
pub use corgipile_storage::{TableSnapshot, Telemetry, TelemetrySnapshot};
pub use database::Database;
pub use error::DbError;
pub use exec::{
    BatchCursor, BlockShuffleOp, CheckpointSink, DbEpochRecord, ExecContext, FaultAction, FilterOp,
    FusedPipelineOp, FusedSource, OpStats, PhysicalOperator, PostStage, PredictOperator,
    PredictRunResult, ProjectOp, ScanMode, SgdOperator, SgdRunResult, TupleShuffleOp,
};
pub use model_store::{ModelRecord, ModelStore, ModelStoreOptions, ModelStoreStats};
pub use options::{
    effective_line, known_keys, OptionSpec, OptionType, QueryOptions, Statement, OPTIONS,
};
pub use plan::{
    build_physical, build_physical_with, BuildOptions, LogicalPlan, PhysicalPlan, PredictPlanSpec,
    ScanOrder, TrainPlanSpec,
};
pub use serving::{CacheStats, ModelCache, ServableModel};
pub use session::{DbTrainSummary, PredictSummary, QueryResult, ServeOptions, Session};
pub use sql::{
    parse, parse_strategy_name, CmpOp, ColumnRef, ParamValue, Predicate, Projection, Query,
    ShowTarget, StrategyKind,
};
