//! The shared database engine.
//!
//! The paper's system is a PostgreSQL extension: one postmaster owns the
//! storage device, `shared_buffers` and the catalog, and every client
//! backend works through handles onto that shared state. [`Database`] is
//! that engine object. It is handed around as an `Arc<Database>`; each
//! [`Database::connect`] call opens a lightweight [`Session`] that holds
//! per-connection [`corgipile_storage::DeviceHandle`] / [`corgipile_storage::PoolHandle`] views, so multiple
//! sessions can run `TRAIN` / `PREDICT` / `EXPLAIN` concurrently from
//! separate threads while sharing cached blocks:
//!
//! ```
//! use corgipile_db::Database;
//! use corgipile_storage::SimDevice;
//!
//! let db = Database::with_shared_buffers(SimDevice::hdd_scaled(1000.0, 0), 64 << 20);
//! let conn_a = db.connect();
//! let conn_b = db.connect();
//! # let _ = (conn_a, conn_b);
//! ```
//!
//! Determinism: a trained model depends only on the tuple stream order
//! (table contents + RNG seeds), never on device timing or cache residency,
//! so a session sharing the engine with others trains models bit-identical
//! to the same queries run serially on a private engine.

use crate::catalog::Catalog;
use crate::error::DbError;
use crate::model_store::{ModelStore, ModelStoreOptions};
use crate::serving::{ModelCache, ServableModel};
use crate::session::Session;
use corgipile_ml::ComputeCostModel;
use corgipile_storage::{
    BufferPoolStats, IoStats, SharedBufferPool, SharedDevice, SimDevice, Table, Telemetry,
};
use std::path::Path;
use std::sync::Arc;

/// The engine: one simulated device, one `shared_buffers` pool, one
/// catalog, and the engine-wide telemetry registry, all behind
/// interior-synchronized handles so `&Database` is enough for every
/// operation.
pub struct Database {
    device: SharedDevice,
    pool: SharedBufferPool,
    catalog: Catalog,
    telemetry: Telemetry,
    compute: ComputeCostModel,
    model_store: Option<Arc<ModelStore>>,
    model_cache: ModelCache,
}

impl Database {
    /// An engine over `dev` without a shared buffer pool (each query may
    /// still request a private pool via the `shared_buffers` parameter).
    pub fn new(dev: SimDevice) -> Arc<Self> {
        Database::with_shared_buffers(dev, 0)
    }

    /// An engine over `dev` with a `shared_buffers` pool of
    /// `pool_capacity_bytes`, shared by every connection: blocks one
    /// session faulted in are served to the others at zero device cost.
    pub fn with_shared_buffers(dev: SimDevice, pool_capacity_bytes: usize) -> Arc<Self> {
        Database::assemble(dev, pool_capacity_bytes, None)
    }

    /// An engine with a WAL-backed durable model store at `dir`.
    ///
    /// Opening **is** recovery: the store's snapshot and write-ahead log
    /// are replayed (torn tails truncated, later `(version, epoch)` pairs
    /// winning) and the latest valid version of every model is registered
    /// in the catalog, immediately visible to `PREDICT BY` and resumable
    /// by `WITH durable = 1` training. Recovery facts are published on the
    /// engine telemetry as `storage.wal.recovered_records`,
    /// `storage.wal.torn_tail_bytes` and `storage.wal.snapshot_models`.
    pub fn with_model_store(
        dev: SimDevice,
        pool_capacity_bytes: usize,
        dir: &Path,
    ) -> Result<Arc<Self>, DbError> {
        Database::with_model_store_opts(dev, pool_capacity_bytes, dir, ModelStoreOptions::default())
    }

    /// [`Database::with_model_store`] with explicit store options
    /// (compaction threshold, retry policy, write-fault plan — the crash
    /// matrix opens engines through here).
    pub fn with_model_store_opts(
        dev: SimDevice,
        pool_capacity_bytes: usize,
        dir: &Path,
        opts: ModelStoreOptions,
    ) -> Result<Arc<Self>, DbError> {
        let store = Arc::new(ModelStore::open_with(dir, opts)?);
        let db = Database::assemble(dev, pool_capacity_bytes, Some(store.clone()));
        // Durable engines also journal table appends: each table gets a
        // `CORGIWL1` WAL at `<dir>/tables/<name>.wal`, replayed when the
        // table is re-registered after a restart (see
        // `Catalog::recover_table_wal`).
        db.catalog.set_table_wal_dir(dir.join("tables"));
        // Recovery registration: the latest durable version of every model
        // becomes the catalog object, exactly as if its training query had
        // just stored it — and the serving cache's active version, so
        // `PREDICT` traffic survives an engine restart warm.
        for rec in store.models() {
            db.catalog.store_model(&rec.name, rec.stored.clone());
            db.model_cache
                .publish(ServableModel::new(&rec.name, rec.version, rec.stored), true);
        }
        let s = store.stats();
        let tel = &db.telemetry;
        tel.counter("storage.wal.recovered_records")
            .add(s.recovered_records);
        tel.counter("storage.wal.torn_tail_bytes")
            .add(s.torn_tail_bytes);
        tel.counter("storage.wal.snapshot_models")
            .add(s.snapshot_models);
        Ok(db)
    }

    fn assemble(
        mut dev: SimDevice,
        pool_capacity_bytes: usize,
        model_store: Option<Arc<ModelStore>>,
    ) -> Arc<Self> {
        let telemetry = Telemetry::enabled();
        // The engine registry is the device's *resting* telemetry: it
        // receives mirrors for access made outside any session handle,
        // while handle-scoped access mirrors into the owning session.
        dev.set_telemetry(telemetry.clone());
        let pool = SharedBufferPool::new(pool_capacity_bytes);
        pool.set_telemetry(&telemetry);
        Arc::new(Database {
            device: SharedDevice::new(dev),
            pool,
            catalog: Catalog::new(),
            telemetry,
            compute: ComputeCostModel::in_db_core(),
            model_store,
            model_cache: ModelCache::new(),
        })
    }

    /// Open a connection. Sessions are cheap: a pair of handles plus a
    /// fresh per-session telemetry scope.
    pub fn connect(self: &Arc<Self>) -> Session {
        Session::over(Arc::clone(self))
    }

    /// The shared catalog (interior-synchronized: registration and lookup
    /// take `&self`).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Register a table under `name`, visible to every connection.
    pub fn register_table(&self, name: impl Into<String>, table: Table) {
        self.catalog.register_table(name, table);
    }

    /// The engine-wide telemetry registry (session-scoped emissions land in
    /// each session's own registry instead; see [`Session::telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Engine-wide device statistics (all connections combined).
    pub fn device_stats(&self) -> IoStats {
        self.device.stats()
    }

    /// Engine-wide `shared_buffers` statistics (all connections combined).
    pub fn pool_stats(&self) -> BufferPoolStats {
        self.pool.stats()
    }

    /// Capacity of the shared buffer pool in bytes (0 = none).
    pub fn shared_buffers(&self) -> usize {
        self.pool.capacity()
    }

    /// The durable model store, when the engine was opened with one
    /// ([`Database::with_model_store`]); `WITH durable = 1` requires it.
    pub fn model_store(&self) -> Option<&Arc<ModelStore>> {
        self.model_store.as_ref()
    }

    /// The serving subsystem's versioned model cache (see
    /// [`crate::serving`]): immutable `Arc<ServableModel>` entries that
    /// `PREDICT` batches pin while training hot-reloads new versions.
    pub fn model_cache(&self) -> &ModelCache {
        &self.model_cache
    }

    /// The engine's compute cost model.
    pub(crate) fn compute(&self) -> ComputeCostModel {
        self.compute
    }

    /// The shared device (for handing out connection handles).
    pub(crate) fn device(&self) -> &SharedDevice {
        &self.device
    }

    /// The shared buffer pool (for handing out connection handles).
    pub(crate) fn pool(&self) -> &SharedBufferPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};

    #[test]
    fn engine_state_is_shared_across_connections() {
        let db = Database::new(SimDevice::in_memory());
        let table = DatasetSpec::higgs_like(200).build_table(1).unwrap();
        db.register_table("t", table);
        let mut a = db.connect();
        let mut b = db.connect();
        a.execute("SELECT * FROM t TRAIN BY svm WITH max_epoch_num = 1, model_name = m")
            .unwrap();
        // The model trained on connection A is visible to connection B.
        let r = b.execute("SELECT * FROM t PREDICT BY m").unwrap();
        assert!(matches!(r, crate::QueryResult::Predict { .. }));
        assert!(db.catalog().model("m").is_ok());
    }

    #[test]
    fn engine_device_stats_aggregate_over_sessions() {
        let db = Database::new(SimDevice::hdd_scaled(1000.0, 0));
        let table = DatasetSpec::higgs_like(400)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(8192)
            .build_table(1)
            .unwrap();
        db.register_table("t", table);
        let mut a = db.connect();
        let mut b = db.connect();
        a.execute("SELECT * FROM t TRAIN BY svm WITH max_epoch_num = 1")
            .unwrap();
        b.execute("SELECT * FROM t TRAIN BY svm WITH max_epoch_num = 1")
            .unwrap();
        let a_bytes = a.device().stats().device_bytes;
        let b_bytes = b.device().stats().device_bytes;
        assert!(a_bytes > 0 && b_bytes > 0);
        assert_eq!(db.device_stats().device_bytes, a_bytes + b_bytes);
    }
}
