//! Volcano-style physical operators (§6.2).
//!
//! The paper integrates CorgiPile into PostgreSQL with three new physical
//! operators chained into a pull-based pipeline:
//!
//! ```text
//!   SGD  ←pull─  TupleShuffle  ←pull─  BlockShuffle  ←read─  heap table
//! ```
//!
//! * [`BlockShuffleOp`] shuffles the block ids (`ExecInit`/`ExecReScan`)
//!   and returns tuples of each block in turn (random block reads); with
//!   [`ScanMode::Sequential`] it degenerates into PostgreSQL's `SeqScan`,
//!   which the No-Shuffle baselines use.
//! * [`TupleShuffleOp`] buffers pulled tuples up to its capacity, shuffles
//!   the buffer (like PostgreSQL's `Sort` materialization), then emits —
//!   recording per-fill loading costs so the §6.3 double-buffering overlap
//!   can be accounted.
//! * [`SgdOperator`] owns the model; each epoch it pulls every tuple,
//!   applies per-tuple or mini-batch updates, then calls `rescan` down the
//!   pipeline (PostgreSQL's re-scan mechanism, as in `NestedLoopJoin`'s
//!   inner plan) to reshuffle and re-read for the next epoch.

use crate::error::DbError;
use crate::sql::Predicate;
use corgipile_data::rng::shuffle_in_place;
use corgipile_ml::{
    train_minibatch, ComputeCostModel, Model, Optimizer, TrainCheckpoint, TrainOptions,
};
use corgipile_shuffle::{BlockReversalShuffle, StrategyParams};
use corgipile_storage::{
    block_refs, run_epoch_pipeline, Counter, DeviceHandle, DoubleBufferModel, PipelineError,
    PipelineReport, PoolHandle, RetryPolicy, SimDevice, Table, Telemetry, Tuple, TupleBatch,
    TupleRef,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::Arc;

/// What the executor does when a block read fails even after retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultAction {
    /// Abort the query with the storage error (PostgreSQL's default).
    #[default]
    Fail,
    /// Skip the dead block, record it, and keep training on the rest —
    /// graceful degradation for long-running jobs on failing media.
    SkipBlock,
}

/// Execution context threaded through the operator tree.
///
/// Device and pool access goes through per-connection handles
/// ([`corgipile_storage::DeviceHandle`] / [`corgipile_storage::PoolHandle`]): the handles carry this session's
/// fault plan and telemetry onto the shared engine state for the duration
/// of each access, and their local stats expose only this query's I/O.
pub struct ExecContext<'a> {
    /// This connection's view of the storage device (simulated clock +
    /// OS cache).
    pub dev: &'a mut DeviceHandle,
    /// Loading cost of each buffer fill in the current epoch, pushed by the
    /// operator directly below `SGD`.
    pub fill_io: Vec<f64>,
    /// This connection's view of the engine's buffer pool
    /// (`shared_buffers`), if configured. Random block reads go through it;
    /// sequential scans bypass it, like PostgreSQL's ring-buffer strategy
    /// for large seqscans.
    pub pool: Option<&'a mut PoolHandle>,
    /// Retry policy applied to every block read; backoff is charged to the
    /// simulated clock.
    pub retry: RetryPolicy,
    /// Degradation policy once the retry budget is exhausted.
    pub on_fault: FaultAction,
    /// Blocks skipped this epoch under [`FaultAction::SkipBlock`]; the
    /// `SGD` operator drains this into its per-epoch record.
    pub skipped_blocks: Vec<usize>,
    /// Observability handle: operators record buffer-fill spans and
    /// per-epoch events through it. Disabled by default, in which case
    /// every emission is a no-op.
    pub telemetry: Telemetry,
}

impl<'a> ExecContext<'a> {
    /// Create a context over a device handle, without a buffer pool.
    pub fn new(dev: &'a mut DeviceHandle) -> Self {
        let telemetry = dev.telemetry().clone();
        ExecContext {
            dev,
            fill_io: Vec::new(),
            pool: None,
            retry: RetryPolicy::default(),
            on_fault: FaultAction::default(),
            skipped_blocks: Vec::new(),
            telemetry,
        }
    }

    /// Create a context with a buffer-pool handle (`shared_buffers`).
    pub fn with_pool(dev: &'a mut DeviceHandle, pool: &'a mut PoolHandle) -> Self {
        let mut ctx = ExecContext::new(dev);
        ctx.pool = Some(pool);
        ctx
    }
}

/// Actual per-operator execution statistics, collected for
/// `EXPLAIN ANALYZE` — PostgreSQL's "actual rows / loops" annotations plus
/// the simulated-I/O dimensions the paper's figures are built from.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpStats {
    /// Operator name as reported by [`PhysicalOperator::name`].
    pub name: String,
    /// Depth in the plan tree (0 = root).
    pub depth: usize,
    /// Tuples emitted (summed over all loops/epochs).
    pub rows: u64,
    /// Number of scans: one `init` plus one per `rescan` (epochs).
    pub loops: u64,
    /// Simulated I/O seconds attributed to this operator.
    pub io_seconds: f64,
    /// SGD compute seconds (root operator only).
    pub compute_seconds: f64,
    /// Block fetches issued (device reads, cache hits and skipped blocks).
    pub blocks_read: u64,
    /// Block fetches served by the buffer pool or the OS page cache.
    pub cache_hits: u64,
    /// Retry attempts spent recovering this operator's reads.
    pub retries: u64,
    /// Blocks abandoned under [`FaultAction::SkipBlock`].
    pub skipped_blocks: u64,
    /// Buffer fills performed (TupleShuffle).
    pub fills: u64,
    /// Tuples buffered across all fills (TupleShuffle).
    pub buffered_tuples: u64,
    /// Batches emitted by a batch-at-a-time node (fused pipelines report
    /// their per-batch actuals here).
    pub batches: u64,
    /// Fraction of the serial (single-buffer) epoch time saved by
    /// overlapping loading with compute (SGD root only; 0 when the plan ran
    /// without double buffering or there was nothing to overlap).
    pub overlap_ratio: f64,
    /// Tuples dropped by this operator's predicate (PostgreSQL's
    /// "Rows Removed by Filter").
    pub rows_filtered: u64,
    /// Rendered predicate evaluated at this node, if any.
    pub predicate: Option<String>,
    /// Rendered projection applied at this node, if any.
    pub projection: Option<String>,
}

impl OpStats {
    /// Fraction of block fetches served from a cache tier (0 when idle).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.blocks_read == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.blocks_read as f64
        }
    }

    /// One `EXPLAIN ANALYZE` plan line, indented by depth.
    pub fn render(&self) -> String {
        let mut line = format!(
            "{}{}{} (actual rows={} loops={} io={:.6}s",
            "  ".repeat(self.depth),
            if self.depth > 0 { "-> " } else { "" },
            self.name,
            self.rows,
            self.loops,
            self.io_seconds,
        );
        if self.compute_seconds > 0.0 {
            line.push_str(&format!(" compute={:.6}s", self.compute_seconds));
        }
        if self.overlap_ratio > 0.0 {
            line.push_str(&format!(" overlap={:.1}%", 100.0 * self.overlap_ratio));
        }
        if self.blocks_read > 0 {
            line.push_str(&format!(
                " blocks={} cache_hit_rate={:.1}% retries={}",
                self.blocks_read,
                100.0 * self.cache_hit_rate(),
                self.retries,
            ));
        }
        if self.skipped_blocks > 0 {
            line.push_str(&format!(" skipped_blocks={}", self.skipped_blocks));
        }
        if self.fills > 0 {
            line.push_str(&format!(
                " fills={} buffered_tuples={}",
                self.fills, self.buffered_tuples
            ));
        }
        if self.batches > 0 {
            line.push_str(&format!(" batches={}", self.batches));
        }
        line.push(')');
        line
    }

    /// The node line plus PostgreSQL-style sub-lines (`Output:`, `Filter:`,
    /// `Rows Removed by Filter:`), indented under the node.
    pub fn render_lines(&self) -> Vec<String> {
        let mut lines = vec![self.render()];
        // Sub-lines align with the node name, past the "-> " arrow.
        let pad = " ".repeat(2 * self.depth + if self.depth > 0 { 5 } else { 2 });
        if let Some(p) = &self.projection {
            lines.push(format!("{pad}Output: {p}"));
        }
        if let Some(p) = &self.predicate {
            lines.push(format!("{pad}Filter: ({p})"));
            lines.push(format!(
                "{pad}Rows Removed by Filter: {}",
                self.rows_filtered
            ));
        }
        lines
    }

    /// Fraction of evaluated tuples that passed this node's predicate
    /// (1.0 when nothing was filtered).
    pub fn selectivity(&self) -> f64 {
        let seen = self.rows + self.rows_filtered;
        if seen == 0 {
            1.0
        } else {
            self.rows as f64 / seen as f64
        }
    }
}

/// SplitMix64 finalizer: a bijective avalanche mix on `u64`. Used to derive
/// the per-tuple shuffle keys — distinct inputs always produce distinct
/// keys, so a sort over them is a total order with no tie-break needed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

///// Materialize the projection of one tuple: a fresh dense tuple over the
/// selected feature columns (constructed, not cloned, so the zero-clone
/// accounting of the fill path is preserved).
pub(crate) fn project_tuple(t: &Tuple, cols: &[usize]) -> Tuple {
    Tuple::dense(
        t.id,
        cols.iter().map(|&i| t.features.get(i)).collect(),
        t.label,
    )
}

/// Compatibility-shim state backing the default [`PhysicalOperator::next`]
/// and [`PhysicalOperator::next_ref`] implementations: the most recent
/// batch pulled via [`PhysicalOperator::next_batch`] plus a read position.
/// Every operator owns one and exposes it through
/// [`PhysicalOperator::cursor`]; batch-native callers never touch it.
#[derive(Debug, Default)]
pub struct BatchCursor {
    batch: TupleBatch,
    pos: usize,
}

impl BatchCursor {
    /// Drop any unread refs and reset the read position (keeps capacity).
    pub fn reset(&mut self) {
        self.batch.clear();
        self.pos = 0;
    }
}

/// A pull-based physical operator, batch-at-a-time.
///
/// The primary interface is [`PhysicalOperator::next_batch`]: the caller
/// hands down a reusable [`TupleBatch`] and the operator refills it with
/// the next run of zero-copy [`TupleRef`]s, so the steady-state inner loop
/// makes **one virtual call per batch** instead of one per tuple (and,
/// once capacities are warm, zero allocations). The tuple-at-a-time
/// `next`/`next_ref` methods survive as thin compatibility shims draining
/// a [`BatchCursor`]; do not interleave them with direct `next_batch`
/// calls within one pass — the cursor may hold undrained refs.
///
/// `Send` is a supertrait so a boxed plan can be mutably borrowed into the
/// producer thread of the double-buffered pipeline (see
/// [`SgdOperator::execute`]).
pub trait PhysicalOperator: Send {
    /// Operator name (for EXPLAIN-style output).
    fn name(&self) -> &'static str;
    /// Initialize state (PostgreSQL `ExecInit*`).
    fn init(&mut self, ctx: &mut ExecContext);
    /// Clear `out` and refill it with the next batch of tuples. Returns
    /// `Ok(false)` at end of stream; `Ok(true)` guarantees a non-empty
    /// `out`. Batch boundaries align with buffer fills (one batch per
    /// block read for scans, one per buffer fill for TupleShuffle), which
    /// is what the double-buffered pipeline hands producer→consumer and
    /// what the `fill_io` attribution keys on. Storage failures that
    /// survive the retry policy (and are not absorbed by
    /// [`FaultAction::SkipBlock`]) propagate as [`DbError::Storage`].
    fn next_batch(&mut self, ctx: &mut ExecContext, out: &mut TupleBatch) -> Result<bool, DbError>;
    /// Clear `out` and refill it with the surviving tuples of the next
    /// *source block*, or return `Ok(false)` when the scan is exhausted.
    /// Unlike [`PhysicalOperator::next_batch`], a fully filtered (or dead,
    /// skipped) block yields `Ok(true)` with an **empty** `out`, so a
    /// buffering parent counting blocks sees identical fill boundaries
    /// whether a predicate ran below it or not — the invariant behind
    /// bit-identical pushdown. Default: one `next_batch` per call.
    fn next_block(&mut self, ctx: &mut ExecContext, out: &mut TupleBatch) -> Result<bool, DbError> {
        self.next_batch(ctx, out)
    }
    /// The operator's compatibility-shim cursor (state for the default
    /// `next`/`next_ref`). Must be reset on `init` and `rescan`.
    fn cursor(&mut self) -> &mut BatchCursor;
    /// Tuple-at-a-time compatibility shim over [`PhysicalOperator::next_batch`]:
    /// drains the cursor's current batch one zero-copy ref at a time,
    /// pulling the next batch when it runs dry.
    fn next_ref(&mut self, ctx: &mut ExecContext) -> Result<Option<TupleRef>, DbError> {
        loop {
            let cur = self.cursor();
            if cur.pos < cur.batch.len() {
                let r = cur.batch[cur.pos].clone();
                cur.pos += 1;
                return Ok(Some(r));
            }
            // Take the batch out of the cursor so `self` is free for the
            // `next_batch` call, then put it back (keeping its capacity).
            let mut batch = std::mem::take(&mut self.cursor().batch);
            let more = self.next_batch(ctx, &mut batch)?;
            let cur = self.cursor();
            cur.batch = batch;
            cur.pos = 0;
            if !more {
                return Ok(None);
            }
        }
    }
    /// Materializing compatibility shim: one cloned [`Tuple`] per call.
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Tuple>, DbError> {
        Ok(self.next_ref(ctx)?.map(|r| r.tuple().clone()))
    }
    /// Reset for another pass (PostgreSQL `ExecReScan*`); block orders are
    /// re-randomized.
    fn rescan(&mut self, ctx: &mut ExecContext);
    /// Release resources.
    fn close(&mut self, ctx: &mut ExecContext);
    /// Append this operator's actual stats (then its children's, one level
    /// deeper) for `EXPLAIN ANALYZE`. Default: report nothing.
    fn collect_stats(&self, depth: usize, out: &mut Vec<OpStats>) {
        let _ = (depth, out);
    }
}

/// Whether `BlockShuffleOp` randomizes the block order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Sequential block order (PostgreSQL `SeqScan`; No-Shuffle baselines).
    Sequential,
    /// Random block order (CorgiPile's block-level shuffle).
    RandomBlocks,
    /// Epoch-indexed rotation/reversal order (Block-Reversal): adjacent
    /// blocks stream sequentially, only discontinuities pay a seek.
    Reversal,
}

/// The `BlockShuffle` operator.
///
/// Optionally carries a fused predicate and projection (WHERE/SELECT
/// pushdown): the predicate is evaluated on each decoded tuple *before* its
/// ref enters any queue or buffer, so filtered tuples never occupy
/// TupleShuffle capacity, and the projection materializes only surviving
/// tuples.
pub struct BlockShuffleOp {
    table: Arc<Table>,
    mode: ScanMode,
    seed: u64,
    rng: StdRng,
    order: Vec<usize>,
    next_block: usize,
    epoch: u64,
    predicate: Option<Predicate>,
    projection: Option<Vec<usize>>,
    shared_scan: bool,
    initialized: bool,
    shim: BatchCursor,
    actuals: OpStats,
}

impl BlockShuffleOp {
    /// Create over a table.
    pub fn new(table: Arc<Table>, mode: ScanMode, seed: u64) -> Self {
        BlockShuffleOp {
            table,
            mode,
            seed,
            rng: StdRng::seed_from_u64(seed ^ 0xB5_0F),
            order: Vec::new(),
            next_block: 0,
            epoch: 0,
            predicate: None,
            projection: None,
            shared_scan: false,
            initialized: false,
            shim: BatchCursor::default(),
            actuals: OpStats::default(),
        }
    }

    /// Fuse a pushed-down predicate into the scan (evaluated zero-copy on
    /// each decoded tuple before it is queued or buffered).
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = Some(predicate);
        self
    }

    /// Fuse a pushed-down projection (feature column indices) into the
    /// scan: surviving tuples are re-materialized over the selected columns.
    pub fn with_projection(mut self, columns: Vec<usize>) -> Self {
        self.projection = Some(columns);
        self
    }

    /// Route sequential scans through the shared buffer pool (when the
    /// context carries one) instead of the ring-buffer-style device path:
    /// a hot serving table then stops re-paying device I/O on every scan.
    pub fn with_shared_scan(mut self, shared_scan: bool) -> Self {
        self.shared_scan = shared_scan;
        self
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    fn reshuffle(&mut self) {
        self.order.clear();
        match self.mode {
            ScanMode::Sequential => self.order.extend(0..self.table.num_blocks()),
            ScanMode::RandomBlocks => {
                self.order.extend(0..self.table.num_blocks());
                shuffle_in_place(&mut self.rng, &mut self.order);
            }
            ScanMode::Reversal => {
                // Same order the standalone strategy produces: a seeded
                // rotation, traversed in reverse on odd epochs.
                let n = self.table.num_blocks();
                let offset = if n > 0 { self.rng.gen_range(0..n) } else { 0 };
                self.order = BlockReversalShuffle::epoch_order(offset, self.epoch % 2 == 1, n);
            }
        }
        self.epoch += 1;
        self.next_block = 0;
    }

    /// Read the next block of the shuffled order, appending its surviving
    /// tuples to `out` as `Arc`-shared [`TupleRef`]s (zero tuple clones:
    /// the buffer-pool path shares the cached `Arc`, the decode paths wrap
    /// the freshly decoded block once). Returns `Ok(false)` when no blocks
    /// remain; after a fully filtered or skipped dead block `out` may be
    /// left unchanged.
    fn load_next_block(
        &mut self,
        ctx: &mut ExecContext,
        out: &mut TupleBatch,
    ) -> Result<bool, DbError> {
        if self.next_block >= self.order.len() {
            return Ok(false);
        }
        let block = self.order[self.next_block];
        let io_before = ctx.dev.stats().io_seconds;
        let hits_before =
            ctx.dev.stats().cache_hits + ctx.pool.as_ref().map_or(0, |p| p.stats().hits);
        let retries_before = ctx.dev.stats().retries;
        let table = &self.table;
        let retry = &ctx.retry;
        let first = self.next_block == 0;
        let read = match self.mode {
            ScanMode::Sequential => match ctx.pool.as_deref_mut() {
                // `WITH shared_scan = 1`: a sequential scan opts into the
                // shared buffer pool, so repeated scans of a hot serving
                // table hit cached blocks instead of re-reading the device.
                Some(pool) if self.shared_scan => {
                    pool.read_block_retry(table, block, ctx.dev, retry)
                }
                _ => ctx
                    .dev
                    .with(|d| table.scan_block_sequential_retry(block, first, d, retry))
                    .map(Arc::new),
            },
            ScanMode::RandomBlocks => match ctx.pool.as_deref_mut() {
                Some(pool) => pool.read_block_retry(table, block, ctx.dev, retry),
                None => ctx
                    .dev
                    .with(|d| table.read_block_retry(block, d, retry))
                    .map(Arc::new),
            },
            ScanMode::Reversal => {
                // Adjacent blocks (either direction) continue the stream;
                // the epoch start and the rotation wrap pay the seek.
                let seek = first || self.order[self.next_block - 1].abs_diff(block) != 1;
                ctx.dev
                    .with(|d| table.scan_block_sequential_retry(block, seek, d, retry))
                    .map(Arc::new)
            }
        };
        self.next_block += 1;
        self.actuals.blocks_read += 1;
        let hits_after =
            ctx.dev.stats().cache_hits + ctx.pool.as_ref().map_or(0, |p| p.stats().hits);
        self.actuals.cache_hits += hits_after - hits_before;
        self.actuals.retries += ctx.dev.stats().retries - retries_before;
        match read {
            Ok(tuples) => {
                // Report the block read as a fill; a TupleShuffle above
                // folds these into its own per-buffer entries.
                let fill = ctx.dev.stats().io_seconds - io_before;
                ctx.fill_io.push(fill);
                self.actuals.io_seconds += fill;
                match (&self.predicate, &self.projection) {
                    (None, None) => {
                        for r in block_refs(&tuples) {
                            out.push(r);
                        }
                    }
                    (pred, Some(cols)) => {
                        // Projection (optionally after the predicate):
                        // materialize surviving tuples over the selected
                        // columns as one fresh Arc-shared block.
                        let mut projected = Vec::new();
                        for t in tuples.iter() {
                            if pred.as_ref().is_none_or(|p| p.matches(t)) {
                                projected.push(project_tuple(t, cols));
                            } else {
                                self.actuals.rows_filtered += 1;
                            }
                        }
                        if !projected.is_empty() {
                            for r in block_refs(&Arc::new(projected)) {
                                out.push(r);
                            }
                        }
                    }
                    (Some(pred), None) => {
                        // Zero-copy fast path: evaluate the predicate on the
                        // Arc-shared ref before it enters any buffer; dropped
                        // tuples cost no clone and no buffer slot.
                        for r in block_refs(&tuples) {
                            if pred.matches(&r) {
                                out.push(r);
                            } else {
                                self.actuals.rows_filtered += 1;
                            }
                        }
                    }
                }
            }
            Err(e) if ctx.on_fault == FaultAction::SkipBlock && e.is_retryable() => {
                // Dead block after exhausted retries: degrade by moving
                // on, keeping the wasted retry time on the books.
                let fill = ctx.dev.stats().io_seconds - io_before;
                ctx.fill_io.push(fill);
                self.actuals.io_seconds += fill;
                self.actuals.skipped_blocks += 1;
                ctx.skipped_blocks.push(block);
            }
            Err(e) => return Err(e.into()),
        }
        Ok(true)
    }
}

impl PhysicalOperator for BlockShuffleOp {
    fn name(&self) -> &'static str {
        "BlockShuffle"
    }

    fn init(&mut self, _ctx: &mut ExecContext) {
        self.rng = StdRng::seed_from_u64(self.seed ^ 0xB5_0F);
        self.epoch = 0;
        self.reshuffle();
        self.initialized = true;
        self.shim.reset();
        self.actuals.loops += 1;
    }

    fn next_batch(&mut self, ctx: &mut ExecContext, out: &mut TupleBatch) -> Result<bool, DbError> {
        debug_assert!(self.initialized, "next_batch() before init()");
        // One batch per block read: aligns each batch with the `fill_io`
        // entry its read pushed, which the pipelined SGD consumer uses to
        // attribute compute to fills.
        out.clear();
        loop {
            if !self.load_next_block(ctx, out)? {
                return Ok(false);
            }
            if !out.is_empty() {
                self.actuals.rows += out.len() as u64;
                self.actuals.batches += 1;
                return Ok(true);
            }
        }
    }

    fn next_block(&mut self, ctx: &mut ExecContext, out: &mut TupleBatch) -> Result<bool, DbError> {
        debug_assert!(self.initialized, "next_block() before init()");
        out.clear();
        if !self.load_next_block(ctx, out)? {
            return Ok(false);
        }
        // Unlike next_batch, an empty result after a consumed block (fully
        // filtered, or dead and skipped) is reported as `Ok(true)`:
        // block-counting parents must see every source block.
        self.actuals.rows += out.len() as u64;
        Ok(true)
    }

    fn cursor(&mut self) -> &mut BatchCursor {
        &mut self.shim
    }

    fn rescan(&mut self, _ctx: &mut ExecContext) {
        self.reshuffle();
        self.shim.reset();
        self.actuals.loops += 1;
    }

    fn close(&mut self, _ctx: &mut ExecContext) {
        self.order.clear();
        self.shim.reset();
        self.initialized = false;
    }

    fn collect_stats(&self, depth: usize, out: &mut Vec<OpStats>) {
        let mut stats = self.actuals.clone();
        stats.name = match self.mode {
            ScanMode::Sequential => "SeqScan".to_string(),
            ScanMode::RandomBlocks => self.name().to_string(),
            ScanMode::Reversal => "BlockReversalScan".to_string(),
        };
        stats.depth = depth;
        stats.predicate = self.predicate.as_ref().map(|p| p.to_string());
        stats.projection = self.projection.as_ref().map(|cols| {
            let mut s = cols
                .iter()
                .map(|i| format!("f{i}"))
                .collect::<Vec<_>>()
                .join(", ");
            s.push_str(", label");
            s
        });
        out.push(stats);
    }
}

/// The `TupleShuffle` operator.
///
/// Fill windows are counted in *source blocks* pulled via
/// [`PhysicalOperator::next_block`] (not in buffered tuples), and the
/// in-buffer shuffle orders tuples by a deterministic per-(seed, epoch,
/// tuple-id) hash key. Together these make the emitted stream invariant to
/// where a predicate runs: a pushdown plan (filter below the buffer) and a
/// post-buffer filter see the same fill boundaries and the same surviving
/// order, so they train bit-identical models — while the pushdown plan
/// buffers only survivors.
pub struct TupleShuffleOp {
    child: Box<dyn PhysicalOperator>,
    capacity_blocks: usize,
    params: StrategyParams,
    epoch: u64,
    buffer: Vec<TupleRef>,
    /// Scratch batch the child's `next_block` fills into (capacity reused
    /// across fills — the child is pulled block-at-a-time, never per tuple).
    fetch: TupleBatch,
    /// Persistent sort scratch for the keyed in-buffer shuffle.
    keyed: Vec<(u64, TupleRef)>,
    exhausted: bool,
    shim: BatchCursor,
    actuals: OpStats,
}

impl TupleShuffleOp {
    /// Buffer up to `capacity_blocks` source blocks' worth of surviving
    /// tuples per fill (the paper's buffered-block count, computed by the
    /// planner from `buffer_fraction`).
    pub fn new(
        child: Box<dyn PhysicalOperator>,
        capacity_blocks: usize,
        params: StrategyParams,
    ) -> Self {
        assert!(capacity_blocks >= 1, "buffer must hold at least one block");
        TupleShuffleOp {
            child,
            capacity_blocks,
            params,
            epoch: 0,
            buffer: Vec::new(),
            fetch: TupleBatch::new(),
            keyed: Vec::new(),
            exhausted: false,
            shim: BatchCursor::default(),
            actuals: OpStats::default(),
        }
    }

    /// Pull one buffer window from the child, shuffle, and record the fill
    /// cost into `ctx.fill_io`. Zero-copy: the buffer holds [`TupleRef`]s
    /// into the child's `Arc`-shared blocks, and the key sort permutes
    /// those refs — no tuple is cloned on the fill path. A window whose
    /// blocks were all filtered out (or skipped as dead) merges into the
    /// next window rather than surfacing an empty fill.
    fn refill(&mut self, ctx: &mut ExecContext) -> Result<(), DbError> {
        self.buffer.clear();
        // Child fills recorded below us are folded into our own entry.
        let fills_base = ctx.fill_io.len();
        let io_before = ctx.dev.stats().io_seconds;
        let mut span = ctx.telemetry.span("db.tuple_shuffle.fill");
        let mut bytes = 0usize;
        while self.buffer.is_empty() && !self.exhausted {
            let mut blocks = 0usize;
            while blocks < self.capacity_blocks {
                if !self.child.next_block(ctx, &mut self.fetch)? {
                    self.exhausted = true;
                    break;
                }
                blocks += 1;
                for r in self.fetch.iter() {
                    bytes += r.encoded_len();
                }
                self.buffer.extend(self.fetch.iter().cloned());
            }
        }
        // Buffer copy + shuffle cost (§4.1 overheads), charged on what was
        // actually buffered — pushdown plans pay only for survivors.
        ctx.dev
            .charge_seconds(self.params.buffering_cost(self.buffer.len(), bytes));
        // Deterministic in-buffer shuffle: order by a per-(seed, epoch,
        // tuple-id) hash key. splitmix64 is bijective, so keys are unique
        // within an epoch and the order does not depend on buffer arrival
        // positions — filtering below or above the buffer leaves the
        // survivors' relative order unchanged. The keyed scratch persists
        // across fills, so steady-state fills reuse both allocations.
        let salt = splitmix64(
            (self.params.seed ^ 0x70_5F).wrapping_add(self.epoch.wrapping_mul(0x9E37_79B9)),
        );
        self.keyed.clear();
        self.keyed
            .extend(self.buffer.drain(..).map(|r| (splitmix64(salt ^ r.id), r)));
        self.keyed.sort_unstable_by_key(|(k, _)| *k);
        self.buffer.extend(self.keyed.drain(..).map(|(_, r)| r));
        ctx.fill_io.truncate(fills_base);
        if self.buffer.is_empty() {
            // End-of-stream probe, not a fill: record nothing.
            span.cancel();
        } else {
            let fill = ctx.dev.stats().io_seconds - io_before;
            ctx.fill_io.push(fill);
            self.actuals.fills += 1;
            self.actuals.buffered_tuples += self.buffer.len() as u64;
            self.actuals.io_seconds += fill;
            span.add_sim_seconds(fill);
        }
        Ok(())
    }
}

impl PhysicalOperator for TupleShuffleOp {
    fn name(&self) -> &'static str {
        "TupleShuffle"
    }

    fn init(&mut self, ctx: &mut ExecContext) {
        self.child.init(ctx);
        self.epoch = 0;
        self.buffer.clear();
        self.exhausted = false;
        self.shim.reset();
        self.actuals.loops += 1;
    }

    fn next_batch(&mut self, ctx: &mut ExecContext, out: &mut TupleBatch) -> Result<bool, DbError> {
        // One batch per buffer fill: the whole shuffled buffer moves out in
        // one handover, so the pipelined SGD consumer drains fill k while
        // the producer builds fill k+1.
        out.clear();
        if self.buffer.is_empty() {
            if self.exhausted {
                return Ok(false);
            }
            self.refill(ctx)?;
            if self.buffer.is_empty() {
                return Ok(false);
            }
        }
        out.extend_from_slice(&self.buffer);
        self.buffer.clear();
        self.actuals.rows += out.len() as u64;
        self.actuals.batches += 1;
        Ok(true)
    }

    fn cursor(&mut self) -> &mut BatchCursor {
        &mut self.shim
    }

    fn rescan(&mut self, ctx: &mut ExecContext) {
        self.child.rescan(ctx);
        self.epoch += 1;
        self.buffer.clear();
        self.exhausted = false;
        self.shim.reset();
        self.actuals.loops += 1;
    }

    fn close(&mut self, ctx: &mut ExecContext) {
        self.child.close(ctx);
        self.buffer.clear();
        self.shim.reset();
    }

    fn collect_stats(&self, depth: usize, out: &mut Vec<OpStats>) {
        let mut stats = self.actuals.clone();
        stats.name = self.name().to_string();
        stats.depth = depth;
        out.push(stats);
        self.child.collect_stats(depth + 1, out);
    }
}

/// The `Filter` operator: a standalone predicate node used when pushdown is
/// disabled (`WITH pushdown = 0`) — tuples pass through the buffer first
/// and are filtered on the way out, PostgreSQL's plain `Filter` above a
/// materialization. The reference plan pushdown is checked against.
pub struct FilterOp {
    child: Box<dyn PhysicalOperator>,
    predicate: Predicate,
    scratch: TupleBatch,
    shim: BatchCursor,
    actuals: OpStats,
}

impl FilterOp {
    /// Filter the child's stream by `predicate`.
    pub fn new(child: Box<dyn PhysicalOperator>, predicate: Predicate) -> Self {
        FilterOp {
            child,
            predicate,
            scratch: TupleBatch::new(),
            shim: BatchCursor::default(),
            actuals: OpStats::default(),
        }
    }
}

impl PhysicalOperator for FilterOp {
    fn name(&self) -> &'static str {
        "Filter"
    }

    fn init(&mut self, ctx: &mut ExecContext) {
        self.child.init(ctx);
        self.shim.reset();
        self.actuals.loops += 1;
    }

    fn next_batch(&mut self, ctx: &mut ExecContext, out: &mut TupleBatch) -> Result<bool, DbError> {
        // Preserve the child's batch (= fill) boundaries; a batch whose
        // tuples are all filtered is skipped, like a fully filtered fill.
        out.clear();
        loop {
            if !self.child.next_batch(ctx, &mut self.scratch)? {
                return Ok(false);
            }
            for r in self.scratch.iter() {
                if self.predicate.matches(r) {
                    out.push(r.clone());
                } else {
                    self.actuals.rows_filtered += 1;
                }
            }
            if !out.is_empty() {
                self.actuals.rows += out.len() as u64;
                return Ok(true);
            }
        }
    }

    fn cursor(&mut self) -> &mut BatchCursor {
        &mut self.shim
    }

    fn rescan(&mut self, ctx: &mut ExecContext) {
        self.child.rescan(ctx);
        self.shim.reset();
        self.actuals.loops += 1;
    }

    fn close(&mut self, ctx: &mut ExecContext) {
        self.child.close(ctx);
        self.shim.reset();
    }

    fn collect_stats(&self, depth: usize, out: &mut Vec<OpStats>) {
        let mut stats = self.actuals.clone();
        stats.name = self.name().to_string();
        stats.depth = depth;
        stats.predicate = Some(self.predicate.to_string());
        out.push(stats);
        self.child.collect_stats(depth + 1, out);
    }
}

/// The `Project` operator: a standalone projection node used when pushdown
/// is disabled. Each surviving tuple is re-materialized over the selected
/// feature columns (one fresh block per batch).
pub struct ProjectOp {
    child: Box<dyn PhysicalOperator>,
    columns: Vec<usize>,
    scratch: TupleBatch,
    shim: BatchCursor,
    actuals: OpStats,
}

impl ProjectOp {
    /// Project the child's stream onto `columns` (feature indices).
    pub fn new(child: Box<dyn PhysicalOperator>, columns: Vec<usize>) -> Self {
        ProjectOp {
            child,
            columns,
            scratch: TupleBatch::new(),
            shim: BatchCursor::default(),
            actuals: OpStats::default(),
        }
    }

    fn output_desc(&self) -> String {
        let mut s = self
            .columns
            .iter()
            .map(|i| format!("f{i}"))
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(", label");
        s
    }
}

impl PhysicalOperator for ProjectOp {
    fn name(&self) -> &'static str {
        "Project"
    }

    fn init(&mut self, ctx: &mut ExecContext) {
        self.child.init(ctx);
        self.shim.reset();
        self.actuals.loops += 1;
    }

    fn next_batch(&mut self, ctx: &mut ExecContext, out: &mut TupleBatch) -> Result<bool, DbError> {
        out.clear();
        if !self.child.next_batch(ctx, &mut self.scratch)? {
            return Ok(false);
        }
        self.actuals.rows += self.scratch.len() as u64;
        // One fresh Arc-shared block of projected tuples per batch — the
        // only materializing stage of the batch pipeline (pushdown = 0).
        let projected: Vec<Tuple> = self
            .scratch
            .iter()
            .map(|r| project_tuple(r, &self.columns))
            .collect();
        for r in block_refs(&Arc::new(projected)) {
            out.push(r);
        }
        Ok(true)
    }

    fn cursor(&mut self) -> &mut BatchCursor {
        &mut self.shim
    }

    fn rescan(&mut self, ctx: &mut ExecContext) {
        self.child.rescan(ctx);
        self.shim.reset();
        self.actuals.loops += 1;
    }

    fn close(&mut self, ctx: &mut ExecContext) {
        self.child.close(ctx);
        self.shim.reset();
    }

    fn collect_stats(&self, depth: usize, out: &mut Vec<OpStats>) {
        let mut stats = self.actuals.clone();
        stats.name = self.name().to_string();
        stats.depth = depth;
        stats.projection = Some(self.output_desc());
        out.push(stats);
        self.child.collect_stats(depth + 1, out);
    }
}

/// Source stage of a [`FusedPipelineOp`]: the concrete scan/shuffle
/// operators, *not* trait objects — every call into the source statically
/// dispatches, so the fused inner loop makes no per-tuple virtual calls.
/// (A `Tuple` source still holds its scan child behind one `Box<dyn>`,
/// costing a single virtual call per *block* pull.)
pub enum FusedSource {
    /// `(Block)Shuffle ← Scan`, with any pushed-down predicate/projection
    /// fused into the scan.
    Block(BlockShuffleOp),
    /// `TupleShuffle ← (Block)Shuffle ← Scan`.
    Tuple(TupleShuffleOp),
}

impl FusedSource {
    fn next_batch(&mut self, ctx: &mut ExecContext, out: &mut TupleBatch) -> Result<bool, DbError> {
        match self {
            FusedSource::Block(op) => op.next_batch(ctx, out),
            FusedSource::Tuple(op) => op.next_batch(ctx, out),
        }
    }

    fn next_block(&mut self, ctx: &mut ExecContext, out: &mut TupleBatch) -> Result<bool, DbError> {
        match self {
            FusedSource::Block(op) => op.next_block(ctx, out),
            FusedSource::Tuple(op) => op.next_block(ctx, out),
        }
    }

    fn init(&mut self, ctx: &mut ExecContext) {
        match self {
            FusedSource::Block(op) => op.init(ctx),
            FusedSource::Tuple(op) => op.init(ctx),
        }
    }

    fn rescan(&mut self, ctx: &mut ExecContext) {
        match self {
            FusedSource::Block(op) => op.rescan(ctx),
            FusedSource::Tuple(op) => op.rescan(ctx),
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) {
        match self {
            FusedSource::Block(op) => op.close(ctx),
            FusedSource::Tuple(op) => op.close(ctx),
        }
    }

    fn collect_stats(&self, depth: usize, out: &mut Vec<OpStats>) {
        match self {
            FusedSource::Block(op) => op.collect_stats(depth, out),
            FusedSource::Tuple(op) => op.collect_stats(depth, out),
        }
    }
}

/// Post-source stage of a [`FusedPipelineOp`], chosen **once at build
/// time** by the planner's fusion pass: the specialized inner loop runs
/// the selected predicate/projection combination with no per-tuple
/// dispatch and no intermediate operator hops. `None` streams source
/// batches through untouched (zero extra copies).
pub enum PostStage {
    /// Pass source batches straight through.
    None,
    /// Post-buffer predicate (`pushdown = 0` plans).
    Filter(Predicate),
    /// Post-buffer projection.
    Project(Vec<usize>),
    /// Predicate then projection, fused into one pass.
    FilterProject(Predicate, Vec<usize>),
}

/// A whole lowered pipeline collapsed into one operator: the planner's
/// fusion pass rewrites `Sgd←Project?←Filter?←(Tuple|Block)Shuffle←Scan`
/// (and the Predict equivalent) into `Sgd←FusedPipelineOp` when
/// `WITH fuse = 1` (the default). Batches flow source→post→root with one
/// virtual call per batch; the interpreted operator tree stays available
/// behind `WITH fuse = 0` as the bit-identity oracle.
pub struct FusedPipelineOp {
    source: FusedSource,
    post: PostStage,
    label: String,
    scratch: TupleBatch,
    shim: BatchCursor,
    batch_ctr: Counter,
    tuple_ctr: Counter,
    actuals: OpStats,
}

impl FusedPipelineOp {
    /// Assemble over a built source and a specialized post stage. `label`
    /// names the fused stages in execution order (e.g. `scan→filter→sgd`)
    /// for EXPLAIN.
    pub fn new(source: FusedSource, post: PostStage, label: impl Into<String>) -> Self {
        let disabled = Telemetry::disabled();
        FusedPipelineOp {
            source,
            post,
            label: label.into(),
            scratch: TupleBatch::new(),
            shim: BatchCursor::default(),
            batch_ctr: disabled.counter("db.exec.batches"),
            tuple_ctr: disabled.counter("db.exec.fused_tuples"),
            actuals: OpStats::default(),
        }
    }

    /// The fused stage chain, e.g. `scan→filter→shuffle→sgd`.
    pub fn label(&self) -> &str {
        &self.label
    }

    fn apply_post(
        post: &PostStage,
        scratch: &TupleBatch,
        out: &mut TupleBatch,
        rows_filtered: &mut u64,
    ) {
        match post {
            PostStage::None => unreachable!("PostStage::None streams directly"),
            PostStage::Filter(pred) => {
                for r in scratch.iter() {
                    if pred.matches(r) {
                        out.push(r.clone());
                    } else {
                        *rows_filtered += 1;
                    }
                }
            }
            PostStage::Project(cols) => {
                let projected: Vec<Tuple> =
                    scratch.iter().map(|r| project_tuple(r, cols)).collect();
                for r in block_refs(&Arc::new(projected)) {
                    out.push(r);
                }
            }
            PostStage::FilterProject(pred, cols) => {
                let mut projected = Vec::new();
                for r in scratch.iter() {
                    if pred.matches(r) {
                        projected.push(project_tuple(r, cols));
                    } else {
                        *rows_filtered += 1;
                    }
                }
                if !projected.is_empty() {
                    for r in block_refs(&Arc::new(projected)) {
                        out.push(r);
                    }
                }
            }
        }
    }

    fn note_batch(&mut self, rows: usize) {
        self.actuals.rows += rows as u64;
        self.actuals.batches += 1;
        self.batch_ctr.add(1);
        self.tuple_ctr.add(rows as u64);
    }
}

impl PhysicalOperator for FusedPipelineOp {
    fn name(&self) -> &'static str {
        "Fused Pipeline"
    }

    fn init(&mut self, ctx: &mut ExecContext) {
        self.batch_ctr = ctx.telemetry.counter("db.exec.batches");
        self.tuple_ctr = ctx.telemetry.counter("db.exec.fused_tuples");
        self.source.init(ctx);
        self.shim.reset();
        self.actuals.loops += 1;
    }

    fn next_batch(&mut self, ctx: &mut ExecContext, out: &mut TupleBatch) -> Result<bool, DbError> {
        out.clear();
        if matches!(self.post, PostStage::None) {
            // Straight-through: the source fills `out` directly, no copy.
            if !self.source.next_batch(ctx, out)? {
                return Ok(false);
            }
            self.note_batch(out.len());
            return Ok(true);
        }
        loop {
            if !self.source.next_batch(ctx, &mut self.scratch)? {
                return Ok(false);
            }
            Self::apply_post(
                &self.post,
                &self.scratch,
                out,
                &mut self.actuals.rows_filtered,
            );
            if !out.is_empty() {
                self.note_batch(out.len());
                return Ok(true);
            }
        }
    }

    fn next_block(&mut self, ctx: &mut ExecContext, out: &mut TupleBatch) -> Result<bool, DbError> {
        out.clear();
        if matches!(self.post, PostStage::None) {
            if !self.source.next_block(ctx, out)? {
                return Ok(false);
            }
        } else {
            if !self.source.next_block(ctx, &mut self.scratch)? {
                return Ok(false);
            }
            Self::apply_post(
                &self.post,
                &self.scratch,
                out,
                &mut self.actuals.rows_filtered,
            );
        }
        // Consumed-but-empty blocks surface as Ok(true) with empty `out`,
        // preserving block-counting parents' fill alignment.
        self.note_batch(out.len());
        Ok(true)
    }

    fn cursor(&mut self) -> &mut BatchCursor {
        &mut self.shim
    }

    fn rescan(&mut self, ctx: &mut ExecContext) {
        self.source.rescan(ctx);
        self.shim.reset();
        self.actuals.loops += 1;
    }

    fn close(&mut self, ctx: &mut ExecContext) {
        self.source.close(ctx);
        self.shim.reset();
    }

    fn collect_stats(&self, depth: usize, out: &mut Vec<OpStats>) {
        // Fold the fused stages' actuals into ONE plan node: per-batch
        // actuals from this operator, I/O and buffering actuals from the
        // collapsed source chain.
        let mut inner = Vec::new();
        self.source.collect_stats(0, &mut inner);
        let mut stats = self.actuals.clone();
        stats.name = format!("Fused Pipeline ({})", self.label);
        stats.depth = depth;
        for s in &inner {
            stats.io_seconds += s.io_seconds;
            stats.blocks_read += s.blocks_read;
            stats.cache_hits += s.cache_hits;
            stats.retries += s.retries;
            stats.skipped_blocks += s.skipped_blocks;
            stats.fills += s.fills;
            stats.buffered_tuples += s.buffered_tuples;
            stats.rows_filtered += s.rows_filtered;
            if stats.predicate.is_none() {
                stats.predicate.clone_from(&s.predicate);
            }
            if stats.projection.is_none() {
                stats.projection.clone_from(&s.projection);
            }
        }
        match &self.post {
            PostStage::Filter(p) => stats.predicate = Some(p.to_string()),
            PostStage::Project(cols) | PostStage::FilterProject(_, cols) => {
                if let PostStage::FilterProject(p, _) = &self.post {
                    stats.predicate = Some(p.to_string());
                }
                let mut s = cols
                    .iter()
                    .map(|i| format!("f{i}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                s.push_str(", label");
                stats.projection = Some(s);
            }
            PostStage::None => {}
        }
        out.push(stats);
    }
}

/// Per-epoch numbers reported by the `SGD` operator (the paper: "CorgiPile
/// outputs various metrics after each epoch, such as training loss,
/// accuracy, and execution time", §6).
#[derive(Debug, Clone)]
pub struct DbEpochRecord {
    /// Epoch index.
    pub epoch: usize,
    /// Loading seconds (all buffer fills).
    pub io_seconds: f64,
    /// SGD compute seconds.
    pub compute_seconds: f64,
    /// Pipelined epoch duration.
    pub epoch_seconds: f64,
    /// Cumulative simulated time at epoch end (incl. any setup).
    pub sim_seconds_end: f64,
    /// Mean training loss over the stream.
    pub train_loss: f64,
    /// Training accuracy (classifiers) / R² (regression) at epoch end, if
    /// per-epoch evaluation was requested.
    pub train_metric: Option<f64>,
    /// Tuples consumed.
    pub tuples: usize,
    /// Blocks skipped this epoch under [`FaultAction::SkipBlock`] (dead
    /// media the retry policy could not recover).
    pub skipped_blocks: Vec<usize>,
}

/// Result of running the `SGD` operator to completion.
pub struct SgdRunResult {
    /// The trained model.
    pub model: Box<dyn Model>,
    /// Per-epoch records.
    pub epochs: Vec<DbEpochRecord>,
    /// True if the run stopped early at `halt_after_epoch` (the simulated
    /// crash used by checkpoint/resume tests).
    pub halted: bool,
    /// Per-operator actual statistics (EXPLAIN ANALYZE), root first.
    pub op_stats: Vec<OpStats>,
    /// Summed pipeline report across all double-buffered epochs (all-zero
    /// when the plan ran serially). `producer_tuple_clones` staying at 0 is
    /// the zero-copy guarantee of the fill path.
    pub pipeline: PipelineReport,
}

impl std::fmt::Debug for SgdRunResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SgdRunResult")
            .field("epochs", &self.epochs.len())
            .field("halted", &self.halted)
            .field("op_stats", &self.op_stats)
            .finish_non_exhaustive()
    }
}

/// Per-epoch checkpoint consumer: receives the freshly-built
/// [`TrainCheckpoint`] and the epoch's mean training loss after every
/// epoch. The durable model store hangs off this to WAL-append a
/// versioned model record per epoch; an `Err` (e.g. a
/// [`corgipile_storage::StorageError::Crashed`] from an injected crash
/// point) aborts the run exactly where a dead process would have stopped.
pub type CheckpointSink = Box<dyn FnMut(&TrainCheckpoint, f64) -> Result<(), DbError>>;

/// The `SGD` operator: the root of the training plan.
pub struct SgdOperator {
    child: Box<dyn PhysicalOperator>,
    model: Box<dyn Model>,
    optimizer: Box<dyn Optimizer>,
    options: TrainOptions,
    compute: ComputeCostModel,
    epochs: usize,
    double_buffer: bool,
    /// Fused-pipeline accounting: charge the per-tuple invocation overhead
    /// once per batch ([`ComputeCostModel::seconds_batched`]) and train
    /// through the batched kernel ([`Model::sgd_batch`]). The tuple stream
    /// and every model update are bit-identical to the interpreted path —
    /// only the simulated compute clock (and the real inner loop) change.
    pub fused: bool,
    /// Extra one-off cost charged before epoch 0 (e.g. a baseline's
    /// pre-shuffle), for bookkeeping parity with the library trainer.
    pub setup_seconds: f64,
    /// Evaluate the training metric over these tuples after each epoch
    /// (§6's per-epoch accuracy output; costs one extra pass per epoch).
    /// The planner passes the training view — table tuples after any
    /// `WHERE` filter and projection — so metrics match what SGD saw.
    pub eval_each_epoch: Option<Arc<Vec<Tuple>>>,
    /// Write a [`TrainCheckpoint`] here (atomically) after every epoch.
    pub checkpoint_path: Option<PathBuf>,
    /// Resume from this checkpoint: completed epochs are replayed against a
    /// scratch device to restore the operators' RNG streams, then model
    /// parameters, optimizer state and clock are restored from the blob.
    pub resume_from: Option<TrainCheckpoint>,
    /// Seed stamped into checkpoints and validated on resume.
    pub checkpoint_seed: u64,
    /// Stop after this epoch completes (0-based) — a deterministic
    /// simulated crash for exercising resume.
    pub halt_after_epoch: Option<usize>,
    /// Invoked with the checkpoint and mean training loss after every
    /// epoch (the durable model store's WAL append).
    pub checkpoint_sink: Option<CheckpointSink>,
}

impl SgdOperator {
    /// Assemble the root operator.
    pub fn new(
        child: Box<dyn PhysicalOperator>,
        model: Box<dyn Model>,
        optimizer: Box<dyn Optimizer>,
        options: TrainOptions,
        compute: ComputeCostModel,
        epochs: usize,
        double_buffer: bool,
    ) -> Self {
        SgdOperator {
            child,
            model,
            optimizer,
            options,
            compute,
            epochs,
            double_buffer,
            fused: false,
            setup_seconds: 0.0,
            eval_each_epoch: None,
            checkpoint_path: None,
            resume_from: None,
            checkpoint_seed: 0,
            halt_after_epoch: None,
            checkpoint_sink: None,
        }
    }

    /// Run all epochs (ExecInitSGD + ExecSGD + re-scans, §6.2).
    pub fn execute(mut self, ctx: &mut ExecContext) -> Result<SgdRunResult, DbError> {
        let tel = ctx.telemetry.clone();
        let step_counter = tel.counter("db.sgd.gradient_steps");
        self.child.init(ctx);
        let mut records = Vec::with_capacity(self.epochs);
        let mut total_io = 0.0f64;
        let mut total_compute = 0.0f64;
        let mut total_epoch_seconds = 0.0f64;
        let mut total_tuples = 0u64;
        let mut epochs_run = 0u64;
        let mut sim_clock = self.setup_seconds;
        let mut start_epoch = 0usize;
        let mut halted = false;
        if let Some(ck) = self.resume_from.take() {
            if ck.seed != self.checkpoint_seed {
                return Err(DbError::Checkpoint(format!(
                    "checkpoint was taken under seed {}, cannot resume under seed {}",
                    ck.seed, self.checkpoint_seed
                )));
            }
            if ck.model_params.len() != self.model.params().len() {
                return Err(DbError::Checkpoint(format!(
                    "checkpoint carries {} model parameters, this plan expects {}",
                    ck.model_params.len(),
                    self.model.params().len()
                )));
            }
            start_epoch = ck.epoch_next.min(self.epochs);
            // Replay the completed epochs against a scratch in-memory
            // device: the operators' shuffle orders depend only on their
            // seeds and the table shape, so this lands every RNG stream
            // exactly where the checkpointed run left it, without touching
            // the real device or the real clock.
            let mut scratch_dev = DeviceHandle::private(SimDevice::in_memory());
            let mut scratch = ExecContext::new(&mut scratch_dev);
            let mut replay = TupleBatch::new();
            for epoch in 0..start_epoch {
                if epoch > 0 {
                    self.child.rescan(&mut scratch);
                }
                while self.child.next_batch(&mut scratch, &mut replay)? {}
            }
            self.model.params_mut().copy_from_slice(&ck.model_params);
            if !self.optimizer.load_state(&ck.optimizer_state) {
                return Err(DbError::Checkpoint(
                    "checkpoint optimizer state does not match this optimizer".into(),
                ));
            }
            sim_clock = ck.sim_clock;
        }
        let per_tuple_mode = self.options.batch_size <= 1 && self.optimizer.name() == "sgd";
        let fused = self.fused;
        let mut pipeline_total = PipelineReport::default();
        // Serial-path batch, reused (capacity-preserving) across pulls and
        // epochs: after the first epoch warms it, the steady-state drain
        // performs zero allocations.
        let mut serial_batch = TupleBatch::new();
        for epoch in start_epoch..self.epochs {
            if epoch > 0 {
                ctx.fill_io.clear();
                ctx.skipped_blocks.clear();
                self.child.rescan(ctx);
            }
            self.optimizer.set_epoch(epoch);
            let mut fill_compute: Vec<f64> = Vec::new();
            let mut pending: Vec<TupleRef> = Vec::new();
            let mut loss_sum = 0.0f64;
            let mut tuples = 0usize;
            let mut gradient_steps = 0u64;

            // One SGD update over `batch` (averaged gradients), attributing
            // its compute cost to fill `$fill_idx`. The cost model's FLOP
            // count comes from the flush-triggering tuple (the last pushed)
            // for in-stream flushes, from the first pending tuple for the
            // trailing partial batch.
            macro_rules! flush_minibatch {
                ($batch:expr, $fill_idx:expr, $last:expr, $model:expr, $optimizer:expr) => {{
                    let batch = &mut *$batch;
                    let bi = if $last { batch.len() - 1 } else { 0 };
                    let flops = $model.flops_per_example(batch[bi].features.nnz());
                    let stats = train_minibatch(
                        $model.as_mut(),
                        $optimizer.as_mut(),
                        batch.iter().map(|r| r.tuple()),
                        &self.options,
                    );
                    loss_sum += stats.mean_loss * stats.examples as f64;
                    gradient_steps += 1;
                    // Fused pipelines pay the invocation overhead once per
                    // mini-batch; the interpreted tree pays it per tuple.
                    fill_compute[$fill_idx] += if fused {
                        self.compute.seconds_batched(flops * batch.len() as f64)
                    } else {
                        self.compute.seconds(flops, batch.len())
                    };
                    batch.clear();
                }};
            }

            if self.double_buffer {
                // §6.3 for real: the producer thread pulls buffer fills
                // through the operator tree (block reads, retries, fault
                // skips and the in-buffer shuffle all run over there, on
                // the caller's real device) while this thread trains on the
                // previous fill. Each batch carries the index of the
                // `ctx.fill_io` entry its fill pushed, so compute is
                // attributed to fills exactly as in the serial loop.
                let child = &mut self.child;
                let model = &mut self.model;
                let optimizer = &mut self.optimizer;
                let ctx = &mut *ctx;
                let result = run_epoch_pipeline::<(Vec<TupleRef>, usize), DbError, _, _>(
                    &tel,
                    |sender| {
                        let mut fill = TupleBatch::new();
                        loop {
                            let io_before = ctx.dev.stats().io_seconds;
                            if !child.next_batch(ctx, &mut fill)? {
                                return Ok(());
                            }
                            let fill_sim = ctx.dev.stats().io_seconds - io_before;
                            let fill_idx = ctx.fill_io.len().saturating_sub(1);
                            // Cross-thread handover surrenders the backing
                            // Vec (one allocation per fill, inherent to
                            // moving ownership through the channel).
                            let refs = fill.take_refs();
                            if !sender.fill_and_send(|span| {
                                span.add_sim_seconds(fill_sim);
                                (refs, fill_idx)
                            }) {
                                return Ok(());
                            }
                        }
                    },
                    |(batch, fill_idx)| {
                        while fill_compute.len() <= fill_idx {
                            fill_compute.push(0.0);
                        }
                        tuples += batch.len();
                        if per_tuple_mode && fused {
                            // Fused kernel: one virtual call per batch, the
                            // invocation overhead amortized across it. Same
                            // update sequence as the per-tuple loop.
                            let mut total_flops = 0.0f64;
                            for r in &batch {
                                total_flops += model.flops_per_example(r.features.nnz());
                            }
                            model.sgd_batch(&batch, optimizer.lr(), &mut loss_sum);
                            gradient_steps += batch.len() as u64;
                            fill_compute[fill_idx] += self.compute.seconds_batched(total_flops);
                        } else if per_tuple_mode {
                            for r in &batch {
                                let flops = model.flops_per_example(r.features.nnz());
                                loss_sum += model.loss(&r.features, r.label);
                                model.sgd_step(&r.features, r.label, optimizer.lr());
                                gradient_steps += 1;
                                fill_compute[fill_idx] += self.compute.seconds(flops, 1);
                            }
                        } else {
                            for r in batch {
                                pending.push(r);
                                if pending.len() >= self.options.batch_size {
                                    flush_minibatch!(
                                        &mut pending,
                                        fill_idx,
                                        true,
                                        model,
                                        optimizer
                                    );
                                }
                            }
                        }
                        true
                    },
                );
                match result {
                    Ok(report) => {
                        pipeline_total.fills += report.fills;
                        pipeline_total.batches_consumed += report.batches_consumed;
                        pipeline_total.producer_tuple_clones += report.producer_tuple_clones;
                        pipeline_total.stall_wall_seconds += report.stall_wall_seconds;
                        pipeline_total.backpressure_wall_seconds +=
                            report.backpressure_wall_seconds;
                    }
                    Err(PipelineError::Producer(e)) => return Err(e),
                    Err(PipelineError::ProducerPanicked(msg)) => {
                        panic!("sgd pipeline producer panicked: {msg}")
                    }
                }
            } else {
                // Batch-at-a-time serial drain: one virtual call per batch
                // through the operator tree, reusing `serial_batch`'s
                // capacity across pulls — no per-tuple `next_ref` calls.
                while self.child.next_batch(ctx, &mut serial_batch)? {
                    let fill_now = ctx.fill_io.len().saturating_sub(1);
                    while fill_compute.len() <= fill_now {
                        fill_compute.push(0.0);
                    }
                    tuples += serial_batch.len();
                    if per_tuple_mode && fused {
                        // Fused kernel: the batch runs through one
                        // monomorphized `sgd_batch` call (same update
                        // sequence as the per-tuple loop), and the
                        // invocation overhead is charged once per batch.
                        let mut total_flops = 0.0f64;
                        for r in serial_batch.iter() {
                            total_flops += self.model.flops_per_example(r.features.nnz());
                        }
                        self.model
                            .sgd_batch(&serial_batch, self.optimizer.lr(), &mut loss_sum);
                        gradient_steps += serial_batch.len() as u64;
                        fill_compute[fill_now] += self.compute.seconds_batched(total_flops);
                    } else if per_tuple_mode {
                        // Standard SGD: update per tuple in batch order
                        // (§6.2), overhead charged per tuple.
                        for r in serial_batch.iter() {
                            let flops = self.model.flops_per_example(r.features.nnz());
                            loss_sum += self.model.loss(&r.features, r.label);
                            self.model
                                .sgd_step(&r.features, r.label, self.optimizer.lr());
                            gradient_steps += 1;
                            fill_compute[fill_now] += self.compute.seconds(flops, 1);
                        }
                    } else {
                        // Mini-batch SGD: batches span buffer fills, like a
                        // DataLoader's batches span its internal buffers.
                        for r in serial_batch.iter() {
                            pending.push(r.clone());
                            if pending.len() >= self.options.batch_size {
                                flush_minibatch!(
                                    &mut pending,
                                    fill_now,
                                    true,
                                    self.model,
                                    self.optimizer
                                );
                            }
                        }
                    }
                }
            }
            if !pending.is_empty() {
                if fill_compute.is_empty() {
                    fill_compute.push(0.0);
                }
                let last = fill_compute.len() - 1;
                flush_minibatch!(&mut pending, last, false, self.model, self.optimizer);
            }

            let mut io: Vec<f64> = ctx.fill_io.clone();
            while fill_compute.len() < io.len() {
                fill_compute.push(0.0);
            }
            // Plans without a fill-reporting operator (plain SeqScan under
            // SGD) account their whole epoch as one fill with zero separate
            // loading cost — the scan cost is already on the device clock;
            // surface it here so epoch totals stay truthful.
            if io.len() < fill_compute.len() {
                io.resize(fill_compute.len(), 0.0);
            }
            let epoch_seconds = if self.double_buffer {
                DoubleBufferModel::double_buffer(&io, &fill_compute)
            } else {
                DoubleBufferModel::single_buffer(&io, &fill_compute)
            };
            sim_clock += epoch_seconds;
            let train_metric = self.eval_each_epoch.as_ref().map(|all| {
                if self.model.is_classifier() {
                    corgipile_ml::accuracy(self.model.as_ref(), all.iter())
                } else {
                    corgipile_ml::r_squared(self.model.as_ref(), all.iter())
                }
            });
            let epoch_io: f64 = io.iter().sum();
            let epoch_compute: f64 = fill_compute.iter().sum();
            let train_loss = if tuples > 0 {
                loss_sum / tuples as f64
            } else {
                0.0
            };
            let skipped = std::mem::take(&mut ctx.skipped_blocks);
            total_io += epoch_io;
            total_compute += epoch_compute;
            total_epoch_seconds += epoch_seconds;
            total_tuples += tuples as u64;
            epochs_run += 1;
            step_counter.add(gradient_steps);
            let e = epoch as u64;
            tel.event(e, "db.epoch.io_seconds", epoch_io);
            tel.event(e, "db.epoch.compute_seconds", epoch_compute);
            tel.event(e, "db.epoch.epoch_seconds", epoch_seconds);
            tel.event(e, "db.epoch.train_loss", train_loss);
            tel.event(e, "db.epoch.tuples", tuples as f64);
            tel.event(e, "db.epoch.skipped_blocks", skipped.len() as f64);
            tel.event(e, "db.epoch.gradient_steps", gradient_steps as f64);
            records.push(DbEpochRecord {
                epoch,
                io_seconds: epoch_io,
                compute_seconds: epoch_compute,
                epoch_seconds,
                sim_seconds_end: sim_clock,
                train_loss,
                train_metric,
                tuples,
                skipped_blocks: skipped,
            });
            if self.checkpoint_path.is_some() || self.checkpoint_sink.is_some() {
                let ck = TrainCheckpoint {
                    epoch_next: epoch + 1,
                    seed: self.checkpoint_seed,
                    sim_clock,
                    model_params: self.model.params().to_vec(),
                    optimizer_state: self.optimizer.state_bytes(),
                };
                if let Some(path) = &self.checkpoint_path {
                    ck.save(path)?;
                }
                if let Some(sink) = self.checkpoint_sink.as_mut() {
                    sink(&ck, train_loss)?;
                }
            }
            if self.halt_after_epoch == Some(epoch) {
                halted = true;
                break;
            }
        }
        // Fraction of the serial (single-buffer) epoch time hidden by
        // overlapping loads with compute: 1 - pipelined / (io + compute).
        let single = total_io + total_compute;
        let overlap_ratio = if self.double_buffer && single > 0.0 {
            (1.0 - total_epoch_seconds / single).max(0.0)
        } else {
            0.0
        };
        let mut op_stats = vec![OpStats {
            name: "SGD".to_string(),
            depth: 0,
            rows: total_tuples,
            loops: epochs_run,
            io_seconds: total_io,
            compute_seconds: total_compute,
            overlap_ratio,
            ..OpStats::default()
        }];
        self.child.collect_stats(1, &mut op_stats);
        self.child.close(ctx);
        Ok(SgdRunResult {
            model: self.model,
            epochs: records,
            halted,
            op_stats,
            pipeline: pipeline_total,
        })
    }
}

/// Result of running the `Predict` operator to completion (one serving
/// batch query).
#[derive(Debug)]
pub struct PredictRunResult {
    /// Predicted labels in scan order (post-filter survivors only).
    pub predictions: Vec<f32>,
    /// Tuples predicted.
    pub rows: u64,
    /// Prediction batches executed.
    pub batches: u64,
    /// Tuples dropped by the pushed-down predicate.
    pub rows_filtered: u64,
    /// Simulated scan I/O seconds.
    pub io_seconds: f64,
    /// Simulated inference compute seconds.
    pub compute_seconds: f64,
    /// Wall-clock seconds per prediction batch (real latency, for the
    /// serving bench's p50/p99; the simulated clock is separate).
    pub batch_wall_seconds: Vec<f64>,
    /// Accuracy (classifiers) / R² (regression) against the stored labels,
    /// `None` when nothing survived the filter.
    pub metric: Option<f64>,
    /// Per-operator actual statistics (EXPLAIN ANALYZE), root first.
    pub op_stats: Vec<OpStats>,
}

/// The `Predict` operator: the root of a serving plan.
///
/// Like [`SgdOperator`] it is a driver, not a [`PhysicalOperator`]: it
/// owns its child pipeline and a *pinned* immutable model
/// ([`crate::ServableModel`]), pulls zero-copy [`TupleRef`] blocks, and
/// regroups them into `batch_rows`-sized prediction batches run through
/// [`Model::predict_batch_into`]. The pin is taken before the first block
/// is read, so a hot-reload publishing a newer version mid-scan never
/// changes this batch's predictions.
pub struct PredictOperator {
    child: Box<dyn PhysicalOperator>,
    model: Arc<crate::serving::ServableModel>,
    compute: ComputeCostModel,
    batch_rows: usize,
    /// Fused-pipeline accounting: inference invocation overhead charged
    /// once per prediction batch instead of once per tuple. Predictions
    /// are bit-identical either way.
    pub fused: bool,
}

impl PredictOperator {
    /// Assemble the serving root over a built scan pipeline.
    pub fn new(
        child: Box<dyn PhysicalOperator>,
        model: Arc<crate::serving::ServableModel>,
        compute: ComputeCostModel,
        batch_rows: usize,
    ) -> Self {
        PredictOperator {
            child,
            model,
            compute,
            batch_rows: batch_rows.max(1),
            fused: false,
        }
    }

    /// Run the scan to completion, predicting in batches.
    pub fn execute(mut self, ctx: &mut ExecContext) -> Result<PredictRunResult, DbError> {
        let io_before = ctx.dev.stats().io_seconds;
        self.child.init(ctx);
        let m = self.model.model();
        let is_classifier = m.is_classifier();
        let mut predictions: Vec<f32> = Vec::new();
        let mut batch: Vec<TupleRef> = Vec::with_capacity(self.batch_rows);
        let mut batch_wall_seconds: Vec<f64> = Vec::new();
        let mut compute_seconds = 0.0f64;
        // Online metric accumulators: exact-match count for classifiers;
        // (Σy, Σy², Σ(y−ŷ)²) for R², matching `corgipile_ml::r_squared`.
        let mut correct = 0u64;
        let (mut sum_y, mut sum_y2, mut ss_res) = (0.0f64, 0.0f64, 0.0f64);
        let mut batches = 0u64;
        let fused = self.fused;

        {
            // Scoped so the closure's borrows of the accumulators end here.
            let mut flush = |batch: &mut Vec<TupleRef>| {
                if batch.is_empty() {
                    return;
                }
                let started = std::time::Instant::now();
                let xs: Vec<&corgipile_storage::FeatureVec> =
                    batch.iter().map(|r| &r.features).collect();
                let start = predictions.len();
                m.predict_batch_into(&xs, &mut predictions);
                let flops = m.inference_flops_per_example(batch[0].features.nnz());
                compute_seconds += if fused {
                    self.compute.seconds_batched(flops * batch.len() as f64)
                } else {
                    self.compute.seconds(flops, batch.len())
                };
                for (r, pred) in batch.iter().zip(&predictions[start..]) {
                    let y = f64::from(r.label);
                    if is_classifier {
                        if *pred == r.label {
                            correct += 1;
                        }
                    } else {
                        let e = y - f64::from(*pred);
                        sum_y += y;
                        sum_y2 += y * y;
                        ss_res += e * e;
                    }
                }
                batches += 1;
                batch_wall_seconds.push(started.elapsed().as_secs_f64());
                batch.clear();
            };

            // Block-at-a-time drain into `batch_rows`-sized prediction
            // batches; the fetch batch's capacity is reused across blocks.
            let mut fetch = TupleBatch::new();
            while self.child.next_block(ctx, &mut fetch)? {
                for r in fetch.iter() {
                    batch.push(r.clone());
                    if batch.len() >= self.batch_rows {
                        flush(&mut batch);
                    }
                }
            }
            flush(&mut batch);
        }

        let rows = predictions.len() as u64;
        let metric = if rows == 0 {
            None
        } else if is_classifier {
            Some(correct as f64 / rows as f64)
        } else {
            let n = rows as f64;
            let mean_y = sum_y / n;
            let ss_tot = sum_y2 - n * mean_y * mean_y;
            Some(if ss_tot <= 0.0 {
                if ss_res == 0.0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                1.0 - ss_res / ss_tot
            })
        };
        let io_seconds = ctx.dev.stats().io_seconds - io_before;
        let mut op_stats = vec![OpStats {
            name: "Predict".to_string(),
            depth: 0,
            rows,
            loops: 1,
            io_seconds,
            compute_seconds,
            batches,
            ..OpStats::default()
        }];
        self.child.collect_stats(1, &mut op_stats);
        self.child.close(ctx);
        let rows_filtered = op_stats.iter().skip(1).map(|s| s.rows_filtered).sum();
        Ok(PredictRunResult {
            predictions,
            rows,
            batches,
            rows_filtered,
            io_seconds,
            compute_seconds,
            batch_wall_seconds,
            metric,
            op_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};
    use corgipile_ml::{build_model, ModelKind, OptimizerKind};

    fn table(n: usize) -> Arc<Table> {
        Arc::new(
            DatasetSpec::higgs_like(n)
                .with_order(Order::ClusteredByLabel)
                .with_block_bytes(8192)
                .build_table(1)
                .unwrap(),
        )
    }

    fn drain(op: &mut dyn PhysicalOperator, ctx: &mut ExecContext) -> Vec<u64> {
        let mut ids = Vec::new();
        while let Some(t) = op.next(ctx).unwrap() {
            ids.push(t.id);
        }
        ids
    }

    #[test]
    fn seq_scan_emits_table_order() {
        let t = table(300);
        let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
        let mut ctx = ExecContext::new(&mut dev);
        let mut op = BlockShuffleOp::new(t, ScanMode::Sequential, 1);
        op.init(&mut ctx);
        let ids = drain(&mut op, &mut ctx);
        assert_eq!(ids, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn block_shuffle_permutes_blocks_and_rescan_reshuffles() {
        let t = table(600);
        let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
        let mut ctx = ExecContext::new(&mut dev);
        let mut op = BlockShuffleOp::new(t, ScanMode::RandomBlocks, 2);
        op.init(&mut ctx);
        let a = drain(&mut op, &mut ctx);
        assert_ne!(a, (0..600).collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..600).collect::<Vec<_>>());
        op.rescan(&mut ctx);
        let b = drain(&mut op, &mut ctx);
        assert_ne!(a, b, "rescan must produce a fresh block order");
        op.close(&mut ctx);
    }

    #[test]
    fn tuple_shuffle_covers_all_and_records_fills() {
        let t = table(600);
        let blocks = t.num_blocks();
        let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
        let mut ctx = ExecContext::new(&mut dev);
        let child = Box::new(BlockShuffleOp::new(t, ScanMode::RandomBlocks, 3));
        let mut op = TupleShuffleOp::new(child, 2, StrategyParams::default());
        op.init(&mut ctx);
        let mut ids = drain(&mut op, &mut ctx);
        assert_eq!(
            ctx.fill_io.len(),
            blocks.div_ceil(2),
            "one fill per two source blocks"
        );
        assert!(ctx.fill_io.iter().all(|&io| io > 0.0));
        ids.sort_unstable();
        assert_eq!(ids, (0..600).collect::<Vec<_>>());
    }

    #[test]
    fn tuple_shuffle_actually_shuffles_within_fills() {
        let t = table(600);
        let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
        let mut ctx = ExecContext::new(&mut dev);
        let child = Box::new(BlockShuffleOp::new(t, ScanMode::RandomBlocks, 4));
        let mut op = TupleShuffleOp::new(child, 3, StrategyParams::default());
        op.init(&mut ctx);
        let ids = drain(&mut op, &mut ctx);
        let descents = ids.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(
            descents > 150,
            "expected shuffled stream, {descents} descents"
        );
    }

    fn id_pred(op: crate::sql::CmpOp, value: f64) -> Predicate {
        Predicate::Cmp {
            col: crate::sql::ColumnRef::Id,
            op,
            value,
        }
    }

    #[test]
    fn fused_pipeline_skips_fully_filtered_batches() {
        // ClusteredByLabel puts each class in contiguous blocks, so a
        // label predicate annihilates entire source blocks: the fused
        // loop must skip them without ever emitting an empty batch.
        let t = table(1000);
        let survivors = t.all_tuples().iter().filter(|tp| tp.label == 1.0).count();
        assert!(survivors > 0 && survivors < 1000);
        let scan = BlockShuffleOp::new(t, ScanMode::RandomBlocks, 11);
        let mut op = FusedPipelineOp::new(
            FusedSource::Block(scan),
            PostStage::Filter(Predicate::Cmp {
                col: crate::sql::ColumnRef::Label,
                op: crate::sql::CmpOp::Eq,
                value: 1.0,
            }),
            "scan→filter→sgd",
        );
        let mut dev = DeviceHandle::private(SimDevice::in_memory());
        let mut ctx = ExecContext::new(&mut dev);
        op.init(&mut ctx);
        let mut out = TupleBatch::new();
        let mut rows = 0usize;
        while op.next_batch(&mut ctx, &mut out).unwrap() {
            assert!(!out.is_empty(), "next_batch must never yield empty");
            assert!(out.iter().all(|r| r.label == 1.0));
            rows += out.len();
        }
        assert_eq!(rows, survivors);
        let mut stats = Vec::new();
        op.collect_stats(1, &mut stats);
        assert_eq!(stats.len(), 1, "fused chain folds into one node");
        assert_eq!(stats[0].rows_filtered as usize, 1000 - survivors);
    }

    #[test]
    fn fused_pipeline_empty_result_and_partial_last_block() {
        // A predicate nothing matches ends the stream cleanly...
        let t = table(500);
        let scan = BlockShuffleOp::new(t.clone(), ScanMode::Sequential, 1)
            .with_predicate(id_pred(crate::sql::CmpOp::Lt, 0.0));
        let mut op = FusedPipelineOp::new(FusedSource::Block(scan), PostStage::None, "scan→sgd");
        let mut dev = DeviceHandle::private(SimDevice::in_memory());
        let mut ctx = ExecContext::new(&mut dev);
        op.init(&mut ctx);
        let mut out = TupleBatch::new();
        assert!(!op.next_batch(&mut ctx, &mut out).unwrap());
        assert!(out.is_empty());
        op.close(&mut ctx);

        // ...and a table whose last block is partial is covered exactly,
        // across rescans (the batch reuse must not leak stale tuples).
        let scan = BlockShuffleOp::new(t, ScanMode::RandomBlocks, 3);
        let mut op = FusedPipelineOp::new(FusedSource::Block(scan), PostStage::None, "scan→sgd");
        op.init(&mut ctx);
        for _pass in 0..2 {
            let mut ids = Vec::new();
            while op.next_batch(&mut ctx, &mut out).unwrap() {
                ids.extend(out.iter().map(|r| r.id));
            }
            ids.sort_unstable();
            assert_eq!(ids, (0..500).collect::<Vec<_>>());
            op.rescan(&mut ctx);
        }
    }

    #[test]
    fn warm_rescans_do_not_grow_batch_allocations() {
        // Epoch 1 warms every TupleBatch to its high-water capacity; a
        // steady-state epoch must then run without a single batch
        // reallocation (the zero-alloc contract of the batch executor).
        let t = table(1200);
        let scan = BlockShuffleOp::new(t, ScanMode::RandomBlocks, 7);
        let mut op = FusedPipelineOp::new(
            FusedSource::Tuple(TupleShuffleOp::new(
                Box::new(scan),
                2,
                StrategyParams::default(),
            )),
            PostStage::Filter(id_pred(crate::sql::CmpOp::Ge, 100.0)),
            "scan→shuffle→filter→sgd",
        );
        let mut dev = DeviceHandle::private(SimDevice::in_memory());
        let mut ctx = ExecContext::new(&mut dev);
        op.init(&mut ctx);
        let mut out = TupleBatch::new();
        let mut rows0 = 0usize;
        while op.next_batch(&mut ctx, &mut out).unwrap() {
            rows0 += out.len();
        }
        op.rescan(&mut ctx);
        let grows_before = corgipile_storage::batch_grow_count();
        let mut rows1 = 0usize;
        while op.next_batch(&mut ctx, &mut out).unwrap() {
            rows1 += out.len();
        }
        assert_eq!(rows0, rows1);
        assert_eq!(
            corgipile_storage::batch_grow_count() - grows_before,
            0,
            "warm epoch must not reallocate any TupleBatch"
        );
    }

    #[test]
    fn per_epoch_metric_reporting() {
        let t = table(2000);
        let child: Box<dyn PhysicalOperator> = Box::new(TupleShuffleOp::new(
            Box::new(BlockShuffleOp::new(t.clone(), ScanMode::RandomBlocks, 5)),
            3,
            StrategyParams::default(),
        ));
        let mut op = SgdOperator::new(
            child,
            build_model(&ModelKind::Svm, 28, 1),
            OptimizerKind::default_sgd(0.05).build(),
            TrainOptions::default(),
            ComputeCostModel::in_db_core(),
            3,
            true,
        );
        op.eval_each_epoch = Some(Arc::new(t.all_tuples()));
        let mut dev = DeviceHandle::private(SimDevice::in_memory());
        let mut ctx = ExecContext::new(&mut dev);
        let result = op.execute(&mut ctx).unwrap();
        let metrics: Vec<f64> = result
            .epochs
            .iter()
            .map(|e| e.train_metric.unwrap())
            .collect();
        assert_eq!(metrics.len(), 3);
        assert!(metrics.iter().all(|&m| m > 0.4 && m <= 1.0));
        // Accuracy should not collapse across epochs.
        assert!(metrics[2] > 0.5, "final per-epoch metric {:?}", metrics);
    }

    #[test]
    fn op_stats_and_epoch_events_from_sgd_run() {
        let t = table(2000);
        let child: Box<dyn PhysicalOperator> = Box::new(TupleShuffleOp::new(
            Box::new(BlockShuffleOp::new(t, ScanMode::RandomBlocks, 5)),
            3,
            StrategyParams::default(),
        ));
        let op = SgdOperator::new(
            child,
            build_model(&ModelKind::Svm, 28, 1),
            OptimizerKind::default_sgd(0.05).build(),
            TrainOptions::default(),
            ComputeCostModel::in_db_core(),
            2,
            true,
        );
        let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
        dev.set_telemetry(Telemetry::enabled());
        let mut ctx = ExecContext::new(&mut dev);
        let result = op.execute(&mut ctx).unwrap();

        let names: Vec<&str> = result.op_stats.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["SGD", "TupleShuffle", "BlockShuffle"]);
        let sgd = &result.op_stats[0];
        assert_eq!((sgd.depth, sgd.rows, sgd.loops), (0, 4000, 2));
        let ts = &result.op_stats[1];
        assert_eq!((ts.depth, ts.rows, ts.loops), (1, 4000, 2));
        assert!(ts.fills >= 2, "two epochs mean at least two buffer fills");
        assert_eq!(ts.buffered_tuples, 4000, "every tuple passes the buffer");
        assert!(ts.io_seconds > 0.0);
        let bs = &result.op_stats[2];
        assert_eq!((bs.depth, bs.rows), (2, 4000));
        assert!(bs.blocks_read > 0 && bs.io_seconds > 0.0);
        assert_eq!(bs.retries, 0);

        // Per-epoch events flowed through the device's telemetry handle.
        let ev = ctx.telemetry.events();
        let per = |n: &str| ev.iter().filter(|e| e.name == n).count();
        assert_eq!(per("db.epoch.epoch_seconds"), 2);
        assert_eq!(per("db.epoch.io_seconds"), 2);
        assert!(ev
            .iter()
            .any(|e| e.name == "db.epoch.gradient_steps" && e.value > 0.0));
        // The fill span landed in the histogram registry.
        let snap = ctx.telemetry.snapshot();
        let hist = snap
            .metrics
            .histograms
            .iter()
            .find(|(n, _)| n == "db.tuple_shuffle.fill.sim_seconds")
            .map(|(_, h)| h)
            .expect("fill span histogram");
        assert_eq!(hist.count, ts.fills);
    }

    #[test]
    fn buffer_pool_makes_later_epochs_cheap() {
        let t = table(2000);
        let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0)); // no OS cache
        let mut pool = PoolHandle::private(corgipile_storage::BufferPool::new(64 << 20));
        let mut ctx = ExecContext::with_pool(&mut dev, &mut pool);
        let mut op = BlockShuffleOp::new(t, ScanMode::RandomBlocks, 5);
        op.init(&mut ctx);
        while op.next(&mut ctx).unwrap().is_some() {}
        let cold = ctx.dev.stats().io_seconds;
        op.rescan(&mut ctx);
        while op.next(&mut ctx).unwrap().is_some() {}
        let warm = ctx.dev.stats().io_seconds - cold;
        assert_eq!(warm, 0.0, "all blocks must come from shared_buffers");
        assert!(pool.stats().hits > 0 && pool.stats().misses > 0);
    }

    #[test]
    fn sgd_operator_trains_and_reports() {
        let t = table(3000);
        let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
        let mut ctx = ExecContext::new(&mut dev);
        let child: Box<dyn PhysicalOperator> = Box::new(TupleShuffleOp::new(
            Box::new(BlockShuffleOp::new(t.clone(), ScanMode::RandomBlocks, 5)),
            4,
            StrategyParams::default(),
        ));
        let model = build_model(&ModelKind::Svm, 28, 1);
        let op = SgdOperator::new(
            child,
            model,
            OptimizerKind::default_sgd(0.05).build(),
            TrainOptions::default(),
            ComputeCostModel::in_db_core(),
            3,
            true,
        );
        let result = op.execute(&mut ctx).unwrap();
        assert_eq!(result.epochs.len(), 3);
        for e in &result.epochs {
            assert_eq!(e.tuples, 3000);
            assert!(e.io_seconds > 0.0);
            assert!(e.compute_seconds > 0.0);
            assert!(e.epoch_seconds <= e.io_seconds + e.compute_seconds + 1e-12);
        }
        let acc = corgipile_ml::accuracy(result.model.as_ref(), &t.all_tuples());
        assert!(acc > 0.55, "SGD operator should learn, acc {acc}");
    }

    #[test]
    fn sgd_over_seqscan_equals_no_shuffle_behaviour() {
        // No TupleShuffle: plan = SGD ← BlockShuffle(sequential). The
        // stream is the clustered order, so training accuracy collapses to
        // the majority of the tail (the paper's No-Shuffle pathology).
        let t = table(3000);
        let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
        let mut ctx = ExecContext::new(&mut dev);
        let child: Box<dyn PhysicalOperator> =
            Box::new(BlockShuffleOp::new(t.clone(), ScanMode::Sequential, 1));
        let op = SgdOperator::new(
            child,
            build_model(&ModelKind::LogisticRegression, 28, 1),
            OptimizerKind::default_sgd(0.1).build(),
            TrainOptions::default(),
            ComputeCostModel::in_db_core(),
            2,
            false,
        );
        let result = op.execute(&mut ctx).unwrap();
        let test = DatasetSpec::higgs_like(3000).build(9).test;
        let acc = corgipile_ml::accuracy(result.model.as_ref(), &test);
        assert!(
            acc < 0.6,
            "sequential scan on clustered data should underperform, acc {acc}"
        );
    }

    #[test]
    fn double_buffer_reduces_reported_epoch_time() {
        let t = table(2000);
        let run = |double| {
            let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
            let mut ctx = ExecContext::new(&mut dev);
            let child: Box<dyn PhysicalOperator> = Box::new(TupleShuffleOp::new(
                Box::new(BlockShuffleOp::new(t.clone(), ScanMode::RandomBlocks, 5)),
                3,
                StrategyParams::default(),
            ));
            let op = SgdOperator::new(
                child,
                build_model(&ModelKind::Svm, 28, 1),
                OptimizerKind::default_sgd(0.05).build(),
                TrainOptions::default(),
                ComputeCostModel::in_db_core(),
                1,
                double,
            );
            op.execute(&mut ctx).unwrap().epochs[0].epoch_seconds
        };
        assert!(run(true) < run(false));
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_capacity_buffer_rejected() {
        let t = table(10);
        let child = Box::new(BlockShuffleOp::new(t, ScanMode::Sequential, 1));
        TupleShuffleOp::new(child, 0, StrategyParams::default());
    }

    #[test]
    fn transient_faults_are_invisible_to_the_plan() {
        use corgipile_storage::FaultPlan;
        let t = table(600);
        let run = |plan: Option<FaultPlan>| -> Vec<u64> {
            let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
            if let Some(p) = plan {
                dev.set_fault_plan(p);
            }
            let mut ctx = ExecContext::new(&mut dev);
            let mut op = BlockShuffleOp::new(t.clone(), ScanMode::RandomBlocks, 2);
            op.init(&mut ctx);
            drain(&mut op, &mut ctx)
        };
        let tid = t.config().table_id;
        let clean = run(None);
        let faulty = run(Some(
            FaultPlan::new(7)
                .with_transient(tid, 0, 2)
                .with_transient(tid, 2, 1),
        ));
        assert_eq!(
            clean, faulty,
            "retried transients must not change the stream"
        );
    }

    #[test]
    fn dead_block_fails_the_query_by_default() {
        use corgipile_storage::FaultPlan;
        let t = table(600);
        let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
        dev.set_fault_plan(FaultPlan::new(7).with_permanent(t.config().table_id, 0));
        let mut ctx = ExecContext::new(&mut dev);
        ctx.retry = RetryPolicy::with_max_retries(1);
        let mut op = BlockShuffleOp::new(t, ScanMode::RandomBlocks, 2);
        op.init(&mut ctx);
        let mut err = None;
        loop {
            match op.next(&mut ctx) {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        match err {
            Some(DbError::Storage(corgipile_storage::StorageError::ReadFailed {
                block: 0,
                attempts,
                ..
            })) => assert_eq!(attempts, 2),
            other => panic!("expected ReadFailed on block 0, got {other:?}"),
        }
    }

    #[test]
    fn skip_block_mode_degrades_gracefully_and_reports() {
        use corgipile_storage::FaultPlan;
        let t = table(600);
        let dead = t.block(1).unwrap().tuples.clone();
        let dead_tuples = (dead.end - dead.start) as usize;
        let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
        dev.set_fault_plan(FaultPlan::new(7).with_permanent(t.config().table_id, 1));
        let mut ctx = ExecContext::new(&mut dev);
        ctx.retry = RetryPolicy::with_max_retries(1);
        ctx.on_fault = FaultAction::SkipBlock;
        let child: Box<dyn PhysicalOperator> = Box::new(TupleShuffleOp::new(
            Box::new(BlockShuffleOp::new(t.clone(), ScanMode::RandomBlocks, 5)),
            2,
            StrategyParams::default(),
        ));
        let op = SgdOperator::new(
            child,
            build_model(&ModelKind::Svm, 28, 1),
            OptimizerKind::default_sgd(0.05).build(),
            TrainOptions::default(),
            ComputeCostModel::in_db_core(),
            2,
            false,
        );
        let result = op.execute(&mut ctx).unwrap();
        assert_eq!(
            result.epochs.len(),
            2,
            "training must survive the dead block"
        );
        for e in &result.epochs {
            assert_eq!(e.skipped_blocks, vec![1], "dead block reported every epoch");
            assert_eq!(e.tuples, 600 - dead_tuples);
        }
    }

    #[test]
    fn halt_checkpoint_resume_is_bit_identical() {
        let t = table(1500);
        let path =
            std::env::temp_dir().join(format!("corgi_db_resume_{}.ckpt", std::process::id()));
        let plan = |t: &Arc<Table>| -> Box<dyn PhysicalOperator> {
            Box::new(TupleShuffleOp::new(
                Box::new(BlockShuffleOp::new(t.clone(), ScanMode::RandomBlocks, 5)),
                2,
                StrategyParams::default(),
            ))
        };
        let sgd = |t: &Arc<Table>| {
            SgdOperator::new(
                plan(t),
                build_model(&ModelKind::Svm, 28, 9),
                OptimizerKind::default_sgd(0.05).build(),
                TrainOptions::default(),
                ComputeCostModel::in_db_core(),
                4,
                true,
            )
        };
        // Uninterrupted reference run.
        let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
        let straight = sgd(&t).execute(&mut ExecContext::new(&mut dev)).unwrap();
        // Crashed run: halt after epoch 1 with a checkpoint on disk.
        let mut op = sgd(&t);
        op.checkpoint_path = Some(path.clone());
        op.checkpoint_seed = 9;
        op.halt_after_epoch = Some(1);
        let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
        let crashed = op.execute(&mut ExecContext::new(&mut dev)).unwrap();
        assert!(crashed.halted);
        assert_eq!(crashed.epochs.len(), 2);
        // Resume in a fresh "process": new operators, same seeds.
        let ck = TrainCheckpoint::load(&path).unwrap();
        assert_eq!(ck.epoch_next, 2);
        let mut op = sgd(&t);
        op.checkpoint_seed = 9;
        op.resume_from = Some(ck);
        let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
        let resumed = op.execute(&mut ExecContext::new(&mut dev)).unwrap();
        assert!(!resumed.halted);
        assert_eq!(resumed.epochs.len(), 2, "epochs 2 and 3 remain");
        assert_eq!(
            resumed.model.params(),
            straight.model.params(),
            "resumed model must equal the uninterrupted one bit-for-bit"
        );
        assert!(
            (resumed.epochs.last().unwrap().sim_seconds_end
                - straight.epochs.last().unwrap().sim_seconds_end)
                .abs()
                < 1e-9,
            "cumulative simulated time must survive the resume"
        );
        // Mismatched seed is refused.
        let ck = TrainCheckpoint::load(&path).unwrap();
        let mut op = sgd(&t);
        op.checkpoint_seed = 10;
        op.resume_from = Some(ck);
        let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
        let err = op.execute(&mut ExecContext::new(&mut dev)).unwrap_err();
        assert!(matches!(err, DbError::Checkpoint(_)));
        std::fs::remove_file(path).ok();
    }

    /// SGD ← TupleShuffle ← BlockShuffle plan over `n` tuples.
    fn corgi_plan(t: &Arc<Table>, buffer_blocks: usize, seed: u64) -> Box<dyn PhysicalOperator> {
        Box::new(TupleShuffleOp::new(
            Box::new(BlockShuffleOp::new(t.clone(), ScanMode::RandomBlocks, seed)),
            buffer_blocks,
            StrategyParams::default(),
        ))
    }

    #[test]
    fn pipelined_sgd_is_bit_identical_to_serial() {
        let t = table(1500);
        for seed in [1u64, 7, 42] {
            let run = |double: bool| {
                let op = SgdOperator::new(
                    corgi_plan(&t, 2, seed),
                    build_model(&ModelKind::LogisticRegression, 28, seed),
                    OptimizerKind::default_sgd(0.05).build(),
                    TrainOptions::default(),
                    ComputeCostModel::in_db_core(),
                    3,
                    double,
                );
                let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
                op.execute(&mut ExecContext::new(&mut dev)).unwrap()
            };
            let serial = run(false);
            let pipelined = run(true);
            assert_eq!(
                serial.model.params(),
                pipelined.model.params(),
                "seed {seed}: pipelined run must visit tuples in the identical order"
            );
            for (s, p) in serial.epochs.iter().zip(&pipelined.epochs) {
                assert_eq!(s.tuples, p.tuples);
                assert!((s.io_seconds - p.io_seconds).abs() < 1e-12);
                assert!((s.compute_seconds - p.compute_seconds).abs() < 1e-12);
                assert!((s.train_loss - p.train_loss).abs() < 1e-12);
            }
            assert_eq!(serial.pipeline, PipelineReport::default());
            assert!(pipelined.pipeline.fills > 0);
        }
    }

    #[test]
    fn pipelined_minibatch_adam_is_bit_identical_to_serial() {
        let t = table(1500);
        let run = |double: bool| {
            let op = SgdOperator::new(
                corgi_plan(&t, 2, 5),
                build_model(&ModelKind::Svm, 28, 3),
                OptimizerKind::default_adam(0.01).build(),
                TrainOptions::minibatch(32),
                ComputeCostModel::in_db_core(),
                2,
                double,
            );
            let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
            op.execute(&mut ExecContext::new(&mut dev)).unwrap()
        };
        let serial = run(false);
        let pipelined = run(true);
        assert_eq!(serial.model.params(), pipelined.model.params());
        for (s, p) in serial.epochs.iter().zip(&pipelined.epochs) {
            assert!((s.train_loss - p.train_loss).abs() < 1e-12);
            assert!((s.compute_seconds - p.compute_seconds).abs() < 1e-12);
        }
    }

    #[test]
    fn pipelined_sgd_under_injected_faults_matches_serial() {
        use corgipile_storage::FaultPlan;
        let t = table(900);
        let run = |double: bool| {
            let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
            dev.set_fault_plan(
                FaultPlan::new(7)
                    .with_transient(t.config().table_id, 0, 1)
                    .with_permanent(t.config().table_id, 1),
            );
            let mut ctx = ExecContext::new(&mut dev);
            ctx.retry = RetryPolicy::with_max_retries(1);
            ctx.on_fault = FaultAction::SkipBlock;
            let op = SgdOperator::new(
                corgi_plan(&t, 2, 5),
                build_model(&ModelKind::Svm, 28, 1),
                OptimizerKind::default_sgd(0.05).build(),
                TrainOptions::default(),
                ComputeCostModel::in_db_core(),
                2,
                double,
            );
            op.execute(&mut ctx).unwrap()
        };
        let serial = run(false);
        let pipelined = run(true);
        assert_eq!(
            serial.model.params(),
            pipelined.model.params(),
            "fault skips must land on the same blocks in both modes"
        );
        for (s, p) in serial.epochs.iter().zip(&pipelined.epochs) {
            assert_eq!(s.skipped_blocks, p.skipped_blocks);
            assert_eq!(s.tuples, p.tuples);
        }
        assert_eq!(serial.epochs[0].skipped_blocks, vec![1]);
    }

    #[test]
    fn pipelined_fill_path_makes_zero_tuple_clones() {
        let t = table(1500);
        let op = SgdOperator::new(
            corgi_plan(&t, 2, 5),
            build_model(&ModelKind::Svm, 28, 1),
            OptimizerKind::default_sgd(0.05).build(),
            TrainOptions::default(),
            ComputeCostModel::in_db_core(),
            2,
            true,
        );
        let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
        let result = op.execute(&mut ExecContext::new(&mut dev)).unwrap();
        assert!(result.pipeline.fills > 0);
        assert_eq!(result.pipeline.batches_consumed, result.pipeline.fills);
        assert_eq!(
            result.pipeline.producer_tuple_clones, 0,
            "the fill path must hand out Arc-shared TupleRefs, never cloned Tuples"
        );
    }

    #[test]
    fn overlap_ratio_reported_on_sgd_root() {
        let t = table(2000);
        let run = |double: bool| {
            let op = SgdOperator::new(
                corgi_plan(&t, 3, 5),
                build_model(&ModelKind::Svm, 28, 1),
                OptimizerKind::default_sgd(0.05).build(),
                TrainOptions::default(),
                ComputeCostModel::in_db_core(),
                2,
                double,
            );
            let mut dev = DeviceHandle::private(SimDevice::hdd_scaled(1000.0, 0));
            op.execute(&mut ExecContext::new(&mut dev)).unwrap()
        };
        let serial = run(false);
        assert_eq!(serial.op_stats[0].overlap_ratio, 0.0);
        assert!(!serial.op_stats[0].render().contains("overlap="));
        let pipelined = run(true);
        let sgd = &pipelined.op_stats[0];
        assert!(
            sgd.overlap_ratio > 0.0 && sgd.overlap_ratio < 1.0,
            "double buffering must hide some loading time, got {}",
            sgd.overlap_ratio
        );
        assert!(sgd.render().contains("overlap="));
    }
}
