//! The serving subsystem: a versioned, immutable model cache for the
//! high-throughput `PREDICT … ON …` read path.
//!
//! Training produces models; serving reads them at request rate. The two
//! paths have opposite needs — training mutates one model object per
//! query, serving shares one model across many concurrent sessions — so
//! the engine keeps a [`ModelCache`] of **immutable** [`ServableModel`]
//! entries keyed by `(name, version)` beside the mutable catalog object:
//!
//! * **Pinning.** A prediction batch *pins* an `Arc<ServableModel>` at
//!   dispatch and keeps it for the whole batch. Publishing a new version
//!   mid-traffic swaps the active pointer; in-flight batches finish on
//!   the version they pinned, so every batch is bit-identical to a
//!   single-session run of its pinned version — no torn reads, by
//!   construction, because a published entry is never mutated.
//! * **Hot-reload.** `TRAIN … WITH durable = 1` (and non-durable
//!   training too) publishes the freshly trained version as active the
//!   moment the training query commits; `LOAD MODEL … AS ACTIVE`
//!   promotes an older durable version explicitly.
//! * **Generations.** Every publish/promotion bumps a generation
//!   counter, exported through the `serving.cache.*` telemetry counters,
//!   so dashboards can correlate a latency shift with the exact reload
//!   that caused it.
//!
//! Reads take the inner `RwLock` only long enough to clone one `Arc`;
//! the prediction loop itself runs entirely lock-free on the pinned
//! entry.

use crate::catalog::StoredModel;
use corgipile_ml::Model;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Versions of one name retained beyond the active one; older versions
/// are evicted (the durable store still has them — the cache is a cache).
const RETAINED_VERSIONS: usize = 8;

/// One immutable, servable model version.
///
/// Built once (from the catalog object or a durable [`crate::ModelRecord`])
/// and then only ever shared behind an `Arc`: the instantiated
/// [`Model`] is never trained again, so concurrent prediction batches
/// can read it without synchronization.
pub struct ServableModel {
    name: String,
    version: u32,
    stored: StoredModel,
    model: Box<dyn Model>,
}

impl ServableModel {
    /// Instantiate a servable entry from a catalog-form model.
    pub fn new(name: impl Into<String>, version: u32, stored: StoredModel) -> Self {
        let model = stored.instantiate();
        ServableModel {
            name: name.into(),
            version,
            stored,
            model,
        }
    }

    /// Model name (the cache key's first half).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Version number (the cache key's second half).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Input dimensionality the model was trained for.
    pub fn dim(&self) -> usize {
        self.stored.dim
    }

    /// The catalog-form record this entry was instantiated from.
    pub fn stored(&self) -> &StoredModel {
        &self.stored
    }

    /// The instantiated model (immutable: serving never trains).
    pub fn model(&self) -> &dyn Model {
        self.model.as_ref()
    }
}

impl std::fmt::Debug for ServableModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServableModel")
            .field("name", &self.name)
            .field("version", &self.version)
            .field("kind", &self.stored.kind)
            .field("dim", &self.stored.dim)
            .finish()
    }
}

struct NameEntry {
    /// The version `pin` resolves; swapped atomically under the write lock.
    active: u32,
    versions: BTreeMap<u32, Arc<ServableModel>>,
}

/// Snapshot of the cache's counters and occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct model names cached.
    pub names: u64,
    /// Total `(name, version)` entries cached.
    pub entries: u64,
    /// Publish/promotion generation (bumped on every active-pointer swap).
    pub generation: u64,
    /// `pin`/`pin_version` calls served from the cache.
    pub hits: u64,
    /// `pin`/`pin_version` calls that missed.
    pub misses: u64,
    /// Entries published (new versions inserted).
    pub publishes: u64,
    /// Explicit promotions (`LOAD MODEL … AS ACTIVE`).
    pub promotions: u64,
}

/// The engine-wide cache of servable model versions.
///
/// Interior-synchronized (`&ModelCache` suffices for every operation) so
/// it hangs off the shared [`crate::Database`] exactly like the catalog.
#[derive(Default)]
pub struct ModelCache {
    inner: RwLock<HashMap<String, NameEntry>>,
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    publishes: AtomicU64,
    promotions: AtomicU64,
}

impl ModelCache {
    /// An empty cache.
    pub fn new() -> Self {
        ModelCache::default()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, NameEntry>> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, NameEntry>> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Pin the active version of `name`: one `Arc` clone under a brief
    /// read lock. The caller keeps the pin for its whole batch — later
    /// publishes swap the active pointer without touching pinned entries.
    pub fn pin(&self, name: &str) -> Option<Arc<ServableModel>> {
        let got = {
            let map = self.read();
            map.get(name)
                .and_then(|e| e.versions.get(&e.active).cloned())
        };
        self.count(got.is_some());
        got
    }

    /// Pin a specific version of `name`.
    pub fn pin_version(&self, name: &str, version: u32) -> Option<Arc<ServableModel>> {
        let got = {
            let map = self.read();
            map.get(name)
                .and_then(|e| e.versions.get(&version).cloned())
        };
        self.count(got.is_some());
        got
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Insert a servable entry. With `activate`, the entry becomes the
    /// version `pin` resolves (hot-reload: the swap is a pointer update
    /// under the write lock; in-flight pins are unaffected) and the
    /// generation counter advances. Without it, the entry is stashed for
    /// `pin_version` / later promotion only.
    ///
    /// Returns the shared entry (the caller's own pin on it).
    pub fn publish(&self, servable: ServableModel, activate: bool) -> Arc<ServableModel> {
        let version = servable.version;
        let name = servable.name.clone();
        let entry = Arc::new(servable);
        let mut map = self.write();
        let e = map.entry(name).or_insert_with(|| NameEntry {
            active: version,
            versions: BTreeMap::new(),
        });
        e.versions.insert(version, entry.clone());
        if activate {
            e.active = version;
            self.generation.fetch_add(1, Ordering::Relaxed);
        }
        // Bounded retention: evict the oldest versions past the cap, but
        // never the active one (the durable store remains the source of
        // truth for evicted versions).
        while e.versions.len() > RETAINED_VERSIONS {
            let oldest = *e.versions.keys().next().expect("non-empty");
            let evict = if oldest == e.active {
                e.versions.keys().nth(1).copied()
            } else {
                Some(oldest)
            };
            match evict {
                Some(v) => {
                    e.versions.remove(&v);
                }
                None => break,
            }
        }
        self.publishes.fetch_add(1, Ordering::Relaxed);
        entry
    }

    /// Promote a cached version to active (`LOAD MODEL … AS ACTIVE`).
    /// Returns `false` when `(name, version)` is not cached.
    pub fn promote(&self, name: &str, version: u32) -> bool {
        let mut map = self.write();
        match map.get_mut(name) {
            Some(e) if e.versions.contains_key(&version) => {
                if e.active != version {
                    e.active = version;
                    self.generation.fetch_add(1, Ordering::Relaxed);
                }
                self.promotions.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// The active version of `name`, if cached.
    pub fn active_version(&self, name: &str) -> Option<u32> {
        self.read().get(name).map(|e| e.active)
    }

    /// Cached versions of `name`, ascending.
    pub fn versions(&self, name: &str) -> Vec<u32> {
        self.read()
            .get(name)
            .map(|e| e.versions.keys().copied().collect())
            .unwrap_or_default()
    }

    /// The version a fresh (non-durable) training run of `name` should
    /// publish: one past the highest cached version, or 1 for an unseen
    /// name. Durable runs use the model store's version counter instead.
    pub fn next_version(&self, name: &str) -> u32 {
        self.read()
            .get(name)
            .and_then(|e| e.versions.keys().next_back().copied())
            .map(|v| v + 1)
            .unwrap_or(1)
    }

    /// Publish/promotion generation (0 until the first activation).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Counter and occupancy snapshot.
    pub fn stats(&self) -> CacheStats {
        let map = self.read();
        CacheStats {
            names: map.len() as u64,
            entries: map.values().map(|e| e.versions.len() as u64).sum(),
            generation: self.generation.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for ModelCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelCache")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_ml::ModelKind;

    fn stored(bias: f32) -> StoredModel {
        StoredModel {
            kind: ModelKind::Svm,
            dim: 2,
            params: vec![bias, 0.5, -0.5],
            train_loss: 0.0,
        }
    }

    #[test]
    fn publish_pin_and_promote_round_trip() {
        let cache = ModelCache::new();
        assert!(cache.pin("m").is_none());
        assert_eq!(cache.stats().misses, 1);
        cache.publish(ServableModel::new("m", 1, stored(1.0)), true);
        let v1 = cache.pin("m").unwrap();
        assert_eq!((v1.name(), v1.version(), v1.dim()), ("m", 1, 2));
        assert_eq!(cache.generation(), 1);

        // Publishing v2 swaps the active pointer; the old pin still reads
        // its own immutable entry.
        cache.publish(ServableModel::new("m", 2, stored(2.0)), true);
        assert_eq!(cache.active_version("m"), Some(2));
        assert_eq!(v1.stored().params[0], 1.0, "pinned entry is untouched");
        assert_eq!(cache.pin("m").unwrap().version(), 2);
        assert_eq!(cache.pin_version("m", 1).unwrap().version(), 1);

        // Explicit promotion back to v1.
        assert!(cache.promote("m", 1));
        assert_eq!(cache.active_version("m"), Some(1));
        assert!(!cache.promote("m", 9));
        assert!(!cache.promote("ghost", 1));
        let s = cache.stats();
        assert_eq!((s.names, s.entries), (1, 2));
        assert_eq!(s.publishes, 2);
        assert_eq!(s.promotions, 1);
        assert_eq!(s.generation, 3, "two activations + one promotion");
        assert_eq!(cache.next_version("m"), 3);
        assert_eq!(cache.next_version("fresh"), 1);
    }

    #[test]
    fn stashed_versions_do_not_activate() {
        let cache = ModelCache::new();
        cache.publish(ServableModel::new("m", 1, stored(1.0)), true);
        cache.publish(ServableModel::new("m", 2, stored(2.0)), false);
        assert_eq!(cache.active_version("m"), Some(1));
        assert_eq!(cache.pin("m").unwrap().version(), 1);
        assert_eq!(cache.pin_version("m", 2).unwrap().version(), 2);
        assert_eq!(cache.versions("m"), vec![1, 2]);
        assert_eq!(cache.generation(), 1);
    }

    #[test]
    fn retention_evicts_oldest_but_never_active() {
        let cache = ModelCache::new();
        for v in 1..=(RETAINED_VERSIONS as u32 + 3) {
            cache.publish(ServableModel::new("m", v, stored(v as f32)), v == 1);
        }
        let versions = cache.versions("m");
        assert_eq!(versions.len(), RETAINED_VERSIONS);
        assert!(
            versions.contains(&1),
            "active v1 must survive eviction: {versions:?}"
        );
        assert!(!versions.contains(&2), "oldest non-active evicted");
        assert_eq!(cache.active_version("m"), Some(1));
    }

    #[test]
    fn concurrent_pins_race_publishes_without_torn_reads() {
        let cache = Arc::new(ModelCache::new());
        cache.publish(ServableModel::new("m", 1, stored(1.0)), true);
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let pin = cache.pin("m").unwrap();
                        // An entry's bias always matches its version: a torn
                        // read would mix the two.
                        assert_eq!(pin.stored().params[0], pin.version() as f32);
                    }
                })
            })
            .collect();
        for v in 2..=20 {
            cache.publish(ServableModel::new("m", v, stored(v as f32)), true);
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cache.active_version("m"), Some(20));
    }
}
