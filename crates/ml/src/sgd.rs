//! Training loops over tuple streams, with compute-cost accounting.
//!
//! The paper's systems update the model per tuple (standard SGD, §7.3) or
//! per mini-batch (§7.4, PyTorch's default §7.2). Both loops live here and
//! are shared by the trainer, the in-DB `SGD` operator, and the
//! multi-worker harness.

use crate::model::Model;
use crate::optimizer::Optimizer;
use corgipile_storage::Tuple;

/// Options for one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOptions {
    /// Mini-batch size; 1 = standard per-tuple SGD.
    pub batch_size: usize,
    /// Gradient-norm clip (0 disables). Keeps MLP training stable on
    /// clustered streams where the early gradient is one-sided.
    pub clip_norm: f32,
    /// L2 regularization strength λ (0 disables): weight decay
    /// `w ← (1 − η·λ)·w` applied alongside each update.
    pub l2: f32,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            batch_size: 1,
            clip_norm: 0.0,
            l2: 0.0,
        }
    }
}

impl TrainOptions {
    /// Mini-batch options.
    pub fn minibatch(batch_size: usize) -> Self {
        assert!(batch_size >= 1);
        TrainOptions {
            batch_size,
            clip_norm: 0.0,
            l2: 0.0,
        }
    }

    /// Add L2 regularization.
    pub fn with_l2(mut self, l2: f32) -> Self {
        assert!(l2 >= 0.0);
        self.l2 = l2;
        self
    }
}

/// Per-tuple SGD applies weight decay lazily every `L2_STRIDE` tuples
/// (compounded), keeping the sparse fast path O(nnz) per update.
const L2_STRIDE: usize = 16;

/// Simulated per-example compute cost.
///
/// Tuple gradients execute at `flops_per_second`; per-tuple call overhead
/// models the invocation cost of the surrounding system. The paper
/// measures that PyTorch pays heavy Python→C++ overhead per tuple (§7.3.5,
/// 2–16× slower than in-DB CorgiPile for per-tuple SGD), which is exactly
/// this constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeCostModel {
    /// Sustained scalar throughput of the executor (FLOP/s).
    pub flops_per_second: f64,
    /// Fixed overhead per example (seconds) — UDA call, operator `next()`,
    /// or Python invocation depending on the system modeled.
    pub per_tuple_overhead: f64,
}

impl ComputeCostModel {
    /// A single in-DB executor core (the paper binds CorgiPile to one
    /// physical core, §7.1.1).
    pub fn in_db_core() -> Self {
        ComputeCostModel {
            flops_per_second: 5e9,
            per_tuple_overhead: 8e-8,
        }
    }

    /// PyTorch-outside-DB per-tuple training: same FLOPs, large per-tuple
    /// invocation overhead (§7.3.5).
    pub fn pytorch_per_tuple() -> Self {
        ComputeCostModel {
            flops_per_second: 5e9,
            per_tuple_overhead: 3e-6,
        }
    }

    /// Cost of `count` examples of `flops` each.
    pub fn seconds(&self, flops: f64, count: usize) -> f64 {
        count as f64 * (self.per_tuple_overhead + flops / self.flops_per_second)
    }

    /// Cost of one fused batch totalling `total_flops`: the invocation
    /// overhead is paid **once per batch** instead of once per tuple.
    ///
    /// This is the vectorized executor's accounting — a fused pipeline
    /// makes one (monomorphized) kernel call per batch, so the per-tuple
    /// dispatch overhead amortizes across the batch while the arithmetic
    /// cost is unchanged. The interpreted tree keeps [`Self::seconds`]
    /// per-tuple charging; the gap between the two is exactly the
    /// vectorization speedup the simulated clock reports.
    pub fn seconds_batched(&self, total_flops: f64) -> f64 {
        self.per_tuple_overhead + total_flops / self.flops_per_second
    }
}

/// Result of training over one epoch stream.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochStats {
    /// Mean per-example loss *before* each update (running training loss).
    pub mean_loss: f64,
    /// Number of examples consumed.
    pub examples: usize,
    /// Number of optimizer updates applied.
    pub updates: usize,
}

/// Per-tuple SGD over a stream: `x_{k} = x_{k-1} − η ∇f(x_{k-1})`.
///
/// Uses the model's fused (sparse-aware) step; the optimizer provides the
/// current learning rate.
pub fn train_per_tuple<'a, I>(model: &mut dyn Model, opt: &dyn Optimizer, tuples: I) -> EpochStats
where
    I: IntoIterator<Item = &'a Tuple>,
{
    train_per_tuple_with(model, opt, tuples, &TrainOptions::default())
}

/// Per-tuple SGD with full [`TrainOptions`] (L2 via lazy weight decay).
pub fn train_per_tuple_with<'a, I>(
    model: &mut dyn Model,
    opt: &dyn Optimizer,
    tuples: I,
    options: &TrainOptions,
) -> EpochStats
where
    I: IntoIterator<Item = &'a Tuple>,
{
    let lr = opt.lr();
    let mut loss_sum = 0.0f64;
    let mut n = 0usize;
    let decay_stride = (1.0 - lr * options.l2).powi(L2_STRIDE as i32);
    for t in tuples {
        loss_sum += model.loss(&t.features, t.label);
        model.sgd_step(&t.features, t.label, lr);
        n += 1;
        if options.l2 > 0.0 && n.is_multiple_of(L2_STRIDE) {
            for p in model.params_mut() {
                *p *= decay_stride;
            }
        }
    }
    EpochStats {
        mean_loss: if n > 0 { loss_sum / n as f64 } else { 0.0 },
        examples: n,
        updates: n,
    }
}

/// Incremental mini-batch accumulator: feed tuples in any grouping (e.g.
/// one pipelined buffer fill at a time), with batches spanning group
/// boundaries exactly as they span buffer fills in [`train_minibatch`].
///
/// Feeding the same tuple sequence through any segmentation produces
/// bit-identical models and stats to one [`train_minibatch`] call — the
/// property the double-buffered executor relies on.
#[derive(Debug)]
pub struct MinibatchTrainer {
    grad: Vec<f32>,
    in_batch: usize,
    loss_sum: f64,
    n: usize,
    updates: usize,
    options: TrainOptions,
}

impl MinibatchTrainer {
    /// Start an epoch-long accumulation for a model of `num_params`.
    pub fn new(num_params: usize, options: TrainOptions) -> Self {
        assert!(options.batch_size >= 1);
        MinibatchTrainer {
            grad: vec![0.0f32; num_params],
            in_batch: 0,
            loss_sum: 0.0,
            n: 0,
            updates: 0,
            options,
        }
    }

    /// Accumulate one tuple, stepping the optimizer on batch boundaries.
    pub fn feed(&mut self, model: &mut dyn Model, opt: &mut dyn Optimizer, t: &Tuple) {
        self.loss_sum += model.loss(&t.features, t.label);
        model.grad(&t.features, t.label, &mut self.grad);
        self.in_batch += 1;
        self.n += 1;
        if self.in_batch == self.options.batch_size {
            self.flush(model, opt);
        }
    }

    /// Examples fed so far.
    pub fn examples(&self) -> usize {
        self.n
    }

    fn flush(&mut self, model: &mut dyn Model, opt: &mut dyn Optimizer) {
        if self.in_batch == 0 {
            return;
        }
        let scale = 1.0 / self.in_batch as f32;
        for g in self.grad.iter_mut() {
            *g *= scale;
        }
        if self.options.clip_norm > 0.0 {
            let norm: f32 = self.grad.iter().map(|g| g * g).sum::<f32>().sqrt();
            if norm > self.options.clip_norm {
                let s = self.options.clip_norm / norm;
                for g in self.grad.iter_mut() {
                    *g *= s;
                }
            }
        }
        if self.options.l2 > 0.0 {
            for (g, p) in self.grad.iter_mut().zip(model.params()) {
                *g += self.options.l2 * p;
            }
        }
        opt.step(model.params_mut(), &self.grad);
        self.grad.iter_mut().for_each(|g| *g = 0.0);
        self.in_batch = 0;
        self.updates += 1;
    }

    /// Flush any trailing partial batch and return the epoch stats.
    pub fn finish(mut self, model: &mut dyn Model, opt: &mut dyn Optimizer) -> EpochStats {
        self.flush(model, opt);
        EpochStats {
            mean_loss: if self.n > 0 {
                self.loss_sum / self.n as f64
            } else {
                0.0
            },
            examples: self.n,
            updates: self.updates,
        }
    }
}

/// Mini-batch SGD over a stream: gradients averaged over each batch, one
/// optimizer step per batch (works with SGD and Adam).
pub fn train_minibatch<'a, I>(
    model: &mut dyn Model,
    opt: &mut dyn Optimizer,
    tuples: I,
    options: &TrainOptions,
) -> EpochStats
where
    I: IntoIterator<Item = &'a Tuple>,
{
    let mut mb = MinibatchTrainer::new(model.num_params(), options.clone());
    for t in tuples {
        mb.feed(model, opt, t);
    }
    mb.finish(model, opt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{LinearModel, LinearTask};
    use crate::optimizer::{Adam, Sgd};
    use corgipile_storage::Tuple;

    fn stream() -> Vec<Tuple> {
        // Separable binary set.
        (0..100)
            .map(|i| {
                let y = if i % 2 == 0 { 1.0f32 } else { -1.0 };
                Tuple::dense(i, vec![y * 2.0, y], y)
            })
            .collect()
    }

    #[test]
    fn per_tuple_training_reduces_loss() {
        let data = stream();
        let mut m = LinearModel::new(2, LinearTask::Logistic);
        let mut opt = Sgd::new(0.1, 0.95);
        let e0 = train_per_tuple(&mut m, &opt, &data);
        opt.set_epoch(1);
        let e1 = train_per_tuple(&mut m, &opt, &data);
        assert_eq!(e0.examples, 100);
        assert_eq!(e0.updates, 100);
        assert!(
            e1.mean_loss < e0.mean_loss,
            "{} !< {}",
            e1.mean_loss,
            e0.mean_loss
        );
    }

    #[test]
    fn minibatch_training_counts_updates() {
        let data = stream();
        let mut m = LinearModel::new(2, LinearTask::Hinge);
        let mut opt = Sgd::new(0.1, 0.95);
        let stats = train_minibatch(&mut m, &mut opt, &data, &TrainOptions::minibatch(32));
        assert_eq!(stats.examples, 100);
        assert_eq!(stats.updates, 4); // 32+32+32+4
    }

    #[test]
    fn minibatch_of_one_equals_per_tuple_for_sgd() {
        let data = stream();
        let mut a = LinearModel::new(2, LinearTask::Logistic);
        let mut b = LinearModel::new(2, LinearTask::Logistic);
        let opt_a = Sgd::new(0.05, 1.0);
        let mut opt_b = Sgd::new(0.05, 1.0);
        train_per_tuple(&mut a, &opt_a, &data);
        train_minibatch(&mut b, &mut opt_b, &data, &TrainOptions::minibatch(1));
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert!((pa - pb).abs() < 1e-5, "{pa} vs {pb}");
        }
    }

    #[test]
    fn adam_minibatch_converges() {
        let data = stream();
        let mut m = LinearModel::new(2, LinearTask::Logistic);
        let mut opt = Adam::new(0.05, 0.9, 0.999, 1e-8);
        let mut last = f64::INFINITY;
        for e in 0..5 {
            opt.set_epoch(e);
            last = train_minibatch(&mut m, &mut opt, &data, &TrainOptions::minibatch(16)).mean_loss;
        }
        assert!(
            last < 0.2,
            "adam should learn the separable set, loss {last}"
        );
    }

    #[test]
    fn l2_shrinks_weights_in_both_paths() {
        let data: Vec<Tuple> = (0..64)
            .map(|i| Tuple::dense(i, vec![1.0, 1.0], 1.0))
            .collect();
        // Per-tuple: regularized weights must be strictly smaller.
        let mut plain = LinearModel::new(2, LinearTask::Logistic);
        let mut reg = LinearModel::new(2, LinearTask::Logistic);
        let opt = Sgd::new(0.1, 1.0);
        train_per_tuple_with(&mut plain, &opt, &data, &TrainOptions::default());
        train_per_tuple_with(
            &mut reg,
            &opt,
            &data,
            &TrainOptions {
                l2: 0.5,
                ..TrainOptions::default()
            },
        );
        let norm = |m: &LinearModel| m.params().iter().map(|p| p * p).sum::<f32>();
        assert!(
            norm(&reg) < norm(&plain),
            "{} !< {}",
            norm(&reg),
            norm(&plain)
        );

        // Mini-batch: same property.
        let mut plain_mb = LinearModel::new(2, LinearTask::Logistic);
        let mut reg_mb = LinearModel::new(2, LinearTask::Logistic);
        let mut o1 = Sgd::new(0.1, 1.0);
        let mut o2 = Sgd::new(0.1, 1.0);
        train_minibatch(&mut plain_mb, &mut o1, &data, &TrainOptions::minibatch(8));
        train_minibatch(
            &mut reg_mb,
            &mut o2,
            &data,
            &TrainOptions::minibatch(8).with_l2(0.5),
        );
        assert!(norm(&reg_mb) < norm(&plain_mb));
    }

    #[test]
    fn clipping_limits_update_magnitude() {
        let data = vec![Tuple::dense(0, vec![1000.0, 1000.0], 1.0)];
        let mut m = LinearModel::new(2, LinearTask::Squared);
        let mut opt = Sgd::new(1.0, 1.0);
        let opts = TrainOptions {
            batch_size: 1,
            clip_norm: 1.0,
            l2: 0.0,
        };
        train_minibatch(&mut m, &mut opt, &data, &opts);
        let norm: f32 = m.params().iter().map(|p| p * p).sum::<f32>().sqrt();
        assert!(norm <= 1.0 + 1e-4, "clipped update norm {norm}");
    }

    #[test]
    fn empty_stream_is_a_noop() {
        let mut m = LinearModel::new(2, LinearTask::Logistic);
        let opt = Sgd::new(0.1, 1.0);
        let stats = train_per_tuple(&mut m, &opt, &[]);
        assert_eq!(stats, EpochStats::default());
    }

    #[test]
    fn cost_model_orders_systems_correctly() {
        let flops = 100.0;
        let db = ComputeCostModel::in_db_core().seconds(flops, 1000);
        let py = ComputeCostModel::pytorch_per_tuple().seconds(flops, 1000);
        assert!(
            py > 5.0 * db,
            "PyTorch per-tuple overhead should dominate: {py} vs {db}"
        );
    }
}
