//! Feed-forward ReLU networks with a softmax head.
//!
//! The non-convex stand-in for the paper's deep-learning workloads (VGG19,
//! ResNet18/50, HAN, TextCNN — §7.2). The phenomena under study —
//! sensitivity of SGD convergence to data order on clustered data, and
//! CorgiPile's parity with Shuffle Once on non-convex objectives (Theorem
//! 2) — depend on the loss landscape being non-convex and the optimizer
//! being (mini-batch) SGD/Adam, not on convolutional structure, so a small
//! MLP preserves the experiment while keeping runs laptop-sized.

use crate::model::Model;
use crate::softmax::softmax;
use corgipile_storage::{dense_axpy, dense_dot, FeatureVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One dense layer's parameter layout within the flat vector.
#[derive(Debug, Clone, Copy)]
struct LayerShape {
    w_off: usize,
    b_off: usize,
    fan_in: usize,
    fan_out: usize,
}

/// A multi-layer perceptron: `dim → hidden… → classes`, ReLU activations,
/// cross-entropy loss.
#[derive(Debug, Clone)]
pub struct Mlp {
    params: Vec<f32>,
    shapes: Vec<LayerShape>,
    dim: usize,
    classes: usize,
}

impl Mlp {
    /// Build with He-style random initialization.
    pub fn new(dim: usize, hidden: &[usize], classes: usize, seed: u64) -> Self {
        assert!(classes >= 2, "mlp needs ≥ 2 classes");
        assert!(
            !hidden.is_empty(),
            "mlp needs ≥ 1 hidden layer (use SoftmaxRegression otherwise)"
        );
        let mut widths = vec![dim];
        widths.extend_from_slice(hidden);
        widths.push(classes);
        let mut shapes = Vec::with_capacity(widths.len() - 1);
        let mut off = 0;
        for i in 0..widths.len() - 1 {
            let (fan_in, fan_out) = (widths[i], widths[i + 1]);
            shapes.push(LayerShape {
                w_off: off,
                b_off: off + fan_in * fan_out,
                fan_in,
                fan_out,
            });
            off += fan_in * fan_out + fan_out;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3319);
        let mut params = vec![0.0f32; off];
        for s in &shapes {
            let scale = (2.0 / s.fan_in as f32).sqrt();
            for w in &mut params[s.w_off..s.w_off + s.fan_in * s.fan_out] {
                *w = (rng.gen::<f32>() * 2.0 - 1.0) * scale;
            }
        }
        Mlp {
            params,
            shapes,
            dim,
            classes,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Forward pass; returns per-layer pre-activation inputs (activations)
    /// and the final logits.
    fn forward(&self, x: &FeatureVec) -> (Vec<Vec<f32>>, Vec<f32>) {
        let mut acts: Vec<Vec<f32>> = Vec::with_capacity(self.shapes.len());
        let mut a: Vec<f32> = (0..self.dim).map(|i| x.get(i)).collect();
        for (li, s) in self.shapes.iter().enumerate() {
            acts.push(a.clone());
            let w = &self.params[s.w_off..s.w_off + s.fan_in * s.fan_out];
            let b = &self.params[s.b_off..s.b_off + s.fan_out];
            let mut z = vec![0.0f32; s.fan_out];
            for o in 0..s.fan_out {
                let row = &w[o * s.fan_in..(o + 1) * s.fan_in];
                z[o] = dense_dot(row, &a) + b[o];
            }
            if li + 1 < self.shapes.len() {
                for v in &mut z {
                    *v = v.max(0.0); // ReLU
                }
            }
            a = z;
        }
        (acts, a)
    }

    /// Logits for an input.
    pub fn logits(&self, x: &FeatureVec) -> Vec<f32> {
        self.forward(x).1
    }
}

impl Model for Mlp {
    fn num_params(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> &[f32] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn loss(&self, x: &FeatureVec, y: f32) -> f64 {
        let p = softmax(&self.logits(x));
        -(p[y as usize].max(1e-12) as f64).ln()
    }

    fn grad(&self, x: &FeatureVec, y: f32, grad: &mut [f32]) {
        let (acts, logits) = self.forward(x);
        let p = softmax(&logits);
        // dL/dz for the output layer.
        let mut delta: Vec<f32> = p;
        delta[y as usize] -= 1.0;

        for (li, s) in self.shapes.iter().enumerate().rev() {
            let a = &acts[li];
            let w = &self.params[s.w_off..s.w_off + s.fan_in * s.fan_out];
            // Parameter gradients.
            for o in 0..s.fan_out {
                let d = delta[o];
                if d != 0.0 {
                    let grow = &mut grad[s.w_off + o * s.fan_in..s.w_off + (o + 1) * s.fan_in];
                    dense_axpy(d, a, grow);
                    grad[s.b_off + o] += d;
                }
            }
            // Propagate to previous layer (skip below input).
            if li > 0 {
                let mut prev = vec![0.0f32; s.fan_in];
                for o in 0..s.fan_out {
                    let d = delta[o];
                    if d != 0.0 {
                        let row = &w[o * s.fan_in..(o + 1) * s.fan_in];
                        dense_axpy(d, row, &mut prev);
                    }
                }
                // ReLU mask: activation a == pre-activation after ReLU, so
                // gradient flows only where a > 0.
                for (pv, ai) in prev.iter_mut().zip(a) {
                    if *ai <= 0.0 {
                        *pv = 0.0;
                    }
                }
                delta = prev;
            }
        }
    }

    fn predict_label(&self, x: &FeatureVec) -> f32 {
        let logits = self.logits(x);
        logits
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .map(|(i, _)| i as f32)
            .unwrap_or(0.0)
    }

    fn flops_per_example(&self, _nnz: usize) -> f64 {
        // Forward + backward ≈ 6 × Σ fan_in·fan_out.
        6.0 * self
            .shapes
            .iter()
            .map(|s| (s.fan_in * s.fan_out) as f64)
            .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(v: &[f32]) -> FeatureVec {
        FeatureVec::Dense(v.to_vec())
    }

    #[test]
    fn shapes_and_param_count() {
        let m = Mlp::new(4, &[8, 6], 3, 1);
        // (4·8+8) + (8·6+6) + (6·3+3) = 40 + 54 + 21 = 115
        assert_eq!(m.num_params(), 115);
        assert_eq!(m.classes(), 3);
    }

    #[test]
    fn gradient_matches_numeric() {
        let m0 = Mlp::new(3, &[5], 3, 7);
        let x = dense(&[0.9, -0.6, 0.3]);
        let y = 1.0;
        let mut g = vec![0.0f32; m0.num_params()];
        m0.grad(&x, y, &mut g);
        let mut m = m0.clone();
        let eps = 1e-3f32;
        let mut checked = 0;
        for i in (0..m.num_params()).step_by(3) {
            let orig = m.params()[i];
            m.params_mut()[i] = orig + eps;
            let lp = m.loss(&x, y);
            m.params_mut()[i] = orig - eps;
            let lm = m.loss(&x, y);
            m.params_mut()[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - g[i]).abs() < 2e-2,
                "param {i}: numeric {num} vs analytic {}",
                g[i]
            );
            checked += 1;
        }
        assert!(checked > 10);
    }

    #[test]
    fn learns_xor_a_nonconvex_task() {
        // XOR is the classic not-linearly-separable problem: a linear model
        // cannot exceed 75%, an MLP should nail it.
        let mut m = Mlp::new(2, &[8], 2, 3);
        let data = [
            ([0.0f32, 0.0], 0.0f32),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for _ in 0..2000 {
            for (x, y) in &data {
                m.sgd_step(&dense(x), *y, 0.1);
            }
        }
        for (x, y) in &data {
            assert_eq!(m.predict_label(&dense(x)), *y, "input {x:?}");
        }
    }

    #[test]
    fn initialization_is_seed_deterministic_and_nonzero() {
        let a = Mlp::new(4, &[6], 2, 9);
        let b = Mlp::new(4, &[6], 2, 9);
        let c = Mlp::new(4, &[6], 2, 10);
        assert_eq!(a.params(), b.params());
        assert_ne!(a.params(), c.params());
        assert!(a.params().iter().any(|&p| p != 0.0));
    }

    #[test]
    fn loss_decreases_under_training() {
        let mut m = Mlp::new(3, &[10], 3, 5);
        let xs = [
            (dense(&[3.0, 0.0, 0.0]), 0.0),
            (dense(&[0.0, 3.0, 0.0]), 1.0),
            (dense(&[0.0, 0.0, 3.0]), 2.0),
        ];
        let before: f64 = xs.iter().map(|(x, y)| m.loss(x, *y)).sum();
        for _ in 0..200 {
            for (x, y) in &xs {
                m.sgd_step(x, *y, 0.05);
            }
        }
        let after: f64 = xs.iter().map(|(x, y)| m.loss(x, *y)).sum();
        assert!(after < before / 5.0, "loss {before} → {after}");
    }

    #[test]
    #[should_panic(expected = "hidden")]
    fn empty_hidden_rejected() {
        Mlp::new(4, &[], 2, 1);
    }

    #[test]
    fn flops_positive() {
        let m = Mlp::new(10, &[20], 5, 1);
        assert!(m.flops_per_example(10) > 1000.0);
    }
}
