//! # corgipile-ml
//!
//! The machine-learning substrate of the CorgiPile reproduction:
//! generalized linear models (logistic regression, SVM, linear regression),
//! softmax regression, and small multi-layer perceptrons (the non-convex
//! stand-ins for the paper's deep-learning workloads), trained with SGD or
//! Adam over tuple streams.
//!
//! * [`model`] — the [`Model`] trait: flat parameter vector, per-example
//!   loss/gradient, fast sparse SGD step, and a FLOP cost model used by the
//!   simulated compute clock.
//! * [`linear`] — LR / SVM / linear regression over dense or sparse tuples.
//! * [`softmax`] — multinomial logistic regression (§7.4.2).
//! * [`mlp`] — feed-forward ReLU networks (the VGG/ResNet/HAN/TextCNN
//!   stand-ins of §7.2; see DESIGN.md §2 for the substitution argument).
//! * [`optimizer`] — SGD with exponential decay (§7.1.3) and Adam (§7.2.3).
//! * [`sgd`] — the training loop: per-tuple or mini-batch updates over an
//!   epoch stream, gradient clipping, compute-cost accounting.
//! * [`metrics`] — accuracy, mean loss, and R² (linear regression, §7.4.2).
//!
//! [`Model`]: model::Model

pub mod checkpoint;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod optimizer;
pub mod sgd;
pub mod softmax;

pub use checkpoint::TrainCheckpoint;
pub use linear::{LinearModel, LinearTask};
pub use metrics::{accuracy, auc, auc_of, log_loss, mean_loss, r_squared};
pub use mlp::Mlp;
pub use model::{build_model, Model, ModelKind};
pub use optimizer::{Adam, Optimizer, OptimizerKind, Sgd};
pub use sgd::{
    train_minibatch, train_per_tuple, ComputeCostModel, EpochStats, MinibatchTrainer, TrainOptions,
};
pub use softmax::SoftmaxRegression;
