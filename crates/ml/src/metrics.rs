//! Evaluation metrics: accuracy, mean loss, and R².
//!
//! The paper reports training/testing accuracy for classifiers (Table 3,
//! Figures 1–12) and the coefficient of determination R² for linear
//! regression (§7.4.2).

use crate::linear::LinearModel;
use crate::model::Model;
use corgipile_storage::Tuple;

/// Classification accuracy of `model` over `tuples` (exact label match:
/// ±1 for binary models, class index for multi-class).
pub fn accuracy<'a, I>(model: &dyn Model, tuples: I) -> f64
where
    I: IntoIterator<Item = &'a Tuple>,
{
    let mut correct = 0usize;
    let mut total = 0usize;
    for t in tuples {
        if model.predict_label(&t.features) == t.label {
            correct += 1;
        }
        total += 1;
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Mean per-example loss of `model` over `tuples`.
pub fn mean_loss<'a, I>(model: &dyn Model, tuples: I) -> f64
where
    I: IntoIterator<Item = &'a Tuple>,
{
    let mut sum = 0.0f64;
    let mut total = 0usize;
    for t in tuples {
        sum += model.loss(&t.features, t.label);
        total += 1;
    }
    if total == 0 {
        0.0
    } else {
        sum / total as f64
    }
}

/// Coefficient of determination R² = 1 − SS_res / SS_tot.
pub fn r_squared<'a, I>(model: &dyn Model, tuples: I) -> f64
where
    I: IntoIterator<Item = &'a Tuple>,
{
    let tuples: Vec<&Tuple> = tuples.into_iter().collect();
    if tuples.is_empty() {
        return 0.0;
    }
    let mean_y: f64 = tuples.iter().map(|t| t.label as f64).sum::<f64>() / tuples.len() as f64;
    let mut ss_res = 0.0f64;
    let mut ss_tot = 0.0f64;
    for t in &tuples {
        let pred = model.predict_label(&t.features) as f64;
        let y = t.label as f64;
        ss_res += (y - pred) * (y - pred);
        ss_tot += (y - mean_y) * (y - mean_y);
    }
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Area under the ROC curve for a binary scorer.
///
/// `scores[i]` is the model score of example `i`; `labels[i]` is ±1.
/// Computed via the rank-sum (Mann-Whitney) formulation with midrank tie
/// handling; 0.5 = chance, 1.0 = perfect ranking.
pub fn auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
    let n = scores.len();
    let mut ranks = vec![0.0f64; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = midrank;
        }
        i = j + 1;
    }
    let pos = labels.iter().filter(|&&l| l > 0.0).count() as f64;
    let neg = n as f64 - pos;
    if pos == 0.0 || neg == 0.0 {
        return 0.5;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l > 0.0)
        .map(|(r, _)| *r)
        .sum();
    (rank_sum_pos - pos * (pos + 1.0) / 2.0) / (pos * neg)
}

/// AUC of a binary linear model over a tuple set (uses the raw score).
pub fn auc_of<'a, I>(model: &LinearModel, tuples: I) -> f64
where
    I: IntoIterator<Item = &'a Tuple>,
{
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for t in tuples {
        scores.push(model.score(&t.features));
        labels.push(t.label);
    }
    auc(&scores, &labels)
}

/// Mean binary log-loss of a logistic scorer: `mean ln(1 + e^{−y·s})`.
pub fn log_loss<'a, I>(model: &LinearModel, tuples: I) -> f64
where
    I: IntoIterator<Item = &'a Tuple>,
{
    let mut sum = 0.0f64;
    let mut n = 0usize;
    for t in tuples {
        let z = -(t.label as f64) * model.score(&t.features) as f64;
        sum += if z > 30.0 { z } else { z.exp().ln_1p() };
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{LinearModel, LinearTask};
    use crate::model::Model;

    #[test]
    fn accuracy_of_perfect_and_inverted_models() {
        let data: Vec<Tuple> = (0..10)
            .map(|i| {
                let y = if i % 2 == 0 { 1.0 } else { -1.0 };
                Tuple::dense(i, vec![y], y)
            })
            .collect();
        let mut good = LinearModel::new(1, LinearTask::Logistic);
        good.params_mut()[0] = 5.0;
        assert_eq!(accuracy(&good, &data), 1.0);
        let mut bad = LinearModel::new(1, LinearTask::Logistic);
        bad.params_mut()[0] = -5.0;
        assert_eq!(accuracy(&bad, &data), 0.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        let m = LinearModel::new(1, LinearTask::Logistic);
        assert_eq!(accuracy(&m, &[]), 0.0);
        assert_eq!(mean_loss(&m, &[]), 0.0);
        assert_eq!(r_squared(&m, &[]), 0.0);
    }

    #[test]
    fn r2_is_one_for_exact_fit_and_zero_for_mean_predictor() {
        let data: Vec<Tuple> = (0..20)
            .map(|i| Tuple::dense(i, vec![i as f32], 2.0 * i as f32))
            .collect();
        let mut exact = LinearModel::new(1, LinearTask::Squared);
        exact.params_mut()[0] = 2.0;
        assert!((r_squared(&exact, &data) - 1.0).abs() < 1e-9);

        // A constant predictor at the mean: R² ≈ 0.
        let mean_y: f32 = data.iter().map(|t| t.label).sum::<f32>() / data.len() as f32;
        let mut mean_model = LinearModel::new(1, LinearTask::Squared);
        mean_model.params_mut()[1] = mean_y;
        let r2 = r_squared(&mean_model, &data);
        assert!(r2.abs() < 1e-6, "mean predictor r2 {r2}");
    }

    #[test]
    fn auc_perfect_chance_and_inverted() {
        let labels = vec![-1.0f32, -1.0, 1.0, 1.0];
        assert_eq!(auc(&[0.1, 0.2, 0.8, 0.9], &labels), 1.0);
        assert_eq!(auc(&[0.9, 0.8, 0.2, 0.1], &labels), 0.0);
        // All-tied scores → 0.5 via midranks.
        assert_eq!(auc(&[0.5, 0.5, 0.5, 0.5], &labels), 0.5);
        // Degenerate single-class input.
        assert_eq!(auc(&[0.1, 0.2], &[1.0, 1.0]), 0.5);
    }

    #[test]
    fn auc_handles_partial_overlap() {
        // One inversion among 2x2 pairs → AUC 3/4.
        let labels = vec![-1.0f32, 1.0, -1.0, 1.0];
        let scores = vec![0.1f32, 0.2, 0.3, 0.4];
        assert!((auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_of_model_beats_chance_on_separable_data() {
        let data: Vec<Tuple> = (0..100)
            .map(|i| {
                let y = if i % 2 == 0 { 1.0 } else { -1.0 };
                Tuple::dense(i, vec![y + 0.1 * (i as f32 % 7.0 - 3.0)], y)
            })
            .collect();
        let mut m = LinearModel::new(1, LinearTask::Logistic);
        m.params_mut()[0] = 1.0;
        assert!(auc_of(&m, &data) > 0.9);
    }

    #[test]
    fn log_loss_is_ln2_at_zero_and_shrinks_with_fit() {
        let data: Vec<Tuple> = vec![
            Tuple::dense(0, vec![1.0], 1.0),
            Tuple::dense(1, vec![-1.0], -1.0),
        ];
        let zero = LinearModel::new(1, LinearTask::Logistic);
        assert!((log_loss(&zero, &data) - (2.0f64).ln()).abs() < 1e-9);
        let mut fit = LinearModel::new(1, LinearTask::Logistic);
        fit.params_mut()[0] = 5.0;
        assert!(log_loss(&fit, &data) < 0.01);
        assert_eq!(log_loss(&zero, &[]), 0.0);
    }

    #[test]
    fn mean_loss_matches_manual_average() {
        let data: Vec<Tuple> = vec![
            Tuple::dense(0, vec![1.0], 1.0),
            Tuple::dense(1, vec![-1.0], -1.0),
        ];
        let m = LinearModel::new(1, LinearTask::Logistic);
        let manual: f64 = data
            .iter()
            .map(|t| m.loss(&t.features, t.label))
            .sum::<f64>()
            / 2.0;
        assert!((mean_loss(&m, &data) - manual).abs() < 1e-12);
    }
}
