//! The [`Model`] trait and the model factory.

use crate::linear::{LinearModel, LinearTask};
use crate::mlp::Mlp;
use crate::softmax::SoftmaxRegression;
use corgipile_storage::{FeatureVec, TupleRef};

/// A trainable model with a flat parameter vector.
///
/// All models expose
/// * per-example loss and dense gradient (generic path, used by mini-batch
///   and Adam);
/// * a fast fused SGD step ([`Model::sgd_step`]) that linear models override
///   with a sparse-aware update (one `axpy` per tuple — the path the paper's
///   per-tuple UDA/operator implementations take);
/// * a FLOP estimate for the simulated compute clock.
pub trait Model: Send + Sync {
    /// Number of parameters.
    fn num_params(&self) -> usize;

    /// Borrow the flat parameter vector.
    fn params(&self) -> &[f32];

    /// Mutably borrow the flat parameter vector.
    fn params_mut(&mut self) -> &mut [f32];

    /// Per-example loss.
    fn loss(&self, x: &FeatureVec, y: f32) -> f64;

    /// Accumulate the per-example gradient into `grad` (length
    /// [`Model::num_params`]). Does **not** zero `grad` first.
    fn grad(&self, x: &FeatureVec, y: f32, grad: &mut [f32]);

    /// Fused single-example SGD step: `params -= lr * ∇loss`.
    ///
    /// The default materializes a dense gradient; linear models override it
    /// with a sparse update.
    fn sgd_step(&mut self, x: &FeatureVec, y: f32, lr: f32) {
        let mut g = vec![0.0f32; self.num_params()];
        self.grad(x, y, &mut g);
        for (p, gi) in self.params_mut().iter_mut().zip(&g) {
            *p -= lr * gi;
        }
    }

    /// Fused batch of per-tuple SGD steps: for each tuple in order,
    /// accumulate its pre-update loss into `loss_sum` and apply
    /// [`Model::sgd_step`].
    ///
    /// This is the vectorized executor's training kernel: one virtual call
    /// per batch instead of two per tuple. Because default trait methods
    /// are monomorphized per implementor, `self.loss`/`self.sgd_step`
    /// dispatch *statically* inside this body. The loss accumulation order
    /// and the update sequence are exactly the interpreted per-tuple
    /// loop's, so trained models and reported training loss stay
    /// bit-identical.
    fn sgd_batch(&mut self, batch: &[TupleRef], lr: f32, loss_sum: &mut f64) {
        for r in batch {
            *loss_sum += self.loss(&r.features, r.label);
            self.sgd_step(&r.features, r.label, lr);
        }
    }

    /// Predicted label: sign (±1) for binary classifiers, class index for
    /// multi-class, real value for regression.
    fn predict_label(&self, x: &FeatureVec) -> f32;

    /// Batched inference: the predicted label of every feature vector in
    /// `xs`, appended to `out` in order (the serving path's unit of work).
    ///
    /// The default loops [`Model::predict_label`]; linear and softmax
    /// models override it to hoist the weight slices out of the per-tuple
    /// path so the loop runs straight over the unrolled `dense_dot`
    /// kernel. Overrides must stay bit-identical to the default.
    fn predict_batch_into(&self, xs: &[&FeatureVec], out: &mut Vec<f32>) {
        out.reserve(xs.len());
        for x in xs {
            out.push(self.predict_label(x));
        }
    }

    /// FLOPs per example for inference (forward pass only), for the
    /// serving path's simulated compute clock. Defaults to half the
    /// training estimate (which covers forward + backward).
    fn inference_flops_per_example(&self, nnz: usize) -> f64 {
        self.flops_per_example(nnz) / 2.0
    }

    /// True for classifiers (accuracy applies), false for regression.
    fn is_classifier(&self) -> bool {
        true
    }

    /// FLOPs per example with `nnz` materialized features (forward +
    /// backward), for the simulated compute clock.
    fn flops_per_example(&self, nnz: usize) -> f64;
}

/// Model identifiers used by configs, the SQL surface, and reports.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Logistic regression (binary, labels ±1).
    LogisticRegression,
    /// Linear SVM with hinge loss (binary, labels ±1).
    Svm,
    /// Ordinary least squares via SGD.
    LinearRegression,
    /// Multinomial logistic regression.
    Softmax {
        /// Number of classes.
        classes: usize,
    },
    /// Feed-forward ReLU network ending in softmax.
    Mlp {
        /// Hidden layer widths.
        hidden: Vec<usize>,
        /// Number of classes.
        classes: usize,
    },
}

impl ModelKind {
    /// Short machine name ("lr", "svm", …), also accepted by the SQL parser.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::LogisticRegression => "lr",
            ModelKind::Svm => "svm",
            ModelKind::LinearRegression => "linreg",
            ModelKind::Softmax { .. } => "softmax",
            ModelKind::Mlp { .. } => "mlp",
        }
    }

    /// Whether this kind is convex (GLM) — used by reports and theory.
    pub fn is_convex(&self) -> bool {
        !matches!(self, ModelKind::Mlp { .. })
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelKind::Softmax { classes } => write!(f, "softmax({classes})"),
            ModelKind::Mlp { hidden, classes } => write!(f, "mlp({hidden:?}→{classes})"),
            other => f.write_str(other.name()),
        }
    }
}

/// Build a model of the given kind for `dim` input features.
///
/// `seed` initializes MLP weights; linear models start at zero like the
/// paper's systems.
pub fn build_model(kind: &ModelKind, dim: usize, seed: u64) -> Box<dyn Model> {
    match kind {
        ModelKind::LogisticRegression => Box::new(LinearModel::new(dim, LinearTask::Logistic)),
        ModelKind::Svm => Box::new(LinearModel::new(dim, LinearTask::Hinge)),
        ModelKind::LinearRegression => Box::new(LinearModel::new(dim, LinearTask::Squared)),
        ModelKind::Softmax { classes } => Box::new(SoftmaxRegression::new(dim, *classes)),
        ModelKind::Mlp { hidden, classes } => Box::new(Mlp::new(dim, hidden, *classes, seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_each_kind() {
        let kinds = [
            ModelKind::LogisticRegression,
            ModelKind::Svm,
            ModelKind::LinearRegression,
            ModelKind::Softmax { classes: 3 },
            ModelKind::Mlp {
                hidden: vec![8],
                classes: 3,
            },
        ];
        for k in kinds {
            let m = build_model(&k, 10, 1);
            assert!(m.num_params() > 0, "{k}: no params");
            assert_eq!(m.params().len(), m.num_params());
        }
    }

    #[test]
    fn names_and_convexity() {
        assert_eq!(ModelKind::LogisticRegression.name(), "lr");
        assert_eq!(ModelKind::Svm.name(), "svm");
        assert!(ModelKind::Svm.is_convex());
        assert!(!ModelKind::Mlp {
            hidden: vec![4],
            classes: 2
        }
        .is_convex());
        assert_eq!(ModelKind::Softmax { classes: 5 }.to_string(), "softmax(5)");
    }

    #[test]
    fn batched_prediction_is_bit_identical_to_per_tuple() {
        // The serving path leans on predict_batch_into overrides; any
        // divergence from predict_label would break the hot-reload
        // bit-identity guarantee.
        let kinds = [
            ModelKind::LogisticRegression,
            ModelKind::Svm,
            ModelKind::LinearRegression,
            ModelKind::Softmax { classes: 4 },
            ModelKind::Mlp {
                hidden: vec![6],
                classes: 3,
            },
        ];
        let xs: Vec<FeatureVec> = (0..40)
            .map(|i| {
                FeatureVec::Dense(
                    (0..5)
                        .map(|j| ((i * 7 + j * 3) % 11) as f32 / 3.0 - 1.5)
                        .collect(),
                )
            })
            .collect();
        let refs: Vec<&FeatureVec> = xs.iter().collect();
        for k in kinds {
            let mut m = build_model(&k, 5, 9);
            // Non-trivial parameters so argmax/sign branches are exercised.
            for (i, p) in m.params_mut().iter_mut().enumerate() {
                *p = 0.05 * (i as f32 + 1.0) * if i % 3 == 0 { -1.0 } else { 1.0 };
            }
            let mut batched = Vec::new();
            m.predict_batch_into(&refs, &mut batched);
            let scalar: Vec<f32> = xs.iter().map(|x| m.predict_label(x)).collect();
            assert_eq!(batched, scalar, "{k}");
            assert!(m.inference_flops_per_example(5) <= m.flops_per_example(5));
        }
    }

    #[test]
    fn sgd_batch_is_bit_identical_to_per_tuple_loop() {
        use corgipile_storage::Tuple;
        use std::sync::Arc;
        let kinds = [
            ModelKind::LogisticRegression,
            ModelKind::Svm,
            ModelKind::LinearRegression,
            ModelKind::Softmax { classes: 3 },
            ModelKind::Mlp {
                hidden: vec![5],
                classes: 3,
            },
        ];
        let block: Arc<Vec<Tuple>> = Arc::new(
            (0..30)
                .map(|i| {
                    let label = if matches!(i % 3, 0) { 1.0 } else { -1.0 };
                    Tuple::dense(
                        i,
                        (0..4)
                            .map(|j| ((i * 5 + j * 7) % 13) as f32 / 4.0 - 1.5)
                            .collect(),
                        label,
                    )
                })
                .collect(),
        );
        let refs: Vec<TupleRef> = corgipile_storage::block_refs(&block).collect();
        for k in kinds {
            let mut fused = build_model(&k, 4, 7);
            let mut scalar = build_model(&k, 4, 7);
            let mut fused_loss = 0.0f64;
            let mut scalar_loss = 0.0f64;
            for chunk in refs.chunks(7) {
                fused.sgd_batch(chunk, 0.05, &mut fused_loss);
                for r in chunk {
                    scalar_loss += scalar.loss(&r.features, r.label);
                    scalar.sgd_step(&r.features, r.label, 0.05);
                }
            }
            assert_eq!(fused.params(), scalar.params(), "{k}: params diverged");
            assert_eq!(
                fused_loss.to_bits(),
                scalar_loss.to_bits(),
                "{k}: loss accumulation diverged"
            );
        }
    }

    #[test]
    fn default_sgd_step_matches_manual_gradient_descent() {
        let mut m = build_model(&ModelKind::LogisticRegression, 3, 0);
        let x = FeatureVec::Dense(vec![1.0, -1.0, 0.5]);
        let mut g = vec![0.0; m.num_params()];
        m.grad(&x, 1.0, &mut g);
        let expect: Vec<f32> = m
            .params()
            .iter()
            .zip(&g)
            .map(|(p, gi)| p - 0.1 * gi)
            .collect();
        m.sgd_step(&x, 1.0, 0.1);
        for (a, b) in m.params().iter().zip(&expect) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
