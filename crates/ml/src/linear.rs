//! Generalized linear models: logistic regression, linear SVM, and linear
//! regression, with a sparse-aware fused SGD step.
//!
//! These are the workloads of the paper's in-DB evaluation (§7.3–§7.4):
//! `svm_train` / `logit_train` in MADlib and Bismarck reduce to exactly the
//! per-tuple updates implemented here.

use crate::model::Model;
use corgipile_storage::FeatureVec;

/// The loss attached to the linear score `s = w·x + b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearTask {
    /// Logistic loss `ln(1 + exp(−y·s))`, labels ±1.
    Logistic,
    /// Hinge loss `max(0, 1 − y·s)`, labels ±1 (linear SVM).
    Hinge,
    /// Squared loss `½(s − y)²` (linear regression).
    Squared,
}

/// A linear model `s(x) = w·x + b`.
///
/// Parameters are laid out flat as `[w₀ … w_{d−1}, b]`.
#[derive(Debug, Clone)]
pub struct LinearModel {
    params: Vec<f32>,
    dim: usize,
    task: LinearTask,
}

impl LinearModel {
    /// A zero-initialized model for `dim` features.
    pub fn new(dim: usize, task: LinearTask) -> Self {
        LinearModel {
            params: vec![0.0; dim + 1],
            dim,
            task,
        }
    }

    /// The learning task.
    pub fn task(&self) -> LinearTask {
        self.task
    }

    /// The raw score `w·x + b`.
    pub fn score(&self, x: &FeatureVec) -> f32 {
        x.dot(&self.params[..self.dim]) + self.params[self.dim]
    }

    /// dLoss/dScore at `(x, y)`.
    fn dloss_dscore(&self, s: f32, y: f32) -> f32 {
        match self.task {
            LinearTask::Logistic => {
                // −y·σ(−y·s); numerically stable for large |s|.
                let z = (y * s) as f64;
                (-(y as f64) / (1.0 + z.exp())) as f32
            }
            LinearTask::Hinge => {
                if y * s < 1.0 {
                    -y
                } else {
                    0.0
                }
            }
            LinearTask::Squared => s - y,
        }
    }
}

impl Model for LinearModel {
    fn num_params(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> &[f32] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn loss(&self, x: &FeatureVec, y: f32) -> f64 {
        let s = self.score(x) as f64;
        let y = y as f64;
        match self.task {
            LinearTask::Logistic => {
                // ln(1 + e^{−ys}) computed stably.
                let z = -y * s;
                if z > 30.0 {
                    z
                } else {
                    z.exp().ln_1p()
                }
            }
            LinearTask::Hinge => (1.0 - y * s).max(0.0),
            LinearTask::Squared => 0.5 * (s - y) * (s - y),
        }
    }

    fn grad(&self, x: &FeatureVec, y: f32, grad: &mut [f32]) {
        let g = self.dloss_dscore(self.score(x), y);
        if g == 0.0 {
            return;
        }
        x.axpy_into(g, &mut grad[..self.dim]);
        grad[self.dim] += g;
    }

    fn sgd_step(&mut self, x: &FeatureVec, y: f32, lr: f32) {
        // Sparse fast path: touch only the non-zero coordinates.
        let g = self.dloss_dscore(self.score(x), y);
        if g == 0.0 {
            return;
        }
        x.axpy_into(-lr * g, &mut self.params[..self.dim]);
        self.params[self.dim] -= lr * g;
    }

    fn predict_label(&self, x: &FeatureVec) -> f32 {
        let s = self.score(x);
        match self.task {
            LinearTask::Squared => s,
            _ => {
                if s >= 0.0 {
                    1.0
                } else {
                    -1.0
                }
            }
        }
    }

    fn predict_batch_into(&self, xs: &[&FeatureVec], out: &mut Vec<f32>) {
        // Serving fast path: the weight slice and bias are hoisted once, so
        // the batch loop is a bare `dense_dot` per tuple.
        let (w, b) = (&self.params[..self.dim], self.params[self.dim]);
        out.reserve(xs.len());
        match self.task {
            LinearTask::Squared => out.extend(xs.iter().map(|x| x.dot(w) + b)),
            _ => out.extend(
                xs.iter()
                    .map(|x| if x.dot(w) + b >= 0.0 { 1.0 } else { -1.0 }),
            ),
        }
    }

    fn is_classifier(&self) -> bool {
        !matches!(self.task, LinearTask::Squared)
    }

    fn flops_per_example(&self, nnz: usize) -> f64 {
        // score: 2·nnz; gradient axpy: 2·nnz; loss bookkeeping ~ 8.
        (4 * nnz + 8) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dense(v: &[f32]) -> FeatureVec {
        FeatureVec::Dense(v.to_vec())
    }

    /// Numeric gradient check via central differences on the flat params.
    fn check_grad(task: LinearTask, x: &FeatureVec, y: f32) {
        let mut m = LinearModel::new(x.dim(), task);
        // Non-trivial params so hinge margins are active.
        for (i, p) in m.params_mut().iter_mut().enumerate() {
            *p = 0.1 * (i as f32 + 1.0) * if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let mut g = vec![0.0f32; m.num_params()];
        m.grad(x, y, &mut g);
        let eps = 1e-3f32;
        for (i, gi) in g.iter().enumerate() {
            let orig = m.params()[i];
            m.params_mut()[i] = orig + eps;
            let lp = m.loss(x, y);
            m.params_mut()[i] = orig - eps;
            let lm = m.loss(x, y);
            m.params_mut()[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - gi).abs() < 2e-2,
                "{task:?} param {i}: numeric {num} vs analytic {gi}"
            );
        }
    }

    #[test]
    fn gradient_matches_numeric_logistic() {
        check_grad(LinearTask::Logistic, &dense(&[0.5, -1.0, 2.0]), 1.0);
        check_grad(LinearTask::Logistic, &dense(&[0.5, -1.0, 2.0]), -1.0);
    }

    #[test]
    fn gradient_matches_numeric_squared() {
        check_grad(LinearTask::Squared, &dense(&[1.0, 2.0, -0.5]), 3.0);
    }

    #[test]
    fn gradient_matches_numeric_hinge_active_margin() {
        // Pick a point with an active margin (y·s < 1) away from the kink.
        check_grad(LinearTask::Hinge, &dense(&[0.2, 0.1, -0.3]), 1.0);
    }

    #[test]
    fn hinge_gradient_zero_outside_margin() {
        let mut m = LinearModel::new(2, LinearTask::Hinge);
        m.params_mut()[0] = 10.0;
        let x = dense(&[1.0, 0.0]);
        let mut g = vec![0.0; 3];
        m.grad(&x, 1.0, &mut g); // s = 10, y·s = 10 > 1
        assert_eq!(g, vec![0.0; 3]);
        assert_eq!(m.loss(&x, 1.0), 0.0);
    }

    #[test]
    fn logistic_loss_stable_for_extreme_scores() {
        let mut m = LinearModel::new(1, LinearTask::Logistic);
        m.params_mut()[0] = 1000.0;
        let x = dense(&[1.0]);
        assert!(m.loss(&x, -1.0).is_finite());
        assert!(m.loss(&x, 1.0).is_finite());
        assert!(m.loss(&x, 1.0) < 1e-6);
        let mut g = vec![0.0; 2];
        m.grad(&x, -1.0, &mut g);
        assert!(g.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sparse_sgd_step_matches_dense_step() {
        let sparse = FeatureVec::sparse(6, vec![1, 4], vec![2.0, -1.0]);
        let densified = dense(&[0.0, 2.0, 0.0, 0.0, -1.0, 0.0]);
        for task in [LinearTask::Logistic, LinearTask::Hinge, LinearTask::Squared] {
            let mut a = LinearModel::new(6, task);
            let mut b = LinearModel::new(6, task);
            a.sgd_step(&sparse, 1.0, 0.3);
            b.sgd_step(&densified, 1.0, 0.3);
            for (pa, pb) in a.params().iter().zip(b.params()) {
                assert!((pa - pb).abs() < 1e-6, "{task:?}");
            }
        }
    }

    #[test]
    fn sgd_learns_a_separable_problem() {
        // x ∈ {(1,1): +1, (-1,-1): −1} — trivially separable.
        let mut m = LinearModel::new(2, LinearTask::Logistic);
        for _ in 0..200 {
            m.sgd_step(&dense(&[1.0, 1.0]), 1.0, 0.1);
            m.sgd_step(&dense(&[-1.0, -1.0]), -1.0, 0.1);
        }
        assert_eq!(m.predict_label(&dense(&[1.0, 1.0])), 1.0);
        assert_eq!(m.predict_label(&dense(&[-1.0, -1.0])), -1.0);
        assert!(m.loss(&dense(&[1.0, 1.0]), 1.0) < 0.2);
    }

    #[test]
    fn svm_learns_with_margin() {
        let mut m = LinearModel::new(2, LinearTask::Hinge);
        for _ in 0..300 {
            m.sgd_step(&dense(&[2.0, 0.5]), 1.0, 0.05);
            m.sgd_step(&dense(&[-2.0, -0.5]), -1.0, 0.05);
        }
        assert!(m.score(&dense(&[2.0, 0.5])) >= 1.0, "margin not reached");
        assert!(m.score(&dense(&[-2.0, -0.5])) <= -1.0);
    }

    #[test]
    fn linear_regression_recovers_line() {
        let mut m = LinearModel::new(1, LinearTask::Squared);
        // y = 3x + 1
        for _ in 0..500 {
            for x in [-2.0f32, -1.0, 0.0, 1.0, 2.0] {
                m.sgd_step(&dense(&[x]), 3.0 * x + 1.0, 0.05);
            }
        }
        assert!((m.params()[0] - 3.0).abs() < 0.05, "w = {}", m.params()[0]);
        assert!((m.params()[1] - 1.0).abs() < 0.05, "b = {}", m.params()[1]);
        assert!(!m.is_classifier());
        let pred = m.predict_label(&dense(&[2.0]));
        assert!((pred - 7.0).abs() < 0.2);
    }

    #[test]
    fn flops_scale_with_nnz() {
        let m = LinearModel::new(100, LinearTask::Logistic);
        assert!(m.flops_per_example(100) > m.flops_per_example(5));
    }

    proptest! {
        #[test]
        fn prop_logistic_grad_norm_bounded_by_feature_norm(
            vals in proptest::collection::vec(-5.0f32..5.0, 1..8),
            y in prop_oneof![Just(1.0f32), Just(-1.0f32)],
        ) {
            // |dL/ds| ≤ 1 for logistic ⇒ ‖grad_w‖ ≤ ‖x‖.
            let dim = vals.len();
            let x = FeatureVec::Dense(vals);
            let m = LinearModel::new(dim, LinearTask::Logistic);
            let mut g = vec![0.0f32; dim + 1];
            m.grad(&x, y, &mut g);
            let gn: f32 = g[..dim].iter().map(|v| v * v).sum::<f32>().sqrt();
            let xn: f32 = x.norm_sq().sqrt();
            prop_assert!(gn <= xn + 1e-4);
        }

        #[test]
        fn prop_losses_are_nonnegative(
            vals in proptest::collection::vec(-10.0f32..10.0, 1..6),
            y in prop_oneof![Just(1.0f32), Just(-1.0f32)],
            w in -3.0f32..3.0,
        ) {
            let dim = vals.len();
            let x = FeatureVec::Dense(vals);
            for task in [LinearTask::Logistic, LinearTask::Hinge, LinearTask::Squared] {
                let mut m = LinearModel::new(dim, task);
                m.params_mut().iter_mut().for_each(|p| *p = w);
                prop_assert!(m.loss(&x, y) >= 0.0, "{task:?}");
            }
        }
    }
}
