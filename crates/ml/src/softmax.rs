//! Multinomial logistic (softmax) regression, the paper's §7.4.2 workload
//! for multi-class datasets (mini8m) and the final layer of our MLPs.

use crate::model::Model;
use corgipile_storage::FeatureVec;

/// Softmax regression over `k` classes.
///
/// Parameters are flat: `[W(row-major k×d), b(k)]`. Labels are class
/// indices `0.0, 1.0, …, k−1.0` stored in the tuple's `label` field.
#[derive(Debug, Clone)]
pub struct SoftmaxRegression {
    params: Vec<f32>,
    dim: usize,
    classes: usize,
}

impl SoftmaxRegression {
    /// A zero-initialized model.
    pub fn new(dim: usize, classes: usize) -> Self {
        assert!(classes >= 2, "softmax needs ≥ 2 classes");
        SoftmaxRegression {
            params: vec![0.0; classes * dim + classes],
            dim,
            classes,
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Per-class scores `Wx + b`.
    pub fn logits(&self, x: &FeatureVec) -> Vec<f32> {
        let (w, b) = self.params.split_at(self.classes * self.dim);
        (0..self.classes)
            .map(|c| x.dot(&w[c * self.dim..(c + 1) * self.dim]) + b[c])
            .collect()
    }

    /// Softmax probabilities (numerically stabilized).
    pub fn probabilities(&self, x: &FeatureVec) -> Vec<f32> {
        softmax(&self.logits(x))
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f64> = logits.iter().map(|&l| ((l - max) as f64).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| (e / sum) as f32).collect()
}

impl Model for SoftmaxRegression {
    fn num_params(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> &[f32] {
        &self.params
    }

    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn loss(&self, x: &FeatureVec, y: f32) -> f64 {
        let p = self.probabilities(x);
        let c = y as usize;
        debug_assert!(c < self.classes, "label {y} out of range");
        -(p[c].max(1e-12) as f64).ln()
    }

    fn grad(&self, x: &FeatureVec, y: f32, grad: &mut [f32]) {
        let p = self.probabilities(x);
        let target = y as usize;
        let (gw, gb) = grad.split_at_mut(self.classes * self.dim);
        for c in 0..self.classes {
            let coeff = p[c] - if c == target { 1.0 } else { 0.0 };
            if coeff != 0.0 {
                x.axpy_into(coeff, &mut gw[c * self.dim..(c + 1) * self.dim]);
                gb[c] += coeff;
            }
        }
    }

    fn sgd_step(&mut self, x: &FeatureVec, y: f32, lr: f32) {
        let p = self.probabilities(x);
        let target = y as usize;
        let dim = self.dim;
        let (w, b) = self.params.split_at_mut(self.classes * dim);
        for c in 0..self.classes {
            let coeff = p[c] - if c == target { 1.0 } else { 0.0 };
            if coeff != 0.0 {
                x.axpy_into(-lr * coeff, &mut w[c * dim..(c + 1) * dim]);
                b[c] -= lr * coeff;
            }
        }
    }

    fn predict_label(&self, x: &FeatureVec) -> f32 {
        let logits = self.logits(x);
        logits
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap())
            .map(|(i, _)| i as f32)
            .unwrap_or(0.0)
    }

    fn predict_batch_into(&self, xs: &[&FeatureVec], out: &mut Vec<f32>) {
        // Argmax over logits only — the softmax normalization is monotone,
        // so serving skips it. Ties keep the *last* maximum class, exactly
        // like `predict_label`'s `max_by`.
        let (w, b) = self.params.split_at(self.classes * self.dim);
        out.reserve(xs.len());
        for x in xs {
            let mut best = 0usize;
            let mut best_score = f32::NEG_INFINITY;
            for c in 0..self.classes {
                let s = x.dot(&w[c * self.dim..(c + 1) * self.dim]) + b[c];
                if s >= best_score {
                    best_score = s;
                    best = c;
                }
            }
            out.push(best as f32);
        }
    }

    fn flops_per_example(&self, nnz: usize) -> f64 {
        // k dot products + k axpys + softmax.
        (self.classes * (4 * nnz + 8)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(v: &[f32]) -> FeatureVec {
        FeatureVec::Dense(v.to_vec())
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 999.0, -1000.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(p[0] > p[1] && p[1] > p[2]);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn uniform_probabilities_at_init() {
        let m = SoftmaxRegression::new(4, 3);
        let p = m.probabilities(&dense(&[1.0, 2.0, 3.0, 4.0]));
        for v in p {
            assert!((v - 1.0 / 3.0).abs() < 1e-6);
        }
        assert!((m.loss(&dense(&[0.0; 4]), 1.0) - (3.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_numeric() {
        let mut m = SoftmaxRegression::new(3, 3);
        for (i, p) in m.params_mut().iter_mut().enumerate() {
            *p = (i as f32 * 0.13).sin() * 0.5;
        }
        let x = dense(&[0.7, -0.4, 1.2]);
        let y = 2.0;
        let mut g = vec![0.0f32; m.num_params()];
        m.grad(&x, y, &mut g);
        let eps = 1e-3f32;
        for (i, gi) in g.iter().enumerate() {
            let orig = m.params()[i];
            m.params_mut()[i] = orig + eps;
            let lp = m.loss(&x, y);
            m.params_mut()[i] = orig - eps;
            let lm = m.loss(&x, y);
            m.params_mut()[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((num - gi).abs() < 1e-2, "param {i}: {num} vs {gi}");
        }
    }

    #[test]
    fn sgd_learns_three_clusters() {
        let mut m = SoftmaxRegression::new(2, 3);
        let centers = [[2.0f32, 0.0], [-1.0, 1.5], [-1.0, -1.5]];
        for _ in 0..300 {
            for (c, ctr) in centers.iter().enumerate() {
                m.sgd_step(&dense(ctr), c as f32, 0.1);
            }
        }
        for (c, ctr) in centers.iter().enumerate() {
            assert_eq!(m.predict_label(&dense(ctr)), c as f32, "class {c}");
        }
    }

    #[test]
    fn sgd_step_matches_grad_descent() {
        let x = dense(&[1.0, -2.0]);
        let mut a = SoftmaxRegression::new(2, 3);
        let mut b = SoftmaxRegression::new(2, 3);
        // Warm both up identically.
        for m in [&mut a, &mut b] {
            for (i, p) in m.params_mut().iter_mut().enumerate() {
                *p = i as f32 * 0.01;
            }
        }
        a.sgd_step(&x, 1.0, 0.2);
        let mut g = vec![0.0f32; b.num_params()];
        b.grad(&x, 1.0, &mut g);
        for (p, gi) in b.params_mut().iter_mut().zip(&g) {
            *p -= 0.2 * gi;
        }
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert!((pa - pb).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "classes")]
    fn one_class_rejected() {
        SoftmaxRegression::new(3, 1);
    }
}
