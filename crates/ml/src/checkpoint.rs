//! Epoch-granular training checkpoints.
//!
//! A [`TrainCheckpoint`] freezes everything a deterministic run needs to
//! continue: the next epoch to execute, the run seed (all RNG streams are
//! derived from it and replayed on resume), the simulated clock, the flat
//! model parameter vector, and the optimizer's internal state. Because the
//! whole system is seed-deterministic, a run killed mid-training and
//! resumed from its last checkpoint produces a **bit-identical** final
//! model to an uninterrupted run.
//!
//! Blob format `CORGICK1` (little-endian), checksummed and written
//! atomically via [`atomic_write_bytes`]:
//!
//! ```text
//! magic "CORGICK1"   8 bytes
//! epoch_next u64, seed u64, sim_clock f64
//! param_count u64, params f32 × param_count
//! state_len u64, optimizer state bytes
//! crc32 u32          CRC-32 of everything above
//! ```

use corgipile_storage::{atomic_write_bytes, crc32, Result, StorageError};
use std::path::Path;

const MAGIC: &[u8; 8] = b"CORGICK1";

/// A resumable snapshot of a training run, taken at an epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// The next epoch to run (epochs `0..epoch_next` are complete).
    pub epoch_next: usize,
    /// The run's seed; resume refuses a mismatched seed, since the replayed
    /// RNG streams would diverge from the checkpointed trajectory.
    pub seed: u64,
    /// Simulated clock at the checkpoint (end of epoch `epoch_next - 1`).
    pub sim_clock: f64,
    /// Flat model parameter vector.
    pub model_params: Vec<f32>,
    /// Opaque optimizer state (see `Optimizer::state_bytes`).
    pub optimizer_state: Vec<u8>,
}

impl TrainCheckpoint {
    /// Serialize to the checksummed `CORGICK1` blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            8 + 8 + 8 + 8 + 8 + 4 * self.model_params.len() + 8 + self.optimizer_state.len() + 4,
        );
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.epoch_next as u64).to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.sim_clock.to_le_bytes());
        out.extend_from_slice(&(self.model_params.len() as u64).to_le_bytes());
        for p in &self.model_params {
            out.extend_from_slice(&p.to_le_bytes());
        }
        out.extend_from_slice(&(self.optimizer_state.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.optimizer_state);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse a `CORGICK1` blob, verifying magic, structure and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<TrainCheckpoint> {
        if bytes.len() < 8 + 8 + 8 + 8 + 8 + 8 + 4 {
            return Err(StorageError::Corrupt("checkpoint too short".into()));
        }
        if &bytes[..8] != MAGIC {
            return Err(StorageError::Corrupt("bad checkpoint magic".into()));
        }
        let body = &bytes[..bytes.len() - 4];
        let expected = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        let actual = crc32(body);
        if actual != expected {
            return Err(StorageError::ChecksumMismatch {
                block: None,
                expected,
                actual,
            });
        }
        let u64_at = |o: usize| u64::from_le_bytes(body[o..o + 8].try_into().expect("8 bytes"));
        let epoch_next = u64_at(8) as usize;
        let seed = u64_at(16);
        let sim_clock = f64::from_le_bytes(body[24..32].try_into().expect("8 bytes"));
        let param_count = u64_at(32) as usize;
        let params_end = 40usize
            .checked_add(param_count.checked_mul(4).ok_or_else(too_short)?)
            .ok_or_else(too_short)?;
        if body.len() < params_end + 8 {
            return Err(too_short());
        }
        let model_params: Vec<f32> = (0..param_count)
            .map(|i| {
                let o = 40 + 4 * i;
                f32::from_le_bytes(body[o..o + 4].try_into().expect("4 bytes"))
            })
            .collect();
        let state_len = u64_at(params_end) as usize;
        if body.len() != params_end + 8 + state_len {
            return Err(StorageError::Corrupt("checkpoint length mismatch".into()));
        }
        let optimizer_state = body[params_end + 8..].to_vec();
        Ok(TrainCheckpoint {
            epoch_next,
            seed,
            sim_clock,
            model_params,
            optimizer_state,
        })
    }

    /// Atomically write the checkpoint to `path` (temp sibling + rename —
    /// a crash mid-save leaves the previous checkpoint intact).
    pub fn save(&self, path: &Path) -> Result<()> {
        atomic_write_bytes(path, &self.to_bytes())
    }

    /// Load and verify a checkpoint from `path`.
    pub fn load(path: &Path) -> Result<TrainCheckpoint> {
        let bytes = std::fs::read(path).map_err(|e| StorageError::Io {
            op: "read checkpoint",
            message: e.to_string(),
        })?;
        TrainCheckpoint::from_bytes(&bytes)
    }
}

fn too_short() -> StorageError {
    StorageError::Corrupt("checkpoint truncated".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainCheckpoint {
        TrainCheckpoint {
            epoch_next: 3,
            seed: 0xDEAD_BEEF,
            sim_clock: 12.75,
            model_params: vec![1.5, -2.25, 0.0, 42.0],
            optimizer_state: vec![9, 8, 7, 6, 5],
        }
    }

    #[test]
    fn roundtrip_in_memory() {
        let ck = sample();
        assert_eq!(TrainCheckpoint::from_bytes(&ck.to_bytes()).unwrap(), ck);
    }

    #[test]
    fn roundtrip_through_file() {
        let path = std::env::temp_dir().join(format!("corgi_ck_{}.ckpt", std::process::id()));
        let ck = sample();
        ck.save(&path).unwrap();
        assert_eq!(TrainCheckpoint::load(&path).unwrap(), ck);
        // Overwrite is atomic: a second save replaces, never corrupts.
        let mut ck2 = sample();
        ck2.epoch_next = 4;
        ck2.save(&path).unwrap();
        assert_eq!(TrainCheckpoint::load(&path).unwrap().epoch_next, 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_params_and_state_roundtrip() {
        let ck = TrainCheckpoint {
            epoch_next: 0,
            seed: 1,
            sim_clock: 0.0,
            model_params: vec![],
            optimizer_state: vec![],
        };
        assert_eq!(TrainCheckpoint::from_bytes(&ck.to_bytes()).unwrap(), ck);
    }

    #[test]
    fn any_single_byte_corruption_is_detected() {
        let bytes = sample().to_bytes();
        for victim in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[victim] ^= 0x10;
            assert!(
                TrainCheckpoint::from_bytes(&bad).is_err(),
                "flip at byte {victim} undetected"
            );
        }
    }

    #[test]
    fn truncation_and_garbage_are_rejected() {
        let bytes = sample().to_bytes();
        for cut in [0, 1, 10, bytes.len() - 1] {
            assert!(TrainCheckpoint::from_bytes(&bytes[..cut]).is_err());
        }
        assert!(TrainCheckpoint::from_bytes(b"not a checkpoint at all....").is_err());
        assert!(TrainCheckpoint::load(Path::new("/nonexistent/ck")).is_err());
    }
}
