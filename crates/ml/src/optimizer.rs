//! Optimizers: SGD with exponential learning-rate decay (the paper's
//! default, §7.1.3: "an exponential learning rate decay with 0.95") and
//! Adam (§7.2.3).

/// A first-order optimizer stepping a flat parameter vector.
pub trait Optimizer: Send {
    /// Apply one update with the given gradient.
    fn step(&mut self, params: &mut [f32], grad: &[f32]);

    /// Advance to epoch `epoch` (0-based), applying learning-rate decay.
    fn set_epoch(&mut self, epoch: usize);

    /// Current learning rate (after decay).
    fn lr(&self) -> f32;

    /// Optimizer name for reports.
    fn name(&self) -> &'static str;

    /// Serialize internal state (moment buffers, step counters) for
    /// checkpointing. Stateless optimizers return an empty vector; the
    /// learning rate is *not* state — it is re-derived from the epoch via
    /// [`Optimizer::set_epoch`] on resume.
    fn state_bytes(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restore state produced by [`Optimizer::state_bytes`]. Returns `false`
    /// if the bytes are not a valid state for this optimizer.
    fn load_state(&mut self, bytes: &[u8]) -> bool {
        bytes.is_empty()
    }
}

/// Optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Plain SGD with per-epoch exponential decay.
    Sgd {
        /// Initial learning rate.
        lr0: f32,
        /// Per-epoch multiplicative decay (paper default 0.95).
        decay: f32,
    },
    /// SGD with the inverse-time schedule of Theorem 1:
    /// `η_s = lr0 · a / (s + a)` — the schedule under which the paper's
    /// convergence analysis holds.
    SgdInverseTime {
        /// Initial learning rate (η_0).
        lr0: f32,
        /// The theorem's offset `a ≥ 1`; larger = slower decay.
        a: f32,
    },
    /// Adam with per-epoch exponential decay of the base rate.
    Adam {
        /// Initial learning rate.
        lr0: f32,
        /// First-moment coefficient.
        beta1: f32,
        /// Second-moment coefficient.
        beta2: f32,
        /// Numerical-stability epsilon.
        eps: f32,
    },
}

impl OptimizerKind {
    /// The paper's default SGD configuration.
    pub fn default_sgd(lr0: f32) -> Self {
        OptimizerKind::Sgd { lr0, decay: 0.95 }
    }

    /// The paper's Adam configuration (standard coefficients).
    pub fn default_adam(lr0: f32) -> Self {
        OptimizerKind::Adam {
            lr0,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Build the optimizer.
    pub fn build(&self) -> Box<dyn Optimizer> {
        match *self {
            OptimizerKind::Sgd { lr0, decay } => Box::new(Sgd::new(lr0, decay)),
            OptimizerKind::SgdInverseTime { lr0, a } => Box::new(Sgd::inverse_time(lr0, a)),
            OptimizerKind::Adam {
                lr0,
                beta1,
                beta2,
                eps,
            } => Box::new(Adam::new(lr0, beta1, beta2, eps)),
        }
    }
}

/// The learning-rate schedule of an [`Sgd`] optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// `η_s = lr0 · decay^s` (the paper's experimental default).
    Exponential {
        /// Per-epoch multiplicative factor.
        decay: f32,
    },
    /// `η_s = lr0 · a / (s + a)` (Theorem 1's schedule shape).
    InverseTime {
        /// Offset `a ≥ 1`.
        a: f32,
    },
}

/// Plain SGD with a per-epoch learning-rate schedule.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr0: f32,
    schedule: LrSchedule,
    lr: f32,
}

impl Sgd {
    /// Create with initial rate `lr0` and per-epoch exponential decay.
    pub fn new(lr0: f32, decay: f32) -> Self {
        assert!(lr0 > 0.0 && decay > 0.0 && decay <= 1.0);
        Sgd {
            lr0,
            schedule: LrSchedule::Exponential { decay },
            lr: lr0,
        }
    }

    /// Create with the inverse-time schedule `η_s = lr0 · a/(s + a)`.
    pub fn inverse_time(lr0: f32, a: f32) -> Self {
        assert!(lr0 > 0.0 && a >= 1.0);
        Sgd {
            lr0,
            schedule: LrSchedule::InverseTime { a },
            lr: lr0,
        }
    }

    /// The configured schedule.
    pub fn schedule(&self) -> LrSchedule {
        self.schedule
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        debug_assert_eq!(params.len(), grad.len());
        for (p, g) in params.iter_mut().zip(grad) {
            *p -= self.lr * g;
        }
    }

    fn set_epoch(&mut self, epoch: usize) {
        self.lr = match self.schedule {
            LrSchedule::Exponential { decay } => self.lr0 * decay.powi(epoch as i32),
            LrSchedule::InverseTime { a } => self.lr0 * a / (epoch as f32 + a),
        };
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// Tag prefixing serialized Adam state (see [`Optimizer::state_bytes`]).
const ADAM_STATE_MAGIC: &[u8; 8] = b"ADAMST01";

/// Adam (Kingma & Ba, 2015).
#[derive(Debug, Clone)]
pub struct Adam {
    lr0: f32,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Create a fresh Adam state.
    pub fn new(lr0: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr0 > 0.0 && (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Adam {
            lr0,
            lr: lr0,
            beta1,
            beta2,
            eps,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        debug_assert_eq!(params.len(), grad.len());
        if self.m.len() != params.len() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
            self.t = 0;
        }
        self.t += 1;
        let b1t = 1.0 - (self.beta1 as f64).powi(self.t as i32);
        let b2t = 1.0 - (self.beta2 as f64).powi(self.t as i32);
        for i in 0..params.len() {
            let g = grad[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] as f64 / b1t;
            let vhat = self.v[i] as f64 / b2t;
            params[i] -= (self.lr as f64 * mhat / (vhat.sqrt() + self.eps as f64)) as f32;
        }
    }

    fn set_epoch(&mut self, epoch: usize) {
        // Mild decay keeps parity with the SGD schedule.
        self.lr = self.lr0 * 0.95f32.powi(epoch as i32);
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn name(&self) -> &'static str {
        "adam"
    }

    fn state_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + 8 * self.m.len());
        out.extend_from_slice(ADAM_STATE_MAGIC);
        out.extend_from_slice(&self.t.to_le_bytes());
        out.extend_from_slice(&(self.m.len() as u64).to_le_bytes());
        for x in self.m.iter().chain(self.v.iter()) {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }

    fn load_state(&mut self, bytes: &[u8]) -> bool {
        if bytes.is_empty() {
            // A checkpoint taken before the first step: fresh state.
            self.t = 0;
            self.m.clear();
            self.v.clear();
            return true;
        }
        if bytes.len() < 24 || &bytes[..8] != ADAM_STATE_MAGIC {
            return false;
        }
        let t = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let n = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
        if bytes.len() != 24 + 8 * n {
            return false;
        }
        let read_f32s = |start: usize| -> Vec<f32> {
            (0..n)
                .map(|i| {
                    let o = start + 4 * i;
                    f32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"))
                })
                .collect()
        };
        self.t = t;
        self.m = read_f32s(24);
        self.v = read_f32s(24 + 4 * n);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(p) = Σ (p_i − t_i)² with gradient 2(p − t).
    fn quadratic_descent(opt: &mut dyn Optimizer, iters: usize) -> f32 {
        let target = [3.0f32, -2.0, 0.5];
        let mut p = [0.0f32; 3];
        for _ in 0..iters {
            let g: Vec<f32> = p
                .iter()
                .zip(&target)
                .map(|(pi, ti)| 2.0 * (pi - ti))
                .collect();
            opt.step(&mut p, &g);
        }
        p.iter()
            .zip(&target)
            .map(|(pi, ti)| (pi - ti).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 1.0);
        assert!(quadratic_descent(&mut opt, 200) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1, 0.9, 0.999, 1e-8);
        assert!(quadratic_descent(&mut opt, 500) < 1e-2);
    }

    #[test]
    fn sgd_decay_schedule() {
        let mut opt = Sgd::new(0.1, 0.95);
        assert_eq!(opt.lr(), 0.1);
        opt.set_epoch(1);
        assert!((opt.lr() - 0.095).abs() < 1e-6);
        opt.set_epoch(10);
        assert!((opt.lr() - 0.1 * 0.95f32.powi(10)).abs() < 1e-7);
    }

    #[test]
    fn inverse_time_schedule_matches_theorem() {
        let mut opt = Sgd::inverse_time(0.6, 4.0);
        assert_eq!(opt.lr(), 0.6);
        opt.set_epoch(0);
        assert!((opt.lr() - 0.6).abs() < 1e-7);
        opt.set_epoch(4);
        assert!((opt.lr() - 0.3).abs() < 1e-7, "a/(s+a) = 4/8");
        opt.set_epoch(12);
        assert!((opt.lr() - 0.15).abs() < 1e-7);
        assert!(matches!(opt.schedule(), LrSchedule::InverseTime { .. }));
    }

    #[test]
    fn inverse_time_sgd_converges_on_quadratic() {
        let mut opt = Sgd::inverse_time(0.1, 8.0);
        // Quadratic descent with periodic epoch advance.
        let target = [1.0f32, -1.0];
        let mut p = [0.0f32; 2];
        for e in 0..50 {
            opt.set_epoch(e);
            for _ in 0..10 {
                let g: Vec<f32> = p
                    .iter()
                    .zip(&target)
                    .map(|(pi, ti)| 2.0 * (pi - ti))
                    .collect();
                opt.step(&mut p, &g);
            }
        }
        assert!((p[0] - 1.0).abs() < 1e-3 && (p[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn kind_builds_inverse_time() {
        let mut o = OptimizerKind::SgdInverseTime { lr0: 0.2, a: 2.0 }.build();
        o.set_epoch(2);
        assert!((o.lr() - 0.1).abs() < 1e-7);
    }

    #[test]
    fn adam_state_resizes_with_params() {
        let mut opt = Adam::new(0.01, 0.9, 0.999, 1e-8);
        let mut p3 = [1.0f32; 3];
        opt.step(&mut p3, &[0.1; 3]);
        let mut p5 = [1.0f32; 5];
        opt.step(&mut p5, &[0.1; 5]); // must not panic
        assert!(p5.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn kind_builders() {
        assert_eq!(OptimizerKind::default_sgd(0.1).build().name(), "sgd");
        assert_eq!(OptimizerKind::default_adam(0.01).build().name(), "adam");
    }

    #[test]
    #[should_panic]
    fn bad_lr_rejected() {
        Sgd::new(0.0, 0.9);
    }

    #[test]
    fn sgd_state_is_empty_and_roundtrips() {
        let mut opt = Sgd::new(0.1, 0.95);
        assert!(opt.state_bytes().is_empty());
        assert!(opt.load_state(&[]));
        assert!(!opt.load_state(b"junk"), "sgd has no state to restore");
    }

    #[test]
    fn adam_state_roundtrip_resumes_identical_trajectory() {
        let grads: Vec<Vec<f32>> = (0..10)
            .map(|i| vec![0.1 * i as f32, -0.2, 0.05 * i as f32])
            .collect();
        // Run 10 steps straight through.
        let mut full = Adam::new(0.05, 0.9, 0.999, 1e-8);
        let mut p_full = [1.0f32, -1.0, 0.5];
        for g in &grads {
            full.step(&mut p_full, g);
        }
        // Run 4 steps, checkpoint, restore into a fresh Adam, run the rest.
        let mut first = Adam::new(0.05, 0.9, 0.999, 1e-8);
        let mut p_resumed = [1.0f32, -1.0, 0.5];
        for g in &grads[..4] {
            first.step(&mut p_resumed, g);
        }
        let state = first.state_bytes();
        let mut second = Adam::new(0.05, 0.9, 0.999, 1e-8);
        assert!(second.load_state(&state));
        for g in &grads[4..] {
            second.step(&mut p_resumed, g);
        }
        assert_eq!(p_full, p_resumed, "resume must be bit-identical");
    }

    #[test]
    fn adam_rejects_malformed_state() {
        let mut opt = Adam::new(0.05, 0.9, 0.999, 1e-8);
        assert!(!opt.load_state(b"short"));
        assert!(!opt.load_state(b"WRONGMAG\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0"));
        let mut good = Adam::new(0.05, 0.9, 0.999, 1e-8);
        let mut p = [1.0f32; 3];
        good.step(&mut p, &[0.1; 3]);
        let mut truncated = good.state_bytes();
        truncated.pop();
        assert!(!opt.load_state(&truncated));
        assert!(opt.load_state(&good.state_bytes()));
        assert!(opt.load_state(&[]), "empty state resets to fresh");
    }
}
