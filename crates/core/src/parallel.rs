//! Multi-process CorgiPile (§5): per-worker block partitions, per-worker
//! tuple buffers, and AllReduce-style synchronous gradient averaging.
//!
//! The paper's PyTorch DDP integration works as follows (Figure 5):
//!
//! 1. every process shuffles the *same* block permutation (shared seed) and
//!    splits it into `PN` parts, taking part `i`;
//! 2. each process fills a local buffer of `n/PN` blocks and shuffles the
//!    buffered tuples;
//! 3. each mini-batch step consumes `batch/PN` tuples per process, computes
//!    local gradients, AllReduces (averages) them, and updates every
//!    replica identically.
//!
//! Synchronous data parallelism makes the merged execution equivalent to
//! mini-batch SGD over the *interleaved* global stream, which is what
//! [`parallel_epoch_plan`] constructs; [`train_parallel`] then runs real
//! worker threads that compute partial gradients concurrently and average
//! them — a faithful single-machine analogue of DDP's AllReduce.
//!
//! ## Work stealing
//!
//! The preferred execution path is the [`StealingExecutor`]: a small
//! persistent thread pool with crossbeam-style deques (a global injector
//! plus per-thread worker queues idle threads steal from). Epoch fills are
//! decomposed into *block-granular tasks* — one task per (worker, buffer
//! chunk) — that any idle SGD worker can steal, and each AllReduce step's
//! partial-gradient chunks run as priority tasks on the same pool. Because
//! every fill derives its RNG from `(seed, worker, fill, epoch)` and its
//! simulated device charge from a fresh per-fill device, the global batch
//! stream is *identical* no matter which thread runs which fill:
//! [`train_parallel_stealing`] is bit-identical to [`train_parallel`] over
//! [`parallel_epoch_plan`]'s `merged_batches` while eliminating both the
//! serial fill phase and the per-batch thread spawns of the fixed
//! round-robin interleaver.

use corgipile_data::rng::shuffle_in_place;
use corgipile_ml::{Model, Optimizer};
use corgipile_storage::{SimDevice, Table, Tuple, PIPELINE_SLOTS};
use crossbeam::deque::{Injector, Steal, Stealer, Worker as TaskQueue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Configuration of multi-process CorgiPile.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelConfig {
    /// Number of processes (`PN`).
    pub workers: usize,
    /// Total buffer fraction across all workers (each gets `f/PN`, §5.1
    /// step 3).
    pub total_buffer_fraction: f64,
    /// Global batch size (each worker contributes `batch/PN`, §5.1 step 4).
    pub batch_size: usize,
    /// Shared seed (all workers must agree for the block split to work).
    pub seed: u64,
    /// Device scale factor for the per-worker loaders (see
    /// `DeviceProfile::hdd_scaled`); 1.0 = unscaled HDD.
    pub device_scale: f64,
    /// OS-cache bytes available to each worker's loader.
    pub cache_bytes: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: 4,
            total_buffer_fraction: 0.10,
            batch_size: 64,
            seed: 0xDD9,
            device_scale: 1.0,
            cache_bytes: 0,
        }
    }
}

/// The materialized order of one multi-process epoch.
#[derive(Debug, Clone)]
pub struct ParallelEpoch {
    /// Per-worker shuffled streams (what each process's loader yields).
    pub worker_streams: Vec<Vec<Tuple>>,
    /// Global mini-batches after interleaving `batch/PN` tuples per worker.
    pub merged_batches: Vec<Vec<Tuple>>,
    /// Simulated loading seconds, max across workers (they load in
    /// parallel).
    pub io_seconds: f64,
}

/// Shared-seed block permutation split into `PN` contiguous parts plus the
/// per-worker buffer size in blocks (§5.1 steps 1–3). Every caller — serial
/// plan or pipelined producers — derives the same parts from the same seed.
fn worker_block_parts(
    table: &Table,
    cfg: &ParallelConfig,
    epoch: usize,
) -> (Vec<Vec<usize>>, usize) {
    assert!(cfg.workers >= 1, "need at least one worker");
    let pn = cfg.workers;
    let mut shared =
        StdRng::seed_from_u64(cfg.seed ^ (epoch as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let mut order: Vec<usize> = (0..table.num_blocks()).collect();
    shuffle_in_place(&mut shared, &mut order);
    let per = order.len().div_ceil(pn);
    let parts = (0..pn)
        .map(|w| {
            if w * per < order.len() {
                order[w * per..((w + 1) * per).min(order.len())].to_vec()
            } else {
                Vec::new()
            }
        })
        .collect();
    let n_total =
        ((table.num_blocks() as f64 * cfg.total_buffer_fraction).round() as usize).max(pn);
    (parts, (n_total / pn).max(1))
}

/// Worker `w`'s tuple-shuffle RNG for its `fill`-th buffer of `epoch`.
///
/// Seeding per `(worker, fill, epoch)` makes every fill a self-contained
/// task: the serial plan, the per-worker pipelines and the work-stealing
/// executor all derive the identical tuple stream regardless of which
/// thread runs which fill, or in what order.
fn fill_rng(cfg: &ParallelConfig, w: usize, fill: usize, epoch: usize) -> StdRng {
    StdRng::seed_from_u64(
        cfg.seed ^ 0x70_u64 ^ ((w as u64) << 8) ^ ((fill as u64) << 24) ^ epoch as u64,
    )
}

/// The simulated loader device for one fill. Each fill charges a fresh
/// device pass (its first block pays the seek): a fill is an independent
/// task, so its I/O cost must not depend on which fills ran before it on
/// the same OS thread.
fn fill_device(cfg: &ParallelConfig) -> SimDevice {
    SimDevice::hdd_scaled(cfg.device_scale.max(1.0), cfg.cache_bytes)
}

/// Read one buffer's worth of blocks and Fisher–Yates-shuffle the tuples —
/// the single fill code path shared by the serial and pipelined variants.
fn fill_worker_buffer(
    table: &Table,
    chunk: &[usize],
    rng: &mut StdRng,
    dev: &mut SimDevice,
) -> Vec<Tuple> {
    let mut buf: Vec<Tuple> = Vec::new();
    for &b in chunk {
        buf.extend(table.read_block(b, dev).expect("block in range"));
    }
    for i in (1..buf.len()).rev() {
        let j = rng.gen_range(0..=i);
        buf.swap(i, j);
    }
    buf
}

/// Build one epoch's multi-process plan.
pub fn parallel_epoch_plan(table: &Table, cfg: &ParallelConfig, epoch: usize) -> ParallelEpoch {
    let pn = cfg.workers;
    let (parts, n_local) = worker_block_parts(table, cfg, epoch);
    let mut worker_streams = Vec::with_capacity(pn);
    let mut io_seconds: f64 = 0.0;
    for (w, part) in parts.iter().enumerate() {
        let mut stream = Vec::new();
        let mut worker_io = 0.0f64;
        for (fill, chunk) in part.chunks(n_local).enumerate() {
            let mut rng = fill_rng(cfg, w, fill, epoch);
            let mut dev = fill_device(cfg);
            stream.extend(fill_worker_buffer(table, chunk, &mut rng, &mut dev));
            worker_io += dev.stats().io_seconds;
        }
        io_seconds = io_seconds.max(worker_io);
        worker_streams.push(stream);
    }

    // Interleave batch/PN per worker into global batches.
    let share = (cfg.batch_size / pn).max(1);
    let mut cursors = vec![0usize; pn];
    let mut merged_batches = Vec::new();
    loop {
        let mut batch = Vec::with_capacity(share * pn);
        let mut any = false;
        for w in 0..pn {
            let s = &worker_streams[w];
            let take = share.min(s.len().saturating_sub(cursors[w]));
            if take > 0 {
                batch.extend_from_slice(&s[cursors[w]..cursors[w] + take]);
                cursors[w] += take;
                any = true;
            }
        }
        if !any {
            break;
        }
        merged_batches.push(batch);
    }
    ParallelEpoch {
        worker_streams,
        merged_batches,
        io_seconds,
    }
}

/// Pipelined multi-process epoch: every worker runs its own double-buffered
/// fill pipeline — a producer thread reading and shuffling its next local
/// buffer while the main thread interleaves already-filled tuples into
/// global batches and hands them to `consume` (§5's per-process loaders,
/// overlapped with training like §6.3's write/read double buffering).
///
/// Global batch order is identical to [`parallel_epoch_plan`]'s
/// `merged_batches` for the same config and epoch: the fill code, RNG
/// streams and `batch/PN` interleave are shared, and each worker's bounded
/// channel preserves its fill order. Returns the simulated loading seconds
/// (max across workers, as they load in parallel).
pub fn parallel_epoch_pipelined<F: FnMut(Vec<Tuple>)>(
    table: &Table,
    cfg: &ParallelConfig,
    epoch: usize,
    mut consume: F,
) -> f64 {
    let pn = cfg.workers;
    let (parts, n_local) = worker_block_parts(table, cfg, epoch);
    std::thread::scope(|scope| {
        let mut rxs = Vec::with_capacity(pn);
        let mut handles = Vec::with_capacity(pn);
        for (w, part) in parts.into_iter().enumerate() {
            let (tx, rx) = mpsc::sync_channel::<Vec<Tuple>>(PIPELINE_SLOTS);
            rxs.push(rx);
            handles.push(scope.spawn(move || {
                let mut worker_io = 0.0f64;
                for (fill, chunk) in part.chunks(n_local).enumerate() {
                    let mut rng = fill_rng(cfg, w, fill, epoch);
                    let mut dev = fill_device(cfg);
                    let buf = fill_worker_buffer(table, chunk, &mut rng, &mut dev);
                    worker_io += dev.stats().io_seconds;
                    if tx.send(buf).is_err() {
                        break; // consumer hung up early
                    }
                }
                worker_io
            }));
        }

        // Interleave batch/PN per worker, pulling each worker's next buffer
        // only when its pending tuples run short (so producers keep filling
        // ahead behind the bounded channels).
        let share = (cfg.batch_size / pn).max(1);
        let mut pending: Vec<VecDeque<Tuple>> = (0..pn).map(|_| VecDeque::new()).collect();
        let mut open = vec![true; pn];
        loop {
            let mut batch = Vec::with_capacity(share * pn);
            let mut any = false;
            for w in 0..pn {
                while open[w] && pending[w].len() < share {
                    match rxs[w].recv() {
                        Ok(buf) => pending[w].extend(buf),
                        Err(_) => open[w] = false,
                    }
                }
                let take = share.min(pending[w].len());
                if take > 0 {
                    batch.extend(pending[w].drain(..take));
                    any = true;
                }
            }
            if !any {
                break;
            }
            consume(batch);
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker fill thread panicked"))
            .fold(0.0f64, f64::max)
    })
}

/// One epoch of synchronous data-parallel training with per-worker fill
/// pipelines: batches stream straight from [`parallel_epoch_pipelined`]
/// into AllReduce steps, so loading overlaps training instead of
/// materializing the whole epoch first. Bit-identical to running
/// [`train_parallel`] over [`parallel_epoch_plan`]'s `merged_batches`.
///
/// Returns `(mean pre-update loss, simulated loading seconds)`.
pub fn train_parallel_pipelined(
    model: &mut dyn Model,
    opt: &mut dyn Optimizer,
    table: &Table,
    cfg: &ParallelConfig,
    epoch: usize,
) -> (f64, f64) {
    let mut loss_sum = 0.0f64;
    let mut examples = 0usize;
    let io_seconds = parallel_epoch_pipelined(table, cfg, epoch, |batch| {
        let n = batch.len();
        let mean = train_parallel(model, opt, std::slice::from_ref(&batch), cfg.workers);
        loss_sum += mean * n as f64;
        examples += n;
    });
    (
        if examples > 0 {
            loss_sum / examples as f64
        } else {
            0.0
        },
        io_seconds,
    )
}

/// Synchronous data-parallel mini-batch step over `batches`: each batch is
/// split across `workers` real threads computing partial gradient sums
/// against a shared read-only model snapshot; the main thread averages
/// (AllReduce) and applies the optimizer step.
///
/// Returns the mean pre-update loss across the epoch.
pub fn train_parallel(
    model: &mut dyn Model,
    opt: &mut dyn Optimizer,
    batches: &[Vec<Tuple>],
    workers: usize,
) -> f64 {
    assert!(workers >= 1);
    let nparams = model.num_params();
    let mut loss_sum = 0.0f64;
    let mut examples = 0usize;
    for batch in batches {
        if batch.is_empty() {
            continue;
        }
        let chunk = batch.len().div_ceil(workers);
        let grads: Vec<(Vec<f32>, f64)> = crossbeam::thread::scope(|scope| {
            let model_ref: &dyn Model = &*model;
            let handles: Vec<_> = batch
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move |_| {
                        let mut g = vec![0.0f32; nparams];
                        let mut l = 0.0f64;
                        for t in part {
                            l += model_ref.loss(&t.features, t.label);
                            model_ref.grad(&t.features, t.label, &mut g);
                        }
                        (g, l)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("thread scope");

        // AllReduce: sum partial gradients, average over the global batch.
        let mut total = vec![0.0f32; nparams];
        for (g, l) in grads {
            for (t, gi) in total.iter_mut().zip(&g) {
                *t += gi;
            }
            loss_sum += l;
        }
        let scale = 1.0 / batch.len() as f32;
        for t in total.iter_mut() {
            *t *= scale;
        }
        opt.step(model.params_mut(), &total);
        examples += batch.len();
    }
    if examples > 0 {
        loss_sum / examples as f64
    } else {
        0.0
    }
}

// --------------------------------------------------------------------------
// Work-stealing executor
// --------------------------------------------------------------------------

type Task = Box<dyn FnOnce() + Send + 'static>;

struct ExecShared {
    /// Priority queue for AllReduce gradient chunks: always served before
    /// fills, so a batch step waiting on its partials is never stuck
    /// behind a backlog of queued block reads.
    hot: Injector<Task>,
    /// Block-granular fill tasks.
    fills: Injector<Task>,
    /// Handles onto every thread's local queue, for stealing.
    stealers: Vec<Stealer<Task>>,
    sleep: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

fn find_task(local: &TaskQueue<Task>, shared: &ExecShared) -> Option<Task> {
    loop {
        match shared.hot.steal() {
            Steal::Success(t) => return Some(t),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    if let Some(t) = local.pop() {
        return Some(t);
    }
    loop {
        match shared.fills.steal_batch_and_pop(local) {
            Steal::Success(t) => return Some(t),
            Steal::Empty => break,
            Steal::Retry => continue,
        }
    }
    for stealer in &shared.stealers {
        loop {
            match stealer.steal() {
                Steal::Success(t) => return Some(t),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

fn worker_loop(local: TaskQueue<Task>, shared: Arc<ExecShared>) {
    loop {
        match find_task(&local, &shared) {
            Some(task) => task(),
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let guard = lock(&shared.sleep);
                // Re-check under the lock so a submission between the failed
                // find and this wait cannot be missed; the timeout is a
                // belt-and-braces fallback for stolen-then-requeued work.
                if shared.hot.is_empty()
                    && shared.fills.is_empty()
                    && !shared.shutdown.load(Ordering::Acquire)
                {
                    let _ = shared.wake.wait_timeout(guard, Duration::from_millis(1));
                }
            }
        }
    }
}

struct ScopeState {
    spawned: AtomicUsize,
    completed: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A small persistent work-stealing executor: one OS thread per SGD
/// worker, crossbeam-style deques underneath ([`Injector`]s for
/// submission, per-thread [`TaskQueue`]s idle threads steal from).
///
/// Unlike the per-batch `thread::scope` of [`train_parallel`], the pool is
/// built once and reused across every batch and epoch — submission is a
/// queue push instead of a thread spawn — and a thread that finishes its
/// own work steals someone else's instead of idling at a barrier.
pub struct StealingExecutor {
    shared: Arc<ExecShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl StealingExecutor {
    /// A pool of `threads` persistent worker threads (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let locals: Vec<TaskQueue<Task>> = (0..threads).map(|_| TaskQueue::new_fifo()).collect();
        let stealers = locals.iter().map(|q| q.stealer()).collect();
        let shared = Arc::new(ExecShared {
            hot: Injector::new(),
            fills: Injector::new(),
            stealers,
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let threads = locals
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("corgi-steal-{i}"))
                    .spawn(move || worker_loop(local, shared))
                    .expect("spawn executor thread")
            })
            .collect();
        StealingExecutor { shared, threads }
    }

    /// Number of pool threads.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Run `f` with a scope whose spawned tasks may borrow from the
    /// enclosing stack frame; every task is guaranteed to have finished
    /// before `scope` returns (a panicking task re-panics here).
    pub fn scope<'env, R>(&self, f: impl FnOnce(&StealScope<'_, 'env>) -> R) -> R {
        let scope = StealScope {
            exec: self,
            state: Arc::new(ScopeState {
                spawned: AtomicUsize::new(0),
                completed: Mutex::new(0),
                done: Condvar::new(),
                panic: Mutex::new(None),
            }),
            _env: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        scope.wait_all();
        if let Some(payload) = lock(&scope.state.panic).take() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl Drop for StealingExecutor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _guard = lock(&self.shared.sleep);
            self.shared.wake.notify_all();
        }
        for handle in self.threads.drain(..) {
            handle.join().expect("executor thread panicked");
        }
    }
}

/// Scope handle for [`StealingExecutor::scope`]: spawn borrows-allowed
/// tasks onto the shared pool.
pub struct StealScope<'exec, 'env> {
    exec: &'exec StealingExecutor,
    state: Arc<ScopeState>,
    // 'env invariant: a longer-lived scope must not coerce to a
    // shorter-lived one, or tasks could capture borrows that end before
    // the pool runs them.
    _env: std::marker::PhantomData<fn(&'env ()) -> &'env ()>,
}

impl<'env> StealScope<'_, 'env> {
    /// Spawn a fill-priority task (served after any queued gradient work).
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, f: F) {
        self.submit(Box::new(f), false);
    }

    /// Spawn a priority task (gradient chunks: served before fills).
    pub fn spawn_hot<F: FnOnce() + Send + 'env>(&self, f: F) {
        self.submit(Box::new(f), true);
    }

    fn submit(&self, f: Box<dyn FnOnce() + Send + 'env>, hot: bool) {
        self.state.spawned.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                lock(&state.panic).get_or_insert(payload);
            }
            // The completion count is bumped only after the task closure —
            // and with it every borrow it captured — has been dropped.
            let mut done = lock(&state.completed);
            *done += 1;
            state.done.notify_all();
        });
        // SAFETY: `scope` blocks in `wait_all` until the completion count
        // reaches the spawn count, and the count is bumped strictly after
        // the closure (with all its captures) is dropped, so nothing
        // borrowed for 'env is reachable once `scope` returns. 'env is
        // invariant on the scope handle, preventing lifetime shortening.
        let wrapped: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(wrapped) };
        let shared = &self.exec.shared;
        if hot {
            shared.hot.push(wrapped);
        } else {
            shared.fills.push(wrapped);
        }
        let _guard = lock(&shared.sleep);
        shared.wake.notify_all();
    }

    fn wait_all(&self) {
        // No task can spawn further tasks, so once the scope closure has
        // returned the spawn count is final.
        let target = self.state.spawned.load(Ordering::SeqCst);
        loop {
            if *lock(&self.state.completed) >= target {
                return;
            }
            // Help with queued priority work instead of just parking.
            if let Steal::Success(task) = self.exec.shared.hot.steal() {
                task();
                continue;
            }
            let done = lock(&self.state.completed);
            if *done >= target {
                return;
            }
            let _ = self
                .state
                .done
                .wait_timeout(done, Duration::from_micros(200));
        }
    }
}

// --------------------------------------------------------------------------
// Stealing epoch + training
// --------------------------------------------------------------------------

/// Stream one epoch through the work-stealing executor.
///
/// Every fill — one task per (worker, buffer chunk) — is pushed onto the
/// pool as a block-granular task any idle thread can steal; the caller
/// interleaves completed fills into exactly the global batch order of
/// [`parallel_epoch_plan`] (fills carry their `(worker, fill)` index, so
/// out-of-order completion cannot reorder the stream) and hands each
/// batch to `consume`. Returns the simulated loading seconds (max across
/// workers, as §5's processes load in parallel).
pub fn parallel_epoch_stealing<F: FnMut(Vec<Tuple>)>(
    table: &Table,
    cfg: &ParallelConfig,
    epoch: usize,
    exec: &StealingExecutor,
    mut consume: F,
) -> f64 {
    let pn = cfg.workers;
    let (parts, n_local) = worker_block_parts(table, cfg, epoch);
    let fills_per_worker: Vec<usize> = parts.iter().map(|p| p.chunks(n_local).count()).collect();
    let (tx, rx) = mpsc::channel::<(usize, usize, Vec<Tuple>, f64)>();
    exec.scope(|scope| {
        for (w, part) in parts.iter().enumerate() {
            for (fill, chunk) in part.chunks(n_local).enumerate() {
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut rng = fill_rng(cfg, w, fill, epoch);
                    let mut dev = fill_device(cfg);
                    let buf = fill_worker_buffer(table, chunk, &mut rng, &mut dev);
                    let io = dev.stats().io_seconds;
                    let _ = tx.send((w, fill, buf, io));
                });
            }
        }
        drop(tx);

        // Round-robin merge, identical to the materialized plan's: batch/PN
        // tuples per worker per round, each worker's fills consumed in fill
        // order (late arrivals are stashed until their index comes up).
        let share = (cfg.batch_size / pn).max(1);
        let mut pending: Vec<VecDeque<Tuple>> = (0..pn).map(|_| VecDeque::new()).collect();
        let mut stash: Vec<BTreeMap<usize, Vec<Tuple>>> =
            (0..pn).map(|_| BTreeMap::new()).collect();
        let mut next_fill = vec![0usize; pn];
        let mut io_per_worker = vec![0.0f64; pn];
        loop {
            let mut batch = Vec::with_capacity(share * pn);
            let mut any = false;
            for w in 0..pn {
                while pending[w].len() < share && next_fill[w] < fills_per_worker[w] {
                    match stash[w].remove(&next_fill[w]) {
                        Some(buf) => {
                            pending[w].extend(buf);
                            next_fill[w] += 1;
                        }
                        None => match rx.recv() {
                            Ok((rw, rf, buf, io)) => {
                                io_per_worker[rw] += io;
                                stash[rw].insert(rf, buf);
                            }
                            // Disconnected with the needed fill missing:
                            // a fill task panicked. Stop merging; the
                            // scope re-raises the panic on exit.
                            Err(_) => break,
                        },
                    }
                }
                let take = share.min(pending[w].len());
                if take > 0 {
                    batch.extend(pending[w].drain(..take));
                    any = true;
                }
            }
            if !any {
                break;
            }
            consume(batch);
        }
        io_per_worker.iter().fold(0.0f64, |acc, &io| acc.max(io))
    })
}

/// One epoch of synchronous data-parallel training on the work-stealing
/// executor: fills stream through [`parallel_epoch_stealing`] while each
/// global batch's partial-gradient chunks run as priority tasks on the
/// same pool — idle SGD workers steal outstanding fills between batches.
///
/// Bit-identical to [`train_parallel`] over [`parallel_epoch_plan`]'s
/// `merged_batches`: the batch stream is the same, the per-batch chunking
/// is the same, and partial gradients are reduced in chunk order, so every
/// floating-point operation happens in the same sequence.
///
/// Returns `(mean pre-update loss, simulated loading seconds)`.
pub fn train_parallel_stealing(
    model: &mut dyn Model,
    opt: &mut dyn Optimizer,
    table: &Table,
    cfg: &ParallelConfig,
    epoch: usize,
    exec: &StealingExecutor,
) -> (f64, f64) {
    let workers = cfg.workers;
    let nparams = model.num_params();
    let mut loss_sum = 0.0f64;
    let mut examples = 0usize;
    let io_seconds = parallel_epoch_stealing(table, cfg, epoch, exec, |batch| {
        if batch.is_empty() {
            return;
        }
        let chunk = batch.len().div_ceil(workers);
        let nchunks = batch.len().div_ceil(chunk);
        let mut partials: Vec<Option<(Vec<f32>, f64)>> = Vec::with_capacity(nchunks);
        partials.resize_with(nchunks, || None);
        {
            let model_ref: &dyn Model = &*model;
            exec.scope(|scope| {
                for (part, slot) in batch.chunks(chunk).zip(partials.iter_mut()) {
                    scope.spawn_hot(move || {
                        let mut g = vec![0.0f32; nparams];
                        let mut l = 0.0f64;
                        for t in part {
                            l += model_ref.loss(&t.features, t.label);
                            model_ref.grad(&t.features, t.label, &mut g);
                        }
                        *slot = Some((g, l));
                    });
                }
            });
        }
        // AllReduce in chunk order — the same op sequence as the fixed
        // interleaver's join-in-spawn-order loop.
        let mut total = vec![0.0f32; nparams];
        let mut batch_loss = 0.0f64;
        for partial in partials {
            let (g, l) = partial.expect("every chunk task fills its slot");
            for (t, gi) in total.iter_mut().zip(&g) {
                *t += gi;
            }
            batch_loss += l;
        }
        let scale = 1.0 / batch.len() as f32;
        for t in total.iter_mut() {
            *t *= scale;
        }
        opt.step(model.params_mut(), &total);
        loss_sum += batch_loss;
        examples += batch.len();
    });
    (
        if examples > 0 {
            loss_sum / examples as f64
        } else {
            0.0
        },
        io_seconds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};
    use corgipile_ml::{build_model, ModelKind, Sgd};

    fn clustered(n: usize) -> Table {
        DatasetSpec::higgs_like(n)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(2 * 8192)
            .build_table(1)
            .unwrap()
    }

    #[test]
    fn plan_partitions_all_tuples_across_workers() {
        let t = clustered(800);
        let cfg = ParallelConfig {
            workers: 4,
            ..Default::default()
        };
        let plan = parallel_epoch_plan(&t, &cfg, 0);
        assert_eq!(plan.worker_streams.len(), 4);
        let mut ids: Vec<u64> = plan
            .worker_streams
            .iter()
            .flat_map(|s| s.iter().map(|t| t.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..800).collect::<Vec<_>>());
        // Merged batches cover the same multiset.
        let mut merged: Vec<u64> = plan
            .merged_batches
            .iter()
            .flat_map(|b| b.iter().map(|t| t.id))
            .collect();
        merged.sort_unstable();
        assert_eq!(merged, (0..800).collect::<Vec<_>>());
    }

    #[test]
    fn merged_batches_mix_labels_like_single_process_corgipile() {
        // The Figure-5 equivalence: global batches should mix labels about
        // as well as a single process with a PN×-sized buffer.
        let t = clustered(2000);
        let cfg = ParallelConfig {
            workers: 4,
            total_buffer_fraction: 0.2,
            batch_size: 100,
            seed: 5,
            ..Default::default()
        };
        let plan = parallel_epoch_plan(&t, &cfg, 0);
        let mut mixed = 0;
        let total = plan.merged_batches.len();
        for b in &plan.merged_batches {
            let pos = b.iter().filter(|t| t.label > 0.0).count();
            let frac = pos as f64 / b.len() as f64;
            if frac > 0.1 && frac < 0.9 {
                mixed += 1;
            }
        }
        assert!(mixed * 2 >= total, "only {mixed}/{total} batches mixed");
    }

    #[test]
    fn epochs_produce_fresh_orders() {
        let t = clustered(400);
        let cfg = ParallelConfig::default();
        let a: Vec<u64> = parallel_epoch_plan(&t, &cfg, 0)
            .merged_batches
            .concat()
            .iter()
            .map(|t| t.id)
            .collect();
        let b: Vec<u64> = parallel_epoch_plan(&t, &cfg, 1)
            .merged_batches
            .concat()
            .iter()
            .map(|t| t.id)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn train_parallel_learns_clustered_data() {
        let spec = DatasetSpec::susy_like(2000)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(8192);
        let ds = spec.build(2);
        let t = ds.to_table(1).unwrap();
        let cfg = ParallelConfig {
            workers: 4,
            total_buffer_fraction: 0.2,
            batch_size: 32,
            seed: 3,
            ..Default::default()
        };
        let mut model = build_model(&ModelKind::LogisticRegression, 18, 1);
        let mut opt = Sgd::new(0.5, 0.95);
        for e in 0..8 {
            opt.set_epoch(e);
            let plan = parallel_epoch_plan(&t, &cfg, e);
            train_parallel(model.as_mut(), &mut opt, &plan.merged_batches, 4);
        }
        let acc = corgipile_ml::accuracy(model.as_ref(), &ds.test);
        assert!(acc > 0.65, "parallel CorgiPile should learn: acc {acc}");
    }

    #[test]
    fn parallel_gradients_match_sequential_minibatch() {
        // One batch, 3 workers vs 1 worker: identical parameter updates.
        let t = clustered(300);
        let cfg = ParallelConfig {
            workers: 3,
            batch_size: 60,
            ..Default::default()
        };
        let plan = parallel_epoch_plan(&t, &cfg, 0);
        let batch = plan.merged_batches[0].clone();

        let mut m1 = build_model(&ModelKind::Svm, 28, 1);
        let mut m3 = build_model(&ModelKind::Svm, 28, 1);
        let mut o1 = Sgd::new(0.1, 1.0);
        let mut o3 = Sgd::new(0.1, 1.0);
        train_parallel(m1.as_mut(), &mut o1, std::slice::from_ref(&batch), 1);
        train_parallel(m3.as_mut(), &mut o3, std::slice::from_ref(&batch), 3);
        for (a, b) in m1.params().iter().zip(m3.params()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn pipelined_epoch_preserves_merged_batch_order() {
        // The per-worker fill pipelines must interleave into exactly the
        // batches the materialized plan produces — same ids, same grouping.
        let t = clustered(900);
        for workers in [1usize, 3, 4] {
            let cfg = ParallelConfig {
                workers,
                batch_size: 48,
                seed: 9,
                ..Default::default()
            };
            for epoch in 0..2 {
                let plan = parallel_epoch_plan(&t, &cfg, epoch);
                let mut streamed: Vec<Vec<u64>> = Vec::new();
                let io = parallel_epoch_pipelined(&t, &cfg, epoch, |batch| {
                    streamed.push(batch.iter().map(|t| t.id).collect());
                });
                let planned: Vec<Vec<u64>> = plan
                    .merged_batches
                    .iter()
                    .map(|b| b.iter().map(|t| t.id).collect())
                    .collect();
                assert_eq!(streamed, planned, "workers {workers} epoch {epoch}");
                assert!(
                    (io - plan.io_seconds).abs() < 1e-12,
                    "io accounting diverged"
                );
            }
        }
    }

    #[test]
    fn pipelined_training_is_bit_identical_to_materialized() {
        let t = clustered(600);
        let cfg = ParallelConfig {
            workers: 3,
            batch_size: 30,
            seed: 4,
            total_buffer_fraction: 0.2,
            ..Default::default()
        };
        let mut m_plan = build_model(&ModelKind::LogisticRegression, 28, 1);
        let mut m_pipe = build_model(&ModelKind::LogisticRegression, 28, 1);
        let mut o_plan = Sgd::new(0.1, 0.95);
        let mut o_pipe = Sgd::new(0.1, 0.95);
        for e in 0..3 {
            o_plan.set_epoch(e);
            o_pipe.set_epoch(e);
            let plan = parallel_epoch_plan(&t, &cfg, e);
            train_parallel(
                m_plan.as_mut(),
                &mut o_plan,
                &plan.merged_batches,
                cfg.workers,
            );
            let (loss, _) = train_parallel_pipelined(m_pipe.as_mut(), &mut o_pipe, &t, &cfg, e);
            assert!(loss.is_finite());
        }
        assert_eq!(
            m_plan.params(),
            m_pipe.params(),
            "pipelined parallel training must match the materialized plan bit-for-bit"
        );
    }

    #[test]
    fn single_worker_is_a_valid_degenerate_case() {
        let t = clustered(200);
        let cfg = ParallelConfig {
            workers: 1,
            batch_size: 32,
            ..Default::default()
        };
        let plan = parallel_epoch_plan(&t, &cfg, 0);
        assert_eq!(plan.worker_streams.len(), 1);
        let total: usize = plan.merged_batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn executor_runs_borrowed_tasks_to_completion() {
        let exec = StealingExecutor::new(4);
        assert_eq!(exec.workers(), 4);
        let mut slots = vec![0u64; 64];
        exec.scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                if i % 2 == 0 {
                    scope.spawn(move || *slot = i as u64 + 1);
                } else {
                    scope.spawn_hot(move || *slot = i as u64 + 1);
                }
            }
        });
        assert_eq!(slots, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn executor_propagates_task_panics() {
        let exec = StealingExecutor::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            exec.scope(|scope| {
                scope.spawn(|| {});
                scope.spawn(|| panic!("task boom"));
            });
        }));
        assert!(
            caught.is_err(),
            "a panicking task must re-panic at the scope"
        );
        // The pool survives a panicked task.
        let mut x = 0;
        exec.scope(|scope| scope.spawn(|| x = 7));
        assert_eq!(x, 7);
    }

    #[test]
    fn stealing_epoch_preserves_merged_batch_order() {
        let t = clustered(900);
        let exec = StealingExecutor::new(4);
        for workers in [1usize, 3, 4] {
            let cfg = ParallelConfig {
                workers,
                batch_size: 48,
                seed: 9,
                ..Default::default()
            };
            for epoch in 0..2 {
                let plan = parallel_epoch_plan(&t, &cfg, epoch);
                let mut streamed: Vec<Vec<u64>> = Vec::new();
                let io = parallel_epoch_stealing(&t, &cfg, epoch, &exec, |batch| {
                    streamed.push(batch.iter().map(|t| t.id).collect());
                });
                let planned: Vec<Vec<u64>> = plan
                    .merged_batches
                    .iter()
                    .map(|b| b.iter().map(|t| t.id).collect())
                    .collect();
                assert_eq!(streamed, planned, "workers {workers} epoch {epoch}");
                assert!(
                    (io - plan.io_seconds).abs() < 1e-12,
                    "io accounting diverged"
                );
            }
        }
    }

    #[test]
    fn stealing_training_is_bit_identical_to_the_interleaver() {
        // The trainer-layer bit-identity assertion: the work-stealing path
        // must reproduce the fixed round-robin merge exactly.
        let t = clustered(600);
        for workers in [1usize, 3, 4] {
            let cfg = ParallelConfig {
                workers,
                batch_size: 30,
                seed: 4,
                total_buffer_fraction: 0.2,
                ..Default::default()
            };
            let exec = StealingExecutor::new(workers);
            let mut m_plan = build_model(&ModelKind::LogisticRegression, 28, 1);
            let mut m_steal = build_model(&ModelKind::LogisticRegression, 28, 1);
            let mut o_plan = Sgd::new(0.1, 0.95);
            let mut o_steal = Sgd::new(0.1, 0.95);
            for e in 0..3 {
                o_plan.set_epoch(e);
                o_steal.set_epoch(e);
                let plan = parallel_epoch_plan(&t, &cfg, e);
                train_parallel(m_plan.as_mut(), &mut o_plan, &plan.merged_batches, workers);
                let (loss, io) =
                    train_parallel_stealing(m_steal.as_mut(), &mut o_steal, &t, &cfg, e, &exec);
                assert!(loss.is_finite());
                assert!((io - plan.io_seconds).abs() < 1e-12);
            }
            assert_eq!(
                m_plan.params(),
                m_steal.params(),
                "work-stealing training must match the interleaver bit-for-bit \
                 (workers {workers})"
            );
        }
    }

    #[test]
    fn stealing_pool_size_does_not_affect_the_model() {
        // Determinism must not depend on how many OS threads execute the
        // tasks — only on the (worker, fill, epoch) decomposition.
        let t = clustered(500);
        let cfg = ParallelConfig {
            workers: 4,
            batch_size: 40,
            seed: 11,
            total_buffer_fraction: 0.25,
            ..Default::default()
        };
        let run = |threads: usize| {
            let exec = StealingExecutor::new(threads);
            let mut m = build_model(&ModelKind::Svm, 28, 1);
            let mut o = Sgd::new(0.1, 0.95);
            for e in 0..2 {
                o.set_epoch(e);
                train_parallel_stealing(m.as_mut(), &mut o, &t, &cfg, e, &exec);
            }
            m.params().to_vec()
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(4), run(8));
    }
}
