//! The §4.2 convergence analysis, made executable.
//!
//! * [`block_variance_factor`] estimates the paper's `h_D` — the
//!   block-wise gradient-variance inflation factor. `h_D ≈ 1` for fully
//!   shuffled storage (each block looks like the whole data set) and
//!   `h_D ≈ b` for perfectly clustered storage (each block is homogeneous).
//! * [`CorgiFactors`] computes α = (n−1)/(N−1), β, γ from Theorem 1.
//! * [`Theorem1Bound`] evaluates the strongly-convex rate
//!   `(1−α)·h_D·σ²/T + β/T² + γ·m³/T³` (up to the paper's absorbed
//!   constants) and [`Theorem2Bound`] the non-convex analogue.

use corgipile_ml::Model;
use corgipile_storage::Table;

/// Per-tuple and per-block gradient statistics at a model state.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientStats {
    /// σ²: mean squared deviation of per-tuple gradients from the full
    /// gradient (Assumption 1.5).
    pub sigma_sq: f64,
    /// h_D: block-variance inflation factor.
    pub h_d: f64,
    /// Mean tuples per block (`b`).
    pub b: f64,
    /// Number of blocks (`N`).
    pub big_n: usize,
    /// Number of tuples (`m`).
    pub m: usize,
}

/// Estimate `h_D` and σ² for `table` at the current state of `model`.
///
/// Definitions (§4.2):
/// `σ² = (1/m) Σ_i ‖∇f_i − ∇F‖²` and
/// `(1/N) Σ_l ‖∇f_{B_l} − ∇F‖² ≤ h_D σ²/b`, where `∇f_{B_l}` averages the
/// gradients of block `l`'s tuples. We return the tight value of `h_D`
/// (the left side divided by `σ²/b`).
pub fn block_variance_factor(table: &Table, model: &dyn Model) -> GradientStats {
    let p = model.num_params();
    let m = table.num_tuples() as usize;
    let big_n = table.num_blocks();
    assert!(m > 0 && big_n > 0, "need a non-empty table");

    // Full gradient.
    let mut full = vec![0.0f64; p];
    let mut per_block_means: Vec<Vec<f64>> = Vec::with_capacity(big_n);
    let mut per_tuple_sq_dev_accum = Vec::new(); // gradient snapshots deferred below

    // First pass: block sums and full sum.
    for blk in 0..big_n {
        let tuples = table.block_tuples(blk).expect("in range");
        let mut bsum = vec![0.0f64; p];
        for t in &tuples {
            let mut g = vec![0.0f32; p];
            model.grad(&t.features, t.label, &mut g);
            for (acc, gi) in bsum.iter_mut().zip(&g) {
                *acc += *gi as f64;
            }
            per_tuple_sq_dev_accum.push(g);
        }
        for (f, bi) in full.iter_mut().zip(&bsum) {
            *f += bi;
        }
        let cnt = tuples.len().max(1) as f64;
        per_block_means.push(bsum.into_iter().map(|v| v / cnt).collect());
    }
    for f in full.iter_mut() {
        *f /= m as f64;
    }

    // σ²: mean squared deviation of tuple gradients.
    let mut sigma_sq = 0.0f64;
    for g in &per_tuple_sq_dev_accum {
        let mut d = 0.0f64;
        for (gi, fi) in g.iter().zip(&full) {
            let diff = *gi as f64 - fi;
            d += diff * diff;
        }
        sigma_sq += d;
    }
    sigma_sq /= m as f64;

    // Block-level variance.
    let mut block_var = 0.0f64;
    for bm in &per_block_means {
        let mut d = 0.0f64;
        for (bi, fi) in bm.iter().zip(&full) {
            let diff = bi - fi;
            d += diff * diff;
        }
        block_var += d;
    }
    block_var /= big_n as f64;

    let b = m as f64 / big_n as f64;
    let h_d = if sigma_sq > 1e-18 {
        block_var * b / sigma_sq
    } else {
        1.0
    };
    GradientStats {
        sigma_sq,
        h_d,
        b,
        big_n,
        m,
    }
}

/// The α/β/γ factors of Theorem 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorgiFactors {
    /// α = (n−1)/(N−1): buffer coverage of the block population.
    pub alpha: f64,
    /// β = α² + (1−α)²(b−1)².
    pub beta: f64,
    /// γ = n³/N³.
    pub gamma: f64,
}

impl CorgiFactors {
    /// Compute the factors for buffer size `n` of `big_n` blocks of `b`
    /// tuples each.
    pub fn new(n: usize, big_n: usize, b: f64) -> Self {
        assert!(big_n >= 2, "Theorem 1 assumes N ≥ 2");
        assert!(n >= 1 && n <= big_n, "need 1 ≤ n ≤ N");
        let alpha = (n as f64 - 1.0) / (big_n as f64 - 1.0);
        let beta = alpha * alpha + (1.0 - alpha) * (1.0 - alpha) * (b - 1.0) * (b - 1.0);
        let gamma = (n as f64 / big_n as f64).powi(3);
        CorgiFactors { alpha, beta, gamma }
    }
}

/// The strongly-convex convergence bound of Theorem 1 (constants absorbed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Theorem1Bound {
    /// α/β/γ.
    pub factors: CorgiFactors,
    /// Block variance factor.
    pub h_d: f64,
    /// Tuple gradient variance.
    pub sigma_sq: f64,
    /// Total tuples.
    pub m: usize,
}

impl Theorem1Bound {
    /// Assemble a bound from measured statistics.
    pub fn new(stats: &GradientStats, n: usize) -> Self {
        Theorem1Bound {
            factors: CorgiFactors::new(n, stats.big_n, stats.b),
            h_d: stats.h_d,
            sigma_sq: stats.sigma_sq,
            m: stats.m,
        }
    }

    /// Evaluate the bound at `t` total samples:
    /// `(1−α)·h_D·σ²/T + β/T² + γ·m³/T³`.
    pub fn at(&self, t: f64) -> f64 {
        assert!(t > 0.0);
        let CorgiFactors { alpha, beta, gamma } = self.factors;
        (1.0 - alpha) * self.h_d * self.sigma_sq / t
            + beta / (t * t)
            + gamma * (self.m as f64).powi(3) / (t * t * t)
    }

    /// The leading (1/T) coefficient — what buffer growth shrinks.
    pub fn leading_coefficient(&self) -> f64 {
        (1.0 - self.factors.alpha) * self.h_d * self.sigma_sq
    }
}

/// The non-convex rate of Theorem 2 (case α ≤ (N−2)/(N−1); constants
/// absorbed): `√((1−α)·h_D)·σ/√T + β′/T + γ′·m³/T^{3/2}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Theorem2Bound {
    /// α/β/γ as defined in Theorem 2 (β/γ recomputed internally).
    pub factors: CorgiFactors,
    /// Block variance factor.
    pub h_d: f64,
    /// Tuple gradient variance.
    pub sigma_sq: f64,
    /// Tuples per block.
    pub b: f64,
    /// Blocks.
    pub big_n: usize,
    /// Total tuples.
    pub m: usize,
}

impl Theorem2Bound {
    /// Assemble from measured statistics.
    pub fn new(stats: &GradientStats, n: usize) -> Self {
        Theorem2Bound {
            factors: CorgiFactors::new(n, stats.big_n, stats.b),
            h_d: stats.h_d,
            sigma_sq: stats.sigma_sq,
            b: stats.b,
            big_n: stats.big_n,
            m: stats.m,
        }
    }

    /// Evaluate the gradient-norm bound at `t` total samples.
    pub fn at(&self, t: f64) -> f64 {
        assert!(t > 0.0);
        let alpha = self.factors.alpha;
        let hs = self.h_d * self.sigma_sq;
        if hs <= 1e-18 {
            return 0.0;
        }
        let beta = alpha * alpha / ((1.0 - alpha).max(1e-12) * hs)
            + (1.0 - alpha) * (self.b - 1.0) * (self.b - 1.0) / hs;
        let gamma = (self.factors.gamma / (1.0 - alpha).max(1e-12)) * (self.m as f64).powi(3);
        ((1.0 - alpha) * hs).sqrt() / t.sqrt() + beta / t + gamma / t.powf(1.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};
    use corgipile_ml::{build_model, ModelKind};
    use proptest::prelude::*;

    fn table(order: Order, n: usize) -> Table {
        DatasetSpec::higgs_like(n)
            .with_order(order)
            .with_block_bytes(2 * 8192)
            .build_table(3)
            .unwrap()
    }

    #[test]
    fn h_d_large_for_clustered_small_for_shuffled() {
        // Evaluate gradients at a non-trivial model state (at w = 0 the
        // logistic feature-gradient means coincide across labels and only
        // the bias separates the blocks).
        let mut model = build_model(&ModelKind::LogisticRegression, 28, 1);
        for (i, p) in model.params_mut().iter_mut().enumerate() {
            *p = 0.2 * ((i as f32 * 0.37).sin());
        }
        let clustered =
            block_variance_factor(&table(Order::ClusteredByLabel, 1200), model.as_ref());
        let shuffled = block_variance_factor(&table(Order::Shuffled, 1200), model.as_ref());
        assert!(
            clustered.h_d > 5.0 * shuffled.h_d,
            "clustered h_D {} should dwarf shuffled h_D {}",
            clustered.h_d,
            shuffled.h_d
        );
        // Shuffled h_D hovers near 1 (sampling noise allows some slack).
        assert!(shuffled.h_d < 3.0, "shuffled h_D {}", shuffled.h_d);
        // h_D can never exceed b by definition... (it is bounded by b when
        // gradients are bounded; allow slack for the empirical estimate).
        assert!(
            clustered.h_d <= clustered.b * 1.5,
            "h_D {} vs b {}",
            clustered.h_d,
            clustered.b
        );
        assert!(clustered.sigma_sq > 0.0);
    }

    #[test]
    fn alpha_spans_zero_to_one() {
        let f0 = CorgiFactors::new(1, 10, 5.0);
        assert_eq!(f0.alpha, 0.0);
        let f1 = CorgiFactors::new(10, 10, 5.0);
        assert_eq!(f1.alpha, 1.0);
        assert!(f1.beta <= 1.0 + 1e-12, "β = α² at full buffer");
        assert_eq!(f1.gamma, 1.0);
    }

    #[test]
    fn full_buffer_kills_the_leading_term() {
        // α = 1 ⇒ the 1/T term vanishes: CorgiPile degenerates to
        // full-shuffle SGD's O(1/T² + m³/T³) (the paper's tightness remark).
        let stats = GradientStats {
            sigma_sq: 2.0,
            h_d: 40.0,
            b: 50.0,
            big_n: 20,
            m: 1000,
        };
        let bound = Theorem1Bound::new(&stats, 20);
        assert_eq!(bound.leading_coefficient(), 0.0);
        let b_small = Theorem1Bound::new(&stats, 2);
        assert!(b_small.leading_coefficient() > 0.0);
    }

    #[test]
    fn bound_decreases_with_buffer_size_and_iterations() {
        let stats = GradientStats {
            sigma_sq: 1.0,
            h_d: 30.0,
            b: 50.0,
            big_n: 40,
            m: 2000,
        };
        let t = 1e6;
        let mut last = f64::INFINITY;
        for n in [2usize, 4, 8, 16, 32, 40] {
            let v = Theorem1Bound::new(&stats, n).at(t);
            assert!(
                v <= last + 1e-15,
                "bound not monotone in n at n={n}: {v} > {last}"
            );
            last = v;
        }
        let b = Theorem1Bound::new(&stats, 4);
        assert!(b.at(1e7) < b.at(1e5), "bound must shrink with T");
    }

    #[test]
    fn theorem2_bound_behaves() {
        let stats = GradientStats {
            sigma_sq: 1.0,
            h_d: 30.0,
            b: 50.0,
            big_n: 40,
            m: 2000,
        };
        let b = Theorem2Bound::new(&stats, 4);
        assert!(b.at(1e8) < b.at(1e4));
        let bigger_buffer = Theorem2Bound::new(&stats, 32);
        // Leading √((1−α) h_D σ²) term shrinks with n.
        assert!(bigger_buffer.at(1e10) < b.at(1e10));
    }

    #[test]
    #[should_panic(expected = "N ≥ 2")]
    fn single_block_rejected() {
        CorgiFactors::new(1, 1, 5.0);
    }

    proptest! {
        #[test]
        fn prop_factors_in_valid_ranges(n in 1usize..50, extra in 1usize..50, b in 1.0f64..200.0) {
            let big_n = n + extra; // ensures n < N and N ≥ 2
            let f = CorgiFactors::new(n, big_n, b);
            prop_assert!((0.0..=1.0).contains(&f.alpha));
            prop_assert!(f.beta >= 0.0);
            prop_assert!((0.0..=1.0).contains(&f.gamma));
        }

        #[test]
        fn prop_bound_nonnegative(n in 2usize..20, t in 1.0f64..1e9) {
            let stats = GradientStats { sigma_sq: 0.5, h_d: 10.0, b: 20.0, big_n: 20, m: 400 };
            prop_assert!(Theorem1Bound::new(&stats, n).at(t) >= 0.0);
            prop_assert!(Theorem2Bound::new(&stats, n).at(t) >= 0.0);
        }
    }
}
