//! Property-based tests for the trainer over randomized configurations.

#![cfg(test)]

use crate::config::CorgiPileConfig;
use crate::trainer::{Trainer, TrainerConfig};
use corgipile_data::{DatasetSpec, Order};
use corgipile_ml::{ModelKind, OptimizerKind};
use corgipile_shuffle::StrategyKind;
use corgipile_storage::SimDevice;
use proptest::prelude::*;

fn tiny_table(n: usize, seed: u64) -> (corgipile_storage::Table, Vec<corgipile_storage::Tuple>) {
    let ds = DatasetSpec::susy_like(n)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8192)
        .build(seed);
    (ds.to_table(1).unwrap(), ds.test)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any strategy × batch size × buffer fraction produces a well-formed
    /// report: monotone cumulative time, full-coverage epochs, finite loss.
    #[test]
    fn prop_trainer_reports_are_well_formed(
        strategy_idx in 0usize..10,
        batch in prop_oneof![Just(1usize), Just(32), Just(100)],
        frac_pct in 5u32..40,
        seed in any::<u64>(),
    ) {
        let strategy = StrategyKind::all()[strategy_idx];
        let (table, test) = tiny_table(600, 50);
        let cfg = TrainerConfig::new(ModelKind::LogisticRegression, 2)
            .with_strategy(strategy)
            .with_batch_size(batch)
            .with_optimizer(OptimizerKind::Sgd { lr0: 0.02, decay: 0.9 })
            .with_corgipile(
                CorgiPileConfig::default().with_buffer_fraction(frac_pct as f64 / 100.0),
            );
        let mut dev = SimDevice::hdd_scaled(1280.0, 0);
        let r = Trainer::new(cfg).train_with_test(&table, &test, &mut dev, seed).unwrap();
        prop_assert_eq!(r.epochs.len(), 2);
        let mut last = 0.0f64;
        for e in &r.epochs {
            prop_assert!(e.sim_seconds_end > last);
            last = e.sim_seconds_end;
            prop_assert!(e.train_loss.is_finite() && e.train_loss >= 0.0);
            prop_assert!(e.epoch_seconds <= e.io_seconds + e.compute_seconds + 1e-12);
            prop_assert!((0.0..=1.0).contains(&e.test_metric.unwrap()));
        }
        prop_assert!((0.0..=1.0).contains(&r.final_train_metric));
    }

    /// Same seed ⇒ bit-identical training trajectory, for every strategy.
    #[test]
    fn prop_training_is_seed_deterministic(strategy_idx in 0usize..10, seed in any::<u64>()) {
        let strategy = StrategyKind::all()[strategy_idx];
        let (table, test) = tiny_table(400, 51);
        let run = || {
            let cfg = TrainerConfig::new(ModelKind::Svm, 2)
                .with_strategy(strategy)
                .with_optimizer(OptimizerKind::Sgd { lr0: 0.02, decay: 0.9 });
            let mut dev = SimDevice::hdd_scaled(1280.0, 0);
            let r = Trainer::new(cfg).train_with_test(&table, &test, &mut dev, seed).unwrap();
            (r.model.params().to_vec(), r.total_sim_seconds())
        };
        let (p1, t1) = run();
        let (p2, t2) = run();
        prop_assert_eq!(p1, p2);
        prop_assert_eq!(t1, t2);
    }
}
