//! # corgipile-core
//!
//! The CorgiPile system layer: everything between the shuffle strategies
//! and the applications.
//!
//! * [`config`] — [`CorgiPileConfig`]: buffer fraction, block sampling
//!   mode, double buffering.
//! * [`dataset`] — [`CorgiPileDataset`]: the PyTorch-style
//!   `Dataset`/`DataLoader` API of §5 (block index + per-epoch shuffled
//!   iterator).
//! * [`loader`] — a real threaded double-buffered loader (§6.3's
//!   optimization, with actual threads and crossbeam channels).
//! * [`parallel`] — multi-process CorgiPile (§5.1): per-worker block
//!   partitions, per-worker buffers, and AllReduce-style gradient
//!   averaging; plus the data-order equivalence tooling behind Figure 5
//!   and the work-stealing executor that runs block-granular fill tasks
//!   and gradient chunks on one persistent thread pool.
//! * [`trainer`] — the end-to-end [`Trainer`]: strategy × model × optimizer
//!   × device, producing per-epoch convergence/time records (the raw
//!   material of every figure).
//! * [`theory`] — the §4.2 convergence analysis: the block-variance factor
//!   `h_D`, the α/β/γ factors, and the Theorem 1/2 bounds.
//!
//! [`CorgiPileConfig`]: config::CorgiPileConfig
//! [`CorgiPileDataset`]: dataset::CorgiPileDataset
//! [`Trainer`]: trainer::Trainer

pub mod config;
pub mod dataset;
pub mod loader;
pub mod parallel;
mod proptests;
pub mod theory;
pub mod trainer;

pub use config::CorgiPileConfig;
pub use dataset::CorgiPileDataset;
pub use loader::{LoaderError, ThreadedLoader};
pub use parallel::{
    parallel_epoch_pipelined, parallel_epoch_plan, parallel_epoch_stealing, train_parallel,
    train_parallel_pipelined, train_parallel_stealing, ParallelConfig, StealScope,
    StealingExecutor,
};
pub use theory::{block_variance_factor, CorgiFactors, Theorem1Bound};
pub use trainer::{EpochRecord, EpochSink, TrainReport, Trainer, TrainerConfig};
