//! CorgiPile configuration.

use corgipile_shuffle::{BlockSampleMode, StrategyParams};

/// Configuration of the CorgiPile pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct CorgiPileConfig {
    /// Buffer size as a fraction of the data set (paper default 10 %).
    pub buffer_fraction: f64,
    /// Whether each epoch covers all blocks (system behaviour) or samples
    /// `n` blocks (Algorithm 1).
    pub sample_mode: BlockSampleMode,
    /// Whether the TupleShuffle stage uses the double-buffering
    /// optimization of §6.3.
    pub double_buffer: bool,
    /// RNG seed for block/tuple shuffling.
    pub seed: u64,
}

impl Default for CorgiPileConfig {
    fn default() -> Self {
        CorgiPileConfig {
            buffer_fraction: 0.10,
            sample_mode: BlockSampleMode::FullCoverage,
            double_buffer: true,
            seed: 0xC0491,
        }
    }
}

impl CorgiPileConfig {
    /// Override the buffer fraction.
    pub fn with_buffer_fraction(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "buffer fraction must be in (0, 1]");
        self.buffer_fraction = f;
        self
    }

    /// Override the sampling mode.
    pub fn with_sample_mode(mut self, mode: BlockSampleMode) -> Self {
        self.sample_mode = mode;
        self
    }

    /// Enable/disable double buffering.
    pub fn with_double_buffer(mut self, on: bool) -> Self {
        self.double_buffer = on;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Convert to the shuffle-layer parameter block.
    pub fn strategy_params(&self) -> StrategyParams {
        StrategyParams::default()
            .with_buffer_fraction(self.buffer_fraction)
            .with_seed(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CorgiPileConfig::default();
        assert_eq!(c.buffer_fraction, 0.10);
        assert_eq!(c.sample_mode, BlockSampleMode::FullCoverage);
        assert!(c.double_buffer);
    }

    #[test]
    fn builders_chain() {
        let c = CorgiPileConfig::default()
            .with_buffer_fraction(0.02)
            .with_double_buffer(false)
            .with_seed(9)
            .with_sample_mode(BlockSampleMode::SampleN);
        assert_eq!(c.buffer_fraction, 0.02);
        assert!(!c.double_buffer);
        assert_eq!(c.seed, 9);
        assert_eq!(c.sample_mode, BlockSampleMode::SampleN);
        let p = c.strategy_params();
        assert_eq!(p.buffer_fraction, 0.02);
        assert_eq!(p.seed, 9);
    }

    #[test]
    #[should_panic(expected = "buffer fraction")]
    fn invalid_fraction_rejected() {
        CorgiPileConfig::default().with_buffer_fraction(1.5);
    }
}
