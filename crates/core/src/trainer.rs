//! The end-to-end trainer: strategy × model × optimizer × device.
//!
//! [`Trainer::train`] runs `epochs` passes of a [`ShuffleStrategy`] over a
//! heap table, feeding the stream to per-tuple or mini-batch SGD while
//! accounting simulated time:
//!
//! * **I/O time** comes from the strategy's segment costs (device cost
//!   model);
//! * **compute time** comes from the model's FLOP estimate × the
//!   [`ComputeCostModel`];
//! * the two are combined with the single- or double-buffer pipeline model
//!   of §6.3 (double buffering overlaps loading with SGD).
//!
//! The per-epoch records ([`EpochRecord`]) carry cumulative simulated time,
//! train loss, and test metric — exactly the data plotted in the paper's
//! convergence/time figures.

use corgipile_ml::{
    accuracy, build_model, mean_loss, r_squared, train_minibatch, train_per_tuple,
    ComputeCostModel, EpochStats, MinibatchTrainer, Model, ModelKind, OptimizerKind,
    TrainCheckpoint, TrainOptions,
};
use corgipile_shuffle::{build_strategy, Segment, ShuffleStrategy, StrategyKind, StrategyParams};
use corgipile_storage::{
    run_epoch_pipeline, DoubleBufferModel, PipelineError, SimDevice, StorageError, Table, Tuple,
};

use std::path::Path;

use crate::config::CorgiPileConfig;

/// Full configuration of a training run.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Model to train.
    pub model: ModelKind,
    /// Number of epochs.
    pub epochs: usize,
    /// Shuffle strategy.
    pub strategy: StrategyKind,
    /// CorgiPile-specific knobs (buffer fraction, sampling, double buffer).
    pub corgipile: CorgiPileConfig,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Batch size / clipping.
    pub train_options: TrainOptions,
    /// Compute cost model for the simulated clock.
    pub compute: ComputeCostModel,
}

impl TrainerConfig {
    /// A config with the paper's defaults: CorgiPile strategy, per-tuple
    /// SGD at lr 0.1 with 0.95 decay, in-DB compute costs.
    pub fn new(model: ModelKind, epochs: usize) -> Self {
        TrainerConfig {
            model,
            epochs,
            strategy: StrategyKind::CorgiPile,
            corgipile: CorgiPileConfig::default(),
            optimizer: OptimizerKind::default_sgd(0.1),
            train_options: TrainOptions::default(),
            compute: ComputeCostModel::in_db_core(),
        }
    }

    /// Override the strategy.
    pub fn with_strategy(mut self, s: StrategyKind) -> Self {
        self.strategy = s;
        self
    }

    /// Override the CorgiPile config (also sets buffer fraction/seed for
    /// the buffered baselines).
    pub fn with_corgipile(mut self, c: CorgiPileConfig) -> Self {
        self.corgipile = c;
        self
    }

    /// Override the optimizer.
    pub fn with_optimizer(mut self, o: OptimizerKind) -> Self {
        self.optimizer = o;
        self
    }

    /// Set the mini-batch size (1 = per-tuple SGD).
    pub fn with_batch_size(mut self, b: usize) -> Self {
        self.train_options.batch_size = b;
        self
    }

    /// Set gradient clipping.
    pub fn with_clip_norm(mut self, c: f32) -> Self {
        self.train_options.clip_norm = c;
        self
    }

    /// Override the compute cost model.
    pub fn with_compute(mut self, c: ComputeCostModel) -> Self {
        self.compute = c;
        self
    }

    fn strategy_params(&self, seed: u64) -> StrategyParams {
        self.corgipile.strategy_params().with_seed(seed)
    }
}

/// One epoch's measurements.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// One-off setup cost charged this epoch (offline shuffles).
    pub setup_seconds: f64,
    /// Loading-side simulated seconds this epoch.
    pub io_seconds: f64,
    /// Compute-side simulated seconds this epoch.
    pub compute_seconds: f64,
    /// Pipelined epoch duration (after single-/double-buffer overlap).
    pub epoch_seconds: f64,
    /// Cumulative simulated time at the *end* of this epoch.
    pub sim_seconds_end: f64,
    /// Mean training loss over the epoch stream (pre-update).
    pub train_loss: f64,
    /// Test metric at epoch end: accuracy for classifiers, R² for
    /// regression. `None` when no test set was supplied.
    pub test_metric: Option<f64>,
}

/// The result of a training run.
pub struct TrainReport {
    /// Strategy used.
    pub strategy: StrategyKind,
    /// Model kind trained.
    pub model_kind: ModelKind,
    /// Per-epoch records.
    pub epochs: Vec<EpochRecord>,
    /// The trained model.
    pub model: Box<dyn Model>,
    /// Final accuracy (classifiers) or R² (regression) on the train table.
    pub final_train_metric: f64,
    /// Wall-clock seconds actually spent.
    pub wall_seconds: f64,
}

impl std::fmt::Debug for TrainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainReport")
            .field("strategy", &self.strategy)
            .field("model_kind", &self.model_kind)
            .field("epochs", &self.epochs.len())
            .field("final_train_metric", &self.final_train_metric)
            .field("wall_seconds", &self.wall_seconds)
            .finish_non_exhaustive()
    }
}

impl TrainReport {
    /// Total simulated seconds (setup + all epochs).
    pub fn total_sim_seconds(&self) -> f64 {
        self.epochs.last().map(|e| e.sim_seconds_end).unwrap_or(0.0)
    }

    /// Final training accuracy (alias of the final train metric for
    /// classifiers).
    pub fn final_train_accuracy(&self) -> f64 {
        self.final_train_metric
    }

    /// Final test metric, if a test set was supplied.
    pub fn final_test_metric(&self) -> Option<f64> {
        self.epochs.last().and_then(|e| e.test_metric)
    }

    /// First epoch (0-based) whose test metric reaches `target`, with the
    /// cumulative simulated time at that point.
    pub fn time_to_metric(&self, target: f64) -> Option<(usize, f64)> {
        self.epochs
            .iter()
            .find(|e| e.test_metric.map(|m| m >= target).unwrap_or(false))
            .map(|e| (e.epoch, e.sim_seconds_end))
    }
}

/// Per-epoch checkpoint sink: receives the freshly-built
/// [`TrainCheckpoint`] and the epoch's mean training loss; an `Err`
/// aborts the run at that epoch boundary.
pub type EpochSink<'a> = &'a mut dyn FnMut(&TrainCheckpoint, f64) -> corgipile_storage::Result<()>;

/// Runs training jobs described by a [`TrainerConfig`].
#[derive(Debug, Clone)]
pub struct Trainer {
    cfg: TrainerConfig,
}

impl Trainer {
    /// Create a trainer.
    pub fn new(cfg: TrainerConfig) -> Self {
        Trainer { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Train on `table` with no test set.
    pub fn train(
        &self,
        table: &Table,
        dev: &mut SimDevice,
        seed: u64,
    ) -> corgipile_storage::Result<TrainReport> {
        self.train_with_test(table, &[], dev, seed)
    }

    /// Train on `table`, evaluating on `test` after each epoch.
    pub fn train_with_test(
        &self,
        table: &Table,
        test: &[Tuple],
        dev: &mut SimDevice,
        seed: u64,
    ) -> corgipile_storage::Result<TrainReport> {
        self.train_resumable(table, test, dev, seed, None, None)
    }

    /// [`Trainer::train_with_test`] with epoch-granular checkpoint/resume.
    ///
    /// When `checkpoint_path` is set, a [`TrainCheckpoint`] is written
    /// atomically after every epoch. When `resume` is set, epochs
    /// `0..resume.epoch_next` are *replayed* rather than re-trained: the
    /// strategy's per-epoch RNG draws depend only on the seed and the table
    /// shape, so driving it against a scratch in-memory device lands every
    /// internal stream exactly where the checkpointed run left it, after
    /// which the saved model parameters, optimizer state and simulated
    /// clock are restored. A killed run resumed this way produces a
    /// **bit-identical** final model to an uninterrupted one.
    ///
    /// The returned report covers only the epochs actually executed here
    /// (`resume.epoch_next..epochs`); `sim_seconds_end` stays cumulative
    /// across the resume because the clock is restored from the checkpoint.
    pub fn train_resumable(
        &self,
        table: &Table,
        test: &[Tuple],
        dev: &mut SimDevice,
        seed: u64,
        resume: Option<&TrainCheckpoint>,
        checkpoint_path: Option<&Path>,
    ) -> corgipile_storage::Result<TrainReport> {
        self.train_resumable_sink(table, test, dev, seed, resume, checkpoint_path, None)
    }

    /// [`Trainer::train_resumable`] with a per-epoch checkpoint sink,
    /// mirroring the in-DB `SGD` operator's: `sink` receives the
    /// freshly-built [`TrainCheckpoint`] and the epoch's mean training loss
    /// after every epoch (alongside any `checkpoint_path` file write). An
    /// `Err` from the sink aborts the run at that epoch boundary — the
    /// library-layer hook for WAL-backed durable stores.
    #[allow(clippy::too_many_arguments)]
    pub fn train_resumable_sink(
        &self,
        table: &Table,
        test: &[Tuple],
        dev: &mut SimDevice,
        seed: u64,
        resume: Option<&TrainCheckpoint>,
        checkpoint_path: Option<&Path>,
        mut sink: Option<EpochSink<'_>>,
    ) -> corgipile_storage::Result<TrainReport> {
        if table.num_tuples() == 0 {
            return Err(corgipile_storage::StorageError::EmptyTable);
        }
        let wall_start = std::time::Instant::now();
        let dim = infer_dim(table)?;
        let mut model = build_model(&self.cfg.model, dim, seed);
        let mut optimizer = self.cfg.optimizer.build();
        let mut strategy: Box<dyn ShuffleStrategy> =
            build_strategy(self.cfg.strategy, self.cfg.strategy_params(seed));

        let mut sim_clock = 0.0f64;
        let mut start_epoch = 0usize;
        if let Some(ck) = resume {
            if ck.seed != seed {
                return Err(StorageError::Corrupt(format!(
                    "checkpoint was taken under seed {}, cannot resume under seed {}",
                    ck.seed, seed
                )));
            }
            if ck.model_params.len() != model.params().len() {
                return Err(StorageError::Corrupt(format!(
                    "checkpoint carries {} model parameters, this run expects {}",
                    ck.model_params.len(),
                    model.params().len()
                )));
            }
            start_epoch = ck.epoch_next.min(self.cfg.epochs);
            let mut scratch = SimDevice::in_memory();
            for _ in 0..start_epoch {
                let _ = strategy.next_epoch(table, &mut scratch);
            }
            model.params_mut().copy_from_slice(&ck.model_params);
            if !optimizer.load_state(&ck.optimizer_state) {
                return Err(StorageError::Corrupt(
                    "checkpoint optimizer state does not match this optimizer".into(),
                ));
            }
            sim_clock = ck.sim_clock;
        }

        // Observability: per-epoch events + counters through the device's
        // telemetry handle (no-ops when the handle is disabled).
        let tel = dev.telemetry().clone();
        let tuple_counter = tel.counter("core.trainer.tuples");
        let epoch_counter = tel.counter("core.trainer.epochs");

        let per_tuple_mode = self.cfg.train_options.batch_size <= 1
            && matches!(
                self.cfg.optimizer,
                OptimizerKind::Sgd { .. } | OptimizerKind::SgdInverseTime { .. }
            );

        let mut records = Vec::with_capacity(self.cfg.epochs - start_epoch);
        for epoch in start_epoch..self.cfg.epochs {
            optimizer.set_epoch(epoch);

            // Per-segment loading/compute costs for the pipeline model.
            let mut io = Vec::new();
            let mut compute = Vec::new();
            let (setup_seconds, stats) = if self.cfg.corgipile.double_buffer {
                // Double-buffered path: a producer thread streams buffer
                // fills (strategy + device mutably borrowed into it for the
                // epoch) while this thread trains on the previous fill. The
                // producer emits exactly `next_epoch`'s segments in order,
                // so the visit order — and therefore the final model — is
                // bit-identical to the serial path below.
                let mut setup_seconds = 0.0f64;
                let mut loss_sum = 0.0f64;
                let mut examples = 0usize;
                let mut updates = 0usize;
                // Mini-batches span buffer fills, exactly as a DataLoader's
                // batches span the loader's internal buffers: the
                // accumulator carries partial batches across segments and
                // flushes the trailing remainder once, at epoch end.
                let mut mb = (!per_tuple_mode).then(|| {
                    MinibatchTrainer::new(model.num_params(), self.cfg.train_options.clone())
                });
                let strategy = strategy.as_mut();
                let dev = &mut *dev;
                let result = run_epoch_pipeline::<Segment, std::convert::Infallible, _, _>(
                    &tel,
                    |sender| {
                        setup_seconds = strategy.stream_epoch(table, dev, &mut |seg| {
                            sender.fill_and_send(move |span| {
                                span.add_sim_seconds(seg.io_seconds);
                                seg
                            })
                        });
                        Ok(())
                    },
                    |seg| {
                        io.push(seg.io_seconds);
                        let flops: f64 = seg
                            .tuples
                            .first()
                            .map(|t| model.flops_per_example(t.features.nnz()))
                            .unwrap_or(0.0);
                        compute.push(self.cfg.compute.seconds(flops, seg.tuples.len()));
                        if let Some(mb) = mb.as_mut() {
                            for t in &seg.tuples {
                                mb.feed(model.as_mut(), optimizer.as_mut(), t);
                            }
                        } else {
                            let s =
                                train_per_tuple(model.as_mut(), optimizer.as_ref(), &seg.tuples);
                            loss_sum += s.mean_loss * s.examples as f64;
                            examples += s.examples;
                            updates += s.updates;
                        }
                        true
                    },
                );
                match result {
                    Ok(_) => {}
                    Err(PipelineError::Producer(e)) => match e {},
                    Err(PipelineError::ProducerPanicked(msg)) => {
                        panic!("epoch pipeline producer panicked: {msg}")
                    }
                }
                let stats = match mb {
                    Some(mb) => mb.finish(model.as_mut(), optimizer.as_mut()),
                    None => EpochStats {
                        mean_loss: if examples > 0 {
                            loss_sum / examples as f64
                        } else {
                            0.0
                        },
                        examples,
                        updates,
                    },
                };
                (setup_seconds, stats)
            } else {
                let plan = strategy.next_epoch(table, dev);
                for seg in &plan.segments {
                    io.push(seg.io_seconds);
                    let flops: f64 = seg
                        .tuples
                        .first()
                        .map(|t| model.flops_per_example(t.features.nnz()))
                        .unwrap_or(0.0);
                    compute.push(self.cfg.compute.seconds(flops, seg.tuples.len()));
                }
                // Train over the continuous epoch stream: mini-batches span
                // buffer fills, exactly as a DataLoader's batches span the
                // loader's internal buffers.
                let stream = plan.segments.iter().flat_map(|s| s.tuples.iter());
                let stats = if per_tuple_mode {
                    train_per_tuple(model.as_mut(), optimizer.as_ref(), stream)
                } else {
                    train_minibatch(
                        model.as_mut(),
                        optimizer.as_mut(),
                        stream,
                        &self.cfg.train_options,
                    )
                };
                (plan.setup_seconds, stats)
            };
            let loss_sum = stats.mean_loss * stats.examples as f64;
            let examples = stats.examples;
            let epoch_seconds = if self.cfg.corgipile.double_buffer {
                DoubleBufferModel::double_buffer(&io, &compute)
            } else {
                DoubleBufferModel::single_buffer(&io, &compute)
            };
            sim_clock += setup_seconds + epoch_seconds;

            let test_metric = if test.is_empty() {
                None
            } else {
                Some(evaluate(model.as_ref(), test))
            };
            let epoch_io: f64 = io.iter().sum();
            let epoch_compute: f64 = compute.iter().sum();
            let train_loss = if examples > 0 {
                loss_sum / examples as f64
            } else {
                0.0
            };
            tuple_counter.add(examples as u64);
            epoch_counter.inc();
            let e = epoch as u64;
            tel.event(e, "core.epoch.io_seconds", epoch_io);
            tel.event(e, "core.epoch.compute_seconds", epoch_compute);
            tel.event(e, "core.epoch.epoch_seconds", epoch_seconds);
            tel.event(e, "core.epoch.train_loss", train_loss);
            tel.event(e, "core.epoch.tuples", examples as f64);
            records.push(EpochRecord {
                epoch,
                setup_seconds,
                io_seconds: epoch_io,
                compute_seconds: epoch_compute,
                epoch_seconds,
                sim_seconds_end: sim_clock,
                train_loss,
                test_metric,
            });
            if checkpoint_path.is_some() || sink.is_some() {
                let ck = TrainCheckpoint {
                    epoch_next: epoch + 1,
                    seed,
                    sim_clock,
                    model_params: model.params().to_vec(),
                    optimizer_state: optimizer.state_bytes(),
                };
                if let Some(path) = checkpoint_path {
                    ck.save(path)?;
                }
                if let Some(sink) = sink.as_mut() {
                    sink(&ck, train_loss)?;
                }
            }
        }

        let train_tuples = table.all_tuples();
        let final_train_metric = evaluate(model.as_ref(), &train_tuples);
        Ok(TrainReport {
            strategy: self.cfg.strategy,
            model_kind: self.cfg.model.clone(),
            epochs: records,
            model,
            final_train_metric,
            wall_seconds: wall_start.elapsed().as_secs_f64(),
        })
    }
}

/// Accuracy for classifiers, R² for regression.
pub fn evaluate(model: &dyn Model, tuples: &[Tuple]) -> f64 {
    if model.is_classifier() {
        accuracy(model, tuples)
    } else {
        r_squared(model, tuples)
    }
}

/// Mean loss helper re-exported for reports.
pub fn evaluate_loss(model: &dyn Model, tuples: &[Tuple]) -> f64 {
    mean_loss(model, tuples)
}

fn infer_dim(table: &Table) -> corgipile_storage::Result<usize> {
    Ok(table.get_tuple(0)?.features.dim())
}

/// Grid-search the initial learning rate (paper §7.1.3: {0.1, 0.01, 0.001})
/// with a short run each, returning the best rate by final train metric.
pub fn grid_search_lr(
    base: &TrainerConfig,
    table: &Table,
    test: &[Tuple],
    probe_epochs: usize,
    seed: u64,
) -> corgipile_storage::Result<f32> {
    let mut best = (f64::NEG_INFINITY, 0.1f32);
    for lr in [0.1f32, 0.01, 0.001] {
        let mut cfg = base.clone();
        cfg.epochs = probe_epochs;
        cfg.optimizer = match cfg.optimizer {
            OptimizerKind::Sgd { decay, .. } => OptimizerKind::Sgd { lr0: lr, decay },
            OptimizerKind::SgdInverseTime { a, .. } => OptimizerKind::SgdInverseTime { lr0: lr, a },
            OptimizerKind::Adam {
                beta1, beta2, eps, ..
            } => OptimizerKind::Adam {
                lr0: lr,
                beta1,
                beta2,
                eps,
            },
        };
        let mut dev = SimDevice::in_memory();
        let report = Trainer::new(cfg).train_with_test(table, test, &mut dev, seed)?;
        let metric = report
            .final_test_metric()
            .unwrap_or(report.final_train_metric);
        if metric > best.0 {
            best = (metric, lr);
        }
    }
    Ok(best.1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};

    /// Laptop-scale experiments keep the paper's seek-to-transfer ratio by
    /// scaling the device latency with the dataset (DESIGN.md §4).
    const DEV_SCALE: f64 = 1000.0;

    fn clustered_higgs(n: usize) -> (Table, Vec<Tuple>) {
        let ds = DatasetSpec::higgs_like(n)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(8192)
            .build(7);
        (ds.to_table(1).unwrap(), ds.test.clone())
    }

    #[test]
    fn corgipile_matches_shuffle_once_and_beats_no_shuffle_on_clustered_data() {
        // The paper's headline claim, in miniature (Figures 1/11/12). The
        // table is sized so a 10% buffer spans ~20 blocks per fill — small
        // buffers over label-pure blocks need enough blocks per fill for
        // the mixture to concentrate, exactly as in the paper's setups.
        let (table, test) = clustered_higgs(12_000);
        let metric = |kind: StrategyKind| {
            let cfg = TrainerConfig::new(ModelKind::Svm, 5).with_strategy(kind);
            let mut dev = SimDevice::hdd_scaled(DEV_SCALE, 0);
            let r = Trainer::new(cfg)
                .train_with_test(&table, &test, &mut dev, 3)
                .unwrap();
            // Mean of the last three epochs damps last-iterate noise.
            let tail: Vec<f64> = r
                .epochs
                .iter()
                .rev()
                .take(3)
                .filter_map(|e| e.test_metric)
                .collect();
            tail.iter().sum::<f64>() / tail.len() as f64
        };
        let so = metric(StrategyKind::ShuffleOnce);
        let cp = metric(StrategyKind::CorgiPile);
        let ns = metric(StrategyKind::NoShuffle);
        assert!(
            (so - cp).abs() < 0.04,
            "CorgiPile {cp} should match Shuffle Once {so} within 4 points"
        );
        assert!(
            cp > ns + 0.05,
            "CorgiPile {cp} should beat No Shuffle {ns} clearly"
        );
    }

    #[test]
    fn corgipile_total_time_beats_shuffle_once() {
        let (table, _) = clustered_higgs(12_000);
        let time = |kind: StrategyKind| {
            let cfg = TrainerConfig::new(ModelKind::LogisticRegression, 3).with_strategy(kind);
            let mut dev = SimDevice::hdd_scaled(DEV_SCALE, 0);
            Trainer::new(cfg)
                .train(&table, &mut dev, 1)
                .unwrap()
                .total_sim_seconds()
        };
        let so = time(StrategyKind::ShuffleOnce);
        let cp = time(StrategyKind::CorgiPile);
        assert!(
            cp < so,
            "CorgiPile {cp}s should be faster end-to-end than Shuffle Once {so}s"
        );
    }

    #[test]
    fn double_buffer_reduces_epoch_time() {
        let (table, _) = clustered_higgs(2000);
        let run = |db: bool| {
            let cfg = TrainerConfig::new(ModelKind::Svm, 2)
                .with_corgipile(CorgiPileConfig::default().with_double_buffer(db));
            let mut dev = SimDevice::hdd(0);
            Trainer::new(cfg).train(&table, &mut dev, 1).unwrap();
            let r = Trainer::new(
                TrainerConfig::new(ModelKind::Svm, 2)
                    .with_corgipile(CorgiPileConfig::default().with_double_buffer(db)),
            )
            .train(&table, &mut SimDevice::hdd(0), 1)
            .unwrap();
            r.epochs[0].epoch_seconds
        };
        let single = run(false);
        let double = run(true);
        assert!(
            double < single,
            "double buffering {double} !< single {single}"
        );
    }

    /// Final model parameters for a run with the given double-buffer knob.
    fn final_params(cfg: &TrainerConfig, table: &Table, db: bool, seed: u64) -> Vec<f32> {
        let cfg = cfg
            .clone()
            .with_corgipile(CorgiPileConfig::default().with_double_buffer(db));
        let mut dev = SimDevice::hdd(0);
        let r = Trainer::new(cfg).train(table, &mut dev, seed).unwrap();
        r.model.params().to_vec()
    }

    #[test]
    fn pipelined_epochs_are_bit_identical_to_serial_per_tuple_sgd() {
        // The tentpole correctness bar: for a fixed seed the double-buffered
        // producer/consumer pipeline must visit tuples in exactly the serial
        // order, so the trained models match bit-for-bit.
        let (table, _) = clustered_higgs(1500);
        for strategy in [
            StrategyKind::CorgiPile,
            StrategyKind::Mrs,
            StrategyKind::ShuffleOnce,
        ] {
            for seed in [1u64, 7, 42] {
                let cfg = TrainerConfig::new(ModelKind::Svm, 3).with_strategy(strategy);
                let serial = final_params(&cfg, &table, false, seed);
                let pipelined = final_params(&cfg, &table, true, seed);
                assert_eq!(serial, pipelined, "{strategy} seed {seed} diverged");
            }
        }
    }

    #[test]
    fn pipelined_minibatch_adam_is_bit_identical_to_serial() {
        // Mini-batches span buffer fills; the pipelined consumer's carry-over
        // accumulator must flush on exactly the same tuple boundaries as the
        // serial single-stream call (including the trailing partial batch).
        let (table, _) = clustered_higgs(1100);
        let cfg = TrainerConfig::new(ModelKind::LogisticRegression, 3)
            .with_batch_size(32)
            .with_optimizer(OptimizerKind::default_adam(0.05));
        for seed in [2u64, 19] {
            let serial = final_params(&cfg, &table, false, seed);
            let pipelined = final_params(&cfg, &table, true, seed);
            assert_eq!(serial, pipelined, "seed {seed} diverged");
        }
    }

    #[test]
    fn pipelined_epochs_record_fill_spans() {
        let (table, _) = clustered_higgs(800);
        let cfg = TrainerConfig::new(ModelKind::Svm, 2);
        let mut dev = SimDevice::hdd(0);
        let tel = corgipile_storage::Telemetry::enabled();
        dev.set_telemetry(tel.clone());
        Trainer::new(cfg).train(&table, &mut dev, 1).unwrap();
        let snap = tel.snapshot();
        let fill = snap
            .metrics
            .histograms
            .iter()
            .find(|(n, _)| n == "pipeline.fill.sim_seconds")
            .map(|(_, h)| h)
            .expect("pipelined epochs should record fill spans");
        assert!(fill.count > 0);
        assert!(
            fill.sum > 0.0,
            "fill spans should carry the segment io_seconds"
        );
    }

    #[test]
    fn records_are_cumulative_and_complete() {
        let (table, test) = clustered_higgs(1000);
        let cfg = TrainerConfig::new(ModelKind::LogisticRegression, 3);
        let mut dev = SimDevice::hdd(0);
        let r = Trainer::new(cfg)
            .train_with_test(&table, &test, &mut dev, 1)
            .unwrap();
        assert_eq!(r.epochs.len(), 3);
        for w in r.epochs.windows(2) {
            assert!(w[1].sim_seconds_end > w[0].sim_seconds_end);
            assert_eq!(w[1].epoch, w[0].epoch + 1);
        }
        assert!(r.epochs.iter().all(|e| e.test_metric.is_some()));
        assert!(r.wall_seconds > 0.0);
        assert!(r.total_sim_seconds() > 0.0);
    }

    #[test]
    fn minibatch_and_adam_paths_work() {
        let (table, test) = clustered_higgs(1500);
        let cfg = TrainerConfig::new(ModelKind::LogisticRegression, 3)
            .with_batch_size(64)
            .with_optimizer(OptimizerKind::default_adam(0.05));
        let mut dev = SimDevice::ssd(0);
        let r = Trainer::new(cfg)
            .train_with_test(&table, &test, &mut dev, 2)
            .unwrap();
        assert!(
            r.final_test_metric().unwrap() > 0.55,
            "adam minibatch should learn"
        );
    }

    #[test]
    fn regression_reports_r2() {
        let ds = DatasetSpec::msd_like(1200)
            .with_block_bytes(4 * 8192)
            .build(3);
        let table = ds.to_table(2).unwrap();
        let cfg =
            TrainerConfig::new(ModelKind::LinearRegression, 6).with_optimizer(OptimizerKind::Sgd {
                lr0: 0.01,
                decay: 0.95,
            });
        let mut dev = SimDevice::ssd(0);
        let r = Trainer::new(cfg)
            .train_with_test(&table, &ds.test, &mut dev, 1)
            .unwrap();
        let r2 = r.final_test_metric().unwrap();
        assert!(
            r2 > 0.8,
            "linear regression should fit the linear data, R² {r2}"
        );
    }

    #[test]
    fn trainer_emits_per_epoch_events_when_telemetry_enabled() {
        let (table, _) = clustered_higgs(800);
        let cfg = TrainerConfig::new(ModelKind::Svm, 2);
        let mut dev = SimDevice::hdd(0);
        let tel = corgipile_storage::Telemetry::enabled();
        dev.set_telemetry(tel.clone());
        Trainer::new(cfg).train(&table, &mut dev, 1).unwrap();
        let ev = tel.events();
        assert_eq!(
            ev.iter()
                .filter(|e| e.name == "core.epoch.epoch_seconds")
                .count(),
            2
        );
        assert!(ev
            .iter()
            .any(|e| e.name == "core.epoch.tuples" && e.value > 0.0));
        let snap = tel.snapshot();
        let counter = |name: &str| {
            snap.metrics
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(counter("core.trainer.epochs"), 2);
        assert_eq!(counter("core.trainer.tuples"), 1600);
        // The device mirrors its I/O counters into the same registry.
        assert!(counter("storage.device.device_bytes") > 0);
    }

    #[test]
    fn empty_table_is_an_error() {
        let table = Table::from_tuples(
            corgipile_storage::TableConfig::new("empty", 1),
            std::iter::empty(),
        )
        .unwrap();
        let cfg = TrainerConfig::new(ModelKind::Svm, 1);
        let mut dev = SimDevice::in_memory();
        assert!(Trainer::new(cfg).train(&table, &mut dev, 1).is_err());
    }

    #[test]
    fn time_to_metric_finds_crossing() {
        let (table, test) = clustered_higgs(1500);
        let cfg = TrainerConfig::new(ModelKind::Svm, 5);
        let mut dev = SimDevice::hdd(0);
        let r = Trainer::new(cfg)
            .train_with_test(&table, &test, &mut dev, 1)
            .unwrap();
        let final_metric = r.final_test_metric().unwrap();
        let hit = r.time_to_metric(final_metric - 0.01);
        assert!(hit.is_some());
        assert!(r.time_to_metric(1.1).is_none());
    }

    #[test]
    fn grid_search_returns_a_candidate_rate() {
        let (table, test) = clustered_higgs(600);
        let base = TrainerConfig::new(ModelKind::LogisticRegression, 2);
        let lr = grid_search_lr(&base, &table, &test, 1, 1).unwrap();
        assert!([0.1f32, 0.01, 0.001].contains(&lr));
    }

    /// Simulate a crash after `split` of `epochs` epochs and resume from the
    /// checkpoint; return (interrupted final params, straight final params).
    fn crash_and_resume(
        tag: &str,
        cfg: TrainerConfig,
        table: &Table,
        seed: u64,
        split: usize,
    ) -> (Vec<f32>, Vec<f32>, f64, f64) {
        let epochs = cfg.epochs;
        let path = std::env::temp_dir().join(format!(
            "corgi_resume_{tag}_{}_{}_{}.ckpt",
            std::process::id(),
            seed,
            split
        ));
        // Phase 1: run `split` epochs, checkpointing each, then "crash".
        let mut partial_cfg = cfg.clone();
        partial_cfg.epochs = split;
        Trainer::new(partial_cfg)
            .train_resumable(table, &[], &mut SimDevice::hdd(0), seed, None, Some(&path))
            .unwrap();
        // Phase 2: a fresh process loads the checkpoint and resumes.
        let ck = TrainCheckpoint::load(&path).unwrap();
        assert_eq!(ck.epoch_next, split);
        let resumed = Trainer::new(cfg.clone())
            .train_resumable(
                table,
                &[],
                &mut SimDevice::hdd(0),
                seed,
                Some(&ck),
                Some(&path),
            )
            .unwrap();
        assert_eq!(resumed.epochs.len(), epochs - split);
        // Reference: the uninterrupted run.
        let straight = Trainer::new(cfg)
            .train_with_test(table, &[], &mut SimDevice::hdd(0), seed)
            .unwrap();
        std::fs::remove_file(path).ok();
        (
            resumed.model.params().to_vec(),
            straight.model.params().to_vec(),
            resumed.total_sim_seconds(),
            straight.total_sim_seconds(),
        )
    }

    #[test]
    fn checkpoint_sink_sees_every_epoch_and_can_abort() {
        let (table, _) = clustered_higgs(600);
        let cfg = TrainerConfig::new(ModelKind::Svm, 3);
        // The sink fires once per epoch with the same checkpoint the file
        // path would have written.
        let mut seen: Vec<(usize, usize)> = Vec::new();
        let mut sink = |ck: &TrainCheckpoint, loss: f64| {
            assert!(loss.is_finite());
            seen.push((ck.epoch_next, ck.model_params.len()));
            Ok(())
        };
        let r = Trainer::new(cfg.clone())
            .train_resumable_sink(
                &table,
                &[],
                &mut SimDevice::hdd(0),
                7,
                None,
                None,
                Some(&mut sink),
            )
            .unwrap();
        let nparams = r.model.params().len();
        assert_eq!(seen, vec![(1, nparams), (2, nparams), (3, nparams)]);
        // An erroring sink aborts the run at that epoch boundary, the way
        // an injected WAL crash would kill a durable training query.
        let mut fail = |ck: &TrainCheckpoint, _loss: f64| {
            if ck.epoch_next == 2 {
                Err(corgipile_storage::StorageError::Crashed {
                    site: "wal.after_fsync".into(),
                })
            } else {
                Ok(())
            }
        };
        let err = Trainer::new(cfg)
            .train_resumable_sink(
                &table,
                &[],
                &mut SimDevice::hdd(0),
                7,
                None,
                None,
                Some(&mut fail),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            corgipile_storage::StorageError::Crashed { .. }
        ));
    }

    #[test]
    fn resume_after_crash_is_bit_identical_sgd() {
        let (table, _) = clustered_higgs(1200);
        let cfg = TrainerConfig::new(ModelKind::Svm, 5);
        let (resumed, straight, t_res, t_straight) = crash_and_resume("sgd", cfg, &table, 13, 2);
        assert_eq!(
            resumed, straight,
            "resumed SGD model must match bit-for-bit"
        );
        assert!(
            (t_res - t_straight).abs() < 1e-9,
            "simulated clock must survive resume"
        );
    }

    #[test]
    fn resume_after_crash_is_bit_identical_adam_minibatch() {
        let (table, _) = clustered_higgs(900);
        let cfg = TrainerConfig::new(ModelKind::LogisticRegression, 4)
            .with_batch_size(32)
            .with_optimizer(OptimizerKind::default_adam(0.05));
        let (resumed, straight, _, _) = crash_and_resume("adam", cfg, &table, 21, 3);
        assert_eq!(
            resumed, straight,
            "resumed Adam model must match bit-for-bit"
        );
    }

    #[test]
    fn resume_rejects_seed_and_shape_mismatches() {
        let (table, _) = clustered_higgs(600);
        let cfg = TrainerConfig::new(ModelKind::Svm, 2);
        let path =
            std::env::temp_dir().join(format!("corgi_resume_reject_{}.ckpt", std::process::id()));
        Trainer::new(cfg.clone())
            .train_resumable(
                &table,
                &[],
                &mut SimDevice::in_memory(),
                7,
                None,
                Some(&path),
            )
            .unwrap();
        let ck = TrainCheckpoint::load(&path).unwrap();
        // Wrong seed: the replayed RNG streams would diverge — refuse.
        let err = Trainer::new(cfg.clone())
            .train_resumable(&table, &[], &mut SimDevice::in_memory(), 8, Some(&ck), None)
            .unwrap_err();
        assert!(err.to_string().contains("seed"), "unexpected error: {err}");
        // Wrong model shape: parameter count differs — refuse.
        let mut bad = ck.clone();
        bad.model_params.push(0.0);
        let err = Trainer::new(cfg)
            .train_resumable(
                &table,
                &[],
                &mut SimDevice::in_memory(),
                7,
                Some(&bad),
                None,
            )
            .unwrap_err();
        assert!(
            err.to_string().contains("parameters"),
            "unexpected error: {err}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn checkpoint_at_final_epoch_resumes_to_a_noop() {
        let (table, _) = clustered_higgs(400);
        let cfg = TrainerConfig::new(ModelKind::Svm, 3);
        let path =
            std::env::temp_dir().join(format!("corgi_resume_noop_{}.ckpt", std::process::id()));
        let full = Trainer::new(cfg.clone())
            .train_resumable(
                &table,
                &[],
                &mut SimDevice::in_memory(),
                5,
                None,
                Some(&path),
            )
            .unwrap();
        let ck = TrainCheckpoint::load(&path).unwrap();
        assert_eq!(ck.epoch_next, 3);
        let resumed = Trainer::new(cfg)
            .train_resumable(&table, &[], &mut SimDevice::in_memory(), 5, Some(&ck), None)
            .unwrap();
        assert!(resumed.epochs.is_empty(), "nothing left to train");
        assert_eq!(resumed.model.params(), full.model.params());
        std::fs::remove_file(path).ok();
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]
        /// Satellite property: for arbitrary seeds and crash points, a
        /// checkpoint→resume run equals the uninterrupted run bit-for-bit.
        #[test]
        fn prop_resume_is_bit_identical(seed in 0u64..10_000, split in 1usize..4) {
            let ds = DatasetSpec::higgs_like(400)
                .with_order(Order::ClusteredByLabel)
                .with_block_bytes(8192)
                .build(7);
            let table = ds.to_table(1).unwrap();
            let cfg = TrainerConfig::new(ModelKind::LogisticRegression, 4);
            let (resumed, straight, _, _) = crash_and_resume("prop", cfg, &table, seed, split);
            proptest::prop_assert_eq!(resumed, straight);
        }
    }
}
