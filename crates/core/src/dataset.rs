//! The PyTorch-style `CorgiPileDataset` API (§5).
//!
//! The paper's PyTorch integration exposes CorgiPile as a drop-in
//! `Dataset` whose iterator performs the two-level shuffle internally:
//!
//! ```python
//! train_dataset = CorgiPileDataset(dataset_path, block_index_path, ...)
//! train_loader = DataLoader(train_dataset, ...)
//! train(train_loader, model, ...)
//! ```
//!
//! [`CorgiPileDataset`] mirrors that shape: it wraps a heap [`Table`] plus a
//! [`CorgiPileConfig`] and hands out one shuffled epoch iterator at a time.

use crate::config::CorgiPileConfig;
use corgipile_shuffle::{CorgiPile, ShuffleStrategy};
use corgipile_storage::{SimDevice, Table, Tuple};

/// A dataset wrapper providing per-epoch two-level-shuffled iterators.
pub struct CorgiPileDataset {
    table: Table,
    config: CorgiPileConfig,
    strategy: CorgiPile,
    epoch: usize,
}

impl CorgiPileDataset {
    /// Wrap a table.
    pub fn new(table: Table, config: CorgiPileConfig) -> Self {
        let strategy = CorgiPile::new(config.strategy_params(), config.sample_mode);
        CorgiPileDataset {
            table,
            config,
            strategy,
            epoch: 0,
        }
    }

    /// The wrapped table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The configuration.
    pub fn config(&self) -> &CorgiPileConfig {
        &self.config
    }

    /// Number of tuples per epoch (full-coverage mode visits all).
    pub fn len(&self) -> usize {
        self.table.num_tuples() as usize
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Epochs served so far.
    pub fn epochs_served(&self) -> usize {
        self.epoch
    }

    /// Produce the next epoch's shuffled tuple stream, charging `dev`.
    pub fn epoch_iter(&mut self, dev: &mut SimDevice) -> impl Iterator<Item = Tuple> {
        self.epoch += 1;
        let plan = self.strategy.next_epoch(&self.table, dev);
        plan.segments.into_iter().flat_map(|s| s.tuples)
    }

    /// Reset to epoch 0 (replays the same sequence of epochs).
    pub fn reset(&mut self) {
        self.epoch = 0;
        self.strategy.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};

    fn dataset() -> CorgiPileDataset {
        let table = DatasetSpec::higgs_like(500)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(2 * 8192)
            .build_table(1)
            .unwrap();
        CorgiPileDataset::new(table, CorgiPileConfig::default().with_buffer_fraction(0.2))
    }

    #[test]
    fn epoch_iter_covers_all_tuples_shuffled() {
        let mut ds = dataset();
        let mut dev = SimDevice::hdd(0);
        let ids: Vec<u64> = ds.epoch_iter(&mut dev).map(|t| t.id).collect();
        assert_eq!(ids.len(), ds.len());
        assert_ne!(ids, (0..500).collect::<Vec<_>>());
        let mut sorted = ids;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..500).collect::<Vec<_>>());
        assert_eq!(ds.epochs_served(), 1);
    }

    #[test]
    fn epochs_differ_reset_replays() {
        let mut ds = dataset();
        let mut dev = SimDevice::hdd(0);
        let a: Vec<u64> = ds.epoch_iter(&mut dev).map(|t| t.id).collect();
        let b: Vec<u64> = ds.epoch_iter(&mut dev).map(|t| t.id).collect();
        assert_ne!(a, b);
        ds.reset();
        assert_eq!(ds.epochs_served(), 0);
        let a2: Vec<u64> = ds.epoch_iter(&mut dev).map(|t| t.id).collect();
        assert_eq!(a, a2);
    }

    #[test]
    fn is_empty_on_empty_table() {
        let table = Table::from_tuples(
            corgipile_storage::TableConfig::new("e", 9),
            std::iter::empty(),
        )
        .unwrap();
        let ds = CorgiPileDataset::new(table, CorgiPileConfig::default());
        assert!(ds.is_empty());
    }
}
