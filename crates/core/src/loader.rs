//! A real threaded double-buffered loader (§6.3, with actual threads).
//!
//! The PostgreSQL integration's `TupleShuffle` optimization runs two
//! concurrent threads: a *write* thread pulls tuples from `BlockShuffle`
//! into one buffer and shuffles it while the *read* thread drains the other
//! buffer into the SGD operator; the buffers swap when one is full and the
//! other consumed. [`ThreadedLoader`] reproduces that with a producer
//! thread and a bounded crossbeam channel of capacity 1 — the channel slot
//! plus the in-flight buffer are exactly the two buffers.
//!
//! The *simulated-time* benefit of double buffering is modeled analytically
//! by [`DoubleBufferModel`](corgipile_storage::DoubleBufferModel); this
//! module provides the real-concurrency counterpart used by the examples
//! and wall-clock benches.

use corgipile_data::rng::shuffle_in_place;
use corgipile_storage::{FileTable, SimDevice, Table, Tuple};
use crossbeam::channel::{bounded, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A double-buffered, two-thread epoch loader.
pub struct ThreadedLoader {
    rx: Receiver<Vec<Tuple>>,
    handle: Option<JoinHandle<corgipile_storage::IoStats>>,
    current: std::vec::IntoIter<Tuple>,
}

impl ThreadedLoader {
    /// Spawn the producer for one epoch over `table`.
    ///
    /// The producer performs CorgiPile's two-level shuffle: a block
    /// permutation seeded by `seed`, then per-buffer tuple shuffles, filling
    /// buffers of `buffer_blocks` blocks each. The consumer (this struct's
    /// iterator) overlaps with production through the bounded channel.
    pub fn spawn(table: Table, buffer_blocks: usize, seed: u64) -> Self {
        assert!(buffer_blocks >= 1, "need at least one block per buffer");
        let (tx, rx) = bounded::<Vec<Tuple>>(1);
        let handle = std::thread::spawn(move || {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed ^ 0x10ADE4);
            let mut dev = SimDevice::in_memory();
            let mut order: Vec<usize> = (0..table.num_blocks()).collect();
            shuffle_in_place(&mut rng, &mut order);
            for chunk in order.chunks(buffer_blocks) {
                let mut buf: Vec<Tuple> = Vec::new();
                for &b in chunk {
                    buf.extend(table.read_block(b, &mut dev).expect("block in range"));
                }
                for i in (1..buf.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    buf.swap(i, j);
                }
                if tx.send(buf).is_err() {
                    break; // consumer dropped early
                }
            }
            dev.stats().clone()
        });
        ThreadedLoader { rx, handle: Some(handle), current: Vec::new().into_iter() }
    }

    /// Spawn the producer for one epoch over an on-disk heap file
    /// ([`FileTable`]): CorgiPile's block-level shuffle issues *real*
    /// positioned reads against the file while the consumer trains — the
    /// production I/O path rather than the simulated one.
    pub fn spawn_file(table: Arc<FileTable>, buffer_blocks: usize, seed: u64) -> Self {
        assert!(buffer_blocks >= 1, "need at least one block per buffer");
        let (tx, rx) = bounded::<Vec<Tuple>>(1);
        let handle = std::thread::spawn(move || {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF11E);
            let mut order: Vec<usize> = (0..table.num_blocks()).collect();
            shuffle_in_place(&mut rng, &mut order);
            for chunk in order.chunks(buffer_blocks) {
                let mut buf: Vec<Tuple> = Vec::new();
                for &b in chunk {
                    buf.extend(table.read_block(b).expect("block in range"));
                }
                for i in (1..buf.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    buf.swap(i, j);
                }
                if tx.send(buf).is_err() {
                    break;
                }
            }
            corgipile_storage::IoStats::default()
        });
        ThreadedLoader { rx, handle: Some(handle), current: Vec::new().into_iter() }
    }

    /// Wait for the producer and return its I/O stats (call after draining).
    pub fn join(mut self) -> corgipile_storage::IoStats {
        // Drop the receiver first so a blocked producer unblocks.
        self.rx = bounded(0).1;
        self.current = Vec::new().into_iter();
        self.handle
            .take()
            .expect("join called once")
            .join()
            .expect("producer panicked")
    }
}

impl Iterator for ThreadedLoader {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        loop {
            if let Some(t) = self.current.next() {
                return Some(t);
            }
            match self.rx.recv() {
                Ok(buf) => self.current = buf.into_iter(),
                Err(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};

    fn table(n: usize) -> Table {
        DatasetSpec::higgs_like(n)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(2 * 8192)
            .build_table(1)
            .unwrap()
    }

    #[test]
    fn loader_yields_every_tuple_exactly_once() {
        let t = table(600);
        let loader = ThreadedLoader::spawn(t, 3, 42);
        let mut ids: Vec<u64> = loader.map(|t| t.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..600).collect::<Vec<_>>());
    }

    #[test]
    fn loader_is_seed_deterministic() {
        let t = table(300);
        let a: Vec<u64> = ThreadedLoader::spawn(t.clone(), 2, 7).map(|t| t.id).collect();
        let b: Vec<u64> = ThreadedLoader::spawn(t, 2, 7).map(|t| t.id).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn loader_shuffles_within_buffers() {
        let t = table(600);
        let ids: Vec<u64> = ThreadedLoader::spawn(t, 4, 1).map(|t| t.id).collect();
        assert_ne!(ids, (0..600).collect::<Vec<_>>());
        let descents = ids.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(descents > 100, "expected heavy shuffling, got {descents} descents");
    }

    #[test]
    fn file_backed_loader_streams_from_real_disk() {
        let t = table(500);
        let path = std::env::temp_dir()
            .join(format!("corgi_loader_{}.tbl", std::process::id()));
        corgipile_storage::save_table(&t, &path).unwrap();
        let ft = Arc::new(FileTable::open(&path).unwrap());
        let mut ids: Vec<u64> =
            ThreadedLoader::spawn_file(ft.clone(), 3, 5).map(|t| t.id).collect();
        assert_ne!(ids, (0..500).collect::<Vec<_>>(), "must be shuffled");
        ids.sort_unstable();
        assert_eq!(ids, (0..500).collect::<Vec<_>>());
        // Deterministic per seed.
        let a: Vec<u64> = ThreadedLoader::spawn_file(ft.clone(), 3, 9).map(|t| t.id).collect();
        let b: Vec<u64> = ThreadedLoader::spawn_file(ft, 3, 9).map(|t| t.id).collect();
        assert_eq!(a, b);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn early_drop_does_not_hang() {
        let t = table(600);
        let mut loader = ThreadedLoader::spawn(t, 1, 3);
        let _first = loader.next();
        let stats = loader.join(); // must not deadlock
        assert!(stats.device_bytes > 0);
    }
}
