//! A real threaded double-buffered loader (§6.3, with actual threads).
//!
//! The PostgreSQL integration's `TupleShuffle` optimization runs two
//! concurrent threads: a *write* thread pulls tuples from `BlockShuffle`
//! into one buffer and shuffles it while the *read* thread drains the other
//! buffer into the SGD operator; the buffers swap when one is full and the
//! other consumed. [`ThreadedLoader`] reproduces that with a producer
//! thread and a bounded crossbeam channel of capacity 1 — the channel slot
//! plus the in-flight buffer are exactly the two buffers.
//!
//! The *simulated-time* benefit of double buffering is modeled analytically
//! by [`DoubleBufferModel`](corgipile_storage::DoubleBufferModel); this
//! module provides the real-concurrency counterpart used by the examples
//! and wall-clock benches.
//!
//! ## Failure handling
//!
//! The producer never panics on a failed block read. Every read goes
//! through the bounded-backoff retry layer ([`RetryPolicy`]); if retries
//! exhaust, the producer ships the [`StorageError`] through the channel and
//! stops. The consumer's iterator simply ends early, and
//! [`ThreadedLoader::join`] returns a typed [`LoaderError`] instead of the
//! old `expect` double-panic.

use corgipile_data::rng::shuffle_in_place;
use corgipile_storage::{FileTable, RetryPolicy, SimDevice, StorageError, Table, Telemetry, Tuple};
use crossbeam::channel::{bounded, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Why a loader epoch did not complete cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum LoaderError {
    /// A block read failed even after the retry policy was exhausted.
    Storage(StorageError),
    /// The producer thread panicked (a bug, not an I/O condition).
    ProducerPanicked(String),
}

impl std::fmt::Display for LoaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoaderError::Storage(e) => write!(f, "loader storage error: {e}"),
            LoaderError::ProducerPanicked(msg) => {
                write!(f, "loader producer panicked: {msg}")
            }
        }
    }
}

impl std::error::Error for LoaderError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoaderError::Storage(e) => Some(e),
            LoaderError::ProducerPanicked(_) => None,
        }
    }
}

impl From<StorageError> for LoaderError {
    fn from(e: StorageError) -> Self {
        LoaderError::Storage(e)
    }
}

type Batch = Result<Vec<Tuple>, StorageError>;

/// A double-buffered, two-thread epoch loader.
pub struct ThreadedLoader {
    rx: Receiver<Batch>,
    handle: Option<JoinHandle<Result<corgipile_storage::IoStats, StorageError>>>,
    current: std::vec::IntoIter<Tuple>,
    error: Option<StorageError>,
}

impl ThreadedLoader {
    /// Spawn the producer for one epoch over `table`.
    ///
    /// The producer performs CorgiPile's two-level shuffle: a block
    /// permutation seeded by `seed`, then per-buffer tuple shuffles, filling
    /// buffers of `buffer_blocks` blocks each. The consumer (this struct's
    /// iterator) overlaps with production through the bounded channel.
    pub fn spawn(table: Table, buffer_blocks: usize, seed: u64) -> Self {
        Self::spawn_with_policy(
            table,
            buffer_blocks,
            seed,
            RetryPolicy::default(),
            SimDevice::in_memory(),
        )
    }

    /// [`ThreadedLoader::spawn`] with an explicit retry policy and device.
    ///
    /// Handing in the device lets callers attach a
    /// [`FaultPlan`](corgipile_storage::FaultPlan) before the epoch starts;
    /// retry backoff is charged to the device's simulated clock.
    pub fn spawn_with_policy(
        table: Table,
        buffer_blocks: usize,
        seed: u64,
        policy: RetryPolicy,
        mut dev: SimDevice,
    ) -> Self {
        assert!(buffer_blocks >= 1, "need at least one block per buffer");
        let (tx, rx) = bounded::<Batch>(1);
        let handle = std::thread::spawn(move || {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            // The device carries the session's telemetry handle (no-op when
            // disabled); fill spans and counters land in the same registry
            // the storage layer mirrors its I/O counters into.
            let tel = dev.telemetry().clone();
            let fills = tel.counter("core.loader.fills");
            let buffered = tel.counter("core.loader.buffered_tuples");
            let mut rng = StdRng::seed_from_u64(seed ^ 0x10ADE4);
            let mut order: Vec<usize> = (0..table.num_blocks()).collect();
            shuffle_in_place(&mut rng, &mut order);
            for chunk in order.chunks(buffer_blocks) {
                let mut span = tel.span("core.loader.fill");
                let io_before = dev.stats().io_seconds;
                let mut buf: Vec<Tuple> = Vec::new();
                for &b in chunk {
                    match table.read_block_retry(b, &mut dev, &policy) {
                        Ok(tuples) => buf.extend(tuples),
                        Err(e) => {
                            let _ = tx.send(Err(e.clone()));
                            return Err(e);
                        }
                    }
                }
                for i in (1..buf.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    buf.swap(i, j);
                }
                fills.inc();
                buffered.add(buf.len() as u64);
                span.add_sim_seconds(dev.stats().io_seconds - io_before);
                span.finish();
                if tx.send(Ok(buf)).is_err() {
                    break; // consumer dropped early
                }
            }
            Ok(dev.stats().clone())
        });
        ThreadedLoader {
            rx,
            handle: Some(handle),
            current: Vec::new().into_iter(),
            error: None,
        }
    }

    /// Spawn the producer for one epoch over an on-disk heap file
    /// ([`FileTable`]): CorgiPile's block-level shuffle issues *real*
    /// positioned reads against the file while the consumer trains — the
    /// production I/O path rather than the simulated one.
    pub fn spawn_file(table: Arc<FileTable>, buffer_blocks: usize, seed: u64) -> Self {
        Self::spawn_file_with_policy(table, buffer_blocks, seed, RetryPolicy::default())
    }

    /// [`ThreadedLoader::spawn_file`] with an explicit retry policy; faults
    /// attached to the [`FileTable`] via `set_fault_plan` are retried here.
    pub fn spawn_file_with_policy(
        table: Arc<FileTable>,
        buffer_blocks: usize,
        seed: u64,
        policy: RetryPolicy,
    ) -> Self {
        Self::spawn_file_observed(table, buffer_blocks, seed, policy, Telemetry::disabled())
    }

    /// [`ThreadedLoader::spawn_file_with_policy`] with a telemetry handle:
    /// each buffer fill records a `core.loader.fill` wall-time span (file
    /// reads are real I/O, so there is no simulated clock to attribute).
    pub fn spawn_file_observed(
        table: Arc<FileTable>,
        buffer_blocks: usize,
        seed: u64,
        policy: RetryPolicy,
        telemetry: Telemetry,
    ) -> Self {
        assert!(buffer_blocks >= 1, "need at least one block per buffer");
        let (tx, rx) = bounded::<Batch>(1);
        let handle = std::thread::spawn(move || {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let fills = telemetry.counter("core.loader.fills");
            let buffered = telemetry.counter("core.loader.buffered_tuples");
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF11E);
            let mut order: Vec<usize> = (0..table.num_blocks()).collect();
            shuffle_in_place(&mut rng, &mut order);
            for chunk in order.chunks(buffer_blocks) {
                let span = telemetry.span("core.loader.fill");
                let mut buf: Vec<Tuple> = Vec::new();
                for &b in chunk {
                    match table.read_block_retry(b, &policy) {
                        Ok(tuples) => buf.extend(tuples),
                        Err(e) => {
                            let _ = tx.send(Err(e.clone()));
                            return Err(e);
                        }
                    }
                }
                for i in (1..buf.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    buf.swap(i, j);
                }
                fills.inc();
                buffered.add(buf.len() as u64);
                span.finish();
                if tx.send(Ok(buf)).is_err() {
                    break;
                }
            }
            Ok(corgipile_storage::IoStats::default())
        });
        ThreadedLoader {
            rx,
            handle: Some(handle),
            current: Vec::new().into_iter(),
            error: None,
        }
    }

    /// The storage error that ended the stream early, if any. Available
    /// once the iterator has returned `None`; [`ThreadedLoader::join`]
    /// reports the same error with the producer's exit status folded in.
    pub fn take_error(&mut self) -> Option<StorageError> {
        self.error.take()
    }

    /// Wait for the producer and return its I/O stats (call after
    /// draining). A producer that died on a storage error yields
    /// [`LoaderError::Storage`]; a panicking producer (a bug) yields
    /// [`LoaderError::ProducerPanicked`] instead of propagating the panic.
    pub fn join(mut self) -> Result<corgipile_storage::IoStats, LoaderError> {
        // Drop the receiver first so a blocked producer unblocks.
        self.rx = bounded(0).1;
        self.current = Vec::new().into_iter();
        let handle = self.handle.take().expect("join called once");
        match handle.join() {
            Ok(Ok(stats)) => match self.error.take() {
                None => Ok(stats),
                Some(e) => Err(LoaderError::Storage(e)),
            },
            Ok(Err(e)) => Err(LoaderError::Storage(e)),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic payload".into());
                Err(LoaderError::ProducerPanicked(msg))
            }
        }
    }
}

impl Iterator for ThreadedLoader {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        loop {
            if let Some(t) = self.current.next() {
                return Some(t);
            }
            if self.error.is_some() {
                return None;
            }
            match self.rx.recv() {
                Ok(Ok(buf)) => self.current = buf.into_iter(),
                Ok(Err(e)) => {
                    self.error = Some(e);
                    return None;
                }
                Err(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};
    use corgipile_storage::FaultPlan;

    fn table(n: usize) -> Table {
        DatasetSpec::higgs_like(n)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(2 * 8192)
            .build_table(1)
            .unwrap()
    }

    #[test]
    fn loader_yields_every_tuple_exactly_once() {
        let t = table(600);
        let loader = ThreadedLoader::spawn(t, 3, 42);
        let mut ids: Vec<u64> = loader.map(|t| t.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..600).collect::<Vec<_>>());
    }

    #[test]
    fn loader_is_seed_deterministic() {
        let t = table(300);
        let a: Vec<u64> = ThreadedLoader::spawn(t.clone(), 2, 7)
            .map(|t| t.id)
            .collect();
        let b: Vec<u64> = ThreadedLoader::spawn(t, 2, 7).map(|t| t.id).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn loader_shuffles_within_buffers() {
        let t = table(600);
        let ids: Vec<u64> = ThreadedLoader::spawn(t, 4, 1).map(|t| t.id).collect();
        assert_ne!(ids, (0..600).collect::<Vec<_>>());
        let descents = ids.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(
            descents > 100,
            "expected heavy shuffling, got {descents} descents"
        );
    }

    #[test]
    fn file_backed_loader_streams_from_real_disk() {
        let t = table(500);
        let path = std::env::temp_dir().join(format!("corgi_loader_{}.tbl", std::process::id()));
        corgipile_storage::save_table(&t, &path).unwrap();
        let ft = Arc::new(FileTable::open(&path).unwrap());
        let mut ids: Vec<u64> = ThreadedLoader::spawn_file(ft.clone(), 3, 5)
            .map(|t| t.id)
            .collect();
        assert_ne!(ids, (0..500).collect::<Vec<_>>(), "must be shuffled");
        ids.sort_unstable();
        assert_eq!(ids, (0..500).collect::<Vec<_>>());
        // Deterministic per seed.
        let a: Vec<u64> = ThreadedLoader::spawn_file(ft.clone(), 3, 9)
            .map(|t| t.id)
            .collect();
        let b: Vec<u64> = ThreadedLoader::spawn_file(ft, 3, 9).map(|t| t.id).collect();
        assert_eq!(a, b);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn loader_records_fill_spans_and_counters() {
        let t = table(600);
        let mut dev = SimDevice::in_memory();
        let tel = Telemetry::enabled();
        dev.set_telemetry(tel.clone());
        let mut loader = ThreadedLoader::spawn_with_policy(t, 3, 42, RetryPolicy::default(), dev);
        assert_eq!(loader.by_ref().count(), 600);
        loader.join().unwrap();
        let snap = tel.snapshot();
        let counter = |name: &str| {
            snap.metrics
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        let fills = counter("core.loader.fills");
        assert!(
            fills >= 2,
            "600 tuples over 3-block buffers means several fills"
        );
        assert_eq!(counter("core.loader.buffered_tuples"), 600);
        let span_count = snap
            .metrics
            .histograms
            .iter()
            .find(|(n, _)| n == "core.loader.fill.wall_seconds")
            .map(|(_, h)| h.count)
            .unwrap_or(0);
        assert_eq!(span_count, fills, "one fill span per buffer");
    }

    #[test]
    fn early_drop_does_not_hang() {
        let t = table(600);
        let mut loader = ThreadedLoader::spawn(t, 1, 3);
        let _first = loader.next();
        let stats = loader.join().unwrap(); // must not deadlock
        assert!(stats.device_bytes > 0);
    }

    #[test]
    fn transient_faults_are_retried_and_the_stream_completes() {
        let t = table(600);
        let tid = t.config().table_id;
        let mut dev = SimDevice::in_memory();
        dev.set_fault_plan(
            FaultPlan::new(5)
                .with_transient(tid, 0, 2)
                .with_transient(tid, 1, 1),
        );
        let mut loader = ThreadedLoader::spawn_with_policy(t, 2, 11, RetryPolicy::default(), dev);
        let mut ids: Vec<u64> = loader.by_ref().map(|t| t.id).collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (0..600).collect::<Vec<_>>(),
            "retries must hide transients"
        );
        assert!(loader.take_error().is_none());
        loader.join().unwrap();
    }

    #[test]
    fn permanent_fault_surfaces_a_typed_error_from_join() {
        let t = table(600);
        let blocks = t.num_blocks();
        assert!(blocks > 1);
        let mut dev = SimDevice::in_memory();
        dev.set_fault_plan(FaultPlan::new(5).with_permanent(t.config().table_id, 0));
        let mut loader =
            ThreadedLoader::spawn_with_policy(t, 2, 11, RetryPolicy::with_max_retries(2), dev);
        let ids: Vec<u64> = loader.by_ref().map(|t| t.id).collect();
        assert!(ids.len() < 600, "stream must end early on a dead block");
        match loader.join() {
            Err(LoaderError::Storage(corgipile_storage::StorageError::ReadFailed {
                block: 0,
                ..
            })) => {}
            other => panic!("expected ReadFailed on block 0, got {other:?}"),
        }
    }

    #[test]
    fn file_loader_recovers_from_transient_faults() {
        let t = table(500);
        let path =
            std::env::temp_dir().join(format!("corgi_loader_fault_{}.tbl", std::process::id()));
        corgipile_storage::save_table(&t, &path).unwrap();
        let ft = Arc::new(FileTable::open(&path).unwrap());
        ft.set_fault_plan(FaultPlan::new(3).with_transient(ft.config().table_id, 0, 3));
        let mut ids: Vec<u64> =
            ThreadedLoader::spawn_file_with_policy(ft.clone(), 3, 5, RetryPolicy::default())
                .map(|t| t.id)
                .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..500).collect::<Vec<_>>());
        assert!(ft.fault_stats().unwrap().transient_failures >= 3);
        std::fs::remove_file(path).ok();
    }
}
