//! Sliding-Window Shuffle (§3.3): TensorFlow's `Dataset.shuffle`.
//!
//! A window of `W` tuples is filled from the sequential scan; each step
//! emits a uniformly random occupant of the window and refills the slot
//! with the next incoming tuple; when the scan ends the window drains in
//! random order. I/O is purely sequential (as fast as No Shuffle) but the
//! randomness is local: a tuple stored at position `p` is emitted near
//! `p − W·U` on average, so on clustered data nearly all negative tuples
//! still precede positives (Figure 3b/3f).

use crate::plan::{EpochPlan, Segment};
use crate::strategy::{ShuffleStrategy, StrategyParams};
use corgipile_storage::{SimDevice, Table, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Sliding-Window strategy.
#[derive(Debug)]
pub struct SlidingWindowShuffle {
    params: StrategyParams,
    rng: StdRng,
}

impl SlidingWindowShuffle {
    /// Create a Sliding-Window strategy; the window holds
    /// `buffer_fraction × |table|` tuples.
    pub fn new(params: StrategyParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed ^ 0x51D3);
        SlidingWindowShuffle { params, rng }
    }
}

impl ShuffleStrategy for SlidingWindowShuffle {
    fn name(&self) -> &'static str {
        "sliding_window"
    }

    fn next_epoch(&mut self, table: &Table, dev: &mut SimDevice) -> EpochPlan {
        let window_cap = self.params.buffer_tuples(table);
        let mut window: Vec<Tuple> = Vec::with_capacity(window_cap);
        let mut segments = Vec::with_capacity(table.num_blocks() + 1);

        for b in 0..table.num_blocks() {
            let before = dev.stats().io_seconds;
            let incoming = table
                .scan_block_sequential(b, b == 0, dev)
                .expect("block id in range");
            // Small CPU cost for copying tuples through the window.
            let bytes = table.block(b).expect("in range").bytes;
            dev.charge_seconds(self.params.buffering_cost(0, bytes.min(window_cap * 256)));
            let mut emitted = Vec::new();
            for t in incoming {
                if window.len() < window_cap {
                    window.push(t);
                } else {
                    let slot = self.rng.gen_range(0..window.len());
                    emitted.push(std::mem::replace(&mut window[slot], t));
                }
            }
            segments.push(Segment::new(emitted, dev.stats().io_seconds - before));
        }

        // Drain the window in random order.
        let mut drain = Vec::with_capacity(window.len());
        while !window.is_empty() {
            let slot = self.rng.gen_range(0..window.len());
            drain.push(window.swap_remove(slot));
        }
        segments.push(Segment::new(drain, 0.0));
        EpochPlan {
            segments,
            setup_seconds: 0.0,
        }
    }

    fn buffer_tuples(&self, table: &Table) -> usize {
        self.params.buffer_tuples(table)
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.params.seed ^ 0x51D3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};

    fn clustered(n: usize) -> Table {
        DatasetSpec::higgs_like(n)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(2 * 8192)
            .build_table(1)
            .unwrap()
    }

    #[test]
    fn emits_each_tuple_exactly_once() {
        let t = clustered(500);
        let mut s = SlidingWindowShuffle::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        let mut ids = s.next_epoch(&t, &mut dev).id_sequence();
        ids.sort_unstable();
        assert_eq!(ids, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn order_is_locally_shuffled_but_globally_linear() {
        let t = clustered(2000);
        let mut s = SlidingWindowShuffle::new(StrategyParams::default().with_buffer_fraction(0.1));
        let mut dev = SimDevice::hdd(0);
        let ids = s.next_epoch(&t, &mut dev).id_sequence();
        assert_ne!(
            ids,
            (0..2000).collect::<Vec<_>>(),
            "some shuffling must happen"
        );
        // Figure 3(b): the emitted order stays near the diagonal — the mean
        // displacement is on the order of the window size, far below what a
        // full shuffle would produce (~ m/3).
        let mean_disp: f64 = ids
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id as f64 - pos as f64).abs())
            .sum::<f64>()
            / ids.len() as f64;
        assert!(
            mean_disp < 500.0,
            "mean displacement {mean_disp} too global"
        );
        assert!(
            mean_disp > 10.0,
            "mean displacement {mean_disp} suspiciously tiny"
        );
    }

    #[test]
    fn clustered_labels_stay_mostly_ordered() {
        let t = clustered(2000);
        let mut s = SlidingWindowShuffle::new(StrategyParams::default().with_buffer_fraction(0.1));
        let mut dev = SimDevice::hdd(0);
        let labels = s.next_epoch(&t, &mut dev).label_sequence();
        // Figure 3(f): the first quarter is still almost all negatives.
        let head = &labels[..500];
        let neg = head.iter().filter(|&&l| l < 0.0).count();
        assert!(neg > 450, "head should remain ~all negative, got {neg}/500");
    }

    #[test]
    fn io_close_to_no_shuffle() {
        let t = clustered(2000);
        let mut sw = SlidingWindowShuffle::new(StrategyParams::default().with_buffer_fraction(0.1));
        let mut dev = SimDevice::hdd(0);
        let sw_io = sw.next_epoch(&t, &mut dev).io_seconds();
        let mut ns = crate::no_shuffle::NoShuffle::new();
        let mut dev2 = SimDevice::hdd(0);
        let ns_io = ns.next_epoch(&t, &mut dev2).io_seconds();
        assert!(
            sw_io < ns_io * 1.15,
            "sliding window {sw_io} vs no shuffle {ns_io}"
        );
    }
}
