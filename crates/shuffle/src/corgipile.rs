//! CorgiPile (§4): the two-level hierarchical shuffle.
//!
//! Per epoch:
//!
//! 1. **Block-level shuffle** — permute the block ids (sampling without
//!    replacement);
//! 2. **Tuple-level shuffle** — read the next `n` blocks (the buffer
//!    capacity, `buffer_fraction × N`) into an in-memory buffer, shuffle
//!    all buffered tuples, and emit them.
//!
//! Two block-sampling modes are provided:
//!
//! * [`BlockSampleMode::FullCoverage`] — the deployed behaviour of the
//!   PyTorch and PostgreSQL integrations (§5.1, §6.2): every epoch visits
//!   *all* `N` blocks, consumed buffer-by-buffer from a fresh permutation.
//! * [`BlockSampleMode::SampleN`] — Algorithm 1 exactly as analysed in
//!   §4.2: each epoch trains on only `n` randomly chosen blocks (one buffer
//!   fill). Used by the theory-validation experiments.
//!
//! I/O per buffer fill: `n` random block reads + buffer copy + Fisher–Yates
//! — the costs that the double-buffering optimization (§6.3) overlaps with
//! SGD compute.

use crate::plan::{EpochPlan, Segment};
use crate::strategy::{ShuffleStrategy, StrategyParams};
use corgipile_data::rng::shuffle_in_place;
use corgipile_storage::{SimDevice, Table, TupleBuffer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How block-level sampling treats the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockSampleMode {
    /// Visit all `N` blocks per epoch (system behaviour).
    FullCoverage,
    /// Visit only `n` sampled blocks per epoch (Algorithm 1).
    SampleN,
}

/// The CorgiPile strategy.
#[derive(Debug)]
pub struct CorgiPile {
    params: StrategyParams,
    mode: BlockSampleMode,
    rng: StdRng,
}

impl CorgiPile {
    /// Create a CorgiPile strategy.
    pub fn new(params: StrategyParams, mode: BlockSampleMode) -> Self {
        let rng = StdRng::seed_from_u64(params.seed ^ 0xC0461);
        CorgiPile { params, mode, rng }
    }

    /// The buffer capacity in blocks for `table` (the paper's `n`).
    pub fn buffer_blocks(&self, table: &Table) -> usize {
        self.params.buffer_blocks(table)
    }

    /// Fill one buffer from `blocks`, shuffle it, and cost the work.
    fn fill_segment(&mut self, table: &Table, blocks: &[usize], dev: &mut SimDevice) -> Segment {
        let mut span = dev.telemetry().clone().span("shuffle.corgipile.fill");
        let before = dev.stats().io_seconds;
        let mut bytes = 0usize;
        let mut expected: usize = blocks
            .iter()
            .map(|&b| table.block(b).expect("in range").tuple_count())
            .sum();
        expected = expected.max(1);
        let mut buffer = TupleBuffer::with_capacity(expected);
        for &b in blocks {
            bytes += table.block(b).expect("in range").bytes;
            buffer.fill_from(table.read_block(b, dev).expect("in range"));
        }
        // Buffer copy + tuple-level Fisher–Yates (the §4.1 overheads).
        dev.charge_seconds(self.params.buffering_cost(buffer.len(), bytes));
        let rng = &mut self.rng;
        buffer.shuffle_with(|i| rng.gen_range(0..=i));
        let io = dev.stats().io_seconds - before;
        span.add_sim_seconds(io);
        Segment::new(buffer.drain(), io)
    }
}

impl ShuffleStrategy for CorgiPile {
    fn name(&self) -> &'static str {
        "corgipile"
    }

    fn next_epoch(&mut self, table: &Table, dev: &mut SimDevice) -> EpochPlan {
        // Delegate to the streaming path so serial and pipelined execution
        // share one fill implementation (and hence one RNG stream).
        let mut segments = Vec::new();
        let setup_seconds = self.stream_epoch(table, dev, &mut |seg| {
            segments.push(seg);
            true
        });
        EpochPlan {
            segments,
            setup_seconds,
        }
    }

    fn stream_epoch(
        &mut self,
        table: &Table,
        dev: &mut SimDevice,
        emit: &mut dyn FnMut(Segment) -> bool,
    ) -> f64 {
        let n = self.params.buffer_blocks(table);
        let mut order: Vec<usize> = (0..table.num_blocks()).collect();
        shuffle_in_place(&mut self.rng, &mut order);
        let chosen: &[usize] = match self.mode {
            BlockSampleMode::FullCoverage => &order,
            BlockSampleMode::SampleN => &order[..n.min(order.len())],
        };
        for chunk in chosen.chunks(n.max(1)) {
            let seg = self.fill_segment(table, chunk, dev);
            if !emit(seg) {
                break;
            }
        }
        0.0
    }

    fn buffer_tuples(&self, table: &Table) -> usize {
        (self.params.buffer_blocks(table) as f64 * table.tuples_per_block()).ceil() as usize
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.params.seed ^ 0xC0461);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};

    fn clustered(n: usize) -> Table {
        DatasetSpec::higgs_like(n)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(2 * 8192)
            .build_table(1)
            .unwrap()
    }

    #[test]
    fn full_coverage_emits_each_tuple_once() {
        let t = clustered(800);
        let mut s = CorgiPile::new(StrategyParams::default(), BlockSampleMode::FullCoverage);
        let mut dev = SimDevice::hdd(0);
        let mut ids = s.next_epoch(&t, &mut dev).id_sequence();
        ids.sort_unstable();
        assert_eq!(ids, (0..800).collect::<Vec<_>>());
    }

    #[test]
    fn sample_n_visits_only_n_blocks() {
        let t = clustered(800);
        let p = StrategyParams::default().with_buffer_fraction(0.25);
        let n = p.buffer_blocks(&t);
        let mut s = CorgiPile::new(p, BlockSampleMode::SampleN);
        let mut dev = SimDevice::hdd(0);
        let plan = s.next_epoch(&t, &mut dev);
        assert_eq!(plan.segments.len(), 1);
        let expected: usize = (n as f64 * t.tuples_per_block()).round() as usize;
        let got = plan.num_tuples();
        assert!(
            (got as f64 - expected as f64).abs() <= t.tuples_per_block() * n as f64 * 0.5,
            "SampleN emitted {got}, expected ≈{expected}"
        );
        assert!(got < 800 / 2, "SampleN must not cover the table");
    }

    #[test]
    fn buffer_segments_mix_labels_on_clustered_data() {
        // The heart of Figure 4: each buffer contains blocks from both label
        // regions, and the tuple shuffle mixes them uniformly.
        let t = clustered(2000);
        let mut s = CorgiPile::new(
            StrategyParams::default().with_buffer_fraction(0.2),
            BlockSampleMode::FullCoverage,
        );
        let mut dev = SimDevice::hdd(0);
        let plan = s.next_epoch(&t, &mut dev);
        assert!(plan.segments.len() >= 3, "expect several buffer fills");
        let mut mixed_segments = 0;
        for seg in &plan.segments {
            let pos = seg.tuples.iter().filter(|t| t.label > 0.0).count();
            let frac = pos as f64 / seg.tuples.len() as f64;
            if frac > 0.15 && frac < 0.85 {
                mixed_segments += 1;
            }
        }
        assert!(
            mixed_segments * 2 >= plan.segments.len(),
            "most buffers should mix labels: {mixed_segments}/{}",
            plan.segments.len()
        );
    }

    #[test]
    fn within_segment_order_is_shuffled() {
        let t = clustered(1000);
        let mut s = CorgiPile::new(
            StrategyParams::default().with_buffer_fraction(0.3),
            BlockSampleMode::FullCoverage,
        );
        let mut dev = SimDevice::hdd(0);
        let plan = s.next_epoch(&t, &mut dev);
        let seg = &plan.segments[0];
        let ids: Vec<u64> = seg.tuples.iter().map(|t| t.id).collect();
        // Must not be a concatenation of sorted runs: count descents.
        let descents = ids.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(
            descents as f64 > 0.3 * ids.len() as f64,
            "only {descents} descents in {} tuples",
            ids.len()
        );
    }

    #[test]
    fn io_pays_one_seek_per_block_plus_buffering() {
        let t = clustered(800);
        let mut s = CorgiPile::new(StrategyParams::default(), BlockSampleMode::FullCoverage);
        let mut dev = SimDevice::hdd(0);
        s.next_epoch(&t, &mut dev);
        assert_eq!(dev.stats().random_reads as usize, t.num_blocks());
    }

    #[test]
    fn io_within_constant_factor_of_no_shuffle_for_large_blocks() {
        // With block transfer time ≫ seek latency the per-block seek
        // amortizes away (Appendix A). 1 MB on SSD: 1 ms transfer vs 0.1 ms
        // latency.
        let t = DatasetSpec::higgs_like(50_000)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(1 << 20)
            .build_table(2)
            .unwrap();
        let mut cp = CorgiPile::new(StrategyParams::default(), BlockSampleMode::FullCoverage);
        let mut d1 = SimDevice::ssd(0);
        let cp_io = cp.next_epoch(&t, &mut d1).io_seconds();
        let mut ns = crate::no_shuffle::NoShuffle::new();
        let mut d2 = SimDevice::ssd(0);
        let ns_io = ns.next_epoch(&t, &mut d2).io_seconds();
        assert!(
            cp_io < ns_io * 1.5,
            "CorgiPile {cp_io} should be within 1.5× of No Shuffle {ns_io}"
        );
    }

    #[test]
    fn fills_record_telemetry_spans_with_io_attribution() {
        let t = clustered(2000);
        let mut s = CorgiPile::new(
            StrategyParams::default().with_buffer_fraction(0.2),
            BlockSampleMode::FullCoverage,
        );
        let mut dev = SimDevice::hdd(0);
        let tel = corgipile_storage::Telemetry::enabled();
        dev.set_telemetry(tel.clone());
        let plan = s.next_epoch(&t, &mut dev);
        let snap = tel.snapshot();
        let sim = snap
            .metrics
            .histograms
            .iter()
            .find(|(name, _)| name == "shuffle.corgipile.fill.sim_seconds")
            .map(|(_, h)| h.clone())
            .expect("fill span histogram registered");
        assert_eq!(sim.count as usize, plan.segments.len());
        assert!(
            (sim.sum - plan.io_seconds()).abs() < 1e-9,
            "span sim time {} should equal plan io {}",
            sim.sum,
            plan.io_seconds()
        );
    }

    #[test]
    fn epochs_differ_and_reset_replays() {
        let t = clustered(500);
        let mut s = CorgiPile::new(StrategyParams::default(), BlockSampleMode::FullCoverage);
        let mut dev = SimDevice::hdd(0);
        let a = s.next_epoch(&t, &mut dev).id_sequence();
        let b = s.next_epoch(&t, &mut dev).id_sequence();
        assert_ne!(a, b, "fresh permutations per epoch");
        s.reset();
        let a2 = s.next_epoch(&t, &mut dev).id_sequence();
        assert_eq!(a, a2);
    }

    #[test]
    fn n_equals_big_buffer_degenerates_to_full_shuffle_like_order() {
        // buffer_fraction = 1.0 → n = N → one segment covering everything,
        // fully shuffled (the α = 1 case of Theorem 1).
        let t = clustered(500);
        let mut s = CorgiPile::new(
            StrategyParams::default().with_buffer_fraction(1.0),
            BlockSampleMode::FullCoverage,
        );
        let mut dev = SimDevice::hdd(0);
        let plan = s.next_epoch(&t, &mut dev);
        assert_eq!(plan.segments.len(), 1);
        let labels = plan.label_sequence();
        let head_pos = labels[..100].iter().filter(|&&l| l > 0.0).count();
        assert!(
            head_pos > 25 && head_pos < 75,
            "head positives {head_pos} not mixed"
        );
    }
}
