//! Order diagnostics: the measurements behind Figures 3 and 4.
//!
//! Given the tuple stream of one epoch, these helpers compute
//!
//! * the **tuple-id trace** — emitted position → original storage position
//!   (Figures 3a–3d, 4a);
//! * the **label distribution** — counts of negative/positive labels per
//!   window of `w` consecutive emissions (Figures 3e–3h, 4b);
//! * the **mean displacement** — a scalar randomness score used by tests
//!   and the Table-1 summary.

use corgipile_storage::{RetryPolicy, SimDevice, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Label counts within one window of the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelWindow {
    /// First emitted position covered by the window.
    pub start: usize,
    /// Number of labels < 0 (or == 0 for multi-class "first class").
    pub negative: usize,
    /// Number of labels > 0.
    pub positive: usize,
}

/// The tuple-id trace: `trace[k]` is the original storage position of the
/// `k`-th emitted tuple.
pub fn tuple_id_trace(ids: &[u64]) -> Vec<(usize, u64)> {
    ids.iter().copied().enumerate().collect()
}

/// Label counts per window of `window` consecutive emissions (the paper
/// uses windows of 20 tuples for its 1 000-tuple example).
pub fn label_distribution(labels: &[f32], window: usize) -> Vec<LabelWindow> {
    assert!(window > 0, "window must be positive");
    labels
        .chunks(window)
        .enumerate()
        .map(|(i, chunk)| LabelWindow {
            start: i * window,
            negative: chunk.iter().filter(|&&l| l < 0.0).count(),
            positive: chunk.iter().filter(|&&l| l > 0.0).count(),
        })
        .collect()
}

/// Mean absolute displacement between emitted position and storage
/// position, normalized by the stream length.
///
/// * ≈ 0 — not shuffled (No Shuffle, Sliding-Window's near-diagonal);
/// * ≈ 1/3 — a uniform random permutation's expectation.
pub fn order_displacement(ids: &[u64]) -> f64 {
    if ids.is_empty() {
        return 0.0;
    }
    let m = ids.len() as f64;
    ids.iter()
        .enumerate()
        .map(|(pos, &id)| (id as f64 - pos as f64).abs())
        .sum::<f64>()
        / (m * m)
}

/// χ²-style uniformity score of per-window positive fractions against the
/// global positive fraction; lower is more uniform (a full shuffle scores
/// near the sampling noise floor).
pub fn label_uniformity_score(labels: &[f32], window: usize) -> f64 {
    let windows = label_distribution(labels, window);
    if windows.is_empty() {
        return 0.0;
    }
    let total_pos: usize = windows.iter().map(|w| w.positive).sum();
    let total: usize = windows.iter().map(|w| w.positive + w.negative).sum();
    if total == 0 {
        return 0.0;
    }
    let p = total_pos as f64 / total as f64;
    windows
        .iter()
        .map(|w| {
            let n = (w.positive + w.negative) as f64;
            if n == 0.0 {
                return 0.0;
            }
            let frac = w.positive as f64 / n;
            (frac - p) * (frac - p)
        })
        .sum::<f64>()
        / windows.len() as f64
}

/// The block-level data variance estimate ĥ_D driving the cost-based
/// planner, plus its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockVariance {
    /// Between-block variance of per-block label means, normalized by the
    /// overall label variance and clamped to [0, 1]. ≈ 0 for shuffled
    /// storage, ≈ 1 for label-pure (adversarially clustered) blocks.
    pub hd: f64,
    /// Blocks the estimate was computed from.
    pub blocks_sampled: usize,
    /// Total blocks in the table.
    pub blocks_total: usize,
    /// Simulated I/O charged to produce the estimate (0 for the exact,
    /// in-memory computation).
    pub io_seconds: f64,
}

fn variance_from_blocks(per_block: &[(usize, f64)], all_labels: &[f32]) -> f64 {
    let total = all_labels.len();
    if total == 0 || per_block.is_empty() {
        return 0.0;
    }
    let n = total as f64;
    let mean = all_labels.iter().map(|&l| l as f64).sum::<f64>() / n;
    let var = all_labels
        .iter()
        .map(|&l| (l as f64 - mean) * (l as f64 - mean))
        .sum::<f64>()
        / n;
    if var < 1e-12 {
        return 0.0;
    }
    let between: f64 = per_block
        .iter()
        .map(|&(count, block_mean)| count as f64 * (block_mean - mean) * (block_mean - mean))
        .sum();
    (between / (n * var)).clamp(0.0, 1.0)
}

/// Exact block-level variance ĥ_D of `table` (no I/O charged; reads the
/// in-memory heap directly). Ground truth for the sampled estimator.
pub fn block_variance_exact(table: &Table) -> BlockVariance {
    let blocks_total = table.num_blocks();
    let mut labels: Vec<f32> = Vec::with_capacity(table.num_tuples() as usize);
    let mut per_block: Vec<(usize, f64)> = Vec::with_capacity(blocks_total);
    for b in 0..blocks_total {
        let tuples = table.block_tuples(b).expect("block in range");
        if tuples.is_empty() {
            continue;
        }
        let sum: f64 = tuples.iter().map(|t| t.label as f64).sum();
        per_block.push((tuples.len(), sum / tuples.len() as f64));
        labels.extend(tuples.iter().map(|t| t.label));
    }
    BlockVariance {
        hd: variance_from_blocks(&per_block, &labels),
        blocks_sampled: blocks_total,
        blocks_total,
        io_seconds: 0.0,
    }
}

/// Estimate ĥ_D from a bounded stratified sample of blocks, charging the
/// real random-read cost to `dev`.
///
/// Reads `ceil(fraction × N)` blocks (at least 2 where the table allows),
/// one seeded-random pick per equal-width stratum of the block range.
/// Stratification matters on exactly the layouts the estimator exists to
/// detect: an adversarially clustered table is a few long label-pure runs,
/// and a small *uniform* sample can land entirely inside one run and report
/// ĥ_D ≈ 0 where the true value is ≈ 1. One pick per stratum covers every
/// run proportionally to its length. Blocks that fail even after retries
/// are skipped rather than failing the estimate — a statistics pass must
/// never kill the query it serves.
pub fn block_variance_sampled(
    table: &Table,
    fraction: f64,
    seed: u64,
    dev: &mut SimDevice,
) -> BlockVariance {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "sample fraction must be in (0, 1]"
    );
    let blocks_total = table.num_blocks();
    let want = ((blocks_total as f64 * fraction).ceil() as usize)
        .clamp(2.min(blocks_total.max(1)), blocks_total.max(1));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4D_5A);
    let mut picks: Vec<usize> = Vec::with_capacity(want);
    for s in 0..want {
        // Stratum s covers [s·N/want, (s+1)·N/want); pick one block in it.
        let lo = s * blocks_total / want;
        let hi = (((s + 1) * blocks_total / want).max(lo + 1)).min(blocks_total);
        picks.push(rng.gen_range(lo..hi));
    }
    picks.dedup();
    let before = dev.stats().io_seconds;
    let policy = RetryPolicy::default();
    let mut labels: Vec<f32> = Vec::new();
    let mut per_block: Vec<(usize, f64)> = Vec::new();
    for &b in &picks {
        let tuples = match table.read_block_retry(b, dev, &policy) {
            Ok(tuples) => tuples,
            Err(_) => continue,
        };
        if tuples.is_empty() {
            continue;
        }
        let sum: f64 = tuples.iter().map(|t| t.label as f64).sum();
        per_block.push((tuples.len(), sum / tuples.len() as f64));
        labels.extend(tuples.iter().map(|t| t.label));
    }
    BlockVariance {
        hd: variance_from_blocks(&per_block, &labels),
        blocks_sampled: per_block.len(),
        blocks_total,
        io_seconds: dev.stats().io_seconds - before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::rng::shuffle_in_place;

    #[test]
    fn trace_is_positional() {
        let ids = vec![5u64, 2, 9];
        assert_eq!(tuple_id_trace(&ids), vec![(0, 5), (1, 2), (2, 9)]);
    }

    #[test]
    fn label_distribution_counts_windows() {
        let labels = vec![-1.0, -1.0, 1.0, 1.0, 1.0, -1.0];
        let d = label_distribution(&labels, 3);
        assert_eq!(d.len(), 2);
        assert_eq!(
            d[0],
            LabelWindow {
                start: 0,
                negative: 2,
                positive: 1
            }
        );
        assert_eq!(
            d[1],
            LabelWindow {
                start: 3,
                negative: 1,
                positive: 2
            }
        );
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        label_distribution(&[1.0], 0);
    }

    #[test]
    fn displacement_zero_for_identity_third_for_random() {
        let identity: Vec<u64> = (0..10_000).collect();
        assert!(order_displacement(&identity) < 1e-9);

        let mut random = identity.clone();
        shuffle_in_place(&mut StdRng::seed_from_u64(1), &mut random);
        let d = order_displacement(&random);
        assert!((d - 1.0 / 3.0).abs() < 0.02, "random displacement {d}");
    }

    #[test]
    fn displacement_reversed_is_half() {
        let rev: Vec<u64> = (0..10_000).rev().collect();
        let d = order_displacement(&rev);
        assert!((d - 0.5).abs() < 0.01, "reverse displacement {d}");
    }

    #[test]
    fn uniformity_scores_separate_clustered_from_shuffled() {
        // Clustered: 500 negatives then 500 positives.
        let clustered: Vec<f32> = (0..1000)
            .map(|i| if i < 500 { -1.0 } else { 1.0 })
            .collect();
        let mut shuffled = clustered.clone();
        shuffle_in_place(&mut StdRng::seed_from_u64(2), &mut shuffled);
        let s_clustered = label_uniformity_score(&clustered, 20);
        let s_shuffled = label_uniformity_score(&shuffled, 20);
        assert!(
            s_clustered > 10.0 * s_shuffled,
            "clustered {s_clustered} vs shuffled {s_shuffled}"
        );
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(order_displacement(&[]), 0.0);
        assert_eq!(label_uniformity_score(&[], 5), 0.0);
    }

    use corgipile_data::{DatasetSpec, Order};
    use proptest::prelude::*;

    fn table(n: usize, order: Order) -> Table {
        DatasetSpec::higgs_like(n)
            .with_order(order)
            .with_block_bytes(8192)
            .build_table(1)
            .unwrap()
    }

    #[test]
    fn exact_hd_separates_clustered_from_shuffled() {
        let clustered = block_variance_exact(&table(3000, Order::ClusteredByLabel));
        let shuffled = block_variance_exact(&table(3000, Order::Shuffled));
        assert!(clustered.hd > 0.8, "clustered hd {}", clustered.hd);
        assert!(shuffled.hd < 0.1, "shuffled hd {}", shuffled.hd);
        assert_eq!(clustered.io_seconds, 0.0);
        assert_eq!(clustered.blocks_sampled, clustered.blocks_total);
    }

    #[test]
    fn sampled_hd_charges_io_and_reads_only_the_sample() {
        let t = table(3000, Order::ClusteredByLabel);
        let mut dev = SimDevice::hdd(0);
        let est = block_variance_sampled(&t, 0.1, 7, &mut dev);
        assert!(est.io_seconds > 0.0);
        assert!(est.blocks_sampled < est.blocks_total);
        assert_eq!(dev.stats().random_reads as usize, est.blocks_sampled);
        // A second estimate on the same device costs again (no hidden cache).
        assert!(est.blocks_sampled >= 2);
    }

    #[test]
    fn sampled_hd_survives_injected_faults_by_skipping() {
        let t = table(3000, Order::ClusteredByLabel);
        let mut dev = SimDevice::hdd(0);
        dev.set_fault_plan(corgipile_storage::FaultPlan::new(3).with_permanent(0, 1));
        let est = block_variance_sampled(&t, 1.0, 7, &mut dev);
        assert_eq!(est.blocks_sampled, est.blocks_total - 1);
        assert!(est.hd > 0.8, "estimate still usable: {}", est.hd);
    }

    proptest! {
        // Satellite: ĥ_D from a 10% block sample stays within a tolerance
        // band of the exact value, on adversarial and benign layouts alike.
        #[test]
        fn prop_sampled_hd_tracks_exact(
            n in 2500usize..6000,
            seed in 0u64..32,
            layout in 0usize..2,
        ) {
            let clustered = layout == 1;
            let order = if clustered { Order::ClusteredByLabel } else { Order::Shuffled };
            let t = table(n, order);
            // 8 KiB blocks over ≥2500 higgs-like tuples: ≥20 blocks.
            assert!(t.num_blocks() >= 20, "degenerate layout: {}", t.num_blocks());
            let exact = block_variance_exact(&t).hd;
            let mut dev = SimDevice::hdd(0);
            let est = block_variance_sampled(&t, 0.1, seed, &mut dev).hd;
            prop_assert!(
                (est - exact).abs() <= 0.2,
                "sampled {est} vs exact {exact} (n={n}, clustered={clustered})"
            );
        }
    }
}
