//! Order diagnostics: the measurements behind Figures 3 and 4.
//!
//! Given the tuple stream of one epoch, these helpers compute
//!
//! * the **tuple-id trace** — emitted position → original storage position
//!   (Figures 3a–3d, 4a);
//! * the **label distribution** — counts of negative/positive labels per
//!   window of `w` consecutive emissions (Figures 3e–3h, 4b);
//! * the **mean displacement** — a scalar randomness score used by tests
//!   and the Table-1 summary.

/// Label counts within one window of the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelWindow {
    /// First emitted position covered by the window.
    pub start: usize,
    /// Number of labels < 0 (or == 0 for multi-class "first class").
    pub negative: usize,
    /// Number of labels > 0.
    pub positive: usize,
}

/// The tuple-id trace: `trace[k]` is the original storage position of the
/// `k`-th emitted tuple.
pub fn tuple_id_trace(ids: &[u64]) -> Vec<(usize, u64)> {
    ids.iter().copied().enumerate().collect()
}

/// Label counts per window of `window` consecutive emissions (the paper
/// uses windows of 20 tuples for its 1 000-tuple example).
pub fn label_distribution(labels: &[f32], window: usize) -> Vec<LabelWindow> {
    assert!(window > 0, "window must be positive");
    labels
        .chunks(window)
        .enumerate()
        .map(|(i, chunk)| LabelWindow {
            start: i * window,
            negative: chunk.iter().filter(|&&l| l < 0.0).count(),
            positive: chunk.iter().filter(|&&l| l > 0.0).count(),
        })
        .collect()
}

/// Mean absolute displacement between emitted position and storage
/// position, normalized by the stream length.
///
/// * ≈ 0 — not shuffled (No Shuffle, Sliding-Window's near-diagonal);
/// * ≈ 1/3 — a uniform random permutation's expectation.
pub fn order_displacement(ids: &[u64]) -> f64 {
    if ids.is_empty() {
        return 0.0;
    }
    let m = ids.len() as f64;
    ids.iter()
        .enumerate()
        .map(|(pos, &id)| (id as f64 - pos as f64).abs())
        .sum::<f64>()
        / (m * m)
}

/// χ²-style uniformity score of per-window positive fractions against the
/// global positive fraction; lower is more uniform (a full shuffle scores
/// near the sampling noise floor).
pub fn label_uniformity_score(labels: &[f32], window: usize) -> f64 {
    let windows = label_distribution(labels, window);
    if windows.is_empty() {
        return 0.0;
    }
    let total_pos: usize = windows.iter().map(|w| w.positive).sum();
    let total: usize = windows.iter().map(|w| w.positive + w.negative).sum();
    if total == 0 {
        return 0.0;
    }
    let p = total_pos as f64 / total as f64;
    windows
        .iter()
        .map(|w| {
            let n = (w.positive + w.negative) as f64;
            if n == 0.0 {
                return 0.0;
            }
            let frac = w.positive as f64 / n;
            (frac - p) * (frac - p)
        })
        .sum::<f64>()
        / windows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::rng::shuffle_in_place;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trace_is_positional() {
        let ids = vec![5u64, 2, 9];
        assert_eq!(tuple_id_trace(&ids), vec![(0, 5), (1, 2), (2, 9)]);
    }

    #[test]
    fn label_distribution_counts_windows() {
        let labels = vec![-1.0, -1.0, 1.0, 1.0, 1.0, -1.0];
        let d = label_distribution(&labels, 3);
        assert_eq!(d.len(), 2);
        assert_eq!(
            d[0],
            LabelWindow {
                start: 0,
                negative: 2,
                positive: 1
            }
        );
        assert_eq!(
            d[1],
            LabelWindow {
                start: 3,
                negative: 1,
                positive: 2
            }
        );
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        label_distribution(&[1.0], 0);
    }

    #[test]
    fn displacement_zero_for_identity_third_for_random() {
        let identity: Vec<u64> = (0..10_000).collect();
        assert!(order_displacement(&identity) < 1e-9);

        let mut random = identity.clone();
        shuffle_in_place(&mut StdRng::seed_from_u64(1), &mut random);
        let d = order_displacement(&random);
        assert!((d - 1.0 / 3.0).abs() < 0.02, "random displacement {d}");
    }

    #[test]
    fn displacement_reversed_is_half() {
        let rev: Vec<u64> = (0..10_000).rev().collect();
        let d = order_displacement(&rev);
        assert!((d - 0.5).abs() < 0.01, "reverse displacement {d}");
    }

    #[test]
    fn uniformity_scores_separate_clustered_from_shuffled() {
        // Clustered: 500 negatives then 500 positives.
        let clustered: Vec<f32> = (0..1000)
            .map(|i| if i < 500 { -1.0 } else { 1.0 })
            .collect();
        let mut shuffled = clustered.clone();
        shuffle_in_place(&mut StdRng::seed_from_u64(2), &mut shuffled);
        let s_clustered = label_uniformity_score(&clustered, 20);
        let s_shuffled = label_uniformity_score(&shuffled, 20);
        assert!(
            s_clustered > 10.0 * s_shuffled,
            "clustered {s_clustered} vs shuffled {s_shuffled}"
        );
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(order_displacement(&[]), 0.0);
        assert_eq!(label_uniformity_score(&[], 5), 0.0);
    }
}
