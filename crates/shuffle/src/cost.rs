//! Cost model for strategy-adaptive planning.
//!
//! Scores each DB-available [`StrategyKind`] (and, for tuple-buffered kinds,
//! a small sweep of buffer fractions) as
//!
//! ```text
//! score = setup_io + epochs × convergence_factor(kind, ĥ_D, α) × epoch_io
//! ```
//!
//! `epoch_io` is the analytic per-epoch read cost on the target
//! [`DeviceProfile`] (sequential scan, block-random scan, or near-sequential
//! reversal scan), plus [`StrategyParams::buffering_cost`] for strategies
//! that stage tuples through a buffer. `convergence_factor` folds the
//! block-level data variance ĥ_D into an *effective epochs-to-target*
//! multiplier: strategies that mix poorly on clustered data (high ĥ_D) pay a
//! large factor, CorgiPile's factor shrinks with buffer fraction α, and
//! Corgi²'s shrinks further because re-clustering with I/O budget `b`
//! attenuates the residual variance by (1 − b)². One-off costs (full
//! materialized shuffle, bounded RECLUSTER) enter as `setup_io`, so cheap
//! setups win short runs and thorough setups win long ones.

use crate::strategy::{StrategyKind, StrategyParams};
use corgipile_storage::{Access, DeviceProfile, Table};

/// One scored (strategy, buffer fraction) candidate.
#[derive(Debug, Clone)]
pub struct CostEstimate {
    /// The strategy being scored.
    pub kind: StrategyKind,
    /// Buffer fraction α used for tuple-buffered kinds (params default
    /// otherwise).
    pub buffer_fraction: f64,
    /// The block-variance estimate the score was computed from.
    pub hd: f64,
    /// One-off setup I/O in simulated seconds (materialization, RECLUSTER).
    pub predicted_setup_io: f64,
    /// Per-epoch read + buffering cost in simulated seconds.
    pub predicted_epoch_io: f64,
    /// Total predicted cost: `setup + epochs × factor × epoch_io`.
    pub score: f64,
}

/// Cost-based strategy chooser.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Number of training epochs the query will run.
    pub epochs: usize,
}

impl CostModel {
    /// A model for a run of `epochs` epochs.
    pub fn new(epochs: usize) -> Self {
        CostModel {
            epochs: epochs.max(1),
        }
    }

    /// Score every DB-available strategy; tuple-buffered kinds are swept
    /// over a small set of buffer fractions starting at the params default.
    pub fn candidates(
        &self,
        table: &Table,
        profile: &DeviceProfile,
        params: &StrategyParams,
        hd: f64,
    ) -> Vec<CostEstimate> {
        let hd = hd.clamp(0.0, 1.0);
        let mut out = Vec::new();
        for kind in StrategyKind::all() {
            if !kind.available_in_db() {
                continue;
            }
            // Space guardrail: Shuffle Once duplicates the whole table on
            // disk (disk_space_factor 2.0) — the planner never chooses that
            // silently; the user can still request it explicitly.
            if kind == StrategyKind::ShuffleOnce {
                continue;
            }
            if kind.is_tuple_buffered() {
                let mut sweep = vec![params.buffer_fraction];
                for alpha in [0.2, 0.3] {
                    if (alpha - params.buffer_fraction).abs() > 1e-12 {
                        sweep.push(alpha);
                    }
                }
                for alpha in sweep {
                    out.push(self.estimate(kind, table, profile, params, hd, alpha));
                }
            } else {
                out.push(self.estimate(kind, table, profile, params, hd, params.buffer_fraction));
            }
        }
        out
    }

    /// The minimum-score candidate.
    pub fn choose(
        &self,
        table: &Table,
        profile: &DeviceProfile,
        params: &StrategyParams,
        hd: f64,
    ) -> CostEstimate {
        self.candidates(table, profile, params, hd)
            .into_iter()
            .min_by(|a, b| a.score.total_cmp(&b.score))
            .expect("at least one DB-available strategy")
    }

    fn estimate(
        &self,
        kind: StrategyKind,
        table: &Table,
        profile: &DeviceProfile,
        params: &StrategyParams,
        hd: f64,
        alpha: f64,
    ) -> CostEstimate {
        let total_bytes = table.total_bytes();
        let num_blocks = table.num_blocks().max(1);
        let transfer = profile.read_time(total_bytes, Access::Sequential);
        let seek = profile.seek_latency_s;

        let sequential = seek + transfer;
        let block_random = num_blocks as f64 * seek + transfer;
        // Reversal pays at most two seeks per epoch: start + rotation wrap.
        let reversal = 2.0 * seek + transfer;

        let full_shuffle = full_shuffle_io_profile(profile, total_bytes);
        let buffered_tuples = ((table.num_tuples() as f64) * alpha).ceil() as usize;
        let buffering = params.buffering_cost(buffered_tuples.max(1), total_bytes);

        // `factor` is the effective epochs-to-target multiplier relative to
        // a fully uniform stream: the fixed part prices residual ordering
        // bias at h_D = 0 (deterministic scans pay the most, two-level
        // shuffling the least), the h_D-linear part prices sensitivity to
        // clustered storage, and α/io_budget attenuate it for the
        // strategies that actually mix across blocks.
        let (setup, epoch_io, factor) = match kind {
            StrategyKind::NoShuffle => (0.0, sequential, 1.35 + 8.0 * hd),
            StrategyKind::ShuffleOnce => (full_shuffle, sequential, 1.05),
            StrategyKind::TupleOnly => (0.0, sequential + buffering, 1.25 + 6.0 * hd),
            StrategyKind::BlockOnly => (0.0, block_random, 1.15 + 4.0 * hd),
            StrategyKind::BlockReversal => (0.0, reversal, 1.2 + 2.5 * hd),
            StrategyKind::CorgiPile => (
                0.0,
                block_random + buffering,
                1.0 + 0.5 * hd * (1.0 - alpha) + 0.02 * alpha,
            ),
            StrategyKind::Corgi2 => {
                let b = params.io_budget;
                (
                    b * full_shuffle,
                    block_random + buffering,
                    1.0 + 0.5 * hd * (1.0 - b) * (1.0 - b) * (1.0 - alpha) + 0.02 * alpha,
                )
            }
            // Not DB-available; scored only if explicitly requested.
            _ => (0.0, block_random + buffering, 1.25 + 4.0 * hd),
        };

        CostEstimate {
            kind,
            buffer_fraction: alpha,
            hd,
            predicted_setup_io: setup,
            predicted_epoch_io: epoch_io,
            score: setup + self.epochs as f64 * factor * epoch_io,
        }
    }
}

/// Full-shuffle I/O from a profile alone (no device mutation), matching
/// [`crate::corgi2::full_shuffle_io`]'s two read+write passes over the table.
fn full_shuffle_io_profile(profile: &DeviceProfile, total_bytes: usize) -> f64 {
    2.0 * (profile.read_time(total_bytes, Access::Random)
        + profile.read_time(total_bytes, Access::Sequential))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corgi2::full_shuffle_io;
    use corgipile_data::{DatasetSpec, Order};
    use corgipile_storage::SimDevice;

    fn table(order: Order) -> Table {
        DatasetSpec::higgs_like(3000)
            .with_order(order)
            .with_block_bytes(8192)
            .build_table(1)
            .unwrap()
    }

    #[test]
    fn shuffled_data_keeps_plain_corgipile_at_default_buffer() {
        let t = table(Order::Shuffled);
        let params = StrategyParams::default();
        let pick = CostModel::new(10).choose(&t, &DeviceProfile::hdd_scaled(1000.0), &params, 0.0);
        assert_eq!(pick.kind, StrategyKind::CorgiPile);
        assert_eq!(pick.buffer_fraction, params.buffer_fraction);
    }

    #[test]
    fn clustered_data_on_bandwidth_bound_device_prefers_corgi2() {
        let t = table(Order::ClusteredByLabel);
        let pick = CostModel::new(10).choose(
            &t,
            &DeviceProfile::hdd_scaled(1000.0),
            &StrategyParams::default(),
            1.0,
        );
        assert_eq!(pick.kind, StrategyKind::Corgi2);
    }

    #[test]
    fn clustered_data_on_seek_bound_device_prefers_block_reversal() {
        let t = table(Order::ClusteredByLabel);
        let pick =
            CostModel::new(10).choose(&t, &DeviceProfile::hdd(), &StrategyParams::default(), 1.0);
        assert_eq!(pick.kind, StrategyKind::BlockReversal);
    }

    #[test]
    fn no_shuffle_and_block_only_never_win_on_clustered_data() {
        let t = table(Order::ClusteredByLabel);
        for profile in [
            DeviceProfile::hdd(),
            DeviceProfile::hdd_scaled(1000.0),
            DeviceProfile::ssd(),
        ] {
            let pick = CostModel::new(10).choose(&t, &profile, &StrategyParams::default(), 0.9);
            assert!(
                !matches!(pick.kind, StrategyKind::NoShuffle | StrategyKind::BlockOnly),
                "{} picked {:?}",
                profile.name,
                pick.kind
            );
        }
    }

    #[test]
    fn candidates_cover_every_db_available_kind() {
        let t = table(Order::Shuffled);
        let cands = CostModel::new(5).candidates(
            &t,
            &DeviceProfile::ssd(),
            &StrategyParams::default(),
            0.3,
        );
        for kind in StrategyKind::all() {
            // Shuffle Once is DB-available but planner-excluded (2× disk).
            let expected = kind.available_in_db() && kind != StrategyKind::ShuffleOnce;
            assert_eq!(cands.iter().any(|c| c.kind == kind), expected, "{kind:?}");
        }
        // Tuple-buffered kinds are swept over three fractions.
        let corgi = cands
            .iter()
            .filter(|c| c.kind == StrategyKind::CorgiPile)
            .count();
        assert_eq!(corgi, 3);
    }

    #[test]
    fn corgi2_setup_matches_the_budgeted_full_shuffle_fraction() {
        let t = table(Order::ClusteredByLabel);
        let params = StrategyParams::default().with_io_budget(0.25);
        let mut dev = SimDevice::hdd(0);
        let full = full_shuffle_io(&t, &mut dev);
        let est = CostModel::new(3)
            .candidates(&t, dev.profile(), &params, 0.5)
            .into_iter()
            .find(|c| c.kind == StrategyKind::Corgi2)
            .unwrap();
        assert!((est.predicted_setup_io - 0.25 * full).abs() < 1e-9);
    }

    #[test]
    fn longer_runs_justify_more_setup() {
        let t = table(Order::ClusteredByLabel);
        let profile = DeviceProfile::hdd_scaled(1000.0);
        let params = StrategyParams::default();
        // Short run: setup-free strategies win; long run: Corgi² amortizes.
        let short = CostModel::new(1).choose(&t, &profile, &params, 1.0);
        let long = CostModel::new(30).choose(&t, &profile, &params, 1.0);
        assert_ne!(short.kind, StrategyKind::Corgi2);
        assert_eq!(long.kind, StrategyKind::Corgi2);
    }
}
