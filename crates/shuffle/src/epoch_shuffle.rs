//! Epoch Shuffle (§3.1): a full shuffle before *every* epoch.
//!
//! The statistical gold standard (fresh i.i.d.-without-replacement order
//! each epoch) and the hardware worst case: the shuffle cost grows linearly
//! with the number of epochs. We model each per-epoch shuffle like Shuffle
//! Once's offline pass, charged as that epoch's `setup_seconds`, and the
//! epoch itself emits the freshly permuted order with random-tuple read
//! cost folded into the shuffle pass (the shuffled copy is scanned
//! sequentially).

use crate::plan::{EpochPlan, Segment};
use crate::strategy::{ShuffleStrategy, StrategyParams};
use corgipile_data::rng::shuffle_in_place;
use corgipile_storage::{SimDevice, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Epoch-Shuffle strategy.
#[derive(Debug)]
pub struct EpochShuffle {
    params: StrategyParams,
    rng: StdRng,
}

impl EpochShuffle {
    /// Create an Epoch-Shuffle strategy.
    pub fn new(params: StrategyParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed);
        EpochShuffle { params, rng }
    }
}

impl ShuffleStrategy for EpochShuffle {
    fn name(&self) -> &'static str {
        "epoch_shuffle"
    }

    fn next_epoch(&mut self, table: &Table, dev: &mut SimDevice) -> EpochPlan {
        // Charge the per-epoch offline shuffle: two read+write passes.
        let before = dev.stats().io_seconds;
        for _ in 0..2 {
            dev.read(
                None,
                table.total_bytes(),
                corgipile_storage::device::Access::Random,
                None,
            );
            dev.write(
                table.total_bytes(),
                corgipile_storage::device::Access::Sequential,
            );
        }
        let setup = dev.stats().io_seconds - before;

        // Fresh permutation for this epoch.
        let mut order: Vec<u64> = (0..table.num_tuples()).collect();
        shuffle_in_place(&mut self.rng, &mut order);

        // Scan the (conceptually re-materialized) shuffled copy sequentially,
        // segmenting by the original table's block size.
        let tuples_per_block = table.tuples_per_block().max(1.0) as usize;
        let mut segments = Vec::new();
        let mut first = true;
        for chunk in order.chunks(tuples_per_block) {
            let io_before = dev.stats().io_seconds;
            let bytes: usize = (table.total_bytes() as f64 * chunk.len() as f64
                / table.num_tuples() as f64) as usize;
            let access = if first {
                corgipile_storage::device::Access::Random
            } else {
                corgipile_storage::device::Access::Sequential
            };
            first = false;
            dev.read(None, bytes, access, None);
            let tuples = chunk
                .iter()
                .map(|&tid| table.get_tuple(tid).expect("tid in range"))
                .collect();
            segments.push(Segment::new(tuples, dev.stats().io_seconds - io_before));
        }
        EpochPlan {
            segments,
            setup_seconds: setup,
        }
    }

    fn disk_space_factor(&self) -> f64 {
        2.0
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.params.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};

    fn table() -> Table {
        DatasetSpec::higgs_like(400)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(4 * 8192)
            .build_table(1)
            .unwrap()
    }

    #[test]
    fn every_epoch_is_a_fresh_permutation() {
        let t = table();
        let mut s = EpochShuffle::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        let a = s.next_epoch(&t, &mut dev).id_sequence();
        let b = s.next_epoch(&t, &mut dev).id_sequence();
        assert_ne!(a, b, "epochs must differ");
        let mut sa = a.clone();
        sa.sort_unstable();
        assert_eq!(sa, (0..400).collect::<Vec<_>>());
        let mut sb = b.clone();
        sb.sort_unstable();
        assert_eq!(sb, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_cost_charged_every_epoch() {
        let t = table();
        let mut s = EpochShuffle::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        let e0 = s.next_epoch(&t, &mut dev);
        let e1 = s.next_epoch(&t, &mut dev);
        assert!(e0.setup_seconds > 0.0);
        assert!(
            e1.setup_seconds > 0.0,
            "Epoch Shuffle pays the shuffle every epoch"
        );
    }

    #[test]
    fn stream_covers_all_tuples() {
        let t = table();
        let mut s = EpochShuffle::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        assert_eq!(s.next_epoch(&t, &mut dev).num_tuples(), 400);
    }
}
