//! Epoch plans: the tuple stream of one epoch, segmented by buffer fill.

use corgipile_storage::Tuple;

/// One buffer fill's worth of the epoch stream.
#[derive(Debug, Clone, Default)]
pub struct Segment {
    /// Tuples in SGD consumption order.
    pub tuples: Vec<Tuple>,
    /// Simulated seconds of I/O + loading work (block reads, buffer copy,
    /// in-buffer shuffle) spent producing this segment.
    pub io_seconds: f64,
}

impl Segment {
    /// A segment with the given contents and cost.
    pub fn new(tuples: Vec<Tuple>, io_seconds: f64) -> Self {
        Segment { tuples, io_seconds }
    }
}

/// The full stream of one epoch.
#[derive(Debug, Clone, Default)]
pub struct EpochPlan {
    /// Buffer fills, in order.
    pub segments: Vec<Segment>,
    /// One-off cost charged before this epoch's stream (e.g. Shuffle Once's
    /// offline shuffle before epoch 0, or Epoch Shuffle's per-epoch shuffle).
    pub setup_seconds: f64,
}

impl EpochPlan {
    /// Total tuples across segments.
    pub fn num_tuples(&self) -> usize {
        self.segments.iter().map(|s| s.tuples.len()).sum()
    }

    /// Total I/O seconds across segments (excluding setup).
    pub fn io_seconds(&self) -> f64 {
        self.segments.iter().map(|s| s.io_seconds).sum()
    }

    /// Iterate all tuples in consumption order.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.segments.iter().flat_map(|s| s.tuples.iter())
    }

    /// Collect the tuple-id sequence (for order diagnostics).
    pub fn id_sequence(&self) -> Vec<u64> {
        self.tuples().map(|t| t.id).collect()
    }

    /// Collect the label sequence (for order diagnostics).
    pub fn label_sequence(&self) -> Vec<f32> {
        self.tuples().map(|t| t.label).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64, label: f32) -> Tuple {
        Tuple::dense(id, vec![0.0], label)
    }

    #[test]
    fn plan_aggregates_segments() {
        let plan = EpochPlan {
            segments: vec![
                Segment::new(vec![t(0, 1.0), t(1, -1.0)], 0.5),
                Segment::new(vec![t(2, 1.0)], 0.25),
            ],
            setup_seconds: 2.0,
        };
        assert_eq!(plan.num_tuples(), 3);
        assert!((plan.io_seconds() - 0.75).abs() < 1e-12);
        assert_eq!(plan.id_sequence(), vec![0, 1, 2]);
        assert_eq!(plan.label_sequence(), vec![1.0, -1.0, 1.0]);
    }

    #[test]
    fn empty_plan_is_empty() {
        let plan = EpochPlan::default();
        assert_eq!(plan.num_tuples(), 0);
        assert_eq!(plan.io_seconds(), 0.0);
        assert!(plan.id_sequence().is_empty());
    }
}
