//! Tuple-Only Shuffle: the ablation dual of Block-Only.
//!
//! CorgiPile = block-level shuffle + tuple-level (buffered) shuffle. The
//! paper ablates the *tuple* level (Block-Only, §7.3); this strategy
//! ablates the *block* level instead: blocks are read **sequentially** (so
//! I/O is exactly No Shuffle's) and only the in-buffer tuple shuffle
//! remains. On clustered data each buffer then holds one *contiguous*
//! range of the table — a giant sliding window — so labels mix only
//! within 10 % stretches and the stream stays globally ordered. Together
//! with Block-Only this isolates the contribution of each of CorgiPile's
//! two levels (see the `ablation` experiment).

use crate::plan::{EpochPlan, Segment};
use crate::strategy::{ShuffleStrategy, StrategyParams};
use corgipile_storage::{SimDevice, Table, TupleBuffer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// CorgiPile without the block-level shuffle.
#[derive(Debug)]
pub struct TupleOnlyShuffle {
    params: StrategyParams,
    rng: StdRng,
}

impl TupleOnlyShuffle {
    /// Create a Tuple-Only strategy.
    pub fn new(params: StrategyParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed ^ 0x7u64);
        TupleOnlyShuffle { params, rng }
    }
}

impl ShuffleStrategy for TupleOnlyShuffle {
    fn name(&self) -> &'static str {
        "tuple_only"
    }

    fn next_epoch(&mut self, table: &Table, dev: &mut SimDevice) -> EpochPlan {
        let n = self.params.buffer_blocks(table);
        let blocks: Vec<usize> = (0..table.num_blocks()).collect();
        let mut segments = Vec::with_capacity(blocks.len().div_ceil(n.max(1)));
        let mut first = true;
        for chunk in blocks.chunks(n.max(1)) {
            let before = dev.stats().io_seconds;
            let mut bytes = 0usize;
            let expected: usize = chunk
                .iter()
                .map(|&b| table.block(b).expect("in range").tuple_count())
                .sum();
            let mut buffer = TupleBuffer::with_capacity(expected.max(1));
            for &b in chunk {
                bytes += table.block(b).expect("in range").bytes;
                buffer.fill_from(
                    table
                        .scan_block_sequential(b, first, dev)
                        .expect("in range"),
                );
                first = false;
            }
            dev.charge_seconds(self.params.buffering_cost(buffer.len(), bytes));
            let rng = &mut self.rng;
            buffer.shuffle_with(|i| rng.gen_range(0..=i));
            segments.push(Segment::new(
                buffer.drain(),
                dev.stats().io_seconds - before,
            ));
        }
        EpochPlan {
            segments,
            setup_seconds: 0.0,
        }
    }

    fn buffer_tuples(&self, table: &Table) -> usize {
        (self.params.buffer_blocks(table) as f64 * table.tuples_per_block()).ceil() as usize
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.params.seed ^ 0x7u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};

    fn clustered(n: usize) -> Table {
        DatasetSpec::higgs_like(n)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(2 * 8192)
            .build_table(1)
            .unwrap()
    }

    #[test]
    fn emits_every_tuple_once() {
        let t = clustered(600);
        let mut s = TupleOnlyShuffle::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        let mut ids = s.next_epoch(&t, &mut dev).id_sequence();
        ids.sort_unstable();
        assert_eq!(ids, (0..600).collect::<Vec<_>>());
    }

    #[test]
    fn buffers_are_contiguous_ranges_shuffled_within() {
        let t = clustered(2000);
        let mut s = TupleOnlyShuffle::new(StrategyParams::default().with_buffer_fraction(0.1));
        let mut dev = SimDevice::hdd(0);
        let plan = s.next_epoch(&t, &mut dev);
        assert!(plan.segments.len() >= 5);
        let mut prev_max = 0u64;
        for seg in &plan.segments {
            let mut ids: Vec<u64> = seg.tuples.iter().map(|t| t.id).collect();
            // Shuffled within…
            assert!(ids.windows(2).any(|w| w[1] < w[0]));
            ids.sort_unstable();
            // …but a contiguous range globally after the previous segment.
            assert_eq!(ids[0], prev_max);
            assert!(ids.windows(2).all(|w| w[1] == w[0] + 1));
            prev_max = ids[ids.len() - 1] + 1;
        }
    }

    #[test]
    fn io_is_sequential_like_no_shuffle() {
        let t = clustered(2000);
        let mut s = TupleOnlyShuffle::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        s.next_epoch(&t, &mut dev);
        assert_eq!(
            dev.stats().random_reads,
            1,
            "only the initial seek is random"
        );
    }

    #[test]
    fn on_clustered_data_labels_stay_globally_ordered() {
        let t = clustered(2000);
        let mut s = TupleOnlyShuffle::new(StrategyParams::default().with_buffer_fraction(0.1));
        let mut dev = SimDevice::hdd(0);
        let labels = s.next_epoch(&t, &mut dev).label_sequence();
        let head_neg = labels[..600].iter().filter(|&&l| l < 0.0).count();
        assert!(
            head_neg > 550,
            "head must remain ~all negative: {head_neg}/600"
        );
    }
}
