//! Shuffle Once (§3.1): one offline full shuffle, then sequential scans.
//!
//! The strong statistical baseline assumed by MADlib and Bismarck: before
//! training, materialize a fully shuffled copy of the table (PostgreSQL's
//! `ORDER BY RANDOM()`), doubling storage, then run every epoch as a
//! sequential scan of the copy. The offline shuffle is charged as a
//! two-pass external sort ([`Table::materialize_reordered`]) and shows up
//! as `setup_seconds` of the first epoch — this is the long head start
//! CorgiPile exploits in Figures 1, 7 and 11.

use crate::plan::{EpochPlan, Segment};
use crate::strategy::{ShuffleStrategy, StrategyParams};
use corgipile_data::rng::shuffle_in_place;
use corgipile_storage::{SimDevice, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Shuffle-Once strategy.
#[derive(Debug)]
pub struct ShuffleOnce {
    params: StrategyParams,
    shuffled: Option<Table>,
}

impl ShuffleOnce {
    /// Create a Shuffle-Once strategy.
    pub fn new(params: StrategyParams) -> Self {
        ShuffleOnce {
            params,
            shuffled: None,
        }
    }

    /// Access the materialized shuffled copy, if already prepared.
    pub fn shuffled_table(&self) -> Option<&Table> {
        self.shuffled.as_ref()
    }
}

impl ShuffleStrategy for ShuffleOnce {
    fn name(&self) -> &'static str {
        "shuffle_once"
    }

    fn next_epoch(&mut self, table: &Table, dev: &mut SimDevice) -> EpochPlan {
        let mut setup = 0.0;
        if self.shuffled.is_none() {
            let before = dev.stats().io_seconds;
            let mut order: Vec<u64> = (0..table.num_tuples()).collect();
            let mut rng = StdRng::seed_from_u64(self.params.seed);
            shuffle_in_place(&mut rng, &mut order);
            let copy = table
                .materialize_reordered(
                    &order,
                    format!("{}_shuffled", table.config().name),
                    table.config().table_id | 0x8000_0000,
                    dev,
                )
                .expect("order is a permutation of the table");
            setup = dev.stats().io_seconds - before;
            self.shuffled = Some(copy);
        }
        let shuffled = self.shuffled.as_ref().expect("prepared above");
        let mut segments = Vec::with_capacity(shuffled.num_blocks());
        for b in 0..shuffled.num_blocks() {
            let before = dev.stats().io_seconds;
            let tuples = shuffled
                .scan_block_sequential(b, b == 0, dev)
                .expect("block id in range");
            segments.push(Segment::new(tuples, dev.stats().io_seconds - before));
        }
        EpochPlan {
            segments,
            setup_seconds: setup,
        }
    }

    fn disk_space_factor(&self) -> f64 {
        2.0 // original + shuffled copy (Table 1)
    }

    fn reset(&mut self) {
        self.shuffled = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};

    fn clustered(n: usize) -> Table {
        DatasetSpec::higgs_like(n)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(4 * 8192)
            .build_table(1)
            .unwrap()
    }

    #[test]
    fn stream_is_a_full_permutation() {
        let t = clustered(500);
        let mut s = ShuffleOnce::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        let plan = s.next_epoch(&t, &mut dev);
        let mut ids = plan.id_sequence();
        assert_ne!(
            ids,
            (0..500).collect::<Vec<_>>(),
            "must not be the stored order"
        );
        ids.sort_unstable();
        assert_eq!(ids, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn stream_decorrelates_labels() {
        let t = clustered(1000);
        let mut s = ShuffleOnce::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        let labels = s.next_epoch(&t, &mut dev).label_sequence();
        // First 10% should contain a healthy mix of both labels.
        let head = &labels[..100];
        let pos = head.iter().filter(|&&l| l > 0.0).count();
        assert!(pos > 20 && pos < 80, "positives in head: {pos}");
    }

    #[test]
    fn setup_charged_once_and_is_expensive() {
        let t = clustered(800);
        let mut s = ShuffleOnce::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        let e0 = s.next_epoch(&t, &mut dev);
        assert!(e0.setup_seconds > 0.0);
        // Offline shuffle (4 full passes) dwarfs one sequential scan.
        assert!(e0.setup_seconds > 2.0 * e0.io_seconds());
        let e1 = s.next_epoch(&t, &mut dev);
        assert_eq!(e1.setup_seconds, 0.0);
    }

    #[test]
    fn epochs_replay_the_same_order() {
        let t = clustered(300);
        let mut s = ShuffleOnce::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        let a = s.next_epoch(&t, &mut dev).id_sequence();
        let b = s.next_epoch(&t, &mut dev).id_sequence();
        assert_eq!(a, b, "Shuffle Once fixes one order for all epochs");
    }

    #[test]
    fn disk_overhead_is_double() {
        let s = ShuffleOnce::new(StrategyParams::default());
        assert_eq!(s.disk_space_factor(), 2.0);
    }
}
