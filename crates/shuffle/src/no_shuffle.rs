//! No Shuffle (§3.2): SGD runs over the stored order.
//!
//! This is what MADlib does by default and what PyTorch's
//! `IterableDataset` gives you: a plain sequential scan. It is the fastest
//! strategy (pure sequential I/O, no buffer) but diverges or converges to
//! low accuracy on clustered data.

use crate::plan::{EpochPlan, Segment};
use crate::strategy::ShuffleStrategy;
use corgipile_storage::{SimDevice, Table};

/// The No-Shuffle strategy.
#[derive(Debug, Default, Clone)]
pub struct NoShuffle;

impl NoShuffle {
    /// Create a No-Shuffle strategy.
    pub fn new() -> Self {
        NoShuffle
    }
}

impl ShuffleStrategy for NoShuffle {
    fn name(&self) -> &'static str {
        "no_shuffle"
    }

    fn next_epoch(&mut self, table: &Table, dev: &mut SimDevice) -> EpochPlan {
        let mut segments = Vec::with_capacity(table.num_blocks());
        for b in 0..table.num_blocks() {
            let before = dev.stats().io_seconds;
            let tuples = table
                .scan_block_sequential(b, b == 0, dev)
                .expect("block id in range");
            segments.push(Segment::new(tuples, dev.stats().io_seconds - before));
        }
        EpochPlan {
            segments,
            setup_seconds: 0.0,
        }
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};

    #[test]
    fn emits_table_order() {
        let t = DatasetSpec::higgs_like(300)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(2 * 8192)
            .build_table(1)
            .unwrap();
        let mut s = NoShuffle::new();
        let mut dev = SimDevice::hdd(0);
        let plan = s.next_epoch(&t, &mut dev);
        let ids = plan.id_sequence();
        let expect: Vec<u64> = (0..300).collect();
        assert_eq!(ids, expect);
    }

    #[test]
    fn io_is_sequential_rate() {
        let t = DatasetSpec::higgs_like(2000)
            .with_block_bytes(64 * 8192)
            .build_table(2)
            .unwrap();
        let mut s = NoShuffle::new();
        let mut dev = SimDevice::hdd(0);
        let plan = s.next_epoch(&t, &mut dev);
        // One initial seek, then pure transfer.
        let expect = 8e-3 + t.total_bytes() as f64 / 140e6;
        assert!((plan.io_seconds() - expect).abs() / expect < 0.01);
        assert_eq!(dev.stats().random_reads, 1);
    }

    #[test]
    fn second_epoch_hits_cache() {
        let t = DatasetSpec::susy_like(1000)
            .with_block_bytes(16 * 8192)
            .build_table(3)
            .unwrap();
        let mut s = NoShuffle::new();
        let mut dev = SimDevice::hdd(t.total_bytes() * 2);
        let e0 = s.next_epoch(&t, &mut dev).io_seconds();
        let e1 = s.next_epoch(&t, &mut dev).io_seconds();
        assert!(e1 < e0 / 10.0, "cached epoch {e1} vs cold {e0}");
    }
}
