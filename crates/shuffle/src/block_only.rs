//! Block-Only Shuffle (§7.3): CorgiPile minus the tuple-level shuffle.
//!
//! Blocks are read in a fresh random order each epoch, but tuples inside a
//! block keep their stored order. On label-clustered data every block is
//! label-pure, so the SGD stream is a sequence of single-label runs —
//! better than No Shuffle, worse than CorgiPile (Figure 11's Block-Only
//! baseline). This ablation isolates the contribution of the second
//! shuffle level.

use crate::plan::{EpochPlan, Segment};
use crate::strategy::{ShuffleStrategy, StrategyParams};
use corgipile_data::rng::shuffle_in_place;
use corgipile_storage::{SimDevice, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Block-Only ablation of CorgiPile.
#[derive(Debug)]
pub struct BlockOnlyShuffle {
    params: StrategyParams,
    rng: StdRng,
}

impl BlockOnlyShuffle {
    /// Create a Block-Only strategy.
    pub fn new(params: StrategyParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed ^ 0xB10C);
        BlockOnlyShuffle { params, rng }
    }
}

impl ShuffleStrategy for BlockOnlyShuffle {
    fn name(&self) -> &'static str {
        "block_only"
    }

    fn next_epoch(&mut self, table: &Table, dev: &mut SimDevice) -> EpochPlan {
        let mut order: Vec<usize> = (0..table.num_blocks()).collect();
        shuffle_in_place(&mut self.rng, &mut order);
        let mut segments = Vec::with_capacity(order.len());
        for b in order {
            let before = dev.stats().io_seconds;
            let tuples = table.read_block(b, dev).expect("block id in range");
            segments.push(Segment::new(tuples, dev.stats().io_seconds - before));
        }
        EpochPlan {
            segments,
            setup_seconds: 0.0,
        }
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.params.seed ^ 0xB10C);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};

    fn clustered(n: usize) -> Table {
        DatasetSpec::higgs_like(n)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(2 * 8192)
            .build_table(1)
            .unwrap()
    }

    #[test]
    fn emits_each_tuple_once_with_blocks_permuted() {
        let t = clustered(600);
        let mut s = BlockOnlyShuffle::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        let ids = s.next_epoch(&t, &mut dev).id_sequence();
        assert_ne!(ids, (0..600).collect::<Vec<_>>(), "block order must change");
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..600).collect::<Vec<_>>());
    }

    #[test]
    fn within_block_order_is_preserved() {
        let t = clustered(600);
        let mut s = BlockOnlyShuffle::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        let plan = s.next_epoch(&t, &mut dev);
        for seg in &plan.segments {
            let ids: Vec<u64> = seg.tuples.iter().map(|t| t.id).collect();
            assert!(
                ids.windows(2).all(|w| w[1] == w[0] + 1),
                "run not contiguous: {ids:?}"
            );
        }
    }

    #[test]
    fn epochs_use_fresh_block_orders() {
        let t = clustered(600);
        let mut s = BlockOnlyShuffle::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        let a = s.next_epoch(&t, &mut dev).id_sequence();
        let b = s.next_epoch(&t, &mut dev).id_sequence();
        assert_ne!(a, b);
    }

    #[test]
    fn pays_one_seek_per_block() {
        let t = clustered(600);
        let mut s = BlockOnlyShuffle::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        s.next_epoch(&t, &mut dev);
        assert_eq!(dev.stats().random_reads as usize, t.num_blocks());
    }
}
