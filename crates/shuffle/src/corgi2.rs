//! Corgi² (Livne et al. 2023): bounded-I/O offline partial re-clustering,
//! then CorgiPile online.
//!
//! CorgiPile's convergence factor depends on the block-level data variance
//! h_D; on adversarially clustered storage, block-random sampling alone
//! converges slowly. Corgi² prepends a *partial* offline pass: a random
//! subset of blocks is read, their tuples pooled, shuffled, and written
//! back into the same block slots. The subset is sized so the pass costs at
//! most `io_budget` × the I/O of a full offline shuffle (the two-pass
//! external sort of Shuffle Once). Every rewritten block then holds a
//! near-uniform mixture of the whole table, dropping the effective block
//! variance to roughly `(1 − io_budget)` × the original before the online
//! two-level shuffle even starts.
//!
//! The same recluster pass is exposed standalone as [`recluster_table`],
//! backing the SQL `RECLUSTER <table> [WITH io_budget = f]` statement.

use crate::corgipile::{BlockSampleMode, CorgiPile};
use crate::plan::{EpochPlan, Segment};
use crate::strategy::{ShuffleStrategy, StrategyParams};
use corgipile_data::rng::shuffle_in_place;
use corgipile_storage::{Access, Result, SimDevice, Table, Tuple};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of one bounded-I/O partial re-clustering pass.
#[derive(Debug)]
pub struct ReclusterOutcome {
    /// The partially re-clustered copy (same name semantics as the input;
    /// callers choose the registered name and table id).
    pub table: Table,
    /// Number of block slots whose contents were pooled and rewritten.
    pub blocks_rewritten: usize,
    /// Total blocks in the table.
    pub blocks_total: usize,
    /// Simulated I/O seconds actually charged by the pass.
    pub io_seconds: f64,
    /// The budget the pass was held to: `io_budget × full_shuffle_io`.
    pub budget_io: f64,
    /// Predicted I/O of a full offline shuffle on this device (the
    /// two-pass external sort Shuffle Once pays).
    pub full_shuffle_io: f64,
}

/// Cost of a full offline shuffle (`Table::materialize_reordered`): two
/// passes of read + write over the whole table.
pub fn full_shuffle_io(table: &Table, dev: &SimDevice) -> f64 {
    let total = table.total_bytes();
    let p = dev.profile();
    2.0 * (p.read_time(total, Access::Random) + p.read_time(total, Access::Sequential))
}

/// Partially re-cluster `table` within an I/O budget.
///
/// Selects a seeded-random subset of blocks whose *planned* read + write
/// cost fits under `io_budget × full_shuffle_io`, reads them (charging
/// `dev` for real), pools and shuffles their tuples, and redistributes the
/// pool across the same block slots; unselected blocks are carried over
/// untouched (their on-disk extents are never visited, so they cost
/// nothing). The bound therefore holds by construction on any device
/// profile. Tuple ids are preserved, so order diagnostics still see
/// original storage positions.
pub fn recluster_table(
    table: &Table,
    new_name: impl Into<String>,
    new_table_id: u32,
    io_budget: f64,
    seed: u64,
    dev: &mut SimDevice,
) -> Result<ReclusterOutcome> {
    assert!(
        io_budget > 0.0 && io_budget <= 1.0,
        "io budget must be in (0, 1]"
    );
    let blocks_total = table.num_blocks();
    let full_io = full_shuffle_io(table, dev);
    let budget_io = io_budget * full_io;
    let profile = dev.profile().clone();

    // Seeded-random candidate order, then greedy selection under budget.
    let mut candidates: Vec<usize> = (0..blocks_total).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC2_C2);
    shuffle_in_place(&mut rng, &mut candidates);
    let mut planned = 0.0f64;
    let mut selected = vec![false; blocks_total];
    let mut chosen: Vec<usize> = Vec::new();
    for &b in &candidates {
        let bytes = table.block(b)?.bytes;
        let cost =
            profile.read_time(bytes, Access::Random) + profile.read_time(bytes, Access::Sequential);
        if planned + cost > budget_io {
            continue;
        }
        planned += cost;
        selected[b] = true;
        chosen.push(b);
    }

    // Charge the reads for real, pool the tuples.
    let before = dev.stats().io_seconds;
    let mut pool: Vec<Tuple> = Vec::new();
    let mut rewritten_bytes = 0usize;
    for &b in &chosen {
        rewritten_bytes += table.block(b)?.bytes;
        pool.extend(table.read_block(b, dev)?);
    }
    shuffle_in_place(&mut rng, &mut pool);
    if !chosen.is_empty() {
        // Write the rewritten slots back in one appending pass.
        dev.write(rewritten_bytes, Access::Sequential);
    }
    let io_seconds = dev.stats().io_seconds - before;

    // Rebuild: selected slots drain the shuffled pool, the rest carry over.
    let mut cfg = table.config().clone();
    cfg.name = new_name.into();
    cfg.table_id = new_table_id;
    let mut pool_iter = pool.into_iter();
    let mut tuples: Vec<Tuple> = Vec::with_capacity(table.num_tuples() as usize);
    for (b, &is_selected) in selected.iter().enumerate() {
        let count = table.block(b)?.tuple_count();
        if is_selected {
            tuples.extend(pool_iter.by_ref().take(count));
        } else {
            tuples.extend(table.block_tuples(b)?);
        }
    }
    let copy = Table::from_tuples(cfg, tuples)?;
    Ok(ReclusterOutcome {
        table: copy,
        blocks_rewritten: chosen.len(),
        blocks_total,
        io_seconds,
        budget_io,
        full_shuffle_io: full_io,
    })
}

/// The Corgi² strategy: a one-off bounded recluster pass (charged as epoch
/// 0's setup), then CorgiPile's two-level shuffle over the copy.
#[derive(Debug)]
pub struct Corgi2 {
    params: StrategyParams,
    online: CorgiPile,
    copy: Option<Table>,
}

impl Corgi2 {
    /// Create a Corgi² strategy; `params.io_budget` bounds the offline pass.
    pub fn new(params: StrategyParams) -> Self {
        let online = CorgiPile::new(params.clone(), BlockSampleMode::FullCoverage);
        Corgi2 {
            params,
            online,
            copy: None,
        }
    }

    fn ensure_copy(&mut self, table: &Table, dev: &mut SimDevice) -> f64 {
        if self.copy.is_some() {
            return 0.0;
        }
        let before = dev.stats().io_seconds;
        let out = recluster_table(
            table,
            format!("{}_reclustered", table.config().name),
            table.config().table_id | 0xC000_0000,
            self.params.io_budget,
            self.params.seed,
            dev,
        )
        .expect("recluster over a readable table");
        self.copy = Some(out.table);
        dev.stats().io_seconds - before
    }
}

impl ShuffleStrategy for Corgi2 {
    fn name(&self) -> &'static str {
        "corgi2"
    }

    fn next_epoch(&mut self, table: &Table, dev: &mut SimDevice) -> EpochPlan {
        let mut segments = Vec::new();
        let setup_seconds = self.stream_epoch(table, dev, &mut |seg| {
            segments.push(seg);
            true
        });
        EpochPlan {
            segments,
            setup_seconds,
        }
    }

    fn stream_epoch(
        &mut self,
        table: &Table,
        dev: &mut SimDevice,
        emit: &mut dyn FnMut(Segment) -> bool,
    ) -> f64 {
        let setup = self.ensure_copy(table, dev);
        let copy = self.copy.as_ref().expect("copy built above");
        self.online.stream_epoch(copy, dev, emit);
        setup
    }

    fn buffer_tuples(&self, table: &Table) -> usize {
        self.online.buffer_tuples(table)
    }

    fn disk_space_factor(&self) -> f64 {
        // Only the rewritten fraction occupies extra space while the pass
        // runs (unselected extents are never copied on the simulated disk).
        1.0 + self.params.io_budget
    }

    fn reset(&mut self) {
        self.copy = None;
        self.online.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::block_variance_exact;
    use corgipile_data::{DatasetSpec, Order};

    fn clustered(n: usize) -> Table {
        DatasetSpec::higgs_like(n)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(2 * 8192)
            .build_table(1)
            .unwrap()
    }

    #[test]
    fn recluster_respects_the_io_budget() {
        let t = clustered(4000);
        for budget in [0.1, 0.25, 0.5, 1.0] {
            for mut dev in [SimDevice::hdd_scaled(1000.0, 0), SimDevice::ssd(0)] {
                let out = recluster_table(&t, "t_rc", 99, budget, 7, &mut dev).unwrap();
                assert!(
                    out.io_seconds <= out.budget_io + 1e-12,
                    "budget {budget}: {} > {}",
                    out.io_seconds,
                    out.budget_io
                );
                assert!(out.blocks_rewritten > 0, "budget {budget} rewrote nothing");
                assert!(out.blocks_rewritten <= out.blocks_total);
                assert_eq!(out.table.num_tuples(), t.num_tuples());
            }
        }
    }

    #[test]
    fn seek_bound_device_with_tiny_budget_rewrites_nothing_rather_than_overspend() {
        // On an unscaled HDD a single random block read costs a full seek;
        // when the whole budget is smaller than one seek the honest answer
        // is to rewrite nothing — the bound must hold, not be "almost held".
        let t = clustered(4000);
        let mut dev = SimDevice::hdd(0);
        let out = recluster_table(&t, "t_rc", 99, 0.1, 7, &mut dev).unwrap();
        assert_eq!(out.blocks_rewritten, 0);
        assert_eq!(out.io_seconds, 0.0);
        assert_eq!(out.table.num_tuples(), t.num_tuples());
    }

    #[test]
    fn recluster_preserves_the_tuple_multiset() {
        let t = clustered(1500);
        let mut dev = SimDevice::hdd_scaled(1000.0, 0);
        let out = recluster_table(&t, "t_rc", 99, 0.4, 3, &mut dev).unwrap();
        let mut before: Vec<u64> = t.all_tuples().iter().map(|tp| tp.id).collect();
        let mut after: Vec<u64> = out.table.all_tuples().iter().map(|tp| tp.id).collect();
        assert_ne!(before, after, "recluster must move tuples");
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn recluster_lowers_block_variance_on_clustered_data() {
        let t = clustered(4000);
        let hd_before = block_variance_exact(&t).hd;
        assert!(
            hd_before > 0.8,
            "clustered table should start high: {hd_before}"
        );
        let mut dev = SimDevice::hdd_scaled(1000.0, 0);
        let out = recluster_table(&t, "t_rc", 99, 0.5, 7, &mut dev).unwrap();
        let hd_after = block_variance_exact(&out.table).hd;
        assert!(
            hd_after < 0.7 * hd_before,
            "recluster should cut h_D: {hd_before} -> {hd_after}"
        );
    }

    #[test]
    fn epochs_cover_all_tuples_and_reset_replays() {
        let t = clustered(1200);
        let mut s = Corgi2::new(StrategyParams::default().with_seed(5));
        let mut dev = SimDevice::hdd_scaled(1000.0, 0);
        let plan = s.next_epoch(&t, &mut dev);
        assert!(plan.setup_seconds > 0.0, "epoch 0 pays the recluster pass");
        let mut ids = plan.id_sequence();
        ids.sort_unstable();
        assert_eq!(ids, (0..1200).collect::<Vec<_>>());
        let second = s.next_epoch(&t, &mut dev);
        assert_eq!(second.setup_seconds, 0.0, "setup charged once");

        let first_ids = plan.id_sequence();
        s.reset();
        let mut dev2 = SimDevice::hdd_scaled(1000.0, 0);
        let replay = s.next_epoch(&t, &mut dev2);
        assert_eq!(first_ids, replay.id_sequence());
    }

    #[test]
    fn setup_stays_under_the_budget_fraction_of_shuffle_once() {
        let t = clustered(4000);
        let mut s = Corgi2::new(StrategyParams::default().with_io_budget(0.25).with_seed(5));
        let mut dev = SimDevice::hdd_scaled(1000.0, 0);
        let plan = s.next_epoch(&t, &mut dev);
        let full = full_shuffle_io(&t, &dev);
        assert!(
            plan.setup_seconds <= 0.25 * full + 1e-12,
            "setup {} over budget {}",
            plan.setup_seconds,
            0.25 * full
        );
    }

    #[test]
    fn streams_mix_labels_better_than_plain_corgipile_on_clustered_data() {
        // With a tiny online buffer (one block per fill: no cross-block
        // mixing from the tuple shuffle), the offline pass is the only
        // mixing force — label uniformity must improve over plain
        // CorgiPile under the same buffer.
        let t = clustered(4000);
        let params = StrategyParams::default()
            .with_buffer_fraction(0.02)
            .with_io_budget(0.5)
            .with_seed(11);
        let mut dev = SimDevice::hdd_scaled(1000.0, 0);
        let mut c2 = Corgi2::new(params.clone());
        let labels_c2 = c2.next_epoch(&t, &mut dev).label_sequence();
        let mut cp = CorgiPile::new(params, BlockSampleMode::FullCoverage);
        let labels_cp = cp.next_epoch(&t, &mut dev).label_sequence();
        let score_c2 = crate::diagnostics::label_uniformity_score(&labels_c2, 50);
        let score_cp = crate::diagnostics::label_uniformity_score(&labels_cp, 50);
        assert!(
            score_c2 < score_cp,
            "corgi2 {score_c2} should mix better than corgipile {score_cp}"
        );
    }
}
