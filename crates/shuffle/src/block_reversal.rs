//! Block-Reversal Shuffle: epoch-indexed block-order rotation/reversal at
//! near-sequential I/O cost ("Learning to Shuffle"-style epoch schemes).
//!
//! Each epoch scans the blocks as a seeded rotation of table order,
//! traversed forward on even epochs and in reverse on odd epochs. Adjacent
//! blocks (in either direction) stream at sequential bandwidth; only the
//! epoch's first block and the rotation wrap point pay a seek, so an epoch
//! costs at most two seeks more than No Shuffle — while the changing
//! traversal order breaks the fixed-order bias that makes No Shuffle
//! diverge on clustered data. No tuple buffer is used.

use crate::plan::{EpochPlan, Segment};
use crate::strategy::{ShuffleStrategy, StrategyParams};
use corgipile_storage::{SimDevice, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED_SALT: u64 = 0xB7E7;

/// The Block-Reversal epoch scheme.
#[derive(Debug)]
pub struct BlockReversalShuffle {
    params: StrategyParams,
    rng: StdRng,
    epoch: u64,
}

impl BlockReversalShuffle {
    /// Create a Block-Reversal strategy.
    pub fn new(params: StrategyParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed ^ SEED_SALT);
        BlockReversalShuffle {
            params,
            rng,
            epoch: 0,
        }
    }

    /// The block visit order for a rotation `offset`, optionally reversed.
    /// Shared with the DB executor so both paths traverse identically.
    pub fn epoch_order(offset: usize, reversed: bool, num_blocks: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (offset..num_blocks).chain(0..offset).collect();
        if reversed {
            order.reverse();
        }
        order
    }
}

impl ShuffleStrategy for BlockReversalShuffle {
    fn name(&self) -> &'static str {
        "block_reversal"
    }

    fn next_epoch(&mut self, table: &Table, dev: &mut SimDevice) -> EpochPlan {
        let n = table.num_blocks();
        let offset = if n > 0 { self.rng.gen_range(0..n) } else { 0 };
        let order = Self::epoch_order(offset, self.epoch % 2 == 1, n);
        self.epoch += 1;
        let mut segments = Vec::with_capacity(n);
        let mut prev: Option<usize> = None;
        for b in order {
            // Adjacent in either direction: sequential continuation; a
            // discontinuity (epoch start or the rotation wrap) seeks.
            let adjacent = prev.is_some_and(|p| b.abs_diff(p) == 1);
            let before = dev.stats().io_seconds;
            let tuples = table
                .scan_block_sequential(b, !adjacent, dev)
                .expect("block id in range");
            segments.push(Segment::new(tuples, dev.stats().io_seconds - before));
            prev = Some(b);
        }
        EpochPlan {
            segments,
            setup_seconds: 0.0,
        }
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.params.seed ^ SEED_SALT);
        self.epoch = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};

    fn clustered(n: usize) -> Table {
        DatasetSpec::higgs_like(n)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(2 * 8192)
            .build_table(1)
            .unwrap()
    }

    #[test]
    fn emits_each_tuple_once_per_epoch() {
        let t = clustered(900);
        let mut s = BlockReversalShuffle::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        for _ in 0..3 {
            let mut ids = s.next_epoch(&t, &mut dev).id_sequence();
            ids.sort_unstable();
            assert_eq!(ids, (0..900).collect::<Vec<_>>());
        }
    }

    #[test]
    fn odd_epochs_reverse_the_block_order() {
        let t = clustered(900);
        let mut s = BlockReversalShuffle::new(StrategyParams::default().with_seed(4));
        let mut dev = SimDevice::hdd(0);
        let e0 = s.next_epoch(&t, &mut dev);
        let e1 = s.next_epoch(&t, &mut dev);
        let first_of =
            |p: &EpochPlan| -> Vec<u64> { p.segments.iter().map(|s| s.tuples[0].id).collect() };
        let f0 = first_of(&e0);
        let f1 = first_of(&e1);
        assert_ne!(f0, f1, "epochs must traverse differently");
        // Odd epoch: consecutive segment heads step downward (mod wrap).
        let descending = f1.windows(2).filter(|w| w[1] < w[0]).count();
        assert!(
            descending >= f1.len().saturating_sub(2),
            "epoch 1 should walk blocks in reverse: {f1:?}"
        );
    }

    #[test]
    fn io_is_near_sequential() {
        let t = clustered(2000);
        let mut s = BlockReversalShuffle::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        for _ in 0..4 {
            s.next_epoch(&t, &mut dev);
        }
        // At most two seeks per epoch: epoch start + rotation wrap.
        assert!(
            dev.stats().random_reads <= 8,
            "too many seeks: {}",
            dev.stats().random_reads
        );
        assert!(dev.stats().sequential_reads > 0);
    }

    #[test]
    fn cheaper_than_block_only_on_hdd() {
        let t = clustered(3000);
        let mut rev = BlockReversalShuffle::new(StrategyParams::default());
        let mut d1 = SimDevice::hdd(0);
        let rev_io = rev.next_epoch(&t, &mut d1).io_seconds();
        let mut blk = crate::block_only::BlockOnlyShuffle::new(StrategyParams::default());
        let mut d2 = SimDevice::hdd(0);
        let blk_io = blk.next_epoch(&t, &mut d2).io_seconds();
        assert!(
            rev_io < blk_io,
            "reversal {rev_io} should undercut block-only {blk_io}"
        );
    }

    #[test]
    fn reset_replays_the_same_epoch_sequence() {
        let t = clustered(900);
        let mut s = BlockReversalShuffle::new(StrategyParams::default().with_seed(9));
        let mut dev = SimDevice::hdd(0);
        let a: Vec<Vec<u64>> = (0..3)
            .map(|_| s.next_epoch(&t, &mut dev).id_sequence())
            .collect();
        s.reset();
        let b: Vec<Vec<u64>> = (0..3)
            .map(|_| s.next_epoch(&t, &mut dev).id_sequence())
            .collect();
        assert_eq!(a, b);
    }
}
