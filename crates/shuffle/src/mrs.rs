//! Multiplexed Reservoir Sampling (§3.4): Bismarck's shuffle.
//!
//! Two logical threads share the model: thread A scans the table
//! sequentially running reservoir sampling of size `R` — tuples *selected*
//! into the reservoir are withheld, tuples *dropped* (the incoming tuple or
//! the evicted victim) go straight to SGD; thread B concurrently loops over
//! the buffered tuples, feeding them to SGD as well (possibly multiple
//! times — the paper's "data skew" critique).
//!
//! We interleave the two streams deterministically at a rate that keeps the
//! per-epoch update count equal to `m`, matching the paper's per-epoch
//! accounting: `m − R` dropped-tuple updates plus `R` buffer-loop updates.
//! The emitted order preserves the paper's observations (Figure 3c/3g):
//! dropped tuples arrive in generally increasing storage order, and buffer
//! tuples repeat.

use crate::plan::{EpochPlan, Segment};
use crate::strategy::{ShuffleStrategy, StrategyParams};
use corgipile_storage::{SimDevice, Table, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The MRS strategy.
#[derive(Debug)]
pub struct MrsShuffle {
    params: StrategyParams,
    rng: StdRng,
    /// Reservoir carried across epochs (thread B's loop source).
    reservoir: Vec<Tuple>,
}

impl MrsShuffle {
    /// Create an MRS strategy with reservoir size `buffer_fraction × m`.
    pub fn new(params: StrategyParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed ^ 0x3E5E);
        MrsShuffle {
            params,
            rng,
            reservoir: Vec::new(),
        }
    }
}

impl ShuffleStrategy for MrsShuffle {
    fn name(&self) -> &'static str {
        "mrs"
    }

    fn next_epoch(&mut self, table: &Table, dev: &mut SimDevice) -> EpochPlan {
        let m = table.num_tuples() as usize;
        let r_cap = self.params.buffer_tuples(table).min(m);
        let a_total = m.saturating_sub(r_cap);
        // Interleave one buffer-loop emission every `interval` drops.
        let interval = a_total.checked_div(r_cap).map_or(usize::MAX, |v| v.max(1));

        self.reservoir.clear();
        self.reservoir.reserve(r_cap);
        let mut segments = Vec::with_capacity(table.num_blocks());
        let mut scanned = 0usize;
        let mut drops = 0usize;
        let mut b_emitted = 0usize;

        for blk in 0..table.num_blocks() {
            let before = dev.stats().io_seconds;
            let incoming = table
                .scan_block_sequential(blk, blk == 0, dev)
                .expect("block id in range");
            // Copy cost for tuples routed through the reservoir.
            let bytes = table.block(blk).expect("in range").bytes;
            dev.charge_seconds(self.params.buffering_cost(0, bytes / 4));
            let mut emitted = Vec::new();
            for t in incoming {
                scanned += 1;
                if self.reservoir.len() < r_cap {
                    self.reservoir.push(t);
                    continue;
                }
                // Classic reservoir step: keep incoming with prob r/scanned.
                let dropped = if r_cap > 0 && self.rng.gen_range(0..scanned) < r_cap {
                    let slot = self.rng.gen_range(0..self.reservoir.len());
                    std::mem::replace(&mut self.reservoir[slot], t)
                } else {
                    t
                };
                emitted.push(dropped);
                drops += 1;
                // Thread B: loop over the buffer at the multiplex rate.
                if drops.is_multiple_of(interval) && b_emitted < r_cap && !self.reservoir.is_empty()
                {
                    let pick = self.rng.gen_range(0..self.reservoir.len());
                    emitted.push(self.reservoir[pick].clone());
                    b_emitted += 1;
                }
            }
            segments.push(Segment::new(emitted, dev.stats().io_seconds - before));
        }

        // Thread B tops up the epoch to exactly m updates.
        let mut tail = Vec::new();
        while b_emitted < r_cap && !self.reservoir.is_empty() {
            let pick = self.rng.gen_range(0..self.reservoir.len());
            tail.push(self.reservoir[pick].clone());
            b_emitted += 1;
        }
        if !tail.is_empty() {
            segments.push(Segment::new(tail, 0.0));
        }
        EpochPlan {
            segments,
            setup_seconds: 0.0,
        }
    }

    fn buffer_tuples(&self, table: &Table) -> usize {
        // Two buffers (B1 + B2) in the real system; we report the reservoir.
        self.params.buffer_tuples(table)
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.params.seed ^ 0x3E5E);
        self.reservoir.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::{DatasetSpec, Order};
    use std::collections::HashMap;

    fn clustered(n: usize) -> Table {
        DatasetSpec::higgs_like(n)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(2 * 8192)
            .build_table(1)
            .unwrap()
    }

    #[test]
    fn epoch_emits_exactly_m_updates() {
        let t = clustered(600);
        let mut s = MrsShuffle::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        assert_eq!(s.next_epoch(&t, &mut dev).num_tuples(), 600);
        assert_eq!(s.next_epoch(&t, &mut dev).num_tuples(), 600);
    }

    #[test]
    fn buffer_tuples_repeat_and_some_tuples_are_skipped() {
        let t = clustered(1000);
        let mut s = MrsShuffle::new(StrategyParams::default().with_buffer_fraction(0.1));
        let mut dev = SimDevice::hdd(0);
        let ids = s.next_epoch(&t, &mut dev).id_sequence();
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for id in &ids {
            *counts.entry(*id).or_default() += 1;
        }
        let dup = counts.values().filter(|&&c| c > 1).count();
        let missing = (0..1000u64).filter(|id| !counts.contains_key(id)).count();
        assert!(dup > 0, "looping buffer should cause duplicates");
        assert!(missing > 0, "reservoir-withheld tuples should be missing");
    }

    #[test]
    fn dropped_tuples_arrive_in_generally_increasing_order() {
        let t = clustered(2000);
        let mut s = MrsShuffle::new(StrategyParams::default().with_buffer_fraction(0.1));
        let mut dev = SimDevice::hdd(0);
        let ids = s.next_epoch(&t, &mut dev).id_sequence();
        // Figure 3(c): overall trend is increasing — Spearman-ish check via
        // mean signed displacement of consecutive emissions.
        let increasing = ids.windows(2).filter(|w| w[1] > w[0]).count();
        let frac = increasing as f64 / (ids.len() - 1) as f64;
        assert!(frac > 0.6, "increasing fraction {frac} too low for MRS");
    }

    #[test]
    fn io_close_to_no_shuffle() {
        let t = clustered(2000);
        let mut s = MrsShuffle::new(StrategyParams::default());
        let mut dev = SimDevice::hdd(0);
        let mrs_io = s.next_epoch(&t, &mut dev).io_seconds();
        let mut ns = crate::no_shuffle::NoShuffle::new();
        let mut dev2 = SimDevice::hdd(0);
        let ns_io = ns.next_epoch(&t, &mut dev2).io_seconds();
        assert!(mrs_io < ns_io * 1.2, "MRS {mrs_io} vs No Shuffle {ns_io}");
    }

    #[test]
    fn head_of_stream_remains_mostly_negative_on_clustered_data() {
        let t = clustered(2000);
        let mut s = MrsShuffle::new(StrategyParams::default().with_buffer_fraction(0.1));
        let mut dev = SimDevice::hdd(0);
        let labels = s.next_epoch(&t, &mut dev).label_sequence();
        let head = &labels[..400];
        let neg = head.iter().filter(|&&l| l < 0.0).count();
        assert!(
            neg > 320,
            "MRS head should stay mostly negative, got {neg}/400"
        );
    }
}
