//! The strategy trait, shared parameters, and the factory.

use crate::block_only::BlockOnlyShuffle;
use crate::block_reversal::BlockReversalShuffle;
use crate::corgi2::Corgi2;
use crate::corgipile::{BlockSampleMode, CorgiPile};
use crate::epoch_shuffle::EpochShuffle;
use crate::mrs::MrsShuffle;
use crate::no_shuffle::NoShuffle;
use crate::plan::{EpochPlan, Segment};
use crate::shuffle_once::ShuffleOnce;
use crate::sliding_window::SlidingWindowShuffle;
use crate::tuple_only::TupleOnlyShuffle;
use corgipile_storage::{SimDevice, Table};

/// Parameters shared by buffered strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyParams {
    /// In-memory buffer size as a fraction of the data set (paper default
    /// 10 %, §7.1.4). Applies to Sliding-Window, MRS and CorgiPile.
    pub buffer_fraction: f64,
    /// RNG seed driving all of the strategy's random choices.
    pub seed: u64,
    /// Memory bandwidth (bytes/s) charged for copying tuples into buffers —
    /// the "buffer copy" overhead of §4.1/§7.3.3.
    pub copy_bandwidth: f64,
    /// Per-tuple CPU cost (seconds) of the in-buffer Fisher–Yates shuffle.
    pub shuffle_cost_per_tuple: f64,
    /// Corgi²'s offline re-clustering budget, as a fraction of a full
    /// offline shuffle's I/O cost (Livne et al. 2023). Only
    /// [`StrategyKind::Corgi2`] reads it.
    pub io_budget: f64,
}

impl Default for StrategyParams {
    fn default() -> Self {
        StrategyParams {
            buffer_fraction: 0.10,
            seed: 0xC0491,
            copy_bandwidth: 5e9,
            shuffle_cost_per_tuple: 1.5e-8,
            io_budget: 0.25,
        }
    }
}

impl StrategyParams {
    /// Override the buffer fraction.
    pub fn with_buffer_fraction(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "buffer fraction must be in (0, 1]");
        self.buffer_fraction = f;
        self
    }

    /// Override Corgi²'s offline re-clustering I/O budget.
    pub fn with_io_budget(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "io budget must be in (0, 1]");
        self.io_budget = f;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Buffer capacity in tuples for a given table.
    pub fn buffer_tuples(&self, table: &Table) -> usize {
        ((table.num_tuples() as f64 * self.buffer_fraction).round() as usize).max(1)
    }

    /// Buffer capacity in blocks for a given table (CorgiPile's `n`).
    pub fn buffer_blocks(&self, table: &Table) -> usize {
        ((table.num_blocks() as f64 * self.buffer_fraction).round() as usize)
            .clamp(1, table.num_blocks().max(1))
    }

    /// Loading-side CPU cost of buffering `tuples` tuples of `bytes` bytes:
    /// one memcpy plus the Fisher–Yates pass.
    pub fn buffering_cost(&self, tuples: usize, bytes: usize) -> f64 {
        bytes as f64 / self.copy_bandwidth + tuples as f64 * self.shuffle_cost_per_tuple
    }
}

/// A per-epoch tuple-stream producer.
///
/// Calling [`ShuffleStrategy::next_epoch`] advances the strategy's internal
/// epoch counter and RNG; the returned [`EpochPlan`] carries the tuples in
/// SGD consumption order and the simulated I/O cost of producing them.
///
/// `Send` is a supertrait so a boxed strategy can move (or be mutably
/// borrowed) into the producer thread of the double-buffered pipeline.
pub trait ShuffleStrategy: Send {
    /// Short machine-friendly name ("corgipile", "no_shuffle", …).
    fn name(&self) -> &'static str;

    /// Produce the next epoch's stream over `table`, charging `dev`.
    fn next_epoch(&mut self, table: &Table, dev: &mut SimDevice) -> EpochPlan;

    /// Stream the next epoch's segments through `emit` as they are filled,
    /// returning the epoch's setup cost in simulated seconds.
    ///
    /// This is the hook the double-buffered pipeline hangs its producer on:
    /// each segment is handed over as soon as it is ready instead of
    /// materializing the whole [`EpochPlan`] first. Implementations **must**
    /// emit exactly the segments of [`ShuffleStrategy::next_epoch`], in
    /// order, with identical RNG advancement, so the pipelined and serial
    /// paths stay bit-identical for a fixed seed. `emit` returning `false`
    /// abandons the rest of the epoch (the strategy's RNG state is then
    /// unspecified until the next [`ShuffleStrategy::reset`]).
    ///
    /// The default buffers one full epoch via `next_epoch` — correct for
    /// every strategy, but with no fill/compute overlap; strategies with
    /// genuinely incremental fills (CorgiPile) override it.
    fn stream_epoch(
        &mut self,
        table: &Table,
        dev: &mut SimDevice,
        emit: &mut dyn FnMut(Segment) -> bool,
    ) -> f64 {
        let plan = self.next_epoch(table, dev);
        for seg in plan.segments {
            if !emit(seg) {
                break;
            }
        }
        plan.setup_seconds
    }

    /// In-memory buffer requirement in tuples (Table 1's "In-memory buffer").
    fn buffer_tuples(&self, _table: &Table) -> usize {
        0
    }

    /// Additional disk space as a multiple of the data set (Table 1's
    /// "Additional Disk Space": 1.0 = none, 2.0 = doubles storage).
    fn disk_space_factor(&self) -> f64 {
        1.0
    }

    /// Reset to the pre-epoch-0 state (new seed-deterministic run).
    fn reset(&mut self);
}

/// Identifiers for the strategies (used by configs, SQL, and reports).
///
/// This enum is the single source of truth shared by the shuffle crate,
/// the trainer, and the SQL surface (`corgipile_db` re-exports it);
/// parse/display/capability predicates all live here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum StrategyKind {
    /// §3.2 — sequential scan, no randomness.
    NoShuffle,
    /// §3.1 — one offline full shuffle, then sequential scans.
    ShuffleOnce,
    /// §3.1 — full shuffle before every epoch.
    EpochShuffle,
    /// §3.3 — TensorFlow's sliding-window sampling.
    SlidingWindow,
    /// §3.4 — Bismarck's multiplexed reservoir sampling.
    Mrs,
    /// §7.3 — CorgiPile without the tuple-level shuffle.
    BlockOnly,
    /// Ablation: CorgiPile without the *block*-level shuffle (sequential
    /// block reads + in-buffer tuple shuffle only).
    TupleOnly,
    /// §4 — the paper's two-level hierarchical shuffle.
    CorgiPile,
    /// Corgi² (Livne et al. 2023) — bounded-I/O offline partial
    /// re-clustering, then CorgiPile online.
    Corgi2,
    /// "Learning to Shuffle"-style epoch-indexed block-order
    /// rotation/reversal at near-sequential I/O cost.
    BlockReversal,
}

impl StrategyKind {
    /// All kinds, in the paper's presentation order (the two ablations
    /// before the full algorithm, the post-paper hybrids last).
    pub fn all() -> [StrategyKind; 10] {
        [
            StrategyKind::NoShuffle,
            StrategyKind::ShuffleOnce,
            StrategyKind::EpochShuffle,
            StrategyKind::SlidingWindow,
            StrategyKind::Mrs,
            StrategyKind::BlockOnly,
            StrategyKind::TupleOnly,
            StrategyKind::CorgiPile,
            StrategyKind::Corgi2,
            StrategyKind::BlockReversal,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn display(&self) -> &'static str {
        match self {
            StrategyKind::NoShuffle => "No Shuffle",
            StrategyKind::ShuffleOnce => "Shuffle Once",
            StrategyKind::EpochShuffle => "Epoch Shuffle",
            StrategyKind::SlidingWindow => "Sliding-Window Shuffle",
            StrategyKind::Mrs => "MRS Shuffle",
            StrategyKind::BlockOnly => "Block-Only Shuffle",
            StrategyKind::TupleOnly => "Tuple-Only Shuffle",
            StrategyKind::CorgiPile => "CorgiPile",
            StrategyKind::Corgi2 => "Corgi²",
            StrategyKind::BlockReversal => "Block-Reversal Shuffle",
        }
    }

    /// Short machine-friendly name: the canonical SQL spelling and the
    /// [`ShuffleStrategy::name`] of the built strategy.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::NoShuffle => "no_shuffle",
            StrategyKind::ShuffleOnce => "shuffle_once",
            StrategyKind::EpochShuffle => "epoch_shuffle",
            StrategyKind::SlidingWindow => "sliding_window",
            StrategyKind::Mrs => "mrs",
            StrategyKind::BlockOnly => "block_only",
            StrategyKind::TupleOnly => "tuple_only",
            StrategyKind::CorgiPile => "corgipile",
            StrategyKind::Corgi2 => "corgi2",
            StrategyKind::BlockReversal => "block_reversal",
        }
    }

    /// Parse a machine name (as produced by [`StrategyKind::name`]) back
    /// into a kind. Case-insensitive; the historical SQL short spellings
    /// `no` and `once` are accepted as aliases. `None` for unknown names.
    pub fn from_name(name: &str) -> Option<StrategyKind> {
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "no" => return Some(StrategyKind::NoShuffle),
            "once" => return Some(StrategyKind::ShuffleOnce),
            _ => {}
        }
        StrategyKind::all().into_iter().find(|k| k.name() == lower)
    }

    /// Whether the strategy buffers tuples in memory and re-shuffles them
    /// there (CorgiPile's second level). Decides whether the query plan
    /// needs a TupleShuffle operator above the scan.
    pub fn is_tuple_buffered(&self) -> bool {
        matches!(
            self,
            StrategyKind::CorgiPile | StrategyKind::TupleOnly | StrategyKind::Corgi2
        )
    }

    /// Whether the SQL surface accepts this kind for `TRAIN … WITH
    /// strategy = …`. The paper-comparison baselines (MRS, sliding-window,
    /// epoch shuffle) exist for bench parity only and are not plannable.
    pub fn available_in_db(&self) -> bool {
        !matches!(
            self,
            StrategyKind::Mrs | StrategyKind::SlidingWindow | StrategyKind::EpochShuffle
        )
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display())
    }
}

/// Build a boxed strategy of the given kind.
pub fn build_strategy(kind: StrategyKind, params: StrategyParams) -> Box<dyn ShuffleStrategy> {
    match kind {
        StrategyKind::NoShuffle => Box::new(NoShuffle::new()),
        StrategyKind::ShuffleOnce => Box::new(ShuffleOnce::new(params)),
        StrategyKind::EpochShuffle => Box::new(EpochShuffle::new(params)),
        StrategyKind::SlidingWindow => Box::new(SlidingWindowShuffle::new(params)),
        StrategyKind::Mrs => Box::new(MrsShuffle::new(params)),
        StrategyKind::BlockOnly => Box::new(BlockOnlyShuffle::new(params)),
        StrategyKind::TupleOnly => Box::new(TupleOnlyShuffle::new(params)),
        StrategyKind::CorgiPile => Box::new(CorgiPile::new(params, BlockSampleMode::FullCoverage)),
        StrategyKind::Corgi2 => Box::new(Corgi2::new(params)),
        StrategyKind::BlockReversal => Box::new(BlockReversalShuffle::new(params)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corgipile_data::DatasetSpec;

    fn small_table() -> Table {
        DatasetSpec::higgs_like(400)
            .with_block_bytes(4 * 8192)
            .build_table(1)
            .unwrap()
    }

    #[test]
    fn params_buffer_sizing() {
        let t = small_table();
        let p = StrategyParams::default().with_buffer_fraction(0.1);
        assert_eq!(p.buffer_tuples(&t), 40);
        assert!(p.buffer_blocks(&t) >= 1);
        assert!(p.buffer_blocks(&t) <= t.num_blocks());
    }

    #[test]
    #[should_panic(expected = "buffer fraction")]
    fn zero_buffer_fraction_rejected() {
        let _ = StrategyParams::default().with_buffer_fraction(0.0);
    }

    #[test]
    fn buffering_cost_positive_and_monotone() {
        let p = StrategyParams::default();
        let small = p.buffering_cost(10, 1000);
        let big = p.buffering_cost(1000, 100_000);
        assert!(small > 0.0);
        assert!(big > small);
    }

    #[test]
    fn factory_builds_all_kinds_and_they_stream_everything() {
        let t = small_table();
        for kind in StrategyKind::all() {
            let mut s = build_strategy(kind, StrategyParams::default().with_seed(3));
            let mut dev = SimDevice::hdd(0);
            let plan = s.next_epoch(&t, &mut dev);
            // Every strategy visits all tuples once per epoch (MRS's looping
            // buffer trades duplicates for skips but keeps the count).
            assert_eq!(
                plan.num_tuples() as u64,
                t.num_tuples(),
                "{kind}: wrong stream length"
            );
            assert!(dev.stats().io_seconds > 0.0, "{kind}: no I/O charged");
        }
    }

    #[test]
    fn strategies_are_seed_deterministic_across_reset() {
        let t = small_table();
        for kind in StrategyKind::all() {
            let mut s = build_strategy(kind, StrategyParams::default().with_seed(11));
            let mut dev = SimDevice::hdd(0);
            let a = s.next_epoch(&t, &mut dev).id_sequence();
            s.reset();
            let mut dev2 = SimDevice::hdd(0);
            let b = s.next_epoch(&t, &mut dev2).id_sequence();
            assert_eq!(a, b, "{kind}: reset should replay the same stream");
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(StrategyKind::CorgiPile.to_string(), "CorgiPile");
        assert_eq!(StrategyKind::Mrs.to_string(), "MRS Shuffle");
        assert_eq!(StrategyKind::Corgi2.to_string(), "Corgi²");
        assert_eq!(StrategyKind::all().len(), 10);
    }

    #[test]
    fn machine_names_round_trip() {
        for kind in StrategyKind::all() {
            assert_eq!(StrategyKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(
            StrategyKind::from_name("CORGIPILE"),
            Some(StrategyKind::CorgiPile)
        );
        assert_eq!(StrategyKind::from_name("bogus"), None);
        assert_eq!(StrategyKind::from_name(""), None);
    }

    #[test]
    fn capability_predicates() {
        assert!(StrategyKind::CorgiPile.is_tuple_buffered());
        assert!(StrategyKind::Corgi2.is_tuple_buffered());
        assert!(StrategyKind::TupleOnly.is_tuple_buffered());
        assert!(!StrategyKind::BlockOnly.is_tuple_buffered());
        assert!(!StrategyKind::BlockReversal.is_tuple_buffered());
        assert!(StrategyKind::Corgi2.available_in_db());
        assert!(StrategyKind::BlockReversal.available_in_db());
        assert!(!StrategyKind::Mrs.available_in_db());
        assert!(!StrategyKind::SlidingWindow.available_in_db());
        assert!(!StrategyKind::EpochShuffle.available_in_db());
    }

    #[test]
    fn built_strategy_names_match_kind_names() {
        for kind in StrategyKind::all() {
            let s = build_strategy(kind, StrategyParams::default());
            assert_eq!(s.name(), kind.name(), "{kind}");
        }
    }
}
