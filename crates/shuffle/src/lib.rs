//! # corgipile-shuffle
//!
//! The data-shuffling strategies studied by the CorgiPile paper (§3–§4),
//! implemented as per-epoch tuple-stream producers over heap tables with
//! full I/O cost accounting:
//!
//! | Strategy | Paper § | I/O pattern | Randomness |
//! |---|---|---|---|
//! | [`NoShuffle`] | §3.2 | sequential scan | none |
//! | [`ShuffleOnce`] | §3.1 | offline full shuffle (2× storage), then sequential | full (fixed across epochs) |
//! | [`EpochShuffle`] | §3.1 | full shuffle before *every* epoch | full |
//! | [`SlidingWindowShuffle`] | §3.3 | sequential scan | local window (TensorFlow) |
//! | [`MrsShuffle`] | §3.4 | sequential scan + looping buffer | reservoir (Bismarck) |
//! | [`BlockOnlyShuffle`] | §7.3 | random block reads | block order only |
//! | [`CorgiPile`] | §4 | random block reads + buffered tuple shuffle | two-level hierarchical |
//! | [`BlockReversalShuffle`] | related work | near-sequential rotated/reversed scans | epoch-indexed order |
//! | [`Corgi2`] | Corgi² (Livne et al.) | bounded-I/O offline recluster, then CorgiPile | partial offline + two-level |
//!
//! Every strategy emits an [`EpochPlan`]: a sequence of [`Segment`]s (one
//! per buffer fill / block read) carrying the tuples in SGD consumption
//! order together with the simulated I/O seconds spent producing them, so
//! the trainer can apply the paper's single- vs double-buffer pipeline
//! model (§6.3).
//!
//! [`NoShuffle`]: no_shuffle::NoShuffle
//! [`ShuffleOnce`]: shuffle_once::ShuffleOnce
//! [`EpochShuffle`]: epoch_shuffle::EpochShuffle
//! [`SlidingWindowShuffle`]: sliding_window::SlidingWindowShuffle
//! [`MrsShuffle`]: mrs::MrsShuffle
//! [`BlockOnlyShuffle`]: block_only::BlockOnlyShuffle
//! [`CorgiPile`]: corgipile::CorgiPile
//! [`BlockReversalShuffle`]: block_reversal::BlockReversalShuffle
//! [`Corgi2`]: corgi2::Corgi2
//! [`EpochPlan`]: plan::EpochPlan
//! [`Segment`]: plan::Segment

pub mod block_only;
pub mod block_reversal;
pub mod corgi2;
pub mod corgipile;
pub mod cost;
pub mod diagnostics;
pub mod epoch_shuffle;
pub mod mrs;
pub mod no_shuffle;
pub mod plan;
pub mod shuffle_once;
pub mod sliding_window;
pub mod strategy;
pub mod tuple_only;

pub use block_only::BlockOnlyShuffle;
pub use block_reversal::BlockReversalShuffle;
pub use corgi2::{full_shuffle_io, recluster_table, Corgi2, ReclusterOutcome};
pub use corgipile::{BlockSampleMode, CorgiPile};
pub use cost::{CostEstimate, CostModel};
pub use diagnostics::{
    block_variance_exact, block_variance_sampled, label_distribution, label_uniformity_score,
    order_displacement, tuple_id_trace, BlockVariance, LabelWindow,
};
pub use epoch_shuffle::EpochShuffle;
pub use mrs::MrsShuffle;
pub use no_shuffle::NoShuffle;
pub use plan::{EpochPlan, Segment};
pub use shuffle_once::ShuffleOnce;
pub use sliding_window::SlidingWindowShuffle;
pub use strategy::{build_strategy, ShuffleStrategy, StrategyKind, StrategyParams};
pub use tuple_only::TupleOnlyShuffle;
