//! Criterion: wall-clock throughput of each shuffle strategy's epoch
//! stream generation (the CPU side of Table 1 / Figure 13: how expensive
//! is producing the order itself?).

use corgipile_data::{DatasetSpec, Order};
use corgipile_shuffle::{build_strategy, StrategyKind, StrategyParams};
use corgipile_storage::{SimDevice, Table};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn table() -> Table {
    DatasetSpec::higgs_like(8_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build_table(1)
        .unwrap()
}

fn bench_strategies(c: &mut Criterion) {
    let table = table();
    let mut group = c.benchmark_group("epoch_stream");
    group.throughput(Throughput::Elements(table.num_tuples()));
    for kind in [
        StrategyKind::NoShuffle,
        StrategyKind::ShuffleOnce,
        StrategyKind::SlidingWindow,
        StrategyKind::Mrs,
        StrategyKind::BlockOnly,
        StrategyKind::CorgiPile,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.display()),
            &kind,
            |b, &kind| {
                let mut strategy = build_strategy(kind, StrategyParams::default());
                b.iter(|| {
                    let mut dev = SimDevice::in_memory();
                    let plan = strategy.next_epoch(&table, &mut dev);
                    std::hint::black_box(plan.num_tuples())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
