//! Criterion: per-tuple gradient kernels — the compute inner loops whose
//! costs the simulated clock models (dense vs sparse vs MLP).

use corgipile_data::{DatasetSpec, Order};
use corgipile_ml::{build_model, ModelKind};
use corgipile_storage::Tuple;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn tuples_for(spec: corgipile_data::DatasetSpec) -> Vec<Tuple> {
    spec.with_order(Order::Shuffled).build(1).train
}

fn bench_kernels(c: &mut Criterion) {
    let dense = tuples_for(DatasetSpec::higgs_like(2_000));
    let wide = tuples_for(DatasetSpec::epsilon_like(200));
    let sparse = tuples_for(DatasetSpec::criteo_like(2_000));

    let mut group = c.benchmark_group("sgd_step");
    group.throughput(Throughput::Elements(1));

    group.bench_function("lr_dense28", |b| {
        let mut m = build_model(&ModelKind::LogisticRegression, 28, 1);
        let mut i = 0;
        b.iter(|| {
            let t = &dense[i % dense.len()];
            i += 1;
            m.sgd_step(&t.features, t.label, 0.01);
        });
    });

    group.bench_function("svm_dense2000", |b| {
        let mut m = build_model(&ModelKind::Svm, 2000, 1);
        let mut i = 0;
        b.iter(|| {
            let t = &wide[i % wide.len()];
            i += 1;
            m.sgd_step(&t.features, t.label, 0.01);
        });
    });

    group.bench_function("lr_sparse100k_nnz39", |b| {
        let mut m = build_model(&ModelKind::LogisticRegression, 100_000, 1);
        let mut i = 0;
        b.iter(|| {
            let t = &sparse[i % sparse.len()];
            i += 1;
            m.sgd_step(&t.features, t.label, 0.01);
        });
    });

    group.bench_function("mlp_128x32x10", |b| {
        let cifar = tuples_for(DatasetSpec::cifar_like(500));
        let mut m = build_model(
            &ModelKind::Mlp {
                hidden: vec![32],
                classes: 10,
            },
            128,
            1,
        );
        let mut i = 0;
        b.iter(|| {
            let t = &cifar[i % cifar.len()];
            i += 1;
            m.sgd_step(&t.features, t.label, 0.01);
        });
    });
    group.finish();
}

fn bench_minibatch_grad(c: &mut Criterion) {
    let dense = tuples_for(DatasetSpec::higgs_like(2_000));
    let mut group = c.benchmark_group("minibatch_128");
    group.throughput(Throughput::Elements(128));
    group.bench_function("lr_dense28_batch128", |b| {
        let mut m = build_model(&ModelKind::LogisticRegression, 28, 1);
        let mut opt = corgipile_ml::Sgd::new(0.01, 1.0);
        let mut i = 0;
        b.iter(|| {
            let start = (i * 128) % (dense.len() - 128);
            i += 1;
            corgipile_ml::train_minibatch(
                m.as_mut(),
                &mut opt,
                dense[start..start + 128].iter(),
                &corgipile_ml::TrainOptions::minibatch(128),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_minibatch_grad);
criterion_main!(benches);
