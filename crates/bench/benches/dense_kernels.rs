//! Criterion: the dense dot/axpy inner loops, scalar vs 8-wide unrolled —
//! the kernels behind every GLM/softmax/MLP gradient step (and the basis
//! of the `kernel_gflops` section of `BENCH_pipeline.json`).

use corgipile_storage::{dense_axpy, dense_axpy_scalar, dense_dot, dense_dot_scalar};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_dense_kernels(c: &mut Criterion) {
    for dim in [28usize, 256, 2048] {
        let x: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut w: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.11).cos()).collect();

        let mut group = c.benchmark_group("dense_dot");
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::new("scalar", dim), &dim, |b, _| {
            b.iter(|| dense_dot_scalar(&x, &w))
        });
        group.bench_with_input(BenchmarkId::new("unrolled", dim), &dim, |b, _| {
            b.iter(|| dense_dot(&x, &w))
        });
        group.finish();

        let mut group = c.benchmark_group("dense_axpy");
        group.throughput(Throughput::Elements(dim as u64));
        group.bench_with_input(BenchmarkId::new("scalar", dim), &dim, |b, _| {
            b.iter(|| dense_axpy_scalar(1e-9, &x, &mut w))
        });
        group.bench_with_input(BenchmarkId::new("unrolled", dim), &dim, |b, _| {
            b.iter(|| dense_axpy(1e-9, &x, &mut w))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_dense_kernels);
criterion_main!(benches);
