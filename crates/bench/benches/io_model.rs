//! Criterion: the simulated-device fast paths (block reads through the
//! cache hierarchy) and the Figure-20 throughput curve computation.

use corgipile_data::{DatasetSpec, Order};
use corgipile_storage::{Access, DeviceProfile, SimDevice};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_random_block_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig20_random_read_model");
    for shift in [16u32, 20, 23, 26] {
        let block = 1usize << shift;
        group.throughput(Throughput::Bytes(block as u64));
        group.bench_with_input(BenchmarkId::from_parameter(block), &block, |b, &block| {
            let mut dev = SimDevice::hdd(0);
            let mut key = 0u64;
            b.iter(|| {
                key = key.wrapping_add(1);
                std::hint::black_box(dev.read(Some(key), block, Access::Random, None))
            });
        });
    }
    group.finish();
}

fn bench_table_block_access(c: &mut Criterion) {
    let table = DatasetSpec::higgs_like(8_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build_table(1)
        .unwrap();
    let mut group = c.benchmark_group("table_access");
    group.throughput(Throughput::Elements(table.tuples_per_block() as u64));
    group.bench_function("read_block_decode", |b| {
        let mut dev = SimDevice::in_memory();
        let mut id = 0usize;
        b.iter(|| {
            id = (id + 1) % table.num_blocks();
            std::hint::black_box(table.read_block(id, &mut dev).unwrap().len())
        });
    });
    group.bench_function("read_tuple_random", |b| {
        let mut dev = SimDevice::in_memory();
        let mut tid = 0u64;
        b.iter(|| {
            tid = (tid + 7919) % table.num_tuples();
            std::hint::black_box(table.read_tuple_random(tid, &mut dev).unwrap().id)
        });
    });
    group.finish();
}

fn bench_profile_closed_form(c: &mut Criterion) {
    c.bench_function("device_profile_read_time", |b| {
        let p = DeviceProfile::hdd();
        let mut bytes = 1usize;
        b.iter(|| {
            bytes = (bytes % (100 << 20)) + 4096;
            std::hint::black_box(p.read_time(bytes, Access::Random))
        });
    });
}

criterion_group!(
    benches,
    bench_random_block_reads,
    bench_table_block_access,
    bench_profile_closed_form
);
criterion_main!(benches);
