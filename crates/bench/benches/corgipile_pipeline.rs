//! Criterion: the full CorgiPile stack — library trainer epochs, the
//! threaded double-buffered loader, and multi-worker epochs.

use corgipile_core::{
    parallel_epoch_plan, train_parallel, ParallelConfig, ThreadedLoader, Trainer, TrainerConfig,
};
use corgipile_data::{DatasetSpec, Order};
use corgipile_ml::{build_model, ModelKind, OptimizerKind, Sgd};
use corgipile_shuffle::StrategyKind;
use corgipile_storage::{SimDevice, Table};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn table() -> Table {
    DatasetSpec::higgs_like(8_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build_table(1)
        .unwrap()
}

fn bench_trainer(c: &mut Criterion) {
    let table = table();
    let mut group = c.benchmark_group("trainer_2_epochs");
    group.throughput(Throughput::Elements(2 * table.num_tuples()));
    group.sample_size(20);
    for strategy in [StrategyKind::NoShuffle, StrategyKind::CorgiPile] {
        group.bench_function(strategy.display(), |b| {
            b.iter(|| {
                let cfg = TrainerConfig::new(ModelKind::Svm, 2)
                    .with_strategy(strategy)
                    .with_optimizer(OptimizerKind::default_sgd(0.02));
                let mut dev = SimDevice::in_memory();
                std::hint::black_box(
                    Trainer::new(cfg)
                        .train(&table, &mut dev, 1)
                        .unwrap()
                        .final_train_metric,
                )
            })
        });
    }
    group.finish();
}

fn bench_threaded_loader(c: &mut Criterion) {
    let table = table();
    let mut group = c.benchmark_group("threaded_loader_epoch");
    group.throughput(Throughput::Elements(table.num_tuples()));
    group.sample_size(20);
    group.bench_function("double_buffered", |b| {
        b.iter(|| {
            let loader = ThreadedLoader::spawn(table.clone(), 14, 3);
            std::hint::black_box(loader.count())
        })
    });
    group.finish();
}

fn bench_parallel_epoch(c: &mut Criterion) {
    let table = table();
    let mut group = c.benchmark_group("parallel_epoch");
    group.throughput(Throughput::Elements(table.num_tuples()));
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("{workers}_workers"), |b| {
            let cfg = ParallelConfig {
                workers,
                total_buffer_fraction: 0.1,
                batch_size: 128,
                seed: 1,
                ..Default::default()
            };
            b.iter(|| {
                let mut model = build_model(&ModelKind::LogisticRegression, 28, 1);
                let mut opt = Sgd::new(0.02, 1.0);
                let plan = parallel_epoch_plan(&table, &cfg, 0);
                std::hint::black_box(train_parallel(
                    model.as_mut(),
                    &mut opt,
                    &plan.merged_batches,
                    workers,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_trainer,
    bench_threaded_loader,
    bench_parallel_epoch
);
criterion_main!(benches);
