//! Criterion: one in-DB training epoch through the Volcano pipeline —
//! the wall-clock analogue of Figure 13 (No-Shuffle plan vs CorgiPile plan
//! vs single-buffer CorgiPile).

use corgipile_data::{DatasetSpec, Order};
use corgipile_db::{
    BlockShuffleOp, ExecContext, PhysicalOperator, ScanMode, SgdOperator, TupleShuffleOp,
};
use corgipile_ml::{build_model, ComputeCostModel, ModelKind, OptimizerKind, TrainOptions};
use corgipile_shuffle::StrategyParams;
use corgipile_storage::{DeviceHandle, SimDevice, Table};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

fn table() -> Arc<Table> {
    Arc::new(
        DatasetSpec::higgs_like(8_000)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(8 << 10)
            .build_table(1)
            .unwrap(),
    )
}

fn run_epoch(table: &Arc<Table>, plan: &str, double: bool) -> f64 {
    let child: Box<dyn PhysicalOperator> = match plan {
        "no" => Box::new(BlockShuffleOp::new(table.clone(), ScanMode::Sequential, 1)),
        _ => Box::new(TupleShuffleOp::new(
            Box::new(BlockShuffleOp::new(
                table.clone(),
                ScanMode::RandomBlocks,
                1,
            )),
            table.num_blocks().div_ceil(10).max(1),
            StrategyParams::default(),
        )),
    };
    let op = SgdOperator::new(
        child,
        build_model(&ModelKind::Svm, 28, 1),
        OptimizerKind::default_sgd(0.02).build(),
        TrainOptions::default(),
        ComputeCostModel::in_db_core(),
        1,
        double,
    );
    let mut dev = DeviceHandle::private(SimDevice::in_memory());
    let mut ctx = ExecContext::new(&mut dev);
    op.execute(&mut ctx).expect("fault-free epoch").epochs[0].epoch_seconds
}

fn bench_per_epoch(c: &mut Criterion) {
    let table = table();
    let mut group = c.benchmark_group("db_epoch");
    group.throughput(Throughput::Elements(table.num_tuples()));
    group.sample_size(20);
    for (name, plan, double) in [
        ("no_shuffle_plan", "no", true),
        ("corgipile_double_buffer", "corgi", true),
        ("corgipile_single_buffer", "corgi", false),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(run_epoch(&table, plan, double)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_per_epoch);
criterion_main!(benches);
