//! Criterion: fused batch-at-a-time pipeline vs the interpreted Volcano
//! tree, measured as real host wall time over the same `TRAIN BY` query.
//!
//! The simulated clock (what BENCH_vectorize.json gates on) moves with
//! the batched cost model; this bench pins down the *host* side of the
//! story — one virtual `next()` call per tuple vs one `next_batch` call
//! per `TupleBatch` with the predicate/projection/kernel closure chosen
//! once at build time.

use corgipile_data::{DatasetSpec, Order};
use corgipile_db::{Database, QueryResult};
use corgipile_storage::{SimDevice, Table};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn table() -> Table {
    DatasetSpec::higgs_like(8_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build_table(1)
        .unwrap()
}

fn train_sql(fuse: usize, filtered: bool) -> String {
    let wher = if filtered { "WHERE id < 4000 " } else { "" };
    format!(
        "SELECT * FROM higgs {wher}TRAIN BY svm WITH max_epoch_num = 2, \
         seed = 41, fuse = {fuse}, model_name = m"
    )
}

fn bench_train_inner_loop(c: &mut Criterion) {
    let table = table();
    let mut group = c.benchmark_group("train_2_epochs");
    group.throughput(Throughput::Elements(2 * table.num_tuples()));
    group.sample_size(20);
    for (name, fuse, filtered) in [
        ("interpreted", 0, false),
        ("fused", 1, false),
        ("interpreted_filtered", 0, true),
        ("fused_filtered", 1, true),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let db = Database::new(SimDevice::in_memory());
                db.register_table("higgs", table.clone());
                let mut s = db.connect();
                let r = s.execute(&train_sql(fuse, filtered)).unwrap();
                let summary = match r {
                    QueryResult::Train(t) => t,
                    _ => unreachable!(),
                };
                std::hint::black_box(summary.final_train_metric)
            })
        });
    }
    group.finish();
}

fn bench_predict_inner_loop(c: &mut Criterion) {
    let table = table();
    let db = Database::new(SimDevice::in_memory());
    db.register_table("higgs", table.clone());
    db.connect().execute(&train_sql(1, false)).unwrap();
    let mut group = c.benchmark_group("predict_scan");
    group.throughput(Throughput::Elements(table.num_tuples()));
    group.sample_size(30);
    for (name, fuse) in [("interpreted", false), ("fused", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let p = db
                    .connect()
                    .predict_batch(
                        "higgs",
                        "m",
                        corgipile_db::ServeOptions {
                            fuse,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                std::hint::black_box(p.rows)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train_inner_loop, bench_predict_inner_loop);
criterion_main!(benches);
