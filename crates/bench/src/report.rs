//! Experiment output: aligned stdout tables + TSV/JSON files under
//! `results/`.

use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

use corgipile_telemetry::Telemetry;

/// Collects rows for one experiment artifact and renders them.
pub struct Report {
    id: String,
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
    telemetry: Option<String>,
}

impl Report {
    /// Start a report for artifact `id` ("fig11", "table3", …).
    pub fn new(id: impl Into<String>, title: impl Into<String>, header: &[&str]) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            telemetry: None,
        }
    }

    /// Append one row (stringifies every cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Append one pre-stringified row.
    pub fn row_strings(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Attach a free-form note printed under the table.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Embed a telemetry snapshot: the JSON artifact gains an
    /// `io_breakdown` section with every counter, gauge, histogram, and
    /// per-epoch event the run recorded (device seconds, cache hits,
    /// retries, fill spans, …). Call after the workload finishes and
    /// before [`Report::finish`].
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = Some(telemetry.json());
    }

    /// True once a telemetry snapshot has been attached.
    pub fn has_telemetry(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the aligned table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Print to stdout and write `results/<id>.tsv` plus
    /// `results/<id>.json`.
    pub fn finish(&self) {
        println!("{}", self.render());
        if let Err(e) = self.write_tsv() {
            eprintln!("warning: could not write results/{}.tsv: {e}", self.id);
        }
        if let Err(e) = self.write_json() {
            eprintln!("warning: could not write results/{}.json: {e}", self.id);
        }
    }

    /// Write the TSV file; returns its path.
    pub fn write_tsv(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.tsv", self.id));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        for n in &self.notes {
            writeln!(f, "# {n}")?;
        }
        Ok(path)
    }

    /// Render the JSON artifact: table data plus (when attached) the
    /// telemetry `io_breakdown` section consumed by downstream tooling.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        out.push_str(&format!(
            "  \"header\": [{}],\n",
            self.header
                .iter()
                .map(|h| json_str(h))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let cells = row
                .iter()
                .map(|c| json_str(c))
                .collect::<Vec<_>>()
                .join(", ");
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            out.push_str(&format!("    [{cells}]{comma}\n"));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"notes\": [{}],\n",
            self.notes
                .iter()
                .map(|n| json_str(n))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        match &self.telemetry {
            Some(json) => out.push_str(&format!("  \"io_breakdown\": {json}\n")),
            None => out.push_str("  \"io_breakdown\": null\n"),
        }
        out.push('}');
        out
    }

    /// Write the JSON file; returns its path.
    pub fn write_json(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.render_json())?;
        Ok(path)
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Directory for TSV outputs (`CORGI_RESULTS_DIR` or `./results`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("CORGI_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Format seconds compactly ("1.23s", "45.6ms").
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

/// Format a metric as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_contains_rows() {
        let mut r = Report::new("t", "demo", &["name", "value"]);
        r.row(&[&"alpha", &1.25]);
        r.row(&[&"b", &"x"]);
        r.note("hello");
        let s = r.render();
        assert!(s.contains("alpha"));
        assert!(s.contains("note: hello"));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Report::new("t", "demo", &["a", "b"]);
        r.row(&[&1]);
    }

    #[test]
    fn tsv_written_to_custom_dir() {
        let dir = std::env::temp_dir().join(format!("corgi_test_{}", std::process::id()));
        std::env::set_var("CORGI_RESULTS_DIR", &dir);
        let mut r = Report::new("unit_test_artifact", "t", &["a"]);
        r.row(&[&42]);
        let path = r.write_tsv().unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.starts_with("a\n42"));
        std::env::remove_var("CORGI_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn json_embeds_telemetry_breakdown() {
        let tel = Telemetry::enabled();
        tel.counter("storage.device.device_bytes").add(4096);
        tel.event(0, "epoch.io_seconds", 1.5);
        let mut r = Report::new("unit_json", "demo", &["strategy", "io"]);
        r.row(&[&"corgipile", &0.25]);
        r.note("laptop scale");
        assert!(!r.has_telemetry());
        r.attach_telemetry(&tel);
        assert!(r.has_telemetry());
        let json = r.render_json();
        assert!(json.contains("\"id\": \"unit_json\""));
        assert!(json.contains("[\"corgipile\", \"0.25\"]"));
        assert!(json.contains("\"io_breakdown\": {"));
        assert!(json.contains("storage.device.device_bytes"));
        assert!(json.contains("epoch.io_seconds"));
    }

    #[test]
    fn json_without_telemetry_is_null_breakdown() {
        let mut r = Report::new("unit_json2", "demo \"quoted\"", &["a"]);
        r.row(&[&"x\ty"]);
        let json = r.render_json();
        assert!(json.contains("\"io_breakdown\": null"));
        assert!(json.contains("demo \\\"quoted\\\""));
        assert!(json.contains("x\\ty"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(2.5e-6), "2.5µs");
        assert_eq!(fmt_pct(0.756), "75.6%");
    }
}
