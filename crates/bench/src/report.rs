//! Experiment output: aligned stdout tables + TSV files under `results/`.

use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Collects rows for one experiment artifact and renders them.
pub struct Report {
    id: String,
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    /// Start a report for artifact `id` ("fig11", "table3", …).
    pub fn new(id: impl Into<String>, title: impl Into<String>, header: &[&str]) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append one row (stringifies every cell).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Append one pre-stringified row.
    pub fn row_strings(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Attach a free-form note printed under the table.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the aligned table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Print to stdout and write `results/<id>.tsv`.
    pub fn finish(&self) {
        println!("{}", self.render());
        if let Err(e) = self.write_tsv() {
            eprintln!("warning: could not write results/{}.tsv: {e}", self.id);
        }
    }

    /// Write the TSV file; returns its path.
    pub fn write_tsv(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.tsv", self.id));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        for n in &self.notes {
            writeln!(f, "# {n}")?;
        }
        Ok(path)
    }
}

/// Directory for TSV outputs (`CORGI_RESULTS_DIR` or `./results`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("CORGI_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Format seconds compactly ("1.23s", "45.6ms").
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

/// Format a metric as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_and_contains_rows() {
        let mut r = Report::new("t", "demo", &["name", "value"]);
        r.row(&[&"alpha", &1.25]);
        r.row(&[&"b", &"x"]);
        r.note("hello");
        let s = r.render();
        assert!(s.contains("alpha"));
        assert!(s.contains("note: hello"));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Report::new("t", "demo", &["a", "b"]);
        r.row(&[&1]);
    }

    #[test]
    fn tsv_written_to_custom_dir() {
        let dir = std::env::temp_dir().join(format!("corgi_test_{}", std::process::id()));
        std::env::set_var("CORGI_RESULTS_DIR", &dir);
        let mut r = Report::new("unit_test_artifact", "t", &["a"]);
        r.row(&[&42]);
        let path = r.write_tsv().unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.starts_with("a\n42"));
        std::env::remove_var("CORGI_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(2.5e-6), "2.5µs");
        assert_eq!(fmt_pct(0.756), "75.6%");
    }
}
