//! The per-experiment index (DESIGN.md §5).
//!
//! Every paper artifact (figure/table) maps to one function here; the
//! registry drives the `corgi-bench` CLI.

pub mod ablation;
pub mod concurrency;
pub mod convergence;
pub mod deep;
pub mod indb;
pub mod ingest;
pub mod io;
pub mod order_diag;
pub mod pipeline;
pub mod planner;
pub mod pushdown;
pub mod recovery;
pub mod serving;
pub mod tables;
pub mod vectorize;

use crate::common::ExpData;
use corgipile_core::{TrainReport, Trainer, TrainerConfig};
use corgipile_ml::ModelKind;
use corgipile_shuffle::StrategyKind;
use corgipile_storage::SimDevice;

/// One registered experiment.
pub struct Experiment {
    /// CLI id ("fig11", "table3", …).
    pub id: &'static str,
    /// What paper artifact it regenerates.
    pub what: &'static str,
    /// Runner.
    pub run: fn(),
}

/// All experiments, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment { id: "fig1", what: "SVM on clustered higgs: convergence + end-to-end time, all strategies", run: convergence::fig1 },
        Experiment { id: "fig2", what: "convergence on clustered vs shuffled data (GLM + deep)", run: convergence::fig2 },
        Experiment { id: "fig3", what: "tuple-id/label distributions of existing strategies", run: order_diag::fig3 },
        Experiment { id: "fig4", what: "tuple-id/label distribution of CorgiPile", run: order_diag::fig4 },
        Experiment { id: "fig5", what: "multi-process vs single-process CorgiPile data order", run: order_diag::fig5 },
        Experiment { id: "fig7", what: "ImageNet-like multi-worker training: time + convergence", run: deep::fig7 },
        Experiment { id: "fig8", what: "deep models on clustered cifar-like, batch 128/256", run: deep::fig8 },
        Experiment { id: "fig9", what: "text-classification stand-in on clustered yelp-like", run: deep::fig9 },
        Experiment { id: "fig10", what: "Adam instead of SGD on clustered cifar-like", run: deep::fig10 },
        Experiment { id: "fig11", what: "end-to-end in-DB time, 5 datasets × HDD/SSD × systems", run: indb::fig11 },
        Experiment { id: "fig12", what: "LR/SVM convergence, all strategies, 5 datasets", run: convergence::fig12 },
        Experiment { id: "fig13", what: "per-epoch overhead: No-Shuffle vs CorgiPile vs single-buffer", run: indb::fig13 },
        Experiment { id: "fig14", what: "buffer-size and block-size sensitivity", run: indb::fig14 },
        Experiment { id: "fig15", what: "in-DB CorgiPile vs PyTorch-style per-epoch time", run: indb::fig15 },
        Experiment { id: "fig16", what: "mini-batch SGD end-to-end time (SSD)", run: indb::fig16 },
        Experiment { id: "fig17", what: "mini-batch SGD convergence, all strategies", run: convergence::fig17 },
        Experiment { id: "fig18", what: "linear regression + softmax regression end-to-end", run: indb::fig18 },
        Experiment { id: "fig19", what: "feature-ordered datasets: converged accuracy", run: convergence::fig19 },
        Experiment { id: "fig20", what: "random block-read throughput vs block size", run: io::fig20 },
        Experiment { id: "table1", what: "qualitative strategy summary (measured)", run: tables::table1 },
        Experiment { id: "table2", what: "dataset inventory", run: tables::table2 },
        Experiment { id: "table3", what: "final train/test accuracy: Shuffle Once vs CorgiPile", run: tables::table3 },
        Experiment { id: "pipeline", what: "extension: serial vs double-buffered epoch time (real prefetch pipeline) + kernel GFLOP/s", run: pipeline::pipeline },
        Experiment { id: "ablation", what: "extension: block-level vs tuple-level shuffle contribution", run: ablation::ablation },
        Experiment { id: "theory", what: "extension: Theorem 1 bound vs measured convergence", run: ablation::theory },
        Experiment { id: "concurrency", what: "extension: work-stealing train_parallel vs fixed interleaver (wall time) + cross-session shared buffers", run: concurrency::concurrency },
        Experiment { id: "pushdown", what: "extension: WHERE pushdown below TupleShuffle vs post-buffer filtering (buffered tuples, I/O, bit identity)", run: pushdown::pushdown },
        Experiment { id: "recovery", what: "extension: WAL recovery scan time, durable-training overhead, crash-matrix bit-identity", run: recovery::recovery },
        Experiment { id: "serving", what: "extension: batched PREDICT serving throughput/latency at 1/4/8 sessions, cold vs warm cache, hot-reload bit-identity", run: serving::serving },
        Experiment { id: "vectorize", what: "extension: fused batch-at-a-time pipeline vs interpreted operator tree (sim-compute speedup, bit identity)", run: vectorize::vectorize },
        Experiment { id: "planner", what: "extension: cost-based shuffle planning — strategy grid vs planner choice on clustered data, RECLUSTER io_budget probe", run: planner::planner },
        Experiment { id: "ingest", what: "extension: append throughput through the versioned table WAL, TRAIN CONTINUOUS vs retrain-from-scratch on a drifting stream", run: ingest::ingest },
    ]
}

/// Train `model` on `data` with `strategy`, returning the report.
pub fn run_strategy(
    data: &ExpData,
    model: ModelKind,
    strategy: StrategyKind,
    epochs: usize,
    dev: &mut SimDevice,
    customize: impl FnOnce(TrainerConfig) -> TrainerConfig,
) -> TrainReport {
    let cfg = customize(TrainerConfig::new(model, epochs).with_strategy(strategy));
    Trainer::new(cfg)
        .train_with_test(&data.table, &data.ds.test, dev, 0x5EED)
        .expect("non-empty table")
}

/// Mean test metric over the last `k` epochs (damps last-iterate noise).
pub fn tail_metric(report: &TrainReport, k: usize) -> f64 {
    let vals: Vec<f64> = report
        .epochs
        .iter()
        .rev()
        .take(k)
        .filter_map(|e| e.test_metric)
        .collect();
    if vals.is_empty() {
        0.0
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// The strategy set compared throughout §7 (MRS/Sliding-Window included —
/// implemented in the library layer as the paper did in PyTorch).
pub fn paper_strategies() -> Vec<StrategyKind> {
    vec![
        StrategyKind::NoShuffle,
        StrategyKind::ShuffleOnce,
        StrategyKind::SlidingWindow,
        StrategyKind::Mrs,
        StrategyKind::BlockOnly,
        StrategyKind::CorgiPile,
    ]
}
