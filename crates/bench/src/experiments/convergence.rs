//! Convergence-rate experiments: Figures 1, 2, 12, 17, 19.

use super::{paper_strategies, run_strategy, tail_metric};
use crate::common::{cifar_dataset, glm_datasets_small, glm_optimizer, ExpData};
use crate::report::{fmt_pct, fmt_secs, Report};
use corgipile_data::{DatasetSpec, Order};
use corgipile_ml::{ModelKind, OptimizerKind};
use corgipile_shuffle::StrategyKind;

/// Figure 1: SVM on clustered higgs — (a) accuracy per epoch; (b) accuracy
/// against end-to-end time, where Shuffle Once starts late because of the
/// offline shuffle.
pub fn fig1() {
    let data = ExpData::build(
        DatasetSpec::higgs_like(24_000)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(8 << 10),
        1,
        1,
    );
    let epochs = 10;
    let mut rep = Report::new(
        "fig1",
        "SVM on clustered higgs-like data (HDD)",
        &["strategy", "epoch", "test_acc", "cum_time"],
    );
    for strategy in paper_strategies() {
        let mut dev = data.hdd();
        let r = run_strategy(&data, ModelKind::Svm, strategy, epochs, &mut dev, |c| {
            c.with_optimizer(glm_optimizer(&data.spec.name))
        });
        for e in &r.epochs {
            rep.row(&[
                &strategy,
                &e.epoch,
                &fmt_pct(e.test_metric.unwrap_or(0.0)),
                &fmt_secs(e.sim_seconds_end),
            ]);
        }
    }
    rep.note("Shuffle Once's first-epoch time includes the offline full shuffle (Figure 1b's late start).");
    rep.finish();
}

/// Figure 2: the five shuffling strategies on clustered *and* shuffled
/// versions of a GLM dataset and an image dataset.
pub fn fig2() {
    let mut rep = Report::new(
        "fig2",
        "convergence on clustered vs shuffled data",
        &["dataset", "order", "strategy", "epoch", "test_acc"],
    );
    for order in [Order::ClusteredByLabel, Order::Shuffled] {
        let order_name = match order {
            Order::ClusteredByLabel => "clustered",
            _ => "shuffled",
        };
        // criteo-like + LR (the paper's Figure 2 uses criteo for GLMs).
        let glm = ExpData::build(
            DatasetSpec::criteo_like(8_000)
                .with_order(order)
                .with_block_bytes(16 << 10),
            2,
            2,
        );
        // cifar-like + softmax-MLP.
        let img = ExpData::build(cifar_dataset(order), 3, 3);
        for strategy in paper_strategies() {
            let mut dev = glm.hdd();
            let r = run_strategy(
                &glm,
                ModelKind::LogisticRegression,
                strategy,
                6,
                &mut dev,
                |c| c.with_optimizer(glm_optimizer(&glm.spec.name)),
            );
            for e in &r.epochs {
                rep.row(&[
                    &"criteo(LR)",
                    &order_name,
                    &strategy,
                    &e.epoch,
                    &fmt_pct(e.test_metric.unwrap_or(0.0)),
                ]);
            }
            let mut dev = img.hdd();
            let r = run_strategy(
                &img,
                ModelKind::Mlp {
                    hidden: vec![32],
                    classes: 10,
                },
                strategy,
                6,
                &mut dev,
                |c| {
                    c.with_batch_size(64)
                        .with_optimizer(OptimizerKind::default_sgd(0.1))
                },
            );
            for e in &r.epochs {
                rep.row(&[
                    &"cifar(MLP)",
                    &order_name,
                    &strategy,
                    &e.epoch,
                    &fmt_pct(e.test_metric.unwrap_or(0.0)),
                ]);
            }
        }
    }
    rep.note("On shuffled data all strategies coincide; on clustered data only Shuffle Once and CorgiPile stay at full accuracy (paper Figure 2).");
    rep.finish();
}

/// Figure 12: LR and SVM convergence for all strategies across the five
/// GLM datasets (clustered).
pub fn fig12() {
    let mut rep = Report::new(
        "fig12",
        "LR/SVM convergence with all strategies, clustered datasets",
        &[
            "dataset",
            "model",
            "strategy",
            "final_acc",
            "acc@1",
            "acc@3",
        ],
    );
    for spec in glm_datasets_small(Order::ClusteredByLabel) {
        let data = ExpData::build(spec, 4, 4);
        for model in [ModelKind::LogisticRegression, ModelKind::Svm] {
            for strategy in paper_strategies() {
                let mut dev = data.hdd();
                let r = run_strategy(&data, model.clone(), strategy, 8, &mut dev, |c| {
                    c.with_optimizer(glm_optimizer(&data.spec.name))
                });
                let at = |e: usize| {
                    r.epochs
                        .get(e)
                        .and_then(|x| x.test_metric)
                        .map(fmt_pct)
                        .unwrap_or_default()
                };
                rep.row(&[
                    &data.spec.name,
                    &model,
                    &strategy,
                    &fmt_pct(tail_metric(&r, 3)),
                    &at(1),
                    &at(3),
                ]);
            }
        }
    }
    rep.finish();
}

/// Figure 17: mini-batch (128) convergence for all strategies.
pub fn fig17() {
    let mut rep = Report::new(
        "fig17",
        "mini-batch SGD (batch 128) convergence, clustered datasets",
        &["dataset", "model", "strategy", "final_acc"],
    );
    for spec in glm_datasets_small(Order::ClusteredByLabel) {
        let data = ExpData::build(spec, 5, 5);
        let epochs = (300 * 128 / data.spec.train).clamp(10, 60);
        for model in [ModelKind::LogisticRegression, ModelKind::Svm] {
            for strategy in paper_strategies() {
                let mut dev = data.ssd();
                let r = run_strategy(&data, model.clone(), strategy, epochs, &mut dev, |c| {
                    c.with_batch_size(128)
                        .with_optimizer(crate::common::glm_minibatch_optimizer(&data.spec.name))
                });
                rep.row(&[
                    &data.spec.name,
                    &model,
                    &strategy,
                    &fmt_pct(tail_metric(&r, 3)),
                ]);
            }
        }
    }
    rep.finish();
}

/// Figure 19: datasets ordered by a *feature* instead of the label.
pub fn fig19() {
    let mut rep = Report::new(
        "fig19",
        "converged accuracy on feature-ordered datasets",
        &[
            "dataset",
            "feature",
            "model",
            "no_shuffle",
            "shuffle_once",
            "corgipile",
        ],
    );
    // Like the paper: select features with the highest / median / lowest
    // absolute correlation with the label (computed on a probe build).
    let bases = vec![
        DatasetSpec::higgs_like(8_000).with_block_bytes(8 << 10),
        DatasetSpec::susy_like(6_000).with_block_bytes(8 << 10),
        DatasetSpec::epsilon_like(800).with_block_bytes(128 << 10),
        DatasetSpec::yfcc_like(700).with_block_bytes(256 << 10),
    ];
    let cases: Vec<(DatasetSpec, Vec<usize>)> = bases
        .into_iter()
        .map(|base| {
            let probe = base.build(6);
            let dim = base.dim();
            let n = probe.train.len() as f64;
            let mean_y: f64 = probe.train.iter().map(|t| t.label as f64).sum::<f64>() / n;
            let mut corr: Vec<(usize, f64)> = (0..dim)
                .map(|j| {
                    let mut sxy = 0.0f64;
                    let mut sx = 0.0f64;
                    let mut sxx = 0.0f64;
                    for t in &probe.train {
                        let x = t.features.get(j) as f64;
                        sx += x;
                        sxx += x * x;
                        sxy += x * (t.label as f64 - mean_y);
                    }
                    let var = (sxx - sx * sx / n).max(1e-12);
                    (j, (sxy / var.sqrt()).abs())
                })
                .collect();
            corr.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let features = vec![corr[0].0, corr[corr.len() / 2].0, corr[corr.len() - 1].0];
            (base, features)
        })
        .collect();
    for (base, features) in cases {
        for feature in features {
            let spec = base.clone().with_order(Order::OrderedByFeature(feature));
            let data = ExpData::build(spec, 6, 6);
            for model in [ModelKind::LogisticRegression, ModelKind::Svm] {
                let mut acc = std::collections::BTreeMap::new();
                for strategy in [
                    StrategyKind::NoShuffle,
                    StrategyKind::ShuffleOnce,
                    StrategyKind::CorgiPile,
                ] {
                    let mut dev = data.ssd();
                    let r = run_strategy(&data, model.clone(), strategy, 8, &mut dev, |c| {
                        c.with_optimizer(glm_optimizer(&data.spec.name))
                    });
                    acc.insert(strategy.display(), tail_metric(&r, 3));
                }
                rep.row(&[
                    &data.spec.name,
                    &feature,
                    &model,
                    &fmt_pct(acc["No Shuffle"]),
                    &fmt_pct(acc["Shuffle Once"]),
                    &fmt_pct(acc["CorgiPile"]),
                ]);
            }
        }
    }
    rep.note("CorgiPile tracks Shuffle Once on every feature ordering; No Shuffle lags on orderings correlated with the label (paper Figure 19).");
    rep.finish();
}
