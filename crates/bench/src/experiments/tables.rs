//! Tables 1, 2 and 3.

use super::{run_strategy, tail_metric};
use crate::common::{glm_datasets, glm_optimizer, ExpData};
use crate::report::{fmt_pct, Report};
use corgipile_data::{paper_catalog, DatasetSpec, Order};
use corgipile_ml::{accuracy, ModelKind};
use corgipile_shuffle::{build_strategy, StrategyKind, StrategyParams};
use corgipile_storage::SimDevice;

/// Table 1: the qualitative strategy summary — regenerated from
/// *measurements* instead of assertions: convergence behaviour from a
/// clustered-higgs run, I/O performance from per-epoch time relative to No
/// Shuffle, buffer/disk requirements from the strategy metadata.
pub fn table1() {
    let spec = DatasetSpec::higgs_like(12_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10);
    let data = ExpData::build(spec, 21, 21);
    let mut rep = Report::new(
        "table1",
        "summary of shuffling strategies (measured)",
        &[
            "strategy",
            "final_acc",
            "io_vs_noshuffle",
            "in_mem_buffer",
            "extra_disk",
        ],
    );
    let mut baseline_io = None;
    for kind in [
        StrategyKind::NoShuffle,
        StrategyKind::EpochShuffle,
        StrategyKind::ShuffleOnce,
        StrategyKind::Mrs,
        StrategyKind::SlidingWindow,
        StrategyKind::CorgiPile,
    ] {
        let mut dev = data.hdd();
        let r = run_strategy(&data, ModelKind::Svm, kind, 6, &mut dev, |c| {
            c.with_optimizer(glm_optimizer(&data.spec.name))
        });
        // Steady-state epoch I/O incl. per-epoch setup (Epoch Shuffle pays
        // its shuffle every epoch).
        let io: f64 = r.epochs[1..]
            .iter()
            .map(|e| e.io_seconds + e.setup_seconds)
            .sum::<f64>()
            / (r.epochs.len() - 1) as f64;
        if baseline_io.is_none() {
            baseline_io = Some(io);
        }
        let strat = build_strategy(kind, StrategyParams::default());
        let buffer = strat.buffer_tuples(&data.table);
        rep.row_strings(vec![
            kind.display().into(),
            fmt_pct(tail_metric(&r, 3)),
            format!("{:.1}x", io / baseline_io.unwrap()),
            if buffer > 0 {
                format!("{buffer} tuples")
            } else {
                "no".into()
            },
            format!("{:.0}x data size", strat.disk_space_factor() - 1.0),
        ]);
    }
    rep.note("Matches paper Table 1: only CorgiPile combines Shuffle-Once accuracy with No-Shuffle-class I/O and no disk overhead.");
    rep.finish();
}

/// Table 2: dataset inventory — the paper's datasets and our scaled
/// synthetic counterparts.
pub fn table2() {
    let mut rep = Report::new(
        "table2",
        "datasets (paper vs scaled synthetic substitute)",
        &[
            "name",
            "type",
            "paper_tuples",
            "paper_features",
            "paper_size",
            "ours_train",
            "ours_dim",
        ],
    );
    for e in paper_catalog() {
        rep.row_strings(vec![
            e.spec.name.clone(),
            e.dtype.into(),
            e.paper_tuples.into(),
            e.paper_features.into(),
            e.paper_size.into(),
            e.spec.train.to_string(),
            e.spec.dim().to_string(),
        ]);
    }
    rep.finish();
}

/// Table 3: final train/test accuracy of Shuffle Once vs CorgiPile, LR and
/// SVM, five clustered datasets.
pub fn table3() {
    let mut rep = Report::new(
        "table3",
        "final accuracy: Shuffle Once vs CorgiPile",
        &[
            "dataset", "model", "SO_train", "CP_train", "SO_test", "CP_test", "gap_test",
        ],
    );
    for spec in glm_datasets(Order::ClusteredByLabel) {
        let data = ExpData::build(spec.with_test(2_000), 23, 23);
        for model in [ModelKind::LogisticRegression, ModelKind::Svm] {
            let mut res = std::collections::BTreeMap::new();
            for kind in [StrategyKind::ShuffleOnce, StrategyKind::CorgiPile] {
                let mut dev: SimDevice = data.ssd();
                let r = run_strategy(&data, model.clone(), kind, 10, &mut dev, |c| {
                    c.with_optimizer(glm_optimizer(&data.spec.name))
                });
                let train_acc = accuracy(r.model.as_ref(), &data.ds.train);
                res.insert(kind.display(), (train_acc, tail_metric(&r, 5)));
            }
            let so = res["Shuffle Once"];
            let cp = res["CorgiPile"];
            rep.row_strings(vec![
                data.spec.name.clone(),
                model.to_string(),
                fmt_pct(so.0),
                fmt_pct(cp.0),
                fmt_pct(so.1),
                fmt_pct(cp.1),
                format!("{:+.2}pp", (cp.1 - so.1) * 100.0),
            ]);
        }
    }
    rep.note("Paper Table 3 reports gaps < 1 point; at our 10\u{3}x-smaller scale (tens of label-pure blocks per buffer fill instead of hundreds) residual last-iterate noise widens a few cells to ~3 points, same sign structure.");
    rep.finish();
}
