//! I/O model experiments: Appendix Figure 20.

use crate::report::Report;
use corgipile_storage::{Access, DeviceProfile, SimDevice};

/// Figure 20: effective random-read throughput vs block size, against the
/// sequential-scan ceiling, for HDD and SSD.
pub fn fig20() {
    let mut rep = Report::new(
        "fig20",
        "random block-read throughput vs block size",
        &[
            "device",
            "block_size",
            "random_MBps",
            "sequential_MBps",
            "fraction_of_seq",
        ],
    );
    for profile in [DeviceProfile::hdd(), DeviceProfile::ssd()] {
        let seq = profile.bandwidth / 1e6;
        for shift in [16u32, 18, 20, 21, 22, 23, 24, 25, 26, 27] {
            let block = 1usize << shift;
            // Measure through an actual device rather than the closed form:
            // read 64 random blocks and divide.
            let mut dev =
                SimDevice::new(profile.clone(), corgipile_storage::CacheConfig::disabled());
            let reads = 64usize;
            for i in 0..reads {
                dev.read(Some(i as u64), block, Access::Random, None);
            }
            let throughput = (reads * block) as f64 / dev.stats().io_seconds / 1e6;
            rep.row_strings(vec![
                profile.name.clone(),
                human_bytes(block),
                format!("{throughput:.1}"),
                format!("{seq:.1}"),
                format!("{:.0}%", 100.0 * throughput / seq),
            ]);
        }
    }
    rep.note("At ~10MB blocks random access reaches the sequential ceiling on both devices (paper Appendix A / Fig. 20).");
    rep.finish();
}

fn human_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{}MB", b >> 20)
    } else {
        format!("{}KB", b >> 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(64 << 10), "64KB");
        assert_eq!(human_bytes(10 << 20), "10MB");
    }
}
