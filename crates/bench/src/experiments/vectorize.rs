//! Vectorize benchmark: fused batch-at-a-time pipelines vs the
//! interpreted operator tree.
//!
//! The same `TRAIN BY` query runs twice per (strategy, selectivity)
//! cell — once through the pipeline-fusion pass (`fuse = 1`, the
//! default: one `FusedPipelineOp` whose inner loop evaluates
//! predicate + projection + kernel over whole `TupleBatch`es, charging
//! the per-tuple interpretation overhead once per batch) and once
//! through the interpreted Volcano tree (`fuse = 0`, one virtual
//! `next()` per tuple). Both paths visit tuples in the same order by
//! construction, so the trained models must agree bit for bit; the
//! fused path's simulated *compute* seconds drop because the batched
//! cost model (`ComputeCostModel::seconds_batched`) amortizes the
//! per-tuple dispatch overhead that the interpreted tree pays on every
//! call. The device is the balanced profile (SSD with I/O and compute
//! in the same order of magnitude), so the compute win is visible in
//! end-to-end epoch seconds too, not just in the compute column.
//!
//! Reported per cell: simulated compute seconds and tuples trained per
//! simulated compute second for both paths, end-to-end epoch seconds,
//! the compute speedup, and bit identity of the trained models.
//!
//! Writes `results/vectorize.{tsv,json}` plus the root-level
//! `BENCH_vectorize.json` artifact (directory override:
//! `CORGI_BENCH_ROOT`). `CORGI_VECTORIZE_TUPLES` /
//! `CORGI_VECTORIZE_EPOCHS` shrink the run for CI smoke tests.

use crate::report::Report;
use corgipile_data::{DatasetSpec, Order};
use corgipile_db::{Database, DbTrainSummary, QueryResult};
use corgipile_storage::{SimDevice, Table};

/// Fused vs interpreted execution of one (strategy, selectivity) cell.
#[derive(Debug, Clone)]
pub struct VectorizeRun {
    /// Shuffle strategy the query trained with.
    pub strategy: &'static str,
    /// Fraction of the table the WHERE predicate keeps (1.0 = no WHERE).
    pub selectivity: f64,
    /// Tuples the SGD kernel consumed per epoch × epochs.
    pub tuples: u64,
    /// Simulated compute seconds, fused pipeline.
    pub fused_compute_seconds: f64,
    /// Simulated compute seconds, interpreted tree.
    pub interp_compute_seconds: f64,
    /// End-to-end simulated epoch seconds (I/O + compute), fused.
    pub fused_epoch_seconds: f64,
    /// End-to-end simulated epoch seconds (I/O + compute), interpreted.
    pub interp_epoch_seconds: f64,
    /// Whether the two trained models agreed bit for bit.
    pub bit_identical: bool,
}

impl VectorizeRun {
    /// Sim-compute speedup of the fused pipeline over the interpreted tree.
    pub fn compute_speedup(&self) -> f64 {
        self.interp_compute_seconds / self.fused_compute_seconds.max(1e-12)
    }

    /// Tuples trained per simulated compute second, fused pipeline.
    pub fn fused_tuples_per_sec(&self) -> f64 {
        self.tuples as f64 / self.fused_compute_seconds.max(1e-12)
    }

    /// Tuples trained per simulated compute second, interpreted tree.
    pub fn interp_tuples_per_sec(&self) -> f64 {
        self.tuples as f64 / self.interp_compute_seconds.max(1e-12)
    }
}

fn clustered(n: usize) -> Table {
    DatasetSpec::higgs_like(n)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build_table(1)
        .unwrap()
}

/// The balanced device profile: SSD timings scaled so that block I/O and
/// kernel compute land in the same order of magnitude at bench scale.
fn balanced_device() -> SimDevice {
    SimDevice::ssd_scaled(1000.0, 0)
}

fn run_once(
    table: &Table,
    strategy: &str,
    cutoff: Option<u64>,
    epochs: usize,
    fuse: usize,
) -> (DbTrainSummary, Vec<f32>) {
    let db = Database::new(balanced_device());
    db.register_table("higgs", table.clone());
    let mut s = db.connect();
    let wher = cutoff
        .map(|c| format!("WHERE id < {c} "))
        .unwrap_or_default();
    let sql = format!(
        "SELECT * FROM higgs {wher}TRAIN BY svm WITH max_epoch_num = {epochs}, \
         strategy = '{strategy}', seed = 41, fuse = {fuse}, model_name = m"
    );
    let summary = match s.execute(&sql).expect("training runs") {
        QueryResult::Train(t) => t,
        other => panic!("expected a train result, got {other:?}"),
    };
    let params = s.catalog().model("m").expect("model stored").params.clone();
    (summary, params)
}

fn compute_seconds(summary: &DbTrainSummary) -> f64 {
    summary.epochs.iter().map(|e| e.compute_seconds).sum()
}

fn epoch_seconds(summary: &DbTrainSummary) -> f64 {
    summary.epochs.iter().map(|e| e.epoch_seconds).sum()
}

fn trained_tuples(summary: &DbTrainSummary) -> u64 {
    summary.epochs.iter().map(|e| e.tuples as u64).sum()
}

/// Run the fused-vs-interpreted grid: each strategy at full selectivity
/// plus the corgipile strategy under a pushed-down 0.5 predicate.
pub fn measure(n_tuples: usize, epochs: usize) -> Vec<VectorizeRun> {
    let table = clustered(n_tuples);
    let cells: [(&'static str, f64); 4] = [
        ("corgipile", 1.0),
        ("block_only", 1.0),
        ("once", 1.0),
        ("corgipile", 0.5),
    ];
    cells
        .iter()
        .map(|&(strategy, sel)| {
            let cutoff = (sel < 1.0).then(|| (n_tuples as f64 * sel).round() as u64);
            let (fused, fused_params) = run_once(&table, strategy, cutoff, epochs, 1);
            let (interp, interp_params) = run_once(&table, strategy, cutoff, epochs, 0);
            VectorizeRun {
                strategy,
                selectivity: sel,
                tuples: trained_tuples(&fused),
                fused_compute_seconds: compute_seconds(&fused),
                interp_compute_seconds: compute_seconds(&interp),
                fused_epoch_seconds: epoch_seconds(&fused),
                interp_epoch_seconds: epoch_seconds(&interp),
                bit_identical: fused_params == interp_params,
            }
        })
        .collect()
}

/// Minimum compute speedup across the grid — the headline gate.
pub fn min_speedup(runs: &[VectorizeRun]) -> f64 {
    runs.iter()
        .map(VectorizeRun::compute_speedup)
        .fold(f64::INFINITY, f64::min)
}

/// Render the root-level `BENCH_vectorize.json` artifact.
pub fn render_bench_json(runs: &[VectorizeRun]) -> String {
    let mut out =
        String::from("{\n  \"id\": \"vectorize\",\n  \"profile\": \"balanced\",\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"selectivity\": {:.2}, \"tuples\": {}, \
             \"fused_compute_seconds\": {:.6}, \"interp_compute_seconds\": {:.6}, \
             \"fused_tuples_per_sec\": {:.1}, \"interp_tuples_per_sec\": {:.1}, \
             \"fused_epoch_seconds\": {:.6}, \"interp_epoch_seconds\": {:.6}, \
             \"compute_speedup\": {:.4}, \"bit_identical\": {}}}{}\n",
            r.strategy,
            r.selectivity,
            r.tuples,
            r.fused_compute_seconds,
            r.interp_compute_seconds,
            r.fused_tuples_per_sec(),
            r.interp_tuples_per_sec(),
            r.fused_epoch_seconds,
            r.interp_epoch_seconds,
            r.compute_speedup(),
            r.bit_identical,
            comma,
        ));
    }
    let all_identical = runs.iter().all(|r| r.bit_identical);
    out.push_str(&format!(
        "  ],\n  \"speedup\": {:.4},\n  \"bit_identical_all\": {all_identical}\n}}",
        min_speedup(runs),
    ));
    out
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `vectorize` experiment: fused-vs-interpreted grid plus the root
/// JSON artifact.
pub fn vectorize() {
    let n = env_usize("CORGI_VECTORIZE_TUPLES", 20_000);
    let epochs = env_usize("CORGI_VECTORIZE_EPOCHS", 3);
    let runs = measure(n, epochs);

    let mut rep = Report::new(
        "vectorize",
        "fused batch-at-a-time pipeline vs interpreted operator tree (sim compute, bit identity)",
        &[
            "strategy",
            "selectivity",
            "fused_compute_s",
            "interp_compute_s",
            "speedup",
            "fused_tuples_per_s",
            "interp_tuples_per_s",
            "bit_identical",
        ],
    );
    for r in &runs {
        rep.row_strings(vec![
            r.strategy.to_string(),
            format!("{:.2}", r.selectivity),
            format!("{:.6}", r.fused_compute_seconds),
            format!("{:.6}", r.interp_compute_seconds),
            format!("{:.2}x", r.compute_speedup()),
            format!("{:.0}", r.fused_tuples_per_sec()),
            format!("{:.0}", r.interp_tuples_per_sec()),
            r.bit_identical.to_string(),
        ]);
    }
    rep.note(
        "fuse=1 collapses scan→filter→project→shuffle→sgd into one FusedPipelineOp \
         whose batched cost model charges the per-tuple dispatch overhead once per \
         TupleBatch; fuse=0 is the interpreted Volcano tree paying it per next() \
         call. Same visit order by construction, so bit-identical models — only \
         the simulated compute clock moves.",
    );
    rep.finish();

    let root = std::env::var("CORGI_BENCH_ROOT").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&root).join("BENCH_vectorize.json");
    match std::fs::write(&path, render_bench_json(&runs) + "\n") {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fused_beats_interpreted_and_stays_bit_identical_at_smoke_scale() {
        let runs = measure(2_000, 1);
        assert!(
            runs.iter().all(|r| r.bit_identical),
            "fusion diverged: {runs:?}"
        );
        let speedup = min_speedup(&runs);
        assert!(
            speedup >= 1.5,
            "expected >=1.5x sim-compute speedup on every cell, got {speedup:.2}x: {runs:?}"
        );
    }

    #[test]
    fn bench_json_is_well_formed() {
        let runs = vec![VectorizeRun {
            strategy: "corgipile",
            selectivity: 1.0,
            tuples: 2_000,
            fused_compute_seconds: 0.1,
            interp_compute_seconds: 0.4,
            fused_epoch_seconds: 0.5,
            interp_epoch_seconds: 0.8,
            bit_identical: true,
        }];
        let json = render_bench_json(&runs);
        assert!(json.contains("\"compute_speedup\": 4.0000"));
        assert!(json.contains("\"speedup\": 4.0000"));
        assert!(json.contains("\"bit_identical_all\": true"));
        assert!(json.contains("\"profile\": \"balanced\""));
        assert!(json.ends_with('}'));
    }
}
