//! Planner benchmark: the cost-based strategy chooser on the
//! convergence-vs-I/O frontier.
//!
//! On adversarially clustered data every strategy trades converged
//! accuracy against epoch I/O differently: No-Shuffle reads
//! sequentially but barely converges, Block-Only pays block-random
//! seeks for partial mixing, CorgiPile adds the tuple buffer,
//! Block-Reversal alternates rotated/reversed near-sequential orders,
//! and Corgi² spends a bounded offline RECLUSTER pass
//! (`io_budget` × full-shuffle I/O) to make every later epoch cheaper
//! and better mixed. The experiment trains the same query under each
//! explicit strategy, then lets the planner choose (`strategy`
//! omitted), and checks the choice lands on the frontier: no explicit
//! strategy both converges better and finishes faster. A pre-shuffled
//! control table checks the planner keeps plain CorgiPile when setup
//! I/O cannot pay for itself, and a standalone `RECLUSTER` run checks
//! the bounded pass stays within its declared budget.
//!
//! Writes `results/planner.{tsv,json}` plus the root-level
//! `BENCH_planner.json` artifact (directory override:
//! `CORGI_BENCH_ROOT`). `CORGI_PLANNER_TUPLES` / `CORGI_PLANNER_EPOCHS`
//! shrink the run for CI smoke tests.

use crate::report::Report;
use corgipile_data::{DatasetSpec, Order};
use corgipile_db::{Database, DbTrainSummary, QueryResult};
use corgipile_storage::{SimDevice, Table};

/// One trained (strategy, clustered-table) cell.
#[derive(Debug, Clone)]
pub struct PlannerRun {
    /// Strategy the query trained with.
    pub strategy: String,
    /// Whether the cost-based planner picked this strategy itself.
    pub chosen: bool,
    /// Converged train metric (accuracy for the SVM).
    pub final_metric: f64,
    /// One-off setup I/O seconds (offline shuffle / bounded RECLUSTER).
    pub setup_seconds: f64,
    /// End-to-end simulated seconds including setup.
    pub total_seconds: f64,
}

/// Everything `BENCH_planner.json` reports.
#[derive(Debug, Clone)]
pub struct PlannerOutcome {
    /// Explicit-strategy grid plus the planner's own run, clustered table.
    pub runs: Vec<PlannerRun>,
    /// What the planner picked on the clustered table.
    pub choice_clustered: String,
    /// What the planner picked on the pre-shuffled control table.
    pub choice_shuffled: String,
    /// True when no explicit strategy both converges better by more than
    /// the run-to-run noise floor (0.02 converged accuracy) and finishes
    /// faster than the planner's pick.
    pub choice_on_frontier: bool,
    /// `RECLUSTER` I/O actually spent, in seconds.
    pub recluster_io_seconds: f64,
    /// The declared budget (`io_budget` × full-shuffle I/O), in seconds.
    pub recluster_budget_io: f64,
}

impl PlannerOutcome {
    /// Whether the bounded RECLUSTER pass honored its declared budget.
    pub fn recluster_within_budget(&self) -> bool {
        self.recluster_io_seconds <= self.recluster_budget_io * 1.000001
    }
}

fn higgs(n: usize, order: Order) -> Table {
    DatasetSpec::higgs_like(n)
        .with_order(order)
        .with_block_bytes(8 << 10)
        .build_table(1)
        .unwrap()
}

/// The seek-dominated profile where shuffle planning matters most.
fn hdd() -> SimDevice {
    SimDevice::hdd_scaled(1000.0, 0)
}

fn train(table: &Table, strategy: Option<&str>, epochs: usize) -> DbTrainSummary {
    let db = Database::new(hdd());
    db.register_table("higgs", table.clone());
    let mut s = db.connect();
    let clause = strategy
        .map(|k| format!("strategy = '{k}', "))
        .unwrap_or_default();
    let sql = format!(
        "SELECT * FROM higgs TRAIN BY svm WITH {clause}max_epoch_num = {epochs}, \
         seed = 41, model_name = m"
    );
    match s.execute(&sql).expect("training runs") {
        QueryResult::Train(t) => t,
        other => panic!("expected a train result, got {other:?}"),
    }
}

fn recluster_budget_check(table: &Table) -> (f64, f64) {
    let db = Database::new(hdd());
    db.register_table("higgs", table.clone());
    let mut s = db.connect();
    match s
        .execute("RECLUSTER higgs WITH io_budget = 0.25, seed = 41")
        .expect("recluster runs")
    {
        QueryResult::Recluster {
            io_seconds,
            budget_io,
            ..
        } => (io_seconds, budget_io),
        other => panic!("expected a recluster result, got {other:?}"),
    }
}

/// Run the full grid: every explicit strategy on the clustered table, the
/// planner on both tables, and the RECLUSTER budget probe.
pub fn measure(n_tuples: usize, epochs: usize) -> PlannerOutcome {
    let clustered = higgs(n_tuples, Order::ClusteredByLabel);
    let shuffled = higgs(n_tuples, Order::Shuffled);

    let picked = train(&clustered, None, epochs);
    let choice_clustered = picked.strategy.clone();
    let choice_shuffled = train(&shuffled, None, epochs).strategy;

    let mut runs = Vec::new();
    for strategy in ["no", "block_only", "corgipile", "block_reversal", "corgi2"] {
        let t = train(&clustered, Some(strategy), epochs);
        runs.push(PlannerRun {
            strategy: t.strategy.clone(),
            chosen: t.strategy == choice_clustered,
            final_metric: t.final_train_metric,
            setup_seconds: t.setup_seconds,
            total_seconds: t.total_seconds(),
        });
    }

    let pick = runs
        .iter()
        .find(|r| r.chosen)
        .expect("planner choice is in the explicit grid")
        .clone();
    // The cost model predicts I/O, not convergence, so the frontier gate
    // allows the converged-accuracy noise floor at bench scale: a rival
    // only knocks the pick off the frontier by beating it on *both* axes
    // with a metric gap no seed-to-seed rerun could explain away.
    let choice_on_frontier = !runs.iter().any(|r| {
        r.strategy != pick.strategy
            && r.final_metric > pick.final_metric + 0.02
            && r.total_seconds < pick.total_seconds
    });

    let (recluster_io_seconds, recluster_budget_io) = recluster_budget_check(&clustered);
    PlannerOutcome {
        runs,
        choice_clustered,
        choice_shuffled,
        choice_on_frontier,
        recluster_io_seconds,
        recluster_budget_io,
    }
}

/// Render the root-level `BENCH_planner.json` artifact.
pub fn render_bench_json(o: &PlannerOutcome) -> String {
    let mut out =
        String::from("{\n  \"id\": \"planner\",\n  \"profile\": \"hdd\",\n  \"runs\": [\n");
    for (i, r) in o.runs.iter().enumerate() {
        let comma = if i + 1 < o.runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"chosen\": {}, \"final_metric\": {:.4}, \
             \"setup_seconds\": {:.6}, \"total_seconds\": {:.6}}}{}\n",
            r.strategy, r.chosen, r.final_metric, r.setup_seconds, r.total_seconds, comma,
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"choice_clustered\": \"{}\",\n  \"choice_shuffled\": \"{}\",\n  \
         \"choice_on_frontier\": {},\n  \"recluster_io_seconds\": {:.6},\n  \
         \"recluster_budget_io\": {:.6},\n  \"recluster_within_budget\": {}\n}}",
        o.choice_clustered,
        o.choice_shuffled,
        o.choice_on_frontier,
        o.recluster_io_seconds,
        o.recluster_budget_io,
        o.recluster_within_budget(),
    ));
    out
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `planner` experiment: strategy grid, planner choices, RECLUSTER
/// budget probe, and the root JSON artifact.
pub fn planner() {
    let n = env_usize("CORGI_PLANNER_TUPLES", 8_000);
    let epochs = env_usize("CORGI_PLANNER_EPOCHS", 20);
    let o = measure(n, epochs);

    let mut rep = Report::new(
        "planner",
        "cost-based shuffle planning: convergence vs I/O per strategy, planner choice, \
         RECLUSTER budget",
        &["strategy", "chosen", "final_metric", "setup_s", "total_s"],
    );
    for r in &o.runs {
        rep.row_strings(vec![
            r.strategy.clone(),
            r.chosen.to_string(),
            format!("{:.4}", r.final_metric),
            format!("{:.6}", r.setup_seconds),
            format!("{:.6}", r.total_seconds),
        ]);
    }
    rep.note(format!(
        "planner picked {} on clustered data and {} on the pre-shuffled control; \
         choice_on_frontier={} (no explicit strategy both converges better and finishes \
         faster); RECLUSTER spent {:.6}s of a {:.6}s budget.",
        o.choice_clustered,
        o.choice_shuffled,
        o.choice_on_frontier,
        o.recluster_io_seconds,
        o.recluster_budget_io,
    ));
    rep.finish();

    let root = std::env::var("CORGI_BENCH_ROOT").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&root).join("BENCH_planner.json");
    match std::fs::write(&path, render_bench_json(&o) + "\n") {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_choice_is_setup_paying_and_on_frontier() {
        let o = measure(8_000, 20);
        assert!(
            o.choice_clustered == "corgi2" || o.choice_clustered == "block_reversal",
            "clustered + 20 epochs should pay for re-clustering, got {}",
            o.choice_clustered
        );
        assert_eq!(o.choice_shuffled, "corgipile");
        assert!(o.choice_on_frontier, "{o:?}");
        assert!(o.recluster_within_budget(), "{o:?}");
        // The pick must dominate the naive baselines on convergence.
        let pick = o.runs.iter().find(|r| r.chosen).unwrap();
        for baseline in ["no_shuffle", "block_only"] {
            let b = o.runs.iter().find(|r| r.strategy == baseline).unwrap();
            assert!(
                pick.final_metric > b.final_metric + 0.02,
                "{} should out-converge {baseline}: {o:?}",
                pick.strategy
            );
        }
    }

    #[test]
    fn bench_json_is_well_formed() {
        let o = PlannerOutcome {
            runs: vec![PlannerRun {
                strategy: "corgi2".into(),
                chosen: true,
                final_metric: 0.61,
                setup_seconds: 0.01,
                total_seconds: 0.5,
            }],
            choice_clustered: "corgi2".into(),
            choice_shuffled: "corgipile".into(),
            choice_on_frontier: true,
            recluster_io_seconds: 0.01,
            recluster_budget_io: 0.02,
        };
        let json = render_bench_json(&o);
        assert!(json.contains("\"choice_clustered\": \"corgi2\""));
        assert!(json.contains("\"choice_shuffled\": \"corgipile\""));
        assert!(json.contains("\"recluster_within_budget\": true"));
        assert!(json.ends_with('}'));
    }
}
