//! Deep-learning experiments: Figures 7, 8, 9, 10.
//!
//! The paper's VGG19/ResNet18/ResNet50/HAN/TextCNN workloads are replaced
//! by MLPs of two sizes (non-convex objectives; see DESIGN.md §2). The
//! claims under test — convergence parity with Shuffle Once and failure of
//! No-Shuffle/Sliding-Window on clustered data, for mini-batch SGD and
//! Adam, single- and multi-worker — are optimization-order properties that
//! MLPs exercise identically.

use super::{paper_strategies, run_strategy, tail_metric};
use crate::common::{cifar_dataset, imagenet_dataset, yelp_dataset, ExpData};
use crate::report::{fmt_pct, fmt_secs, Report};
use corgipile_core::{parallel_epoch_plan, train_parallel, ParallelConfig};
use corgipile_data::Order;
use corgipile_ml::{accuracy, build_model, ModelKind, Optimizer, OptimizerKind, Sgd};
use corgipile_shuffle::StrategyKind;

fn small_net(classes: usize) -> ModelKind {
    // "ResNet18" stand-in.
    ModelKind::Mlp {
        hidden: vec![32],
        classes,
    }
}

fn big_net(classes: usize) -> ModelKind {
    // "VGG19" stand-in.
    ModelKind::Mlp {
        hidden: vec![64, 32],
        classes,
    }
}

/// Figure 7: ImageNet-scale multi-worker training — end-to-end time and
/// convergence for Shuffle Once, CorgiPile (two block sizes) and No
/// Shuffle, with 8 workers.
pub fn fig7() {
    let data = ExpData::build(imagenet_dataset(Order::ClusteredByLabel), 7, 7);
    let workers = 8;
    let epochs = 12;
    let mut rep = Report::new(
        "fig7",
        "ImageNet-like multi-worker (8) training",
        &["system", "epoch", "test_acc", "cum_time"],
    );

    // --- Shuffle Once & No Shuffle, 8-way data-parallel compute ----------
    // (same 8 workers as CorgiPile's run: compute divides by 8).
    let ddp_compute = corgipile_ml::ComputeCostModel {
        flops_per_second: 5e9 * workers as f64,
        per_tuple_overhead: 8e-8 / workers as f64,
    };
    for (name, strategy) in [
        ("Shuffle Once", StrategyKind::ShuffleOnce),
        ("No Shuffle", StrategyKind::NoShuffle),
    ] {
        let mut dev = data.hdd();
        let r = run_strategy(&data, big_net(20), strategy, epochs, &mut dev, |c| {
            c.with_batch_size(128)
                .with_optimizer(OptimizerKind::default_sgd(0.1))
                .with_compute(ddp_compute)
        });
        for e in &r.epochs {
            rep.row(&[
                &name,
                &e.epoch,
                &fmt_pct(e.test_metric.unwrap_or(0.0)),
                &fmt_secs(e.sim_seconds_end),
            ]);
        }
    }

    // --- CorgiPile, true multi-worker with AllReduce ----------------------
    let cfg = ParallelConfig {
        workers,
        total_buffer_fraction: 0.10,
        batch_size: 128,
        seed: 77,
        device_scale: data.device_scale(),
        cache_bytes: data.table.total_bytes() / 2 / workers,
    };
    let mut model = build_model(&big_net(20), data.spec.dim(), 1);
    let mut opt = Sgd::new(0.1, 0.95);
    let compute = corgipile_ml::ComputeCostModel::in_db_core();
    let mut cum = 0.0;
    for e in 0..epochs {
        opt.set_epoch(e);
        let plan = parallel_epoch_plan(&data.table, &cfg, e);
        train_parallel(model.as_mut(), &mut opt, &plan.merged_batches, workers);
        // Loading overlaps across workers (plan.io_seconds is the max);
        // compute divides across the 8 workers like DDP's data parallelism.
        let flops = model.flops_per_example(data.spec.dim());
        let per_worker = (data.table.num_tuples() as usize).div_ceil(workers);
        cum += plan.io_seconds.max(compute.seconds(flops, per_worker));
        let acc = accuracy(model.as_ref(), &data.ds.test);
        rep.row(&[
            &format!("CorgiPile ({workers} workers)"),
            &e,
            &fmt_pct(acc),
            &fmt_secs(cum),
        ]);
    }
    rep.note("CorgiPile converges like Shuffle Once but skips the offline shuffle; No Shuffle collapses (paper Fig. 7).");
    rep.finish();
}

/// Figure 8: two deep nets on the clustered cifar-like set, batch 128/256.
pub fn fig8() {
    deep_convergence("fig8", cifar_dataset(Order::ClusteredByLabel), 10, false);
}

/// Figure 9: the text-classification stand-in on the clustered yelp-like
/// set, batch 128/256.
pub fn fig9() {
    deep_convergence("fig9", yelp_dataset(Order::ClusteredByLabel), 5, false);
}

/// Figure 10: Figure 8 with Adam instead of SGD.
pub fn fig10() {
    deep_convergence("fig10", cifar_dataset(Order::ClusteredByLabel), 10, true);
}

fn deep_convergence(id: &str, spec: corgipile_data::DatasetSpec, classes: usize, adam: bool) {
    let data = ExpData::build(spec, 8, 9);
    let mut rep = Report::new(
        id,
        if adam {
            "deep models with Adam, clustered data"
        } else {
            "deep models with mini-batch SGD, clustered data"
        },
        &["model", "batch", "strategy", "final_acc", "acc@2"],
    );
    for (mname, model) in [
        ("small-net", small_net(classes)),
        ("big-net", big_net(classes)),
    ] {
        for batch in [128usize, 256] {
            for strategy in paper_strategies() {
                let mut dev = data.hdd();
                let r = run_strategy(&data, model.clone(), strategy, 8, &mut dev, |c| {
                    let opt = if adam {
                        OptimizerKind::default_adam(0.01)
                    } else {
                        OptimizerKind::default_sgd(0.1)
                    };
                    c.with_batch_size(batch).with_optimizer(opt)
                });
                let at2 = r.epochs.get(2).and_then(|e| e.test_metric).unwrap_or(0.0);
                rep.row(&[
                    &mname,
                    &batch,
                    &strategy,
                    &fmt_pct(tail_metric(&r, 2)),
                    &fmt_pct(at2),
                ]);
            }
        }
    }
    rep.note("CorgiPile ≈ Shuffle Once; No Shuffle / Sliding-Window / MRS converge to lower accuracy on clustered data.");
    rep.finish();
}

/// Multi-worker helper used by the pipeline bench.
pub fn one_parallel_epoch(data: &ExpData, workers: usize) -> f64 {
    let cfg = ParallelConfig {
        workers,
        total_buffer_fraction: 0.10,
        batch_size: 128,
        seed: 5,
        ..Default::default()
    };
    let mut model = build_model(&small_net(10), data.spec.dim(), 1);
    let mut opt = Sgd::new(0.1, 0.95);
    let plan = parallel_epoch_plan(&data.table, &cfg, 0);
    train_parallel(model.as_mut(), &mut opt, &plan.merged_batches, workers)
}
