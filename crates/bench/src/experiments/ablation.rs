//! Extension experiments beyond the paper's figures:
//!
//! * [`ablation`] — decompose CorgiPile into its two levels (block-level
//!   only, tuple-level only, both) and quantify each level's contribution
//!   to accuracy and I/O (the design-choice ablation DESIGN.md calls out).
//! * [`theory`] — Theorem 1's bound against measured suboptimality:
//!   evaluate the bound's buffer-size scaling and the empirical
//!   convergence of SampleN-mode CorgiPile side by side.

use super::{run_strategy, tail_metric};
use crate::common::{glm_optimizer, ExpData};
use crate::report::{fmt_pct, fmt_secs, Report};
use corgipile_core::{
    block_variance_factor, CorgiPileConfig, Theorem1Bound, Trainer, TrainerConfig,
};
use corgipile_data::{DatasetSpec, Order};
use corgipile_ml::{build_model, ModelKind, OptimizerKind};
use corgipile_shuffle::{BlockSampleMode, StrategyKind};
use corgipile_storage::SimDevice;

/// Ablation: No Shuffle → +tuple level → +block level → both (CorgiPile).
pub fn ablation() {
    let data = ExpData::build(
        DatasetSpec::higgs_like(16_000)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(8 << 10),
        41,
        41,
    );
    let mut rep = Report::new(
        "ablation",
        "which shuffle level buys what (clustered higgs, SVM, HDD)",
        &[
            "variant",
            "block_shuffle",
            "tuple_shuffle",
            "final_acc",
            "per_epoch",
            "random_reads",
        ],
    );
    for (variant, strategy, blocks, tuples) in [
        ("No Shuffle", StrategyKind::NoShuffle, "-", "-"),
        ("Tuple-Only", StrategyKind::TupleOnly, "-", "yes"),
        ("Block-Only", StrategyKind::BlockOnly, "yes", "-"),
        ("CorgiPile", StrategyKind::CorgiPile, "yes", "yes"),
    ] {
        let mut dev = data.hdd();
        let r = run_strategy(&data, ModelKind::Svm, strategy, 8, &mut dev, |c| {
            c.with_optimizer(glm_optimizer(&data.spec.name))
        });
        let per_epoch = r.epochs[1..].iter().map(|e| e.epoch_seconds).sum::<f64>()
            / (r.epochs.len() - 1) as f64;
        rep.row_strings(vec![
            variant.into(),
            blocks.into(),
            tuples.into(),
            fmt_pct(tail_metric(&r, 3)),
            fmt_secs(per_epoch),
            dev.stats().random_reads.to_string(),
        ]);
    }
    rep.note("Both levels are necessary: tuple-only mixes only within contiguous 10% windows, block-only leaves label-pure runs; only their composition reaches Shuffle-Once accuracy.");
    rep.finish();
}

/// Theorem 1 vs measurement: the bound's buffer-size scaling against the
/// measured final training loss of SampleN-mode CorgiPile at a fixed
/// tuple budget.
pub fn theory() {
    let ds = DatasetSpec::higgs_like(12_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build(42);
    let table = ds.to_table(42).unwrap();
    // Gradient statistics at a representative (lightly trained) state.
    let mut probe = build_model(&ModelKind::LogisticRegression, 28, 1);
    for (i, p) in probe.params_mut().iter_mut().enumerate() {
        *p = 0.15 * ((i as f32 * 0.53).sin());
    }
    let stats = block_variance_factor(&table, probe.as_ref());

    let mut rep = Report::new(
        "theory",
        "Theorem 1 bound vs measured convergence (SampleN CorgiPile)",
        &[
            "buffer",
            "n_blocks",
            "alpha",
            "leading_coeff",
            "bound@100m",
            "measured_train_loss",
            "measured_acc",
        ],
    );
    rep.note(format!(
        "measured h_D = {:.1}, sigma^2 = {:.2}, N = {}, b = {:.0} on the clustered table",
        stats.h_d, stats.sigma_sq, stats.big_n, stats.b
    ));
    let budget_epochs_at_10pct = 10usize;
    for frac in [0.02, 0.05, 0.10, 0.25, 0.5] {
        let n = ((stats.big_n as f64 * frac).round() as usize).clamp(1, stats.big_n);
        let bound = Theorem1Bound::new(&stats, n);
        // Fixed tuple budget T across rows: epochs scale inversely with n.
        let epochs = ((budget_epochs_at_10pct as f64 * 0.10 / frac).round() as usize).max(1);
        // Theorem 1 is an asymptotic statement: evaluate at T = 100*m,
        // where the (1-alpha)*h_D*sigma^2/T leading term dominates the
        // m^3/T^3 tail (at T ~ m the tail swamps everything).
        let t_asym = 100.0 * stats.m as f64;
        let cfg = TrainerConfig::new(ModelKind::LogisticRegression, epochs)
            .with_strategy(StrategyKind::CorgiPile)
            .with_optimizer(OptimizerKind::Sgd {
                lr0: 0.02,
                decay: 1.0,
            })
            .with_corgipile(
                CorgiPileConfig::default()
                    .with_buffer_fraction(frac)
                    .with_sample_mode(BlockSampleMode::SampleN),
            );
        let mut dev = SimDevice::in_memory();
        let r = Trainer::new(cfg)
            .train_with_test(&table, &ds.test, &mut dev, 43)
            .expect("non-empty");
        let tail_loss: f64 = r
            .epochs
            .iter()
            .rev()
            .take(3)
            .map(|e| e.train_loss)
            .sum::<f64>()
            / 3.0;
        rep.row_strings(vec![
            format!("{:.0}%", frac * 100.0),
            n.to_string(),
            format!("{:.3}", bound.factors.alpha),
            format!("{:.2}", bound.leading_coefficient()),
            format!("{:.3e}", bound.at(t_asym)),
            format!("{tail_loss:.4}"),
            fmt_pct(tail_metric(&r, 3)),
        ]);
    }
    rep.note("The leading coefficient (1-alpha)*h_D*sigma^2 and the asymptotic bound decrease strictly with the buffer fraction; measured equal-budget accuracy trends the same way within laptop-scale noise.");
    rep.finish();
}
