//! Recovery benchmark: WAL replay cost, durable-training overhead, and
//! crash-matrix bit-identity.
//!
//! Three measurements back the durability design (DESIGN.md §12):
//!
//! 1. **Recovery time vs WAL length** — a model store is filled with an
//!    increasing number of checkpoint records (compaction disabled so the
//!    log grows), then reopened cold; `ModelStore::open` scans the whole
//!    log, so recovery time should grow linearly in WAL bytes.
//! 2. **Durable-training overhead** — the same `TRAIN BY` query runs with
//!    `durable = 0` and `durable = 1` (best-of-`reps` wall clock). The
//!    durable run pays one CRC-framed append + fsync per *epoch*, which
//!    must stay under 10% of end-to-end training time.
//! 3. **Crash matrix (sampled)** — kill the durable run at representative
//!    write sites, recover on a clean engine, resume with the same SQL,
//!    and require bit-identity with an uninterrupted run
//!    (`bit_identical_all`). The full matrix lives in
//!    `tests/crash_recovery.rs`; this samples it under benchmark scale.
//!
//! Writes `results/recovery.{tsv,json}` plus the root-level
//! `BENCH_recovery.json` artifact (directory override:
//! `CORGI_BENCH_ROOT`). `CORGI_RECOVERY_TUPLES` / `CORGI_RECOVERY_EPOCHS`
//! shrink the run for CI smoke tests.

use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::report::Report;
use corgipile_data::{DatasetSpec, Order};
use corgipile_db::{Database, DbError, ModelStore, ModelStoreOptions, StoredModel};
use corgipile_ml::{ModelKind, TrainCheckpoint};
use corgipile_storage::{sites, FaultPlan, SimDevice, StorageError, Table};

/// Cold-open cost of one WAL length.
#[derive(Debug, Clone)]
pub struct RecoveryRun {
    /// Checkpoint records appended before the cold open.
    pub records: u64,
    /// WAL bytes scanned at open.
    pub wal_bytes: u64,
    /// Wall milliseconds for `ModelStore::open` (recovery scan + replay).
    pub recovery_ms: f64,
}

/// Durable-on vs durable-off training cost.
#[derive(Debug, Clone)]
pub struct OverheadRun {
    /// Best wall seconds with `durable = 0`.
    pub plain_wall_seconds: f64,
    /// Best wall seconds with `durable = 1`.
    pub durable_wall_seconds: f64,
    /// Per-rep (plain, durable) wall-second pairs, interleaved.
    pub pair_seconds: Vec<(f64, f64)>,
    /// WAL appends the durable run made (one per epoch).
    pub appends: u64,
    /// fsyncs the durable run made.
    pub fsyncs: u64,
    /// WAL bytes after the durable run.
    pub wal_bytes: u64,
}

impl OverheadRun {
    /// Durable overhead in percent of the durable-off wall time: the
    /// median of the paired per-rep ratios (pairing + interleaving cancels
    /// machine-load drift that would swamp an unpaired min-vs-min).
    pub fn overhead_pct(&self) -> f64 {
        let mut ratios: Vec<f64> = self
            .pair_seconds
            .iter()
            .map(|&(plain, durable)| durable / plain)
            .collect();
        ratios.sort_by(|a, b| a.total_cmp(b));
        let median = match ratios.len() {
            0 => 1.0,
            n if n % 2 == 1 => ratios[n / 2],
            n => (ratios[n / 2 - 1] + ratios[n / 2]) / 2.0,
        };
        (median - 1.0) * 100.0
    }
}

/// One sampled crash-matrix cell.
#[derive(Debug, Clone)]
pub struct CrashRun {
    /// Crash-site label ("crash@wal.after_fsync#2", …).
    pub label: String,
    /// Epochs the resumed run still had to train.
    pub resumed_epochs: u64,
    /// Recovered + resumed model equals the uninterrupted run bit for bit.
    pub bit_identical: bool,
}

fn clustered(n: usize) -> Table {
    DatasetSpec::higgs_like(n)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build_table(1)
        .unwrap()
}

fn bench_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("corgi_bench_recovery_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

fn train_sql(epochs: usize, durable: usize) -> String {
    format!(
        "SELECT * FROM higgs TRAIN BY svm WITH learning_rate = 0.05, \
         max_epoch_num = {epochs}, seed = 7, model_name = m, durable = {durable}"
    )
}

fn engine(table: &Table, dir: &Path, opts: ModelStoreOptions) -> std::sync::Arc<Database> {
    let db = Database::with_model_store_opts(SimDevice::hdd_scaled(1000.0, 0), 0, dir, opts)
        .expect("open engine with model store");
    db.register_table("higgs", table.clone());
    db
}

/// Measure the cold-open (recovery) time at each WAL record count.
pub fn measure_recovery(record_counts: &[u64]) -> Vec<RecoveryRun> {
    record_counts
        .iter()
        .map(|&n| {
            let dir = bench_dir(&format!("scan_{n}"));
            // Compaction off so the log keeps every record.
            let opts = ModelStoreOptions {
                compact_threshold_bytes: u64::MAX,
                ..Default::default()
            };
            let wal_bytes = {
                let store = ModelStore::open_with(&dir, opts.clone()).expect("seed store");
                let ck = TrainCheckpoint {
                    epoch_next: 1,
                    seed: 7,
                    sim_clock: 0.0,
                    model_params: vec![0.5; 32],
                    optimizer_state: Vec::new(),
                };
                // dim + 1: the linear model carries weights plus a bias.
                let stored = StoredModel {
                    kind: ModelKind::Svm,
                    dim: 32,
                    params: vec![0.5; 33],
                    train_loss: 0.0,
                };
                for epoch in 1..=n {
                    let mut c = ck.clone();
                    c.epoch_next = epoch as usize + 1;
                    store
                        .record_checkpoint("m", "higgs", 1, stored.clone(), c)
                        .expect("append checkpoint");
                }
                store.stats().wal_len_bytes
            };
            let start = Instant::now();
            let store = ModelStore::open_with(&dir, opts).expect("cold open");
            let recovery_ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(store.stats().recovered_records, n);
            std::fs::remove_dir_all(&dir).ok();
            RecoveryRun {
                records: n,
                wal_bytes,
                recovery_ms,
            }
        })
        .collect()
}

/// Measure durable-on vs durable-off wall time: `reps` interleaved
/// (plain, durable) pairs after one untimed warmup pair, so both arms see
/// the same machine conditions and the paired ratio isolates WAL cost.
pub fn measure_overhead(n_tuples: usize, epochs: usize, reps: usize) -> OverheadRun {
    let table = clustered(n_tuples);
    let mut pairs = Vec::with_capacity(reps);
    let mut appends = 0;
    let mut fsyncs = 0;
    let mut wal_bytes = 0;
    for rep in 0..=reps {
        let db = Database::new(SimDevice::hdd_scaled(1000.0, 0));
        db.register_table("higgs", table.clone());
        let start = Instant::now();
        db.connect()
            .execute(&train_sql(epochs, 0))
            .expect("durable-off train");
        let plain = start.elapsed().as_secs_f64();

        let dir = bench_dir(&format!("overhead_{rep}"));
        let db = engine(&table, &dir, ModelStoreOptions::default());
        let start = Instant::now();
        db.connect()
            .execute(&train_sql(epochs, 1))
            .expect("durable-on train");
        let durable = start.elapsed().as_secs_f64();
        if rep > 0 {
            pairs.push((plain, durable));
        }
        let stats = db.model_store().unwrap().stats();
        appends = stats.appends;
        fsyncs = stats.fsyncs;
        wal_bytes = stats.wal_len_bytes;
        std::fs::remove_dir_all(&dir).ok();
    }
    OverheadRun {
        plain_wall_seconds: pairs.iter().map(|p| p.0).fold(f64::INFINITY, f64::min),
        durable_wall_seconds: pairs.iter().map(|p| p.1).fold(f64::INFINITY, f64::min),
        pair_seconds: pairs,
        appends,
        fsyncs,
        wal_bytes,
    }
}

/// Kill at sampled write sites; recover, resume, compare bit for bit.
pub fn measure_crash_matrix(n_tuples: usize, epochs: usize) -> Vec<CrashRun> {
    let table = clustered(n_tuples);
    let reference = {
        let dir = bench_dir("reference");
        let db = engine(&table, &dir, ModelStoreOptions::default());
        db.connect()
            .execute(&train_sql(epochs, 1))
            .expect("reference train");
        let params = db.catalog().model("m").unwrap().params.clone();
        std::fs::remove_dir_all(&dir).ok();
        params
    };
    let cases: Vec<(&str, ModelStoreOptions)> = vec![
        (
            "crash@wal.after_fsync#2",
            ModelStoreOptions {
                faults: Some(FaultPlan::new(7).with_crash_point(sites::WAL_AFTER_FSYNC, 2)),
                ..Default::default()
            },
        ),
        (
            "torn@wal.after_append_before_fsync",
            ModelStoreOptions {
                faults: Some(
                    FaultPlan::new(7).with_torn_write(sites::WAL_AFTER_APPEND_BEFORE_FSYNC, 7),
                ),
                ..Default::default()
            },
        ),
        (
            "crash@model_store.post_snapshot#1",
            ModelStoreOptions {
                compact_threshold_bytes: 64,
                faults: Some(
                    FaultPlan::new(7).with_crash_point(sites::MODEL_STORE_POST_SNAPSHOT, 1),
                ),
                ..Default::default()
            },
        ),
    ];
    cases
        .into_iter()
        .map(|(label, opts)| {
            let dir = bench_dir(&label.replace(['.', '@', '#'], "_"));
            {
                let db = engine(&table, &dir, opts.clone());
                match db.connect().execute(&train_sql(epochs, 1)) {
                    Err(DbError::Storage(StorageError::Crashed { .. })) => {}
                    other => panic!("{label}: expected the injected crash, got {other:?}"),
                }
            }
            let clean = ModelStoreOptions {
                faults: None,
                ..opts
            };
            let db = engine(&table, &dir, clean);
            let resumed_epochs = match db.connect().execute(&train_sql(epochs, 1)) {
                Ok(corgipile_db::QueryResult::Train(t)) => t.epochs.len() as u64,
                other => panic!("{label}: resume failed: {other:?}"),
            };
            let got = db.catalog().model("m").unwrap().params.clone();
            std::fs::remove_dir_all(&dir).ok();
            CrashRun {
                label: label.to_string(),
                resumed_epochs,
                bit_identical: got == reference,
            }
        })
        .collect()
}

/// Render the root-level `BENCH_recovery.json` artifact.
pub fn render_bench_json(
    recovery: &[RecoveryRun],
    overhead: &OverheadRun,
    crashes: &[CrashRun],
) -> String {
    let mut out = String::from("{\n  \"id\": \"recovery\",\n  \"recovery\": [\n");
    for (i, r) in recovery.iter().enumerate() {
        let comma = if i + 1 < recovery.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"records\": {}, \"wal_bytes\": {}, \"recovery_ms\": {:.4}}}{}\n",
            r.records, r.wal_bytes, r.recovery_ms, comma,
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"overhead\": {{\"plain_wall_seconds\": {:.6}, \
         \"durable_wall_seconds\": {:.6}, \"overhead_pct\": {:.4}, \
         \"appends\": {}, \"fsyncs\": {}, \"wal_bytes\": {}}},\n  \"crash\": [\n",
        overhead.plain_wall_seconds,
        overhead.durable_wall_seconds,
        overhead.overhead_pct(),
        overhead.appends,
        overhead.fsyncs,
        overhead.wal_bytes,
    ));
    for (i, c) in crashes.iter().enumerate() {
        let comma = if i + 1 < crashes.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"resumed_epochs\": {}, \"bit_identical\": {}}}{}\n",
            c.label, c.resumed_epochs, c.bit_identical, comma,
        ));
    }
    let all_identical = crashes.iter().all(|c| c.bit_identical);
    out.push_str(&format!(
        "  ],\n  \"overhead_pct\": {:.4},\n  \"bit_identical_all\": {all_identical}\n}}",
        overhead.overhead_pct(),
    ));
    out
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `recovery` experiment: WAL-scan sweep, overhead, sampled crash
/// matrix, plus the root JSON artifact.
pub fn recovery() {
    let n = env_usize("CORGI_RECOVERY_TUPLES", 50_000);
    let epochs = env_usize("CORGI_RECOVERY_EPOCHS", 4);
    let scan = measure_recovery(&[8, 64, 512]);
    let overhead = measure_overhead(n, epochs, 5);
    let crashes = measure_crash_matrix(n, epochs);

    let mut rep = Report::new(
        "recovery",
        "WAL recovery scan, durable-training overhead, crash-matrix bit-identity",
        &["metric", "value"],
    );
    for r in &scan {
        rep.row_strings(vec![
            format!("recovery_ms @ {} records ({} B)", r.records, r.wal_bytes),
            format!("{:.4}", r.recovery_ms),
        ]);
    }
    rep.row_strings(vec![
        "durable-off wall s".into(),
        format!("{:.4}", overhead.plain_wall_seconds),
    ]);
    rep.row_strings(vec![
        "durable-on wall s".into(),
        format!("{:.4}", overhead.durable_wall_seconds),
    ]);
    rep.row_strings(vec![
        "durable overhead %".into(),
        format!("{:.2}", overhead.overhead_pct()),
    ]);
    for c in &crashes {
        rep.row_strings(vec![
            format!("bit_identical after {}", c.label),
            format!("{} (resumed {} epochs)", c.bit_identical, c.resumed_epochs),
        ]);
    }
    rep.note(
        "durable = 1 appends one CRC-framed, fsynced checkpoint record per epoch; \
         recovery scans the longest valid WAL prefix and auto-resume replays the \
         remaining epochs from the last durable one, reproducing the \
         uninterrupted model bit for bit.",
    );
    rep.finish();

    let root = std::env::var("CORGI_BENCH_ROOT").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&root).join("BENCH_recovery.json");
    match std::fs::write(&path, render_bench_json(&scan, &overhead, &crashes) + "\n") {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_scan_grows_with_wal_length() {
        let runs = measure_recovery(&[4, 64]);
        assert_eq!(runs.len(), 2);
        assert!(runs[1].wal_bytes > runs[0].wal_bytes);
        assert!(runs.iter().all(|r| r.recovery_ms >= 0.0));
    }

    #[test]
    fn sampled_crash_matrix_is_bit_identical() {
        let crashes = measure_crash_matrix(1_500, 3);
        assert!(
            crashes.iter().all(|c| c.bit_identical),
            "diverged: {crashes:?}"
        );
    }

    #[test]
    fn bench_json_is_well_formed() {
        let scan = vec![RecoveryRun {
            records: 8,
            wal_bytes: 1024,
            recovery_ms: 0.5,
        }];
        let overhead = OverheadRun {
            plain_wall_seconds: 1.0,
            durable_wall_seconds: 1.05,
            pair_seconds: vec![(1.0, 1.02), (1.0, 1.05), (1.0, 1.2)],
            appends: 4,
            fsyncs: 5,
            wal_bytes: 2048,
        };
        let crashes = vec![CrashRun {
            label: "crash@wal.after_fsync#2".into(),
            resumed_epochs: 2,
            bit_identical: true,
        }];
        let json = render_bench_json(&scan, &overhead, &crashes);
        assert!(json.contains("\"overhead_pct\": 5.0000"));
        assert!(json.contains("\"bit_identical_all\": true"));
        assert!(json.ends_with('}'));
    }
}
