//! Pushdown benchmark: WHERE-below-TupleShuffle vs post-buffer filtering.
//!
//! For each selectivity `s ∈ {1.0, 0.5, 0.1}` the same `TRAIN BY` query
//! runs twice over the shared planner — once with the default pushdown
//! rewrite (predicate fused into the block scan, evaluated before the
//! tuple enters the shuffle buffer) and once with `pushdown = 0` (a
//! `FilterOp` above the buffer, PostgreSQL's naive placement). The
//! predicate is `id < s·n`, so selectivity is exact. Reported per run:
//! tuples buffered by `TupleShuffle`, simulated I/O seconds, wall
//! seconds, and whether the two trained models agreed bit for bit (they
//! must — pushdown is an equivalence, not an approximation).
//!
//! Writes `results/pushdown.{tsv,json}` plus the root-level
//! `BENCH_pushdown.json` artifact (directory override:
//! `CORGI_BENCH_ROOT`). `CORGI_PUSHDOWN_TUPLES` /
//! `CORGI_PUSHDOWN_EPOCHS` shrink the run for CI smoke tests.

use std::time::Instant;

use crate::report::Report;
use corgipile_data::{DatasetSpec, Order};
use corgipile_db::{Database, DbTrainSummary, QueryResult};
use corgipile_storage::{SimDevice, Table};

/// Pushdown vs post-buffer filtering at one selectivity.
#[derive(Debug, Clone)]
pub struct PushdownRun {
    /// Fraction of the table the predicate keeps.
    pub selectivity: f64,
    /// Tuples buffered by `TupleShuffle` under pushdown.
    pub pushdown_buffered_tuples: u64,
    /// Tuples buffered by `TupleShuffle` with the filter above the buffer.
    pub post_buffered_tuples: u64,
    /// Simulated I/O seconds, pushdown plan.
    pub pushdown_sim_io_seconds: f64,
    /// Simulated I/O seconds, post-filter plan.
    pub post_sim_io_seconds: f64,
    /// Wall seconds, pushdown plan.
    pub pushdown_wall_seconds: f64,
    /// Wall seconds, post-filter plan.
    pub post_wall_seconds: f64,
    /// Whether the two trained models agreed bit for bit.
    pub bit_identical: bool,
}

impl PushdownRun {
    /// Buffered-tuple reduction factor of pushdown over post-filtering.
    pub fn buffer_reduction(&self) -> f64 {
        self.post_buffered_tuples as f64 / (self.pushdown_buffered_tuples.max(1)) as f64
    }
}

fn clustered(n: usize) -> Table {
    DatasetSpec::higgs_like(n)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build_table(1)
        .unwrap()
}

fn run_once(
    table: &Table,
    cutoff: u64,
    epochs: usize,
    pushdown: usize,
) -> (DbTrainSummary, Vec<f32>, f64) {
    let db = Database::new(SimDevice::hdd_scaled(1000.0, 0));
    db.register_table("higgs", table.clone());
    let mut s = db.connect();
    let sql = format!(
        "SELECT * FROM higgs WHERE id < {cutoff} TRAIN BY svm WITH \
         max_epoch_num = {epochs}, pushdown = {pushdown}, model_name = m"
    );
    let start = Instant::now();
    let summary = match s.execute(&sql).expect("training runs") {
        QueryResult::Train(t) => t,
        other => panic!("expected a train result, got {other:?}"),
    };
    let wall = start.elapsed().as_secs_f64();
    let params = s.catalog().model("m").expect("model stored").params.clone();
    (summary, params, wall)
}

fn buffered_tuples(summary: &DbTrainSummary) -> u64 {
    // Under the default fused plan the whole chain reports one stats
    // node, so sum buffer occupancy across whatever nodes exist.
    summary.op_stats.iter().map(|o| o.buffered_tuples).sum()
}

fn sim_io_seconds(summary: &DbTrainSummary) -> f64 {
    summary.epochs.iter().map(|e| e.io_seconds).sum()
}

/// Measure pushdown vs post-buffer filtering at each selectivity.
pub fn measure(n_tuples: usize, epochs: usize, selectivities: &[f64]) -> Vec<PushdownRun> {
    let table = clustered(n_tuples);
    selectivities
        .iter()
        .map(|&sel| {
            let cutoff = (n_tuples as f64 * sel).round() as u64;
            let (pushed, pushed_params, pushed_wall) = run_once(&table, cutoff, epochs, 1);
            let (post, post_params, post_wall) = run_once(&table, cutoff, epochs, 0);
            PushdownRun {
                selectivity: sel,
                pushdown_buffered_tuples: buffered_tuples(&pushed),
                post_buffered_tuples: buffered_tuples(&post),
                pushdown_sim_io_seconds: sim_io_seconds(&pushed),
                post_sim_io_seconds: sim_io_seconds(&post),
                pushdown_wall_seconds: pushed_wall,
                post_wall_seconds: post_wall,
                bit_identical: pushed_params == post_params,
            }
        })
        .collect()
}

/// Render the root-level `BENCH_pushdown.json` artifact.
pub fn render_bench_json(runs: &[PushdownRun]) -> String {
    let mut out = String::from("{\n  \"id\": \"pushdown\",\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"selectivity\": {:.2}, \"pushdown_buffered_tuples\": {}, \
             \"post_buffered_tuples\": {}, \"buffer_reduction\": {:.4}, \
             \"pushdown_sim_io_seconds\": {:.6}, \"post_sim_io_seconds\": {:.6}, \
             \"pushdown_wall_seconds\": {:.6}, \"post_wall_seconds\": {:.6}, \
             \"bit_identical\": {}}}{}\n",
            r.selectivity,
            r.pushdown_buffered_tuples,
            r.post_buffered_tuples,
            r.buffer_reduction(),
            r.pushdown_sim_io_seconds,
            r.post_sim_io_seconds,
            r.pushdown_wall_seconds,
            r.post_wall_seconds,
            r.bit_identical,
            comma,
        ));
    }
    let at_01 = runs
        .iter()
        .filter(|r| r.selectivity <= 0.1)
        .map(PushdownRun::buffer_reduction)
        .fold(0.0f64, f64::max);
    let all_identical = runs.iter().all(|r| r.bit_identical);
    out.push_str(&format!(
        "  ],\n  \"buffer_reduction_at_0.1\": {at_01:.4},\n  \
         \"bit_identical_all\": {all_identical}\n}}"
    ));
    out
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `pushdown` experiment: selectivity sweep plus the root JSON
/// artifact.
pub fn pushdown() {
    let n = env_usize("CORGI_PUSHDOWN_TUPLES", 20_000);
    let epochs = env_usize("CORGI_PUSHDOWN_EPOCHS", 3);
    let runs = measure(n, epochs, &[1.0, 0.5, 0.1]);

    let mut rep = Report::new(
        "pushdown",
        "WHERE pushdown below TupleShuffle vs post-buffer filtering",
        &[
            "selectivity",
            "pushdown_buffered",
            "post_buffered",
            "reduction",
            "pushdown_sim_io_s",
            "post_sim_io_s",
            "bit_identical",
        ],
    );
    for r in &runs {
        rep.row_strings(vec![
            format!("{:.2}", r.selectivity),
            r.pushdown_buffered_tuples.to_string(),
            r.post_buffered_tuples.to_string(),
            format!("{:.1}x", r.buffer_reduction()),
            format!("{:.4}", r.pushdown_sim_io_seconds),
            format!("{:.4}", r.post_sim_io_seconds),
            r.bit_identical.to_string(),
        ]);
    }
    rep.note(
        "predicate id < s*n fused into the block scan (pushdown=1) vs a FilterOp \
         above the shuffle buffer (pushdown=0); identical visit order by \
         construction, so identical models — the buffer just holds s times the \
         tuples.",
    );
    rep.finish();

    let root = std::env::var("CORGI_BENCH_ROOT").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&root).join("BENCH_pushdown.json");
    match std::fs::write(&path, render_bench_json(&runs) + "\n") {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pushdown_reduces_buffered_tuples_and_stays_bit_identical() {
        let runs = measure(2_000, 1, &[1.0, 0.1]);
        assert!(
            runs.iter().all(|r| r.bit_identical),
            "pushdown diverged: {runs:?}"
        );
        let low = runs.iter().find(|r| r.selectivity <= 0.1).unwrap();
        assert!(
            low.buffer_reduction() >= 5.0,
            "expected >=5x fewer buffered tuples at selectivity 0.1: {low:?}"
        );
        let full = runs.iter().find(|r| r.selectivity >= 1.0).unwrap();
        assert_eq!(
            full.pushdown_buffered_tuples, full.post_buffered_tuples,
            "selectivity 1.0 buffers everything either way"
        );
    }

    #[test]
    fn bench_json_is_well_formed() {
        let runs = vec![PushdownRun {
            selectivity: 0.1,
            pushdown_buffered_tuples: 200,
            post_buffered_tuples: 2000,
            pushdown_sim_io_seconds: 0.1,
            post_sim_io_seconds: 0.1,
            pushdown_wall_seconds: 0.01,
            post_wall_seconds: 0.01,
            bit_identical: true,
        }];
        let json = render_bench_json(&runs);
        assert!(json.contains("\"buffer_reduction\": 10.0000"));
        assert!(json.contains("\"buffer_reduction_at_0.1\": 10.0000"));
        assert!(json.contains("\"bit_identical_all\": true"));
        assert!(json.ends_with('}'));
    }
}
