//! Order-diagnostic experiments: Figures 3, 4 and 5.
//!
//! These reproduce the paper's qualitative plots numerically: the tuple-id
//! trace (position → original id) and per-window label histograms for each
//! strategy over the 1 000-tuple clustered example of §3.5, plus the
//! Figure-5 single- vs multi-process order equivalence.

use crate::report::Report;
use corgipile_core::{parallel_epoch_plan, ParallelConfig};
use corgipile_data::{DatasetSpec, Order};
use corgipile_shuffle::{build_strategy, diagnostics, EpochPlan, StrategyKind, StrategyParams};
use corgipile_storage::SimDevice;

/// The paper's running example: 1 000 tuples, first 500 negative, blocks of
/// 20 tuples (50 blocks), 10 % buffer.
fn toy() -> (corgipile_storage::Table, StrategyParams) {
    // 2 features ≈ 37-byte tuples; ~220/page ⇒ use tiny pages? We instead
    // build ~20-tuple blocks by padding the tuple width.
    let spec = DatasetSpec::new(
        "toy1000",
        corgipile_data::DataKind::DenseBinary {
            dim: 90,
            separation: 1.0,
            noise_rank: 0,
        },
        1_000,
    )
    .with_order(Order::ClusteredByLabel)
    .with_block_bytes(8 << 10);
    let table = spec.build_table(9).unwrap();
    (
        table,
        StrategyParams::default()
            .with_buffer_fraction(0.10)
            .with_seed(7),
    )
}

fn describe(rep: &mut Report, strategy: &str, plan: &EpochPlan) {
    let ids = plan.id_sequence();
    let labels = plan.label_sequence();
    let disp = diagnostics::order_displacement(&ids);
    let uni = diagnostics::label_uniformity_score(&labels, 20);
    // Sample the tuple-id trace at every 5 % of the stream.
    let step = (ids.len() / 20).max(1);
    let trace: Vec<String> = ids.iter().step_by(step).map(|id| id.to_string()).collect();
    rep.row_strings(vec![
        strategy.to_string(),
        format!("{disp:.3}"),
        format!("{uni:.4}"),
        trace.join(","),
    ]);
}

/// Figure 3: tuple-id/label distributions for No Shuffle, Sliding-Window,
/// MRS, and a full shuffle.
pub fn fig3() {
    let (table, params) = toy();
    let mut rep = Report::new(
        "fig3",
        "order diagnostics of existing strategies (1000-tuple clustered toy)",
        &[
            "strategy",
            "displacement",
            "label_nonuniformity",
            "idtrace(every5%)",
        ],
    );
    for kind in [
        StrategyKind::NoShuffle,
        StrategyKind::SlidingWindow,
        StrategyKind::Mrs,
        StrategyKind::EpochShuffle, // the "Full Shuffle (ideal)" panel
    ] {
        let mut s = build_strategy(kind, params.clone());
        let mut dev = SimDevice::in_memory();
        let plan = s.next_epoch(&table, &mut dev);
        describe(&mut rep, kind.display(), &plan);
    }
    rep.note("displacement: 0 = unshuffled, ~0.333 = uniform random (paper Fig. 3a–d).");
    rep.note("label_nonuniformity: mean squared deviation of per-20-tuple positive fraction (paper Fig. 3e–h).");
    rep.finish();
}

/// Figure 4: the same diagnostics for CorgiPile.
pub fn fig4() {
    let (table, params) = toy();
    let mut rep = Report::new(
        "fig4",
        "order diagnostics of CorgiPile (1000-tuple clustered toy)",
        &[
            "strategy",
            "displacement",
            "label_nonuniformity",
            "idtrace(every5%)",
        ],
    );
    for frac in [0.05, 0.10, 0.20] {
        let mut s = build_strategy(
            StrategyKind::CorgiPile,
            params.clone().with_buffer_fraction(frac),
        );
        let mut dev = SimDevice::in_memory();
        let plan = s.next_epoch(&table, &mut dev);
        describe(
            &mut rep,
            &format!("CorgiPile(buffer {:.0}%)", frac * 100.0),
            &plan,
        );
    }
    rep.note("CorgiPile's label windows approach the full-shuffle uniformity (paper Fig. 4b).");
    rep.finish();
}

/// Figure 5: multi-process CorgiPile produces a data order equivalent to
/// single-process CorgiPile with a PN×-sized buffer.
pub fn fig5() {
    let spec = DatasetSpec::higgs_like(4_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10);
    let ds = spec.build(11);
    let table = ds.to_table(11).unwrap();
    let mut rep = Report::new(
        "fig5",
        "multi-process vs single-process CorgiPile order",
        &[
            "configuration",
            "displacement",
            "label_nonuniformity",
            "batches_mixed",
        ],
    );

    // Multi-process: 2 workers, global buffer 20 %.
    let cfg = ParallelConfig {
        workers: 2,
        total_buffer_fraction: 0.2,
        batch_size: 100,
        seed: 3,
        ..Default::default()
    };
    let plan = parallel_epoch_plan(&table, &cfg, 0);
    let merged: Vec<corgipile_storage::Tuple> = plan.merged_batches.concat();
    let ids: Vec<u64> = merged.iter().map(|t| t.id).collect();
    let labels: Vec<f32> = merged.iter().map(|t| t.label).collect();
    let mixed = plan
        .merged_batches
        .iter()
        .filter(|b| {
            let pos = b.iter().filter(|t| t.label > 0.0).count();
            let f = pos as f64 / b.len() as f64;
            (0.1..=0.9).contains(&f)
        })
        .count();
    rep.row_strings(vec![
        "multi-process (2 workers, buffer 10% each)".into(),
        format!("{:.3}", diagnostics::order_displacement(&ids)),
        format!("{:.4}", diagnostics::label_uniformity_score(&labels, 100)),
        format!("{mixed}/{}", plan.merged_batches.len()),
    ]);

    // Single-process with the 2×-sized buffer.
    let mut s = build_strategy(
        StrategyKind::CorgiPile,
        StrategyParams::default()
            .with_buffer_fraction(0.2)
            .with_seed(3),
    );
    let mut dev = SimDevice::in_memory();
    let sp = s.next_epoch(&table, &mut dev);
    let ids = sp.id_sequence();
    let labels = sp.label_sequence();
    let batches: Vec<&[corgipile_storage::Tuple]> = sp
        .segments
        .iter()
        .flat_map(|seg| seg.tuples.chunks(100))
        .collect();
    let mixed = batches
        .iter()
        .filter(|b| {
            let pos = b.iter().filter(|t| t.label > 0.0).count();
            let f = pos as f64 / b.len() as f64;
            (0.1..=0.9).contains(&f)
        })
        .count();
    rep.row_strings(vec![
        "single-process (buffer 20%)".into(),
        format!("{:.3}", diagnostics::order_displacement(&ids)),
        format!("{:.4}", diagnostics::label_uniformity_score(&labels, 100)),
        format!("{mixed}/{}", batches.len()),
    ]);
    rep.note("The two configurations yield equivalent randomness: similar displacement, label uniformity, and per-batch mixing (paper Fig. 5b/5c).");
    rep.finish();
}
