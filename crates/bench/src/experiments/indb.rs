//! In-DB experiments: Figures 11, 13, 14, 15, 16, 18.

use super::{run_strategy, tail_metric};
use crate::common::{
    glm_datasets, glm_datasets_small, glm_optimizer, mini8m_dataset, msd_dataset, ExpData,
};
use crate::report::{fmt_pct, fmt_secs, Report};
use corgipile_core::{CorgiPileConfig, Trainer};
use corgipile_data::{DatasetSpec, Order};
use corgipile_db::{system_trainer_config, InDbSystem};
use corgipile_ml::{ComputeCostModel, ModelKind, OptimizerKind};
use corgipile_shuffle::StrategyKind;
use corgipile_storage::SimDevice;

fn is_sparse(spec: &DatasetSpec) -> bool {
    matches!(spec.kind, corgipile_data::DataKind::SparseBinary { .. })
}

/// Figure 11: end-to-end in-DB execution time — five clustered datasets ×
/// {HDD, SSD} × systems, LR and SVM.
pub fn fig11() {
    let mut rep = Report::new(
        "fig11",
        "end-to-end in-DB training time, clustered datasets",
        &[
            "dataset",
            "device",
            "system",
            "model",
            "setup",
            "per_epoch",
            "total",
            "final_acc",
            "speedup_vs",
        ],
    );
    for spec in glm_datasets(Order::ClusteredByLabel) {
        let data = ExpData::build(spec, 11, 11);
        let dim = data.spec.dim();
        let sparse = is_sparse(&data.spec);
        for (dev_name, mk_dev) in [("hdd", 0usize), ("ssd", 1usize)] {
            for model in [ModelKind::LogisticRegression, ModelKind::Svm] {
                let mut corgi_total = None;
                for system in InDbSystem::all() {
                    if !system.feasible(&model, dim, sparse) {
                        rep.row_strings(vec![
                            data.spec.name.clone(),
                            dev_name.into(),
                            system.display().into(),
                            model.to_string(),
                            "-".into(),
                            "-".into(),
                            "DNF".into(),
                            "-".into(),
                            "unsupported/4h+".into(),
                        ]);
                        continue;
                    }
                    let mut cfg = system_trainer_config(
                        system,
                        model.clone(),
                        dim,
                        4,
                        CorgiPileConfig::default(),
                    );
                    cfg.optimizer = glm_optimizer(&data.spec.name);
                    let (hdd, ssd) = data.devices();
                    let mut dev: SimDevice = if mk_dev == 0 { hdd } else { ssd };
                    let r = Trainer::new(cfg)
                        .train_with_test(&data.table, &data.ds.test, &mut dev, 0xF16)
                        .expect("non-empty");
                    let total = r.total_sim_seconds();
                    if system == InDbSystem::CorgiPile {
                        corgi_total = Some(total);
                    }
                    let per_epoch = r.epochs.iter().map(|e| e.epoch_seconds).sum::<f64>()
                        / r.epochs.len() as f64;
                    let setup: f64 = r.epochs.iter().map(|e| e.setup_seconds).sum();
                    let speedup = corgi_total
                        .map(|c| format!("{:.1}x", total / c))
                        .unwrap_or_else(|| "-".into());
                    rep.row_strings(vec![
                        data.spec.name.clone(),
                        dev_name.into(),
                        system.display().into(),
                        model.to_string(),
                        fmt_secs(setup),
                        fmt_secs(per_epoch),
                        fmt_secs(total),
                        fmt_pct(tail_metric(&r, 2)),
                        speedup,
                    ]);
                }
            }
        }
    }
    rep.note("speedup_vs = total time relative to CorgiPile on the same dataset/device/model (paper reports 1.6x-12.8x).");
    rep.note("DNF rows mirror the paper: MADlib LR stalls on wide dense data; MADlib lacks sparse training.");
    rep.finish();
}

/// Figure 13: average per-epoch time — No Shuffle (Bismarck) vs CorgiPile
/// vs single-buffer CorgiPile, on HDD and SSD.
pub fn fig13() {
    let mut rep = Report::new(
        "fig13",
        "average per-epoch time: double buffering at work",
        &[
            "dataset",
            "device",
            "variant",
            "per_epoch",
            "overhead_vs_noshuffle",
        ],
    );
    let tel = corgipile_telemetry::Telemetry::enabled();
    for spec in glm_datasets(Order::ClusteredByLabel) {
        let data = ExpData::build(spec, 13, 13);
        for dev_idx in [0usize, 1] {
            let dev_name = if dev_idx == 0 { "hdd" } else { "ssd" };
            let mut base = None;
            for (variant, strategy, double) in [
                ("No Shuffle (Bismarck)", StrategyKind::NoShuffle, true),
                ("CorgiPile", StrategyKind::CorgiPile, true),
                ("CorgiPile (single buffer)", StrategyKind::CorgiPile, false),
            ] {
                let (hdd, ssd) = data.devices();
                let mut dev = if dev_idx == 0 { hdd } else { ssd };
                dev.set_telemetry(tel.clone());
                let r = run_strategy(&data, ModelKind::Svm, strategy, 3, &mut dev, |c| {
                    c.with_optimizer(glm_optimizer(&data.spec.name))
                        .with_corgipile(CorgiPileConfig::default().with_double_buffer(double))
                });
                // Steady-state epoch: skip epoch 0 (cold cache).
                let per_epoch = r.epochs[1..].iter().map(|e| e.epoch_seconds).sum::<f64>()
                    / (r.epochs.len() - 1) as f64;
                if base.is_none() {
                    base = Some(per_epoch);
                }
                let overhead = per_epoch / base.unwrap() - 1.0;
                rep.row_strings(vec![
                    data.spec.name.clone(),
                    dev_name.into(),
                    variant.into(),
                    fmt_secs(per_epoch),
                    format!("{:+.1}%", overhead * 100.0),
                ]);
            }
        }
    }
    rep.note("Paper: double-buffered CorgiPile is at most ~11.7% slower per epoch than No Shuffle, and up to 23.6% faster than its single-buffer variant.");
    rep.note("results/fig13.json carries the full telemetry io_breakdown (device counters, fill spans, per-epoch events).");
    rep.attach_telemetry(&tel);
    rep.finish();
}

/// Figure 14: (a) buffer-size sweep; (b) block-size sweep.
pub fn fig14() {
    let mut rep = Report::new(
        "fig14a",
        "CorgiPile convergence vs buffer size (criteo-like, clustered)",
        &["buffer", "epoch", "test_acc"],
    );
    let spec = DatasetSpec::criteo_like(16_000)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(16 << 10);
    let data = ExpData::build(spec, 14, 14);
    // Shuffle Once reference.
    {
        let mut dev = data.hdd();
        let r = run_strategy(
            &data,
            ModelKind::LogisticRegression,
            StrategyKind::ShuffleOnce,
            6,
            &mut dev,
            |c| c.with_optimizer(glm_optimizer(&data.spec.name)),
        );
        for e in &r.epochs {
            rep.row(&[
                &"shuffle-once",
                &e.epoch,
                &fmt_pct(e.test_metric.unwrap_or(0.0)),
            ]);
        }
    }
    for frac in [0.01, 0.02, 0.05, 0.10] {
        let mut dev = data.hdd();
        let r = run_strategy(
            &data,
            ModelKind::LogisticRegression,
            StrategyKind::CorgiPile,
            6,
            &mut dev,
            |c| {
                c.with_optimizer(glm_optimizer(&data.spec.name))
                    .with_corgipile(CorgiPileConfig::default().with_buffer_fraction(frac))
            },
        );
        for e in &r.epochs {
            rep.row(&[
                &format!("{:.0}%", frac * 100.0),
                &e.epoch,
                &fmt_pct(e.test_metric.unwrap_or(0.0)),
            ]);
        }
    }
    rep.note("A 2% buffer already matches Shuffle Once; 1% converges slightly slower to the same accuracy (paper Fig. 14a).");
    rep.finish();

    // (b) Block-size sweep: per-epoch time for scaled 2/10/50 MB blocks.
    let mut rep = Report::new(
        "fig14b",
        "per-epoch time vs block size (criteo-like, HDD)",
        &["block_size(paper)", "blocks", "per_epoch", "io_fraction"],
    );
    for (label, bytes) in [
        ("2MB", 2 << 10 << 4),
        ("10MB", 10 << 10 << 4),
        ("50MB", 50 << 10 << 4),
    ] {
        // scale 64: 2MB→32KB, 10MB→160KB, 50MB→800KB. The device is FIXED
        // at scale 64 while the block size varies — that is the whole point
        // of the sweep (a per-block-size device would cancel the effect).
        let spec = DatasetSpec::criteo_like(24_000)
            .with_order(Order::ClusteredByLabel)
            .with_block_bytes(bytes);
        let data = ExpData::build(spec, 15, 15);
        let (mut dev, _) = crate::common::devices_for(&data.table, 64.0, false);
        let r = run_strategy(
            &data,
            ModelKind::LogisticRegression,
            StrategyKind::CorgiPile,
            2,
            &mut dev,
            |c| c.with_optimizer(glm_optimizer(&data.spec.name)),
        );
        let e = &r.epochs[0];
        rep.row_strings(vec![
            label.into(),
            data.table.num_blocks().to_string(),
            fmt_secs(e.epoch_seconds),
            format!(
                "{:.0}%",
                100.0 * e.io_seconds / (e.io_seconds + e.compute_seconds)
            ),
        ]);
    }
    rep.note("Per-epoch time drops from 2MB to 10MB blocks and flattens by 50MB (paper Fig. 14b).");
    rep.finish();
}

/// Figure 15: per-epoch time of in-DB CorgiPile vs a PyTorch-style
/// per-tuple trainer (heavy per-tuple invocation overhead).
pub fn fig15() {
    let mut rep = Report::new(
        "fig15",
        "per-epoch time: in-DB CorgiPile vs PyTorch-style execution (SSD)",
        &[
            "dataset",
            "in_db_corgipile",
            "pytorch_no_shuffle",
            "pytorch_corgipile",
            "db_speedup",
        ],
    );
    for spec in glm_datasets_small(Order::ClusteredByLabel) {
        let data = ExpData::build(spec, 16, 16);
        let run = |strategy: StrategyKind, compute: ComputeCostModel, data: &ExpData| -> f64 {
            let mut dev = data.ssd();
            let r = run_strategy(
                data,
                ModelKind::LogisticRegression,
                strategy,
                2,
                &mut dev,
                |c| {
                    c.with_optimizer(glm_optimizer(&data.spec.name))
                        .with_compute(compute)
                },
            );
            r.epochs.iter().map(|e| e.epoch_seconds).sum::<f64>() / r.epochs.len() as f64
        };
        let db = run(
            StrategyKind::CorgiPile,
            ComputeCostModel::in_db_core(),
            &data,
        );
        let py_ns = run(
            StrategyKind::NoShuffle,
            ComputeCostModel::pytorch_per_tuple(),
            &data,
        );
        let py_cp = run(
            StrategyKind::CorgiPile,
            ComputeCostModel::pytorch_per_tuple(),
            &data,
        );
        rep.row_strings(vec![
            data.spec.name.clone(),
            fmt_secs(db),
            fmt_secs(py_ns),
            fmt_secs(py_cp),
            format!("{:.1}x", py_ns / db),
        ]);
    }
    rep.note("The per-tuple Python-C++ invocation overhead dominates PyTorch's per-tuple SGD (paper: in-DB CorgiPile 2-16x faster); PyTorch+CorgiPile costs only a small extra over PyTorch No-Shuffle.");
    rep.finish();
}

/// Figure 16: mini-batch (128) LR/SVM end-to-end time on SSD.
pub fn fig16() {
    let mut rep = Report::new(
        "fig16",
        "mini-batch SGD (128) end-to-end time on SSD, clustered data",
        &["dataset", "model", "strategy", "total", "final_acc"],
    );
    for spec in glm_datasets_small(Order::ClusteredByLabel) {
        let data = ExpData::build(spec, 17, 17);
        // Batch-128 needs a fixed optimizer-step budget, so small (wide)
        // datasets run more epochs (the paper's datasets are all large
        // enough that 20 epochs ≫ convergence).
        let epochs = (300 * 128 / data.spec.train).clamp(6, 60);
        for model in [ModelKind::LogisticRegression, ModelKind::Svm] {
            for strategy in [
                StrategyKind::NoShuffle,
                StrategyKind::ShuffleOnce,
                StrategyKind::BlockOnly,
                StrategyKind::CorgiPile,
            ] {
                let mut dev = data.ssd();
                let r = run_strategy(&data, model.clone(), strategy, epochs, &mut dev, |c| {
                    c.with_batch_size(128)
                        .with_optimizer(crate::common::glm_minibatch_optimizer(&data.spec.name))
                });
                rep.row(&[
                    &data.spec.name,
                    &model,
                    &strategy,
                    &fmt_secs(r.total_sim_seconds()),
                    &fmt_pct(tail_metric(&r, 2)),
                ]);
            }
        }
    }
    rep.note(
        "CorgiPile reaches Shuffle Once's accuracy 1.7-3.3x faster end-to-end (paper Fig. 16).",
    );
    rep.finish();
}

/// Figure 18: linear regression (continuous labels) and softmax regression
/// (10 classes) end-to-end on SSD.
pub fn fig18() {
    let mut rep = Report::new(
        "fig18",
        "linear regression + softmax regression end-to-end (SSD, clustered)",
        &[
            "dataset",
            "model",
            "batch",
            "strategy",
            "total",
            "final_metric",
        ],
    );
    let cases: Vec<(DatasetSpec, ModelKind, &str)> = vec![
        (
            msd_dataset(Order::OrderedByFeature(0)),
            ModelKind::LinearRegression,
            "R2",
        ),
        (
            mini8m_dataset(Order::ClusteredByLabel),
            ModelKind::Softmax { classes: 10 },
            "acc",
        ),
    ];
    for (spec, model, metric_name) in cases {
        let data = ExpData::build(spec, 18, 18);
        for batch in [1usize, 128] {
            for strategy in [
                StrategyKind::NoShuffle,
                StrategyKind::ShuffleOnce,
                StrategyKind::CorgiPile,
            ] {
                let mut dev = data.ssd();
                let r = run_strategy(&data, model.clone(), strategy, 6, &mut dev, |c| {
                    c.with_batch_size(batch).with_optimizer(OptimizerKind::Sgd {
                        lr0: 0.01,
                        decay: 0.9,
                    })
                });
                let metric = tail_metric(&r, 2);
                rep.row_strings(vec![
                    data.spec.name.clone(),
                    model.to_string(),
                    batch.to_string(),
                    strategy.to_string(),
                    fmt_secs(r.total_sim_seconds()),
                    format!("{metric_name}={metric:.3}"),
                ]);
            }
        }
    }
    rep.note("CorgiPile matches Shuffle Once's R2/accuracy while converging 1.6-2.1x faster (paper Fig. 18).");
    rep.finish();
}
