//! Concurrency benchmark: the work-stealing executor vs the fixed
//! round-robin interleaver, plus cross-session buffer-pool sharing.
//!
//! Two measurements:
//!
//! 1. **Work stealing.** [`train_parallel_stealing`] (persistent pool,
//!    block-granular fill tasks, priority gradient chunks) against the
//!    interleaver baseline (`parallel_epoch_plan` materialized serially,
//!    then [`train_parallel`] spawning threads per batch), same config,
//!    wall-clock seconds per worker count. The two paths are bit-identical
//!    by construction — the benchmark re-verifies the trained params on
//!    every run before reporting a speedup.
//! 2. **Shared buffers.** Four sessions over one [`Database`] with a
//!    shared `shared_buffers` pool vs the same four sessions on cold
//!    per-session engines: cross-session `cache_hit_rate`.
//!
//! Writes `results/concurrency.{tsv,json}` plus the root-level
//! `BENCH_concurrency.json` artifact (directory override:
//! `CORGI_BENCH_ROOT`). `CORGI_CONCURRENCY_TUPLES` /
//! `CORGI_CONCURRENCY_EPOCHS` shrink the run for CI smoke tests.

use std::time::Instant;

use crate::report::Report;
use corgipile_core::{
    parallel_epoch_plan, train_parallel, train_parallel_stealing, ParallelConfig, StealingExecutor,
};
use corgipile_data::{DatasetSpec, Order};
use corgipile_db::{Database, QueryResult};
use corgipile_ml::{build_model, ModelKind, Optimizer, Sgd};
use corgipile_storage::{SimDevice, Table};

/// Interleaver vs work stealing at one worker count.
#[derive(Debug, Clone)]
pub struct StealRun {
    /// Data-parallel worker count (`PN`).
    pub workers: usize,
    /// Wall seconds: serial fills + per-batch thread spawns.
    pub interleaver_wall_seconds: f64,
    /// Wall seconds: persistent work-stealing pool.
    pub stealing_wall_seconds: f64,
    /// Whether the two trained models agreed bit for bit.
    pub bit_identical: bool,
}

impl StealRun {
    /// Wall-clock speedup of work stealing over the interleaver.
    pub fn speedup(&self) -> f64 {
        self.interleaver_wall_seconds / self.stealing_wall_seconds
    }
}

/// Cross-session buffer-pool sharing measurement.
#[derive(Debug, Clone, Copy)]
pub struct PoolSharing {
    /// Aggregate hit rate of four cold per-session pools.
    pub cold_hit_rate: f64,
    /// Hit rate of one pool shared by the same four sessions.
    pub shared_hit_rate: f64,
}

fn clustered(n: usize) -> Table {
    DatasetSpec::higgs_like(n)
        .with_order(Order::ClusteredByLabel)
        .with_block_bytes(8 << 10)
        .build_table(1)
        .unwrap()
}

fn train_config(workers: usize) -> ParallelConfig {
    ParallelConfig {
        workers,
        total_buffer_fraction: 0.2,
        batch_size: 64,
        seed: 0xC0C0,
        ..Default::default()
    }
}

fn run_interleaver(table: &Table, cfg: &ParallelConfig, epochs: usize) -> (f64, Vec<f32>) {
    let mut model = build_model(&ModelKind::LogisticRegression, 28, 1);
    let mut opt = Sgd::new(0.1, 0.95);
    let start = Instant::now();
    for e in 0..epochs {
        opt.set_epoch(e);
        let plan = parallel_epoch_plan(table, cfg, e);
        train_parallel(model.as_mut(), &mut opt, &plan.merged_batches, cfg.workers);
    }
    (start.elapsed().as_secs_f64(), model.params().to_vec())
}

fn run_stealing(
    table: &Table,
    cfg: &ParallelConfig,
    epochs: usize,
    exec: &StealingExecutor,
) -> (f64, Vec<f32>) {
    let mut model = build_model(&ModelKind::LogisticRegression, 28, 1);
    let mut opt = Sgd::new(0.1, 0.95);
    let start = Instant::now();
    for e in 0..epochs {
        opt.set_epoch(e);
        train_parallel_stealing(model.as_mut(), &mut opt, table, cfg, e, exec);
    }
    (start.elapsed().as_secs_f64(), model.params().to_vec())
}

/// Measure interleaver vs stealing at each worker count (best of
/// `repeats` wall times, bit-identity checked on every run).
pub fn measure_stealing(
    n_tuples: usize,
    epochs: usize,
    worker_counts: &[usize],
    repeats: usize,
) -> Vec<StealRun> {
    let table = clustered(n_tuples);
    worker_counts
        .iter()
        .map(|&workers| {
            let cfg = train_config(workers);
            let exec = StealingExecutor::new(workers);
            // Warm-up: fault the table into the page cache and the pool
            // threads into existence before timing anything.
            let _ = run_stealing(&table, &cfg, 1, &exec);
            let mut interleaver = f64::INFINITY;
            let mut stealing = f64::INFINITY;
            let mut bit_identical = true;
            for _ in 0..repeats.max(1) {
                let (wall_i, params_i) = run_interleaver(&table, &cfg, epochs);
                let (wall_s, params_s) = run_stealing(&table, &cfg, epochs, &exec);
                interleaver = interleaver.min(wall_i);
                stealing = stealing.min(wall_s);
                bit_identical &= params_i == params_s;
            }
            StealRun {
                workers,
                interleaver_wall_seconds: interleaver,
                stealing_wall_seconds: stealing,
                bit_identical,
            }
        })
        .collect()
}

/// Measure cross-session pool sharing: four single-epoch training
/// sessions, cold per-session engines vs one shared engine.
pub fn measure_pool_sharing(n_tuples: usize) -> PoolSharing {
    let table = clustered(n_tuples);
    let sql = "SELECT * FROM higgs TRAIN BY svm WITH max_epoch_num = 1, model_name = m";
    let pool_bytes = 64 << 20;
    let rate = |hits: u64, misses: u64| {
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    };

    let mut cold_hits = 0u64;
    let mut cold_misses = 0u64;
    for _ in 0..4 {
        let db = Database::with_shared_buffers(SimDevice::hdd_scaled(1000.0, 0), pool_bytes);
        db.register_table("higgs", table.clone());
        match db.connect().execute(sql).expect("training runs") {
            QueryResult::Train(_) => {}
            other => panic!("expected a train result, got {other:?}"),
        }
        let stats = db.pool_stats();
        cold_hits += stats.hits;
        cold_misses += stats.misses;
    }

    let db = Database::with_shared_buffers(SimDevice::hdd_scaled(1000.0, 0), pool_bytes);
    db.register_table("higgs", table);
    for _ in 0..4 {
        db.connect().execute(sql).expect("training runs");
    }
    let stats = db.pool_stats();
    PoolSharing {
        cold_hit_rate: rate(cold_hits, cold_misses),
        shared_hit_rate: rate(stats.hits, stats.misses),
    }
}

/// Render the root-level `BENCH_concurrency.json` artifact.
pub fn render_bench_json(runs: &[StealRun], pool: PoolSharing) -> String {
    let mut out = String::from("{\n  \"id\": \"concurrency\",\n  \"workers\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"workers\": {}, \"interleaver_wall_seconds\": {:.6}, \
             \"stealing_wall_seconds\": {:.6}, \"speedup\": {:.4}, \
             \"bit_identical\": {}}}{}\n",
            r.workers,
            r.interleaver_wall_seconds,
            r.stealing_wall_seconds,
            r.speedup(),
            r.bit_identical,
            comma,
        ));
    }
    let at4 = runs
        .iter()
        .filter(|r| r.workers >= 4)
        .map(StealRun::speedup)
        .fold(0.0f64, f64::max);
    out.push_str(&format!(
        "  ],\n  \"speedup_at_4plus_workers\": {at4:.4},\n  \
         \"shared_pool\": {{\"cold_hit_rate\": {:.4}, \"shared_hit_rate\": {:.4}}}\n}}",
        pool.cold_hit_rate, pool.shared_hit_rate,
    ));
    out
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The `concurrency` experiment: stealing-vs-interleaver table plus the
/// root JSON artifact.
pub fn concurrency() {
    let n = env_usize("CORGI_CONCURRENCY_TUPLES", 24_000);
    let epochs = env_usize("CORGI_CONCURRENCY_EPOCHS", 3);
    let runs = measure_stealing(n, epochs, &[1, 2, 4, 8], 2);
    let pool = measure_pool_sharing(n.min(6_000));

    let mut rep = Report::new(
        "concurrency",
        "work-stealing executor vs fixed interleaver + cross-session shared buffers",
        &[
            "workers",
            "interleaver_wall_s",
            "stealing_wall_s",
            "speedup",
            "bit_identical",
        ],
    );
    for r in &runs {
        rep.row_strings(vec![
            r.workers.to_string(),
            format!("{:.4}", r.interleaver_wall_seconds),
            format!("{:.4}", r.stealing_wall_seconds),
            format!("{:.2}x", r.speedup()),
            r.bit_identical.to_string(),
        ]);
    }
    rep.note(format!(
        "shared_buffers across sessions: cold hit rate {:.1}% vs shared {:.1}%",
        pool.cold_hit_rate * 100.0,
        pool.shared_hit_rate * 100.0,
    ));
    rep.note(
        "interleaver = serial epoch fills + per-batch thread spawns; stealing = \
         persistent pool, block-granular fill tasks, priority gradient chunks. \
         Identical models by construction (verified each run).",
    );
    rep.finish();

    let root = std::env::var("CORGI_BENCH_ROOT").unwrap_or_else(|_| ".".into());
    let path = std::path::Path::new(&root).join("BENCH_concurrency.json");
    match std::fs::write(&path, render_bench_json(&runs, pool) + "\n") {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stealing_stays_bit_identical_at_smoke_scale() {
        let runs = measure_stealing(1_500, 1, &[1, 4], 1);
        assert!(
            runs.iter().all(|r| r.bit_identical),
            "stealing diverged: {runs:?}"
        );
        assert!(runs.iter().all(|r| r.stealing_wall_seconds > 0.0));
    }

    #[test]
    fn pool_sharing_shows_cross_session_hits() {
        let pool = measure_pool_sharing(2_000);
        assert_eq!(
            pool.cold_hit_rate, 0.0,
            "single-epoch cold sessions never hit"
        );
        assert!(
            pool.shared_hit_rate > 0.5,
            "three of four shared sessions run cached: {pool:?}"
        );
    }

    #[test]
    fn bench_json_is_well_formed() {
        let runs = vec![StealRun {
            workers: 4,
            interleaver_wall_seconds: 2.0,
            stealing_wall_seconds: 1.0,
            bit_identical: true,
        }];
        let json = render_bench_json(
            &runs,
            PoolSharing {
                cold_hit_rate: 0.0,
                shared_hit_rate: 0.75,
            },
        );
        assert!(json.contains("\"speedup_at_4plus_workers\": 2.0000"));
        assert!(json.contains("\"shared_hit_rate\": 0.7500"));
        assert!(json.ends_with('}'));
    }
}
